//! Metered complexity regression: DESIGN.md §2's asymptotic claim as
//! an executable check.
//!
//! On the fishbone workload (`pmc_graph::generators::fishbone`) every
//! spine edge's interesting path spans the whole spine, and each spine
//! step is a light edge heading a fresh heavy chain. Heavy-path descent
//! therefore pays a chain binary search per level — `Θ(log² n)` cut
//! queries per edge — while centroid descent (Claim 4.13) re-anchors
//! with `O(1)` queries per centroid level, `O(log n)` per edge. The
//! assertions below pin:
//!
//! 1. an absolute ratio bound `max queries ≤ 3.5 · log₂ n` for the
//!    centroid strategy (measured slope ≈ 2.5, margin documented);
//! 2. *additive* growth per doubling for centroid descent (a `log² n`
//!    curve grows by `Θ(log n)` per doubling, which the bound excludes
//!    at these sizes — heavy-path's increments already exceed it);
//! 3. strict superiority over heavy-path at the largest size, with a
//!    1.5× margin (measured ≈ 2.4×).
//!
//! Counts are deterministic (the workload and both descents are), so
//! this runs as a regular test; CI also runs it under `--release`
//! where the larger sizes are cheap.

use parallel_mincut::prelude::*;
use pmc_mincut::{CutQuery, InterestSearch};
use pmc_tree::RootedTree;

/// Per-spine-edge cut-query statistics of `arms()` for one strategy.
fn arm_query_stats(levels: usize, strategy: InterestStrategy) -> (u64, f64) {
    let (g, parent, spine) = pmc_graph::generators::fishbone(levels, 8);
    let tree = std::sync::Arc::new(RootedTree::from_parents(0, &parent));
    let lca = LcaEngine::build(&tree, LcaStrategy::default(), &Meter::disabled());
    let q = CutQuery::build(&g, &tree, &lca, 0.5, &Meter::disabled());
    let is = InterestSearch::build(&q, &lca, strategy, &Meter::disabled());
    let (mut max, mut total) = (0u64, 0u64);
    for &e in &spine[1..] {
        let meter = Meter::enabled();
        is.arms(e, &meter);
        let c = meter.get(CostKind::CutQuery);
        max = max.max(c);
        total += c;
    }
    (max, total as f64 / spine[1..].len() as f64)
}

const LEVELS: [usize; 6] = [6, 7, 8, 9, 10, 11];

fn n_of(levels: usize) -> f64 {
    (3 * (1usize << levels) - 2) as f64
}

#[test]
fn centroid_descent_is_logarithmic() {
    let mut prev_max = None;
    for levels in LEVELS {
        let (max, avg) = arm_query_stats(levels, InterestStrategy::Centroid);
        let lg = n_of(levels).log2();
        // (1) Ratio bound vs log n.
        assert!(
            (max as f64) <= 3.5 * lg,
            "levels={levels}: centroid max {max} exceeds 3.5·log₂n = {:.1}",
            3.5 * lg
        );
        assert!(avg <= max as f64);
        // (2) Additive growth per doubling: an O(log n) curve gains a
        // constant per level; a log² curve's increments grow with n and
        // already exceed this bound at these sizes (heavy-path gains
        // ~levels per doubling here).
        if let Some(p) = prev_max {
            assert!(
                max.saturating_sub(p) <= 6,
                "levels={levels}: centroid increment {} not additive-constant",
                max - p
            );
        }
        prev_max = Some(max);
    }
}

#[test]
fn heavy_path_descent_is_not_logarithmic_here() {
    // Guard the guard: the workload really does drive heavy-path into
    // its quadratic regime, so the comparison below means something.
    // The measured curve sits at ≈ 0.47·log²n; requiring ≥ 0.3·log²n
    // (and growth faster than any 3.5·log n at the top size) keeps the
    // test meaningful without over-pinning constants.
    let levels = *LEVELS.last().unwrap();
    let (max, _) = arm_query_stats(levels, InterestStrategy::HeavyPath);
    let lg = n_of(levels).log2();
    assert!(
        (max as f64) >= 0.3 * lg * lg,
        "heavy-path max {max} unexpectedly cheap (< 0.3·log²n = {:.1})",
        0.3 * lg * lg
    );
    assert!((max as f64) > 3.5 * lg, "heavy-path stayed within the centroid budget");
}

#[test]
fn centroid_descent_beats_heavy_path_at_scale() {
    let levels = *LEVELS.last().unwrap();
    let (heavy_max, heavy_avg) = arm_query_stats(levels, InterestStrategy::HeavyPath);
    let (centroid_max, centroid_avg) = arm_query_stats(levels, InterestStrategy::Centroid);
    assert!(
        (centroid_max as f64) * 1.5 <= heavy_max as f64,
        "centroid max {centroid_max} not clearly below heavy-path max {heavy_max}"
    );
    assert!(
        centroid_avg * 1.5 <= heavy_avg,
        "centroid avg {centroid_avg:.1} not clearly below heavy-path avg {heavy_avg:.1}"
    );
}
