//! Failure injection and robustness: wrong hints, hostile parameters,
//! extreme weights, thread-count independence.

use parallel_mincut::prelude::*;
use pmc_graph::generators;
use pmc_mincut::PackingParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn wildly_overestimated_lambda_hint_recovers() {
    // A huge underestimate-turned-overestimate makes the skeleton far
    // too sparse (it disconnects); the pipeline must detect this and
    // re-densify rather than return garbage.
    let mut rng = StdRng::seed_from_u64(7001);
    let g = generators::gnm_connected(30, 90, 8, &mut rng);
    let expect = stoer_wagner_mincut(&g).value;
    for bad_hint in [10_000u64, 1_000_000, u64::MAX / 4] {
        let params = ExactParams { lambda_hint: Some(bad_hint), ..ExactParams::default() };
        let r = exact_mincut(&g, &params);
        assert_eq!(r.cut.value, expect, "hint {bad_hint}");
    }
}

#[test]
fn underestimated_lambda_hint_still_exact() {
    // A hint of 1 forces p = 1 (no sparsification): slow but exact.
    let mut rng = StdRng::seed_from_u64(7002);
    let g = generators::gnm_connected(20, 60, 50, &mut rng);
    let expect = stoer_wagner_mincut(&g).value;
    let params = ExactParams { lambda_hint: Some(1), ..ExactParams::default() };
    assert_eq!(exact_mincut(&g, &params).cut.value, expect);
}

#[test]
fn tiny_packing_budget_still_sound() {
    // Starved packing (2 iterations, 2 trees) may miss optimality but
    // must still return a genuine cut (never below the true minimum).
    let mut rng = StdRng::seed_from_u64(7003);
    let g = generators::gnm_connected(25, 80, 9, &mut rng);
    let expect = stoer_wagner_mincut(&g).value;
    let params = ExactParams {
        packing: PackingParams {
            iterations_factor: 0.0,
            min_iterations: 2,
            max_iterations: 2,
            trees_factor: 0.0,
            min_trees: 2,
        },
        ..ExactParams::default()
    };
    let got = exact_mincut(&g, &params).cut.value;
    assert!(got >= expect, "output {got} below true minimum {expect}");
    // And the side always realizes the reported value.
    let r = exact_mincut(&g, &params);
    let mut side = vec![false; g.n()];
    for &v in &r.cut.side {
        side[v as usize] = true;
    }
    assert_eq!(cut_of_partition(&g, &side), r.cut.value);
}

#[test]
fn extreme_weights_no_overflow() {
    // Weights near 2^40: cut arithmetic must stay in u64 without
    // overflow (total weight ~2^45).
    let w = 1u64 << 40;
    let g = Graph::from_edges(
        6,
        [
            (0, 1, w),
            (1, 2, w),
            (2, 0, w),
            (3, 4, w),
            (4, 5, w),
            (5, 3, w),
            (0, 3, 7),
        ],
    );
    let r = exact_mincut(&g, &ExactParams::default());
    assert_eq!(r.cut.value, 7);
}

#[test]
fn weight_one_unweighted_graphs() {
    let mut rng = StdRng::seed_from_u64(7004);
    for _ in 0..5 {
        let g = generators::gnm_connected(22, 70, 1, &mut rng);
        let expect = stoer_wagner_mincut(&g).value;
        assert_eq!(exact_mincut(&g, &ExactParams::default()).cut.value, expect);
    }
}

#[test]
fn thread_count_does_not_change_answers() {
    let mut rng = StdRng::seed_from_u64(7005);
    let g = generators::gnm_connected(28, 90, 12, &mut rng);
    let run_with = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        pool.install(|| exact_mincut(&g, &ExactParams::default()).cut.value)
    };
    let expect = stoer_wagner_mincut(&g).value;
    assert_eq!(run_with(1), expect);
    assert_eq!(run_with(2), expect);
    assert_eq!(run_with(4), expect);
}

#[test]
fn star_and_path_degenerate_trees() {
    // Extreme tree shapes through the full pipeline.
    let star = generators::star(40, 6);
    assert_eq!(exact_mincut(&star, &ExactParams::default()).cut.value, 6);
    let path = generators::path(60, 9);
    assert_eq!(exact_mincut(&path, &ExactParams::default()).cut.value, 9);
}

#[test]
fn two_bridges_in_series() {
    // Two bridges with different weights: the lighter one is the cut.
    let mut edges = Vec::new();
    // clique A: 0..5, clique B: 5..10, clique C: 10..15
    for base in [0u32, 5, 10] {
        for i in 0..5 {
            for j in i + 1..5 {
                edges.push((base + i, base + j, 20));
            }
        }
    }
    edges.push((0, 5, 4)); // bridge A-B
    edges.push((5, 10, 3)); // bridge B-C
    let g = Graph::from_edges(15, edges);
    let r = exact_mincut(&g, &ExactParams::default());
    assert_eq!(r.cut.value, 3);
}

#[test]
fn repeated_runs_are_stable_over_100_seeds() {
    // High-volume seed sweep on one small graph: the w.h.p. machinery
    // with practical constants must not flake.
    let mut rng = StdRng::seed_from_u64(7006);
    let g = generators::gnm_connected(14, 40, 6, &mut rng);
    let expect = stoer_wagner_mincut(&g).value;
    for seed in 0..100 {
        let params = ExactParams { seed, ..ExactParams::default() };
        assert_eq!(exact_mincut(&g, &params).cut.value, expect, "seed {seed}");
    }
}

#[test]
fn approx_on_disconnected_and_trivial() {
    let params = ApproxParams::default();
    let empty = Graph::from_edges(0, []);
    assert_eq!(approx_mincut(&empty, &params, &Meter::disabled()).lambda, u64::MAX);
    let single = Graph::from_edges(1, []);
    assert_eq!(approx_mincut(&single, &params, &Meter::disabled()).lambda, u64::MAX);
    let disc = Graph::from_edges(5, [(0, 1, 3), (2, 3, 3)]);
    assert_eq!(approx_mincut(&disc, &params, &Meter::disabled()).lambda, 0);
}

#[test]
fn dense_multigraph_with_many_parallels() {
    let mut rng = StdRng::seed_from_u64(7007);
    let g = generators::gnm_multi(10, 200, 5, &mut rng);
    if g.is_connected() {
        let expect = stoer_wagner_mincut(&g).value;
        assert_eq!(exact_mincut(&g, &ExactParams::default()).cut.value, expect);
    }
}
