//! Engine-reuse contract: solving through reused two-level contexts
//! ([`GraphContext`] / [`TreeContext`]) returns bit-identical
//! `CutResult`s to the one-shot free functions — across seeds,
//! workloads (including the fishbone adversary), repeated solves on one
//! context, and forced 1- vs 4-thread pools.
//!
//! This is the guarantee that makes the engine safe to put behind a
//! serving layer: context reuse is an optimization, never a behavioral
//! change.

use parallel_mincut::prelude::*;
use pmc_tree::RootedTree;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn with_pool<R>(threads: usize, op: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap().install(op)
}

/// The workload matrix of the suite: structured graphs, random graphs
/// over several seeds, and the fishbone adversary.
fn workloads() -> Vec<(String, Graph)> {
    let mut out = vec![
        ("dumbbell".to_string(), generators::dumbbell(8, 10, 3)),
        ("ring_of_cliques".to_string(), generators::ring_of_cliques(4, 5, 6, 2)),
        ("grid".to_string(), generators::grid(5, 6, 4)),
        ("cycle".to_string(), generators::cycle(24, 7)),
    ];
    for seed in [901u64, 902, 903] {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 14 + (seed % 3) as usize * 4;
        out.push((format!("gnm seed {seed}"), generators::gnm_connected(n, 3 * n, 9, &mut rng)));
    }
    let (fish, _, _) = generators::fishbone(5, 8);
    out.push(("fishbone".to_string(), fish));
    out
}

/// One-shot vs reused-context exact solves must be bit-identical
/// (value, side, and stats-bearing value), including on the second and
/// third solve from the same context.
#[test]
fn exact_reuse_is_bit_identical_across_workloads() {
    let m = Meter::disabled();
    for (name, g) in workloads() {
        let params = ExactParams::default();
        let one_shot = exact_mincut(&g, &params);
        let ctx = GraphContext::build(&g, &m);
        let first = exact_mincut_in(&ctx, &params, &m);
        let second = exact_mincut_in(&ctx, &params, &m);
        assert_eq!(first.cut, one_shot.cut, "{name}: ctx vs one-shot");
        assert_eq!(first.cut, second.cut, "{name}: first vs second solve on one ctx");
        assert_eq!(first.stats.num_trees, second.stats.num_trees, "{name}: stats drift");
    }
}

/// The same contract under forced 1- and 4-thread pools: every
/// combination (one-shot / reused, 1 / 4 threads) returns the same cut.
#[test]
fn exact_reuse_invariant_across_thread_counts() {
    for (name, g) in workloads() {
        let params = ExactParams::default();
        let reference = exact_mincut(&g, &params).cut;
        for threads in [1usize, 4] {
            let (one_shot, reused_a, reused_b) = with_pool(threads, || {
                let m = Meter::disabled();
                let ctx = GraphContext::build(&g, &m);
                (
                    exact_mincut(&g, &params).cut,
                    exact_mincut_in(&ctx, &params, &m).cut,
                    exact_mincut_in(&ctx, &params, &m).cut,
                )
            });
            assert_eq!(one_shot, reference, "{name}: one-shot at {threads} threads");
            assert_eq!(reused_a, reference, "{name}: reused ctx at {threads} threads");
            assert_eq!(reused_b, reference, "{name}: repeat solve at {threads} threads");
        }
    }
}

/// TreeContext reuse for the 2-respecting solver: one-shot free
/// function vs prebuilt context vs repeated solves, across thread
/// counts, on a fixed spanning tree.
#[test]
fn tree_context_reuse_matches_free_function() {
    let m = Meter::disabled();
    for (name, g) in workloads() {
        let forest = parallel_mincut::parallel::spanning_forest::spanning_forest(&g, &m);
        let edges: Vec<(u32, u32)> =
            forest.iter().map(|&i| (g.edge(i as usize).u, g.edge(i as usize).v)).collect();
        let tree = Arc::new(RootedTree::from_edge_list(g.n(), &edges, 0));
        let params = TwoRespectParams::default();
        let reference = two_respecting_mincut(&g, &tree, &params, &m);
        for threads in [1usize, 4] {
            let (a, b) = with_pool(threads, || {
                let ctx = TreeContext::build(&g, Arc::clone(&tree), &params, &m);
                (two_respecting_mincut_in(&ctx, &m), ctx.solve(&m))
            });
            assert_eq!(a.cut, reference.cut, "{name}: ctx solve at {threads} threads");
            assert_eq!(a.pair, b.pair, "{name}: repeated solves disagree on the witness");
            assert_eq!(a.cut, b.cut, "{name}: repeated solves disagree");
        }
    }
}

/// mincut_small through an attached context: identical to the free
/// function, including on hierarchy-style repeated calls.
#[test]
fn mincut_small_reuse_matches() {
    let m = Meter::disabled();
    let mut rng = StdRng::seed_from_u64(907);
    for trial in 0..4 {
        let g = generators::gnm_connected(15, 45, 6, &mut rng);
        let tr = TwoRespectParams::default();
        let pk = pmc_mincut::PackingParams::default();
        let free = mincut_small(&g, &tr, &pk, &m);
        let ctx = GraphContext::attach(&g, &m);
        let a = mincut_small_in(&ctx, &tr, &pk, &m);
        let b = mincut_small_in(&ctx, &tr, &pk, &m);
        assert_eq!(a, free, "trial {trial}");
        assert_eq!(a, b, "trial {trial} reuse");
    }
}

/// The deterministic symmetric join: the 2-respecting witness pair (not
/// just the value) is identical across thread counts and repeated runs
/// — the property the old HashMap-ordered join could not give.
#[test]
fn cross_path_witness_deterministic_across_thread_counts() {
    let m = Meter::disabled();
    for seed in [911u64, 912, 913] {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnm_connected(26, 80, 8, &mut rng);
        let forest = parallel_mincut::parallel::spanning_forest::spanning_forest(&g, &m);
        let edges: Vec<(u32, u32)> =
            forest.iter().map(|&i| (g.edge(i as usize).u, g.edge(i as usize).v)).collect();
        let tree = Arc::new(RootedTree::from_edge_list(g.n(), &edges, 0));
        let params = TwoRespectParams::default();
        let reference = with_pool(1, || two_respecting_mincut(&g, &tree, &params, &m));
        for threads in [1usize, 2, 4] {
            for _rep in 0..2 {
                let out = with_pool(threads, || two_respecting_mincut(&g, &tree, &params, &m));
                assert_eq!(out.cut, reference.cut, "seed {seed} threads {threads}");
                assert_eq!(
                    out.pair, reference.pair,
                    "seed {seed} threads {threads}: witness pair must be deterministic"
                );
            }
        }
    }
}

/// Degenerate inputs through the shared trivial-cut accessor: the
/// engine and the one-shot wrappers agree.
#[test]
fn trivial_inputs_agree() {
    let m = Meter::disabled();
    let params = ExactParams::default();
    let g1 = Graph::from_edges(1, []);
    let g3 = Graph::from_edges(4, [(0, 1, 2), (2, 3, 2)]);
    for g in [&g1, &g3] {
        let ctx = GraphContext::build(g, &m);
        assert_eq!(exact_mincut_in(&ctx, &params, &m).cut, exact_mincut(g, &params).cut);
        assert_eq!(
            mincut_small_in(
                &ctx,
                &TwoRespectParams::default(),
                &pmc_mincut::PackingParams::default(),
                &m
            ),
            mincut_small(g, &TwoRespectParams::default(), &pmc_mincut::PackingParams::default(), &m)
        );
    }
}
