//! The rayon shim's contract with the workspace: real data-parallelism
//! on indexed sources, pool-scoped budgets, and determinism of every
//! combining consumer across thread counts.
//!
//! The unit suites inside `vendor/rayon` cover the executor in
//! isolation; this suite checks the properties the *algorithm crates*
//! rely on, through the same entry points they use.

use parallel_mincut::parallel::scan::exclusive_scan_in_place;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::collections::HashSet;
use std::sync::Mutex;

fn with_pool<R>(threads: usize, op: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap().install(op)
}

/// The headline claim: a `par_iter().map(...)` at size observes more
/// than one OS thread under a multi-thread pool.
#[test]
fn par_iter_map_runs_on_multiple_threads() {
    let data: Vec<u64> = (0..200_000).collect();
    let ids: HashSet<std::thread::ThreadId> = with_pool(4, || {
        data.par_iter().map(|_| std::thread::current().id()).collect::<Vec<_>>()
    })
    .into_iter()
    .collect();
    assert!(
        ids.len() > 1,
        "a 4-thread pool must spread leaves over >1 thread, saw {}",
        ids.len()
    );
}

/// The converse: under `num_threads(1)` the whole pipeline — including
/// nested joins inside the leaves — stays on the calling thread. This
/// is what makes the `T1` baselines of E-depth/E-speedup honest.
#[test]
fn one_thread_pool_stays_single_threaded() {
    let seen = Mutex::new(HashSet::new());
    with_pool(1, || {
        (0..10_000u32).into_par_iter().for_each(|_| {
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        // A join tree below a par_iter leaf must not escape either.
        rayon::join(
            || seen.lock().unwrap().insert(std::thread::current().id()),
            || seen.lock().unwrap().insert(std::thread::current().id()),
        );
    });
    assert_eq!(seen.lock().unwrap().len(), 1);
}

/// Deterministic results: `collect`, `reduce`, and `sum` byte-identical
/// to the sequential run across seeds and thread counts.
#[test]
fn collect_and_reduce_deterministic_across_thread_counts() {
    for seed in [11, 12, 13] {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<u64> = (0..50_000).map(|_| rng.random_range(0..1_000_000)).collect();
        let expect_collect: Vec<u64> =
            data.iter().map(|&x| x.wrapping_mul(0x9E37_79B9)).filter(|x| x % 7 != 0).collect();
        let expect_min = data.iter().copied().min();
        let expect_sum: u64 = data.iter().sum();
        for threads in [1, 2, 4] {
            let (got_collect, got_min, got_sum) = with_pool(threads, || {
                let c: Vec<u64> = data
                    .par_iter()
                    .map(|&x| x.wrapping_mul(0x9E37_79B9))
                    .filter(|x| x % 7 != 0)
                    .collect();
                let m = data.par_iter().copied().reduce_with(u64::min);
                let s: u64 = data.par_iter().sum();
                (c, m, s)
            });
            assert_eq!(got_collect, expect_collect, "collect seed={seed} threads={threads}");
            assert_eq!(got_min, expect_min, "reduce seed={seed} threads={threads}");
            assert_eq!(got_sum, expect_sum, "sum seed={seed} threads={threads}");
        }
    }
}

/// `exclusive_scan_in_place` (chunked two-pass scan over the shim)
/// byte-identical to the sequential recurrence at parallel sizes.
#[test]
fn exclusive_scan_deterministic_across_thread_counts() {
    for seed in [21, 22] {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<u64> = (0..40_000).map(|_| rng.random_range(0..1000)).collect();
        let mut expect = data.clone();
        let mut acc = 0u64;
        for x in expect.iter_mut() {
            let v = *x;
            *x = acc;
            acc += v;
        }
        for threads in [1, 2, 4] {
            let mut got = data.clone();
            let total = with_pool(threads, || exclusive_scan_in_place(&mut got));
            assert_eq!(total, acc, "seed={seed} threads={threads}");
            assert_eq!(got, expect, "seed={seed} threads={threads}");
        }
    }
}

/// `par_sort_unstable` byte-identical to `sort_unstable` across seeds
/// and thread counts (sizes straddling the merge-sort cutoff).
#[test]
fn par_sort_deterministic_across_thread_counts() {
    for seed in [31, 32] {
        let mut rng = StdRng::seed_from_u64(seed);
        for n in [1_000, 5_000, 60_000] {
            let data: Vec<u64> = (0..n).map(|_| rng.random_range(0..100_000)).collect();
            let mut expect = data.clone();
            expect.sort_unstable();
            for threads in [1, 2, 4] {
                let mut got = data.clone();
                with_pool(threads, || got.par_sort_unstable());
                assert_eq!(got, expect, "seed={seed} n={n} threads={threads}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Forcing tiny split cutoffs (`with_max_len`) must never change
    /// the result of an adapter chain, whatever the pool width.
    #[test]
    fn forced_small_cutoffs_match_sequential(
        len in 0usize..600,
        max_len in 1usize..8,
        threads in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<u32> = (0..len).map(|_| rng.random_range(0u32..10_000)).collect();
        let expect: Vec<u64> = data
            .iter()
            .map(|&x| u64::from(x) * 3)
            .filter(|x| x % 5 != 0)
            .collect();
        let expect_sum: u64 = expect.iter().sum();
        let (got, got_sum) = with_pool(threads, || {
            let v: Vec<u64> = data
                .par_iter()
                .with_max_len(max_len)
                .map(|&x| u64::from(x) * 3)
                .filter(|x| x % 5 != 0)
                .collect();
            let s: u64 = data
                .clone()
                .into_par_iter()
                .with_max_len(max_len)
                .map(|x| u64::from(x) * 3)
                .filter(|x| x % 5 != 0)
                .sum();
            (v, s)
        });
        prop_assert_eq!(got, expect);
        prop_assert_eq!(got_sum, expect_sum);
    }

    /// Chunked mutation under forced splits: every chunk visited
    /// exactly once, in disjoint regions.
    #[test]
    fn forced_small_cutoffs_chunks_mut(
        len in 1usize..400,
        chunk in 1usize..16,
        max_len in 1usize..6,
        threads in 1usize..6,
    ) {
        let mut data = vec![0u32; len];
        with_pool(threads, || {
            data.par_chunks_mut(chunk)
                .with_max_len(max_len)
                .enumerate()
                .for_each(|(c, items)| {
                    for x in items.iter_mut() {
                        *x += 1 + c as u32;
                    }
                });
        });
        for (i, &v) in data.iter().enumerate() {
            prop_assert_eq!(v, 1 + (i / chunk) as u32, "index {}", i);
        }
    }
}
