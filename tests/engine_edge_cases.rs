//! Engine-path edge cases: degenerate batches and graphs through the
//! two-level engine, and pool survivability under panicking jobs.

use parallel_mincut::prelude::*;
use pmc_fault::Deadline;
use pmc_graph::generators;
use pmc_mincut::exact_mincut_robust;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The deliberate job panics below are expected traffic; keep the
/// default hook quiet for them only.
fn silence_expected_job_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let expected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.starts_with("expected-job-panic"));
            if !expected {
                default(info);
            }
        }));
    });
}

fn path_tree_context<'g>(
    g: &'g Graph,
    params: &TwoRespectParams,
    meter: &Meter,
) -> TreeContext<'g> {
    let edges: Vec<(u32, u32)> = (0..g.n() as u32 - 1).map(|i| (i, i + 1)).collect();
    TreeContext::from_edges(g, &edges, 0, params, meter)
}

#[test]
fn empty_batches_are_empty_and_exact() {
    let g = generators::path(8, 5);
    let meter = Meter::disabled();
    let tc = path_tree_context(&g, &TwoRespectParams::default(), &meter);
    assert!(tc.cov_batch(&[]).is_empty());
    assert!(tc.cut_batch(&[], &meter).is_empty());
    let outcome = tc.cut_batch_until(&[], &Deadline::never(), &meter);
    assert!(outcome.values.is_empty());
    assert_eq!(outcome.completed, 0);
    assert!(outcome.quality.is_exact(), "an empty batch completes by definition");
}

#[test]
fn cut_batch_until_respects_the_deadline() {
    let g = generators::path(8, 5);
    let meter = Meter::disabled();
    let tc = path_tree_context(&g, &TwoRespectParams::default(), &meter);
    let pairs: Vec<(u32, u32)> =
        (1..8u32).flat_map(|e| (1..8u32).map(move |f| (e, f))).collect();
    // Live deadline: the full batch completes and matches cut_batch.
    let full = tc.cut_batch_until(&pairs, &Deadline::never(), &meter);
    assert_eq!(full.completed, pairs.len());
    assert!(full.quality.is_exact());
    assert_eq!(full.values, tc.cut_batch(&pairs, &meter));
    // Expired deadline: a flagged empty prefix, not a hang or a panic.
    let expired = tc.cut_batch_until(&pairs, &Deadline::ticks(0), &meter);
    assert_eq!(expired.completed, 0);
    assert!(expired.values.is_empty());
    assert!(expired.quality.is_degraded(), "partial batch must be flagged");
    // Cancellation behaves like expiry.
    let cancelled = Deadline::never();
    cancelled.cancel();
    let c = tc.cut_batch_until(&pairs, &cancelled, &meter);
    assert_eq!(c.completed, 0);
    assert!(c.quality.is_degraded());
}

#[test]
fn single_vertex_and_empty_graphs_through_the_engine() {
    let meter = Meter::disabled();
    for n in [0usize, 1] {
        let g = Graph::from_edges(n, []);
        let ctx = GraphContext::build(&g, &meter);
        assert_eq!(ctx.trivial_cut(), Some(CutResult::infinite()), "n={n}");
        let r = exact_mincut(&g, &ExactParams::default());
        assert_eq!(r.cut, CutResult::infinite(), "n={n}");
        assert!(r.quality.is_exact(), "n={n}: a trivial answer is still exact");
        let robust =
            exact_mincut_robust(&g, &ExactParams::default(), &Deadline::never(), &meter)
                .expect("degenerate graphs are not errors");
        assert_eq!(robust.cut, r.cut, "n={n}");
    }
}

#[test]
fn disconnected_graphs_through_the_engine() {
    let meter = Meter::disabled();
    let g = Graph::from_edges(6, [(0, 1, 3), (1, 2, 3), (3, 4, 2), (4, 5, 2)]);
    let ctx = GraphContext::build(&g, &meter);
    let trivial = ctx.trivial_cut().expect("disconnected graph has a trivial cut");
    assert_eq!(trivial.value, 0);
    assert_eq!(trivial.side, vec![0, 1, 2], "vertex 0's component is one side");
    let r = exact_mincut(&g, &ExactParams::default());
    assert_eq!(r.cut.value, 0);
    assert!(r.quality.is_exact());
    let robust = exact_mincut_robust(&g, &ExactParams::default(), &Deadline::never(), &meter)
        .expect("disconnected is not an error");
    assert_eq!(robust.cut.value, 0);
}

#[test]
fn pool_survives_consecutive_panicking_jobs() {
    silence_expected_job_panics();
    const STORMS: usize = 10;
    for threads in [2usize, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("build test pool");
        for i in 0..STORMS {
            // The panic must propagate to the joiner (the model suite
            // pins this), not kill the pool.
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.install(|| rayon::join(|| panic!("expected-job-panic {i}"), || 1))
            }));
            assert!(result.is_err(), "threads={threads} storm {i}: panic must propagate");
            // The very next job on the same pool still computes.
            let (a, b) = pool.install(|| {
                rayon::join(|| (0..100u64).sum::<u64>(), || (0..50u64).product::<u64>())
            });
            assert_eq!(a, 4950, "threads={threads} storm {i}");
            assert_eq!(b, 0, "threads={threads} storm {i}");
        }
        // And a full solve still works after the storms.
        let g = generators::ring_of_cliques(4, 5, 6, 2);
        let value = pool.install(|| exact_mincut(&g, &ExactParams::default()).cut.value);
        assert_eq!(value, 4);
    }
    assert!(rayon::pool_diagnostics().workers_live > 0, "pool died");
}
