//! Chaos suite: seeded fault plans against the robust solver entry.
//!
//! Every test sweeps `PMC_CHAOS_PLANS` (default 500) distinct generated
//! [`FaultPlan`]s through [`exact_mincut_robust`] and asserts the one
//! property the fault plane exists to guarantee: a solve under injected
//! faults returns the correct value, a typed error, or a *flagged*
//! degraded answer that is still a genuine cut — never a hang, an
//! abort, or an unflagged wrong answer.
//!
//! Any failing plan's `fp1;…` fixture string is printed in the assert
//! message; add it to `REGRESSION_FIXTURES` below to pin the replay.
//!
//! All rayon-touching work in this file runs inside a [`FaultScope`]
//! (a fault-free control scope where no faults are wanted), because
//! scopes serialize process-wide: no test here can have its pool jobs
//! hit by another test's armed panic op.
//!
//! Solves run under an explicit 4-thread pool: the default pool sizes
//! itself to the machine, and on a single-core CI box that means a
//! zero helper budget — every join inline, every `rayon:*` probe dead.

use parallel_mincut::prelude::*;
use pmc_fault::{Deadline, DegradeReason, FaultPlan, FaultScope, InjectedPanic, SolveQuality};
use pmc_graph::generators;
use pmc_mincut::exact_mincut_robust;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Probe points that may legally raise an [`InjectedPanic`].
const PANICKING_POINTS: &[&str] =
    &["engine:graph_build", "engine:tree_build", "rayon:job_run"];

/// Every probe point in the stack (panic ops at the plain ones are
/// ignored by design, so arbitrary plans over this menu are safe).
const ALL_POINTS: &[&str] = &[
    "rayon:push",
    "rayon:steal",
    "rayon:worker_tick",
    "rayon:job_run",
    "engine:graph_build",
    "engine:tree_build",
    "engine:phase1_approx",
    "engine:phase2_skeleton",
    "engine:phase3_certificate",
    "engine:phase4_packing",
    "engine:cov_batch",
    "engine:cut_batch",
];

/// Deadline-consulting points: `exhaust` ops here exercise cooperative
/// cancellation at every phase boundary and batch facade.
const BUDGET_POINTS: &[&str] = &[
    "engine:phase1_approx",
    "engine:phase2_skeleton",
    "engine:phase3_certificate",
    "engine:phase4_packing",
    "engine:cov_batch",
    "engine:cut_batch",
];

fn plan_count() -> u64 {
    std::env::var("PMC_CHAOS_PLANS").ok().and_then(|v| v.parse().ok()).unwrap_or(500)
}

/// A pool wide enough that joins actually push jobs and spawn workers,
/// independent of the host's core count.
fn chaos_pool() -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new().num_threads(4).build().expect("build chaos pool")
}

/// Injected panics are expected traffic in this suite; keep the default
/// hook's backtrace spam for genuine panics only.
fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if InjectedPanic::from_payload(info.payload()).is_none() {
                default(info);
            }
        }));
    });
}

/// A small connected chaos workload plus its true minimum cut.
fn chaos_graph(seed: u64) -> (Graph, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = generators::gnm_connected(10, 24, 6, &mut rng);
    let expect = stoer_wagner_mincut(&g).value;
    (g, expect)
}

/// The well-typed-outcome invariant: the reported side realizes the
/// reported value, the value never undercuts the true minimum, and an
/// `Exact` flag means *the* minimum.
fn assert_valid_outcome(g: &Graph, r: &ExactResult, expect: u64, fixture: &str) {
    let mut side = vec![false; g.n()];
    for &v in &r.cut.side {
        side[v as usize] = true;
    }
    assert_eq!(
        cut_of_partition(g, &side),
        r.cut.value,
        "plan {fixture}: reported side does not realize the reported value"
    );
    assert!(
        r.cut.value >= expect,
        "plan {fixture}: cut {} below the true minimum {expect}",
        r.cut.value
    );
    if r.quality.is_exact() {
        assert_eq!(
            r.cut.value, expect,
            "plan {fixture}: flagged Exact but the value is not the minimum"
        );
    }
}

#[test]
fn panic_plans_never_return_unflagged_wrong_answers() {
    silence_injected_panics();
    let (g, expect) = chaos_graph(41);
    let params = ExactParams::default();
    let pool = chaos_pool();
    let mut degraded = 0u64;
    for seed in 0..plan_count() {
        let plan = FaultPlan::generate(seed, PANICKING_POINTS);
        let fixture = plan.encode();
        let scope = FaultScope::activate(&plan);
        let r = pool
            .install(|| exact_mincut_robust(&g, &params, &Deadline::never(), &Meter::disabled()))
            .unwrap_or_else(|e| panic!("plan {fixture} surfaced a genuine bug: {e}"));
        drop(scope);
        if r.quality.is_degraded() {
            degraded += 1;
        }
        assert_valid_outcome(&g, &r, expect, &fixture);
    }
    assert!(degraded > 0, "sweep never fired an injected panic — probes dead?");
}

#[test]
fn arbitrary_plans_over_every_probe_are_well_typed() {
    silence_injected_panics();
    let (g, expect) = chaos_graph(42);
    let params = ExactParams::default();
    let pool = chaos_pool();
    for seed in 0..plan_count() {
        let plan = FaultPlan::generate(seed, ALL_POINTS);
        let fixture = plan.encode();
        let deadline = Deadline::never();
        let scope = FaultScope::activate_with_deadline(&plan, &deadline);
        let r = pool
            .install(|| exact_mincut_robust(&g, &params, &deadline, &Meter::disabled()))
            .unwrap_or_else(|e| panic!("plan {fixture} surfaced a genuine bug: {e}"));
        drop(scope);
        assert_valid_outcome(&g, &r, expect, &fixture);
    }
}

#[test]
fn delay_only_plans_stay_exact() {
    silence_injected_panics();
    let (g, expect) = chaos_graph(43);
    let params = ExactParams::default();
    let pool = chaos_pool();
    for seed in 0..plan_count() {
        let plan = FaultPlan::generate(seed, ALL_POINTS).without_panics();
        // No deadline registered: exhaust ops are no-ops, so only
        // delays remain — pure schedule perturbation.
        let fixture = plan.encode();
        let scope = FaultScope::activate(&plan);
        let r = pool
            .install(|| exact_mincut_robust(&g, &params, &Deadline::never(), &Meter::disabled()))
            .unwrap_or_else(|e| panic!("plan {fixture} surfaced a genuine bug: {e}"));
        drop(scope);
        assert!(r.quality.is_exact(), "plan {fixture}: delays must not degrade the solve");
        assert_eq!(r.cut.value, expect, "plan {fixture}: delays changed the answer");
    }
}

#[test]
fn exhaust_plans_degrade_flagged_never_silent() {
    silence_injected_panics();
    let (g, expect) = chaos_graph(44);
    let params = ExactParams::default();
    let pool = chaos_pool();
    let (mut exact, mut degraded) = (0u64, 0u64);
    for seed in 0..plan_count() {
        let plan = FaultPlan::generate(seed, BUDGET_POINTS).without_panics();
        let fixture = plan.encode();
        let deadline = Deadline::never();
        let scope = FaultScope::activate_with_deadline(&plan, &deadline);
        let r = pool
            .install(|| exact_mincut_robust(&g, &params, &deadline, &Meter::disabled()))
            .unwrap_or_else(|e| panic!("plan {fixture} surfaced a genuine bug: {e}"));
        drop(scope);
        match &r.quality {
            SolveQuality::Exact => exact += 1,
            SolveQuality::Degraded(reason) => {
                degraded += 1;
                assert!(
                    matches!(
                        reason,
                        DegradeReason::BudgetExhausted { .. }
                            | DegradeReason::DeadlineExpired { .. }
                    ),
                    "plan {fixture}: exhaust must flag a budget/deadline reason, got {reason:?}"
                );
            }
        }
        assert_valid_outcome(&g, &r, expect, &fixture);
    }
    assert!(degraded > 0, "no exhaust op ever fired — cancellation path untested");
    assert!(exact > 0, "every plan degraded — sweep lost its control arm");
}

#[test]
fn worker_panics_are_quarantined_and_solves_stay_exact() {
    silence_injected_panics();
    let (g, expect) = chaos_graph(45);
    let params = ExactParams::default();
    let pool = chaos_pool();
    let before = rayon::pool_diagnostics();
    // Shorter sweep: each plan can kill up to 3 workers, and each kill
    // spawns a replacement thread.
    let sweeps = plan_count().min(100);
    for seed in 0..sweeps {
        let plan = FaultPlan::generate(seed, &["rayon:worker_tick"]);
        let fixture = plan.encode();
        let scope = FaultScope::activate(&plan);
        let r = pool
            .install(|| exact_mincut_robust(&g, &params, &Deadline::never(), &Meter::disabled()))
            .unwrap_or_else(|e| panic!("plan {fixture} surfaced a genuine bug: {e}"));
        drop(scope);
        // Worker deaths are absorbed below the join layer: the solve
        // must complete exactly, not merely degrade.
        assert!(r.quality.is_exact(), "plan {fixture}: quarantine leaked into the result");
        assert_eq!(r.cut.value, expect, "plan {fixture}: quarantine changed the answer");
    }
    let after = rayon::pool_diagnostics();
    assert!(
        after.workers_quarantined > before.workers_quarantined,
        "no worker was ever quarantined — rayon:worker_tick probe dead?"
    );
    assert!(after.workers_live > 0, "pool has no live workers left");
    // The pool still solves cleanly after the storm.
    let plan = FaultPlan::empty();
    let _scope = FaultScope::activate(&plan);
    let r = pool
        .install(|| exact_mincut_robust(&g, &params, &Deadline::never(), &Meter::disabled()))
        .expect("post-storm solve");
    assert!(r.quality.is_exact());
    assert_eq!(r.cut.value, expect);
}

/// Fixture strings pinned from sweeps: each must replay bit-identically
/// (same quality class, same value) on every run. Engine-level probes
/// only — their hit sequences do not depend on thread scheduling.
const REGRESSION_FIXTURES: &[&str] = &[
    "fp1;seed=0;engine:graph_build@1=panic",
    "fp1;seed=0;engine:tree_build@1=panic",
    "fp1;seed=0;engine:phase1_approx@1=exhaust",
    "fp1;seed=0;engine:phase3_certificate@1=exhaust",
    "fp1;seed=0;engine:phase2_skeleton@1=delay:2;engine:cut_batch@1=delay:1",
];

#[test]
fn regression_fixtures_replay_deterministically() {
    silence_injected_panics();
    let (g, expect) = chaos_graph(46);
    let params = ExactParams::default();
    let pool = chaos_pool();
    for fixture in REGRESSION_FIXTURES {
        let plan = FaultPlan::parse(fixture).expect("pinned fixture parses");
        let run = || {
            let deadline = Deadline::never();
            let scope = FaultScope::activate_with_deadline(&plan, &deadline);
            let r = pool
                .install(|| exact_mincut_robust(&g, &params, &deadline, &Meter::disabled()))
                .unwrap_or_else(|e| panic!("fixture {fixture} surfaced a genuine bug: {e}"));
            drop(scope);
            r
        };
        let a = run();
        let b = run();
        assert_eq!(a.quality, b.quality, "fixture {fixture}: quality not deterministic");
        assert_eq!(a.cut.value, b.cut.value, "fixture {fixture}: value not deterministic");
        assert_valid_outcome(&g, &a, expect, fixture);
    }
    // The first fixture kills the context build itself: the degraded
    // answer must be the raw min-degree fallback.
    let plan = FaultPlan::parse(REGRESSION_FIXTURES[0]).expect("fixture parses");
    let deadline = Deadline::never();
    let scope = FaultScope::activate_with_deadline(&plan, &deadline);
    let r = pool
        .install(|| exact_mincut_robust(&g, &params, &deadline, &Meter::disabled()))
        .expect("degraded, not an error");
    drop(scope);
    assert!(
        matches!(
            &r.quality,
            SolveQuality::Degraded(DegradeReason::InjectedFault { point })
                if point == "engine:graph_build"
        ),
        "got {:?}",
        r.quality
    );
    let plan = FaultPlan::empty();
    let _scope = FaultScope::activate(&plan);
    let ctx = GraphContext::build(&g, &Meter::disabled());
    assert_eq!(r.cut, ctx.min_degree_cut());
}

#[test]
fn generated_fixture_strings_round_trip() {
    for seed in 0..plan_count() {
        let plan = FaultPlan::generate(seed, ALL_POINTS);
        let text = plan.encode();
        assert_eq!(
            FaultPlan::parse(&text).expect("generated fixture parses"),
            plan,
            "fixture {text} does not round-trip"
        );
    }
}
