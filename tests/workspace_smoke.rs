//! Workspace wiring smoke test.
//!
//! Exercises the `parallel_mincut::prelude` re-exports end to end —
//! build graphs through the re-exported generators, run every min-cut
//! entry point the prelude advertises, and assert cross-algorithm
//! agreement — so a broken re-export, a crate falling out of the
//! workspace, or a manifest wiring regression fails loudly here before
//! anything subtler does.

use parallel_mincut::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every prelude name used below comes from a different member crate,
/// so this single test transitively checks the whole dependency graph:
/// `pmc-graph` (generators, Stoer–Wagner, Karger–Stein, Matula),
/// `pmc-parallel` (Meter), and `pmc-mincut` (approx + exact pipeline,
/// which pulls in `pmc-tree`, `pmc-range`, `pmc-monge`,
/// `pmc-sparsify`).
#[test]
fn prelude_pipeline_agreement_on_random_graphs() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnm_connected(24, 60, 10, &mut rng);

        let oracle = stoer_wagner_mincut(&g);
        assert!(oracle.value > 0, "connected graph must have a positive cut");

        // Exact pipeline agrees with the oracle, and its reported
        // partition really cuts that much weight.
        let exact = exact_mincut(&g, &ExactParams { seed, ..ExactParams::default() });
        assert_eq!(exact.cut.value, oracle.value, "seed {seed}");
        let mut side = vec![false; g.n()];
        for &v in &exact.cut.side {
            side[v as usize] = true;
        }
        assert_eq!(cut_of_partition(&g, &side), exact.cut.value, "seed {seed}");

        // The constant-factor estimate brackets the truth (Theorem 3.1
        // windows are generous; 4x is far outside the failure
        // probability at this size).
        let approx = approx_mincut(&g, &ApproxParams::default(), &Meter::disabled());
        assert!(
            approx.lambda >= oracle.value / 4 && approx.lambda <= oracle.value * 4,
            "approx estimate {} too far from {} (seed {seed})",
            approx.lambda,
            oracle.value,
        );

        // Monte-Carlo and approximation baselines stay on the right
        // side of the oracle.
        let ks = karger_stein_mincut(&g, 2, &mut rng);
        assert!(ks.value >= oracle.value, "seed {seed}");
        let matula = matula_approx(&g, 0.5);
        assert!(matula >= oracle.value, "seed {seed}");
        assert!(matula <= oracle.value * 3, "seed {seed}");
    }
}

/// The structured generators fix the min cut by construction; the whole
/// stack must reproduce those planted values.
#[test]
fn prelude_pipeline_on_planted_structures() {
    // Ring of k cliques joined by weight-2 bridges: min cut severs the
    // ring at two bridges.
    let ring = generators::ring_of_cliques(4, 5, 6, 2);
    assert_eq!(exact_mincut(&ring, &ExactParams::default()).cut.value, 4);
    assert_eq!(stoer_wagner_mincut(&ring).value, 4);

    // Planted bisection with a deliberately light bridge.
    let mut rng = StdRng::seed_from_u64(7);
    let planted = generators::planted_bisection(24, 80, 3, 9, 1, &mut rng);
    let oracle = stoer_wagner_mincut(&planted);
    assert_eq!(oracle.value, 3, "three weight-1 bridges are the planted cut");
    let exact = exact_mincut(&planted, &ExactParams::default());
    assert_eq!(exact.cut.value, oracle.value);
}

/// `TwoRespectParams` and the metering types are part of the prelude
/// contract too; a meter threaded through the exact pipeline must
/// observe work.
#[test]
fn prelude_metering_and_params_are_wired() {
    let mut rng = StdRng::seed_from_u64(11);
    let g = generators::gnm_connected(20, 40, 5, &mut rng);

    let meter = Meter::enabled();
    let exact = pmc_mincut::exact_mincut_metered(
        &g,
        &ExactParams { two_respect: TwoRespectParams::default(), ..ExactParams::default() },
        &meter,
    );
    assert_eq!(exact.cut.value, stoer_wagner_mincut(&g).value);

    let report: CostReport = meter.report();
    let cut_queries = report.work_of(CostKind::CutQuery);
    assert!(cut_queries > 0, "exact pipeline should issue cut queries, got report {report:?}");
}
