//! Cross-crate integration tests: the full pipeline against the
//! sequential oracles over a matrix of workloads and seeds.

use parallel_mincut::prelude::*;
use pmc_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_realizes(g: &Graph, cut: &CutResult, label: &str) {
    let mut side = vec![false; g.n()];
    for &v in &cut.side {
        side[v as usize] = true;
    }
    assert_eq!(cut_of_partition(g, &side), cut.value, "{label}: side/value mismatch");
    assert!(!cut.side.is_empty() && cut.side.len() < g.n(), "{label}: degenerate side");
}

#[test]
fn exact_matches_stoer_wagner_generator_matrix() {
    let mut rng = StdRng::seed_from_u64(9001);
    let mut graphs: Vec<(String, Graph)> = Vec::new();
    for seed in 0..4u64 {
        graphs.push((
            format!("gnm-{seed}"),
            generators::gnm_connected(14 + seed as usize * 5, 50, 9, &mut rng),
        ));
        graphs.push((
            format!("planted-{seed}"),
            generators::planted_bisection(16, 40, 2 + seed as usize, 8, 1, &mut rng),
        ));
        graphs.push((
            format!("multi-{seed}"),
            generators::gnm_multi(12, 50, 6, &mut rng),
        ));
    }
    graphs.push(("dumbbell".into(), generators::dumbbell(7, 9, 4)));
    graphs.push(("ring".into(), generators::ring_of_cliques(5, 4, 7, 2)));
    graphs.push(("grid".into(), generators::grid(4, 7, 3)));
    graphs.push(("hypercube".into(), generators::hypercube(4, 5)));
    graphs.push(("wheel-ish".into(), generators::star(15, 4)));

    for (label, g) in graphs {
        if !g.is_connected() {
            continue;
        }
        let expect = stoer_wagner_mincut(&g).value;
        let got = exact_mincut(&g, &ExactParams::default());
        assert_eq!(got.cut.value, expect, "{label}");
        assert_realizes(&g, &got.cut, &label);
    }
}

#[test]
fn exact_is_deterministic_per_seed() {
    let mut rng = StdRng::seed_from_u64(9002);
    let g = generators::gnm_connected(30, 100, 20, &mut rng);
    let p1 = ExactParams { seed: 5, ..ExactParams::default() };
    let a = exact_mincut(&g, &p1);
    let b = exact_mincut(&g, &p1);
    assert_eq!(a.cut.value, b.cut.value);
    assert_eq!(a.cut.side, b.cut.side);
    assert_eq!(a.stats.skeleton_edges, b.stats.skeleton_edges);
}

#[test]
fn exact_robust_across_pipeline_seeds() {
    // The answer must not depend on the sampling seed (w.h.p. machinery,
    // checked across ten seeds).
    let mut rng = StdRng::seed_from_u64(9003);
    let g = generators::gnm_connected(24, 90, 50, &mut rng);
    let expect = stoer_wagner_mincut(&g).value;
    for seed in 0..10 {
        let params = ExactParams { seed, ..ExactParams::default() };
        assert_eq!(exact_mincut(&g, &params).cut.value, expect, "seed {seed}");
    }
}

#[test]
fn three_algorithms_agree() {
    let mut rng = StdRng::seed_from_u64(9004);
    for trial in 0..5 {
        let g = generators::gnm_connected(18, 60, 7, &mut rng);
        let sw = stoer_wagner_mincut(&g).value;
        let ks =
            karger_stein_mincut(&g, pmc_graph::karger_stein::default_trials(g.n()), &mut rng)
                .value;
        let ex = exact_mincut(&g, &ExactParams::default()).cut.value;
        assert_eq!(sw, ks, "trial {trial} karger-stein");
        assert_eq!(sw, ex, "trial {trial} pipeline");
    }
}

#[test]
fn approx_constant_factor_on_heavy_graphs() {
    let mut rng = StdRng::seed_from_u64(9005);
    for trial in 0..3 {
        let g = generators::heavy_cycle_with_chords(12, 18, 2500, 60, &mut rng);
        let expect = stoer_wagner_mincut(&g).value as f64;
        let a = approx_mincut(&g, &ApproxParams::default(), &Meter::disabled());
        let ratio = a.lambda as f64 / expect;
        assert!((0.4..=2.5).contains(&ratio), "trial {trial}: ratio {ratio}");
    }
}

#[test]
fn approx_exact_below_window() {
    let g = generators::dumbbell(9, 6, 4);
    let a = approx_mincut(&g, &ApproxParams::default(), &Meter::disabled());
    assert!(a.below_window);
    assert_eq!(a.lambda, 4);
}

#[test]
fn eps_refinement_brackets_truth() {
    let g = generators::dumbbell(10, 1500, 4000);
    let refined =
        approx_mincut_eps(&g, 0.25, &ApproxParams::default(), 3, &Meter::disabled());
    let expect = 4000f64;
    assert!(
        (refined as f64) >= expect * 0.55 && (refined as f64) <= expect * 1.45,
        "refined {refined}"
    );
}

#[test]
fn two_respect_agrees_with_naive_on_packed_trees() {
    // Cross-module: trees produced by the real packing, solved by both
    // solvers.
    use pmc_mincut::{greedy_tree_packing, PackingParams};
    use pmc_tree::RootedTree;
    let mut rng = StdRng::seed_from_u64(9006);
    let g = generators::gnm_connected(20, 70, 6, &mut rng);
    let trees =
        greedy_tree_packing(&g.coalesced(), &PackingParams::default(), &Meter::disabled());
    assert!(!trees.is_empty());
    for (i, edges) in trees.iter().enumerate().take(6) {
        let tree = RootedTree::from_edge_list(g.n(), edges, 0);
        let fast = two_respecting_mincut(&g, &tree, &TwoRespectParams::default(), &Meter::disabled());
        let naive = naive_two_respecting(&g, &tree, 0.3, &Meter::disabled());
        assert_eq!(fast.cut.value, naive.cut.value, "packed tree {i}");
    }
}

#[test]
fn work_separation_filtered_vs_naive() {
    // The headline ablation as an invariant: on a non-sparse graph the
    // filtered solver issues asymptotically fewer cut queries.
    use pmc_parallel::CostKind;
    use pmc_tree::RootedTree;
    let mut rng = StdRng::seed_from_u64(9007);
    let g = generators::non_sparse(400, 0.5, 8, &mut rng);
    let forest = pmc_parallel::spanning_forest::spanning_forest(&g, &Meter::disabled());
    let edges: Vec<(u32, u32)> =
        forest.iter().map(|&i| (g.edge(i as usize).u, g.edge(i as usize).v)).collect();
    let tree = RootedTree::from_edge_list(g.n(), &edges, 0);

    let m1 = Meter::enabled();
    let fast = two_respecting_mincut(&g, &tree, &TwoRespectParams::default(), &m1);
    let m2 = Meter::enabled();
    let naive = naive_two_respecting(&g, &tree, 0.25, &m2);
    assert_eq!(fast.cut.value, naive.cut.value);
    let fast_q = m1.report().work_of(CostKind::CutQuery);
    let naive_q = m2.report().work_of(CostKind::CutQuery);
    assert!(
        fast_q * 2 < naive_q,
        "filtered solver should need far fewer queries: {fast_q} vs {naive_q}"
    );
}

#[test]
fn meters_populate_work_and_depth() {
    let mut rng = StdRng::seed_from_u64(9008);
    let g = generators::gnm_connected(40, 160, 12, &mut rng);
    let meter = Meter::enabled();
    let r = pmc_mincut::exact::exact_mincut_metered(&g, &ExactParams::default(), &meter);
    assert!(r.cut.value > 0);
    let rep = meter.report();
    assert!(rep.total_work() > 0);
    assert!(rep.work_of(pmc_parallel::CostKind::CutQuery) > 0);
    assert!(rep.depth.contains_key("packing:iterations"));
    assert!(rep.depth.contains_key("cutquery:range_height"));
    assert!(rep.total_depth() > 0);
    assert!(!rep.render().is_empty());
}

#[test]
fn io_round_trip_preserves_mincut() {
    let mut rng = StdRng::seed_from_u64(9009);
    let g = generators::gnm_connected(16, 50, 9, &mut rng);
    let text = pmc_graph::io::write_graph(&g);
    let g2 = pmc_graph::io::parse_graph(&text).unwrap();
    assert_eq!(
        exact_mincut(&g, &ExactParams::default()).cut.value,
        exact_mincut(&g2, &ExactParams::default()).cut.value
    );
}
