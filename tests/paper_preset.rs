//! The paper-faithful constant presets and degenerate tree-shape stress
//! tests for the full pipeline.

use parallel_mincut::prelude::*;
use pmc_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn paper_preset_small_graphs_take_exact_path() {
    // With 500-log-n-scale constants, laptop-sized graphs sit far below
    // the hierarchy window; the approximation must detect this and be
    // exact via the layer-0 certificate.
    let g = generators::dumbbell(8, 10, 3);
    let params = ApproxParams::paper(1);
    let a = approx_mincut(&g, &params, &Meter::disabled());
    assert!(a.below_window);
    assert_eq!(a.lambda, 3);
}

#[test]
fn paper_preset_pipeline_is_exact() {
    let mut rng = StdRng::seed_from_u64(42);
    for trial in 0..4 {
        let g = generators::gnm_connected(18, 60, 9, &mut rng);
        let expect = stoer_wagner_mincut(&g).value;
        let params = ExactParams::paper(trial);
        assert_eq!(exact_mincut(&g, &params).cut.value, expect, "trial {trial}");
    }
}

#[test]
fn caterpillar_trees_stress() {
    // Caterpillar spanning trees (a long spine with legs) exercise both
    // decomposition strategies' worst-ish cases: one long path plus many
    // singleton paths.
    use pmc_tree::{PathStrategy, RootedTree};
    let mut rng = StdRng::seed_from_u64(43);
    let spine = 30u32;
    let mut edges: Vec<(u32, u32)> = (1..spine).map(|i| (i - 1, i)).collect();
    let mut next = spine;
    for s in 0..spine {
        edges.push((s, next));
        next += 1;
    }
    let n = next as usize;
    let tree = RootedTree::from_edge_list(n, &edges, 0);
    // Graph = tree + random chords.
    let mut gb = pmc_graph::GraphBuilder::new(n);
    for &(u, v) in &edges {
        gb.add_edge(u, v, 3);
    }
    use rand::Rng;
    for _ in 0..120 {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u != v {
            gb.add_edge(u, v, rng.random_range(1..5));
        }
    }
    let g = gb.build();
    let naive = naive_two_respecting(&g, &tree, 0.4, &Meter::disabled());
    for strategy in [PathStrategy::HeavyPath, PathStrategy::Bough] {
        let params = TwoRespectParams { strategy, ..TwoRespectParams::default() };
        let fast = two_respecting_mincut(&g, &tree, &params, &Meter::disabled());
        assert_eq!(fast.cut.value, naive.cut.value, "{strategy:?}");
    }
}

#[test]
fn broom_tree_stress() {
    // A path ending in a star ("broom"): deep chain + one high-degree
    // vertex, the two extremes the children-interval binary search and
    // the heavy-chain binary search must handle together.
    use pmc_tree::RootedTree;
    let depth = 25u32;
    let leaves = 25u32;
    let mut edges: Vec<(u32, u32)> = (1..depth).map(|i| (i - 1, i)).collect();
    for l in 0..leaves {
        edges.push((depth - 1, depth + l));
    }
    let n = (depth + leaves) as usize;
    let tree = RootedTree::from_edge_list(n, &edges, 0);
    let mut gb = pmc_graph::GraphBuilder::new(n);
    for &(u, v) in &edges {
        gb.add_edge(u, v, 2);
    }
    let mut rng = StdRng::seed_from_u64(44);
    use rand::Rng;
    for _ in 0..150 {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u != v {
            gb.add_edge(u, v, rng.random_range(1..4));
        }
    }
    let g = gb.build();
    let naive = naive_two_respecting(&g, &tree, 0.4, &Meter::disabled());
    let fast = two_respecting_mincut(&g, &tree, &TwoRespectParams::default(), &Meter::disabled());
    assert_eq!(fast.cut.value, naive.cut.value);
}

#[test]
fn matula_band_against_pipeline() {
    // Matula's sequential (2+ε) approximation sits within its band of
    // the pipeline's exact value on every workload family.
    let mut rng = StdRng::seed_from_u64(45);
    let graphs = vec![
        generators::gnm_connected(20, 70, 9, &mut rng),
        generators::ring_of_cliques(4, 4, 6, 2),
        generators::grid(5, 5, 2),
    ];
    for (i, g) in graphs.into_iter().enumerate() {
        let exact = exact_mincut(&g, &ExactParams::default()).cut.value;
        let approx = matula_approx(&g, 0.25);
        assert!(approx >= exact, "graph {i}");
        assert!(approx as f64 <= 2.25 * exact as f64 + 1.0, "graph {i}");
    }
}
