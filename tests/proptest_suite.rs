//! Property-based tests over the core invariants (proptest).
//!
//! Strategy: generate small random connected weighted graphs (and trees
//! where needed) and check the algebraic identities and cross-algorithm
//! agreements the pipeline is built on.

use parallel_mincut::prelude::*;
use pmc_graph::generators;
use pmc_tree::{PathDecomposition, PathStrategy, RootedTree};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A connected weighted graph from a compact description.
fn graph_from(n: usize, extra: usize, max_w: u64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::gnm_connected(n.max(2), extra, max_w.max(1), &mut rng)
}

fn spanning_tree(g: &Graph, root: u32) -> std::sync::Arc<RootedTree> {
    let forest = pmc_parallel::spanning_forest::spanning_forest(g, &Meter::disabled());
    let edges: Vec<(u32, u32)> =
        forest.iter().map(|&i| (g.edge(i as usize).u, g.edge(i as usize).v)).collect();
    std::sync::Arc::new(RootedTree::from_edge_list(g.n(), &edges, root))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// The full pipeline is exact on arbitrary small connected graphs.
    #[test]
    fn pipeline_matches_stoer_wagner(
        n in 4usize..20,
        extra in 0usize..40,
        max_w in 1u64..50,
        seed in 0u64..1000,
    ) {
        let g = graph_from(n, extra, max_w, seed);
        let expect = stoer_wagner_mincut(&g).value;
        let got = exact_mincut(&g, &ExactParams { seed, ..ExactParams::default() });
        prop_assert_eq!(got.cut.value, expect);
    }

    /// cut(e, f) from the range structure equals the partition value.
    #[test]
    fn cut_queries_match_partitions(
        n in 4usize..16,
        extra in 0usize..30,
        seed in 0u64..1000,
    ) {
        let g = graph_from(n, extra, 9, seed);
        let t = spanning_tree(&g, 0);
        let lca = LcaEngine::build(&t, LcaStrategy::default(), &Meter::disabled());
        let q = pmc_mincut::CutQuery::build(&g, &t, &lca, 0.4, &Meter::disabled());
        let m = Meter::disabled();
        for e in 1..g.n() as u32 {
            for f in e + 1..g.n() as u32 {
                let side_vs = q.cut_side(e, f);
                let mut side = vec![false; g.n()];
                for &v in &side_vs {
                    side[v as usize] = true;
                }
                prop_assert_eq!(q.cut(e, f, &m), cut_of_partition(&g, &side));
            }
        }
    }

    /// The filtered 2-respecting solver equals the all-pairs oracle.
    #[test]
    fn filtered_solver_equals_naive(
        n in 4usize..18,
        extra in 0usize..35,
        seed in 0u64..1000,
        strategy in prop_oneof![Just(PathStrategy::HeavyPath), Just(PathStrategy::Bough)],
    ) {
        let g = graph_from(n, extra, 9, seed);
        let t = spanning_tree(&g, 0);
        let params = TwoRespectParams { strategy, ..TwoRespectParams::default() };
        let fast = two_respecting_mincut(&g, &t, &params, &Meter::disabled());
        let naive = naive_two_respecting(&g, &t, 0.4, &Meter::disabled());
        prop_assert_eq!(fast.cut.value, naive.cut.value);
    }

    /// Single-path cut matrices satisfy the paper's partial-Monge
    /// (supermodular) inequality in every off-diagonal 2x2 window.
    #[test]
    fn single_path_matrices_supermodular(
        n in 6usize..16,
        extra in 0usize..25,
        seed in 0u64..500,
    ) {
        let g = graph_from(n, extra, 7, seed);
        let t = spanning_tree(&g, 0);
        let lca = LcaEngine::build(&t, LcaStrategy::default(), &Meter::disabled());
        let q = pmc_mincut::CutQuery::build(&g, &t, &lca, 0.5, &Meter::disabled());
        let m = Meter::disabled();
        let d = PathDecomposition::build(&t, PathStrategy::HeavyPath, &m);
        for p in d.paths() {
            let l = p.len();
            for i in 0..l.saturating_sub(1) {
                for j in i + 2..l.saturating_sub(1) {
                    let a = q.cut(p[i], p[j], &m) as i128 + q.cut(p[i + 1], p[j + 1], &m) as i128;
                    let b = q.cut(p[i], p[j + 1], &m) as i128 + q.cut(p[i + 1], p[j], &m) as i128;
                    prop_assert!(a >= b);
                }
            }
        }
    }

    /// k-certificates never increase cuts and preserve small cuts
    /// exactly (random partitions instead of exhaustive).
    #[test]
    fn certificates_preserve_small_cuts(
        n in 4usize..14,
        extra in 0usize..25,
        k in 1u64..8,
        seed in 0u64..500,
    ) {
        let g = graph_from(n, extra, 4, seed);
        let h = pmc_sparsify::k_certificate(&g, k, &Meter::disabled());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        use rand::Rng;
        for _ in 0..20 {
            let side: Vec<bool> = (0..g.n()).map(|_| rng.random::<bool>()).collect();
            if side.iter().all(|&b| b) || side.iter().all(|&b| !b) {
                continue;
            }
            let cg = cut_of_partition(&g, &side);
            let ch = cut_of_partition(&h, &side);
            prop_assert!(ch <= cg);
            if cg <= k {
                prop_assert_eq!(ch, cg);
            } else {
                prop_assert!(ch >= k);
            }
        }
    }

    /// Interest arms cover the brute-force interesting set — under both
    /// arm-tracing strategies.
    #[test]
    fn interest_arms_cover(
        n in 5usize..16,
        extra in 2usize..30,
        seed in 0u64..500,
    ) {
        let g = graph_from(n, extra, 9, seed);
        let t = spanning_tree(&g, 0);
        let lca = LcaEngine::build(&t, LcaStrategy::default(), &Meter::disabled());
        let q = pmc_mincut::CutQuery::build(&g, &t, &lca, 0.5, &Meter::disabled());
        let m = Meter::disabled();
        for strategy in [InterestStrategy::HeavyPath, InterestStrategy::Centroid] {
            let is = pmc_mincut::InterestSearch::build(&q, &lca, strategy, &m);
            for e in 1..g.n() as u32 {
                let arms = is.arms(e, &m);
                let mut cover = std::collections::HashSet::new();
                for mut v in [arms.de, arms.ce] {
                    loop {
                        cover.insert(v);
                        if v == t.root() {
                            break;
                        }
                        v = t.parent(v);
                    }
                }
                for f in is.brute_interesting_set(e, &m) {
                    prop_assert!(
                        cover.contains(&f),
                        "{:?}: edge {} not covered for e={}", strategy, f, e
                    );
                }
            }
        }
    }

    /// Claim 4.8 as a property: the interesting set `Π(e)` is a single
    /// tree path through `e` — connected, and no vertex of `Π(e) ∪ {e}`
    /// is incident to more than two of its edges — and both arm-tracing
    /// strategies locate exactly the same (unique) arm endpoints.
    #[test]
    fn interesting_set_is_single_path(
        n in 5usize..16,
        extra in 2usize..32,
        max_w in 1u64..10,
        seed in 0u64..500,
    ) {
        let g = graph_from(n, extra, max_w, seed);
        let t = spanning_tree(&g, 0);
        let lca = LcaEngine::build(&t, LcaStrategy::default(), &Meter::disabled());
        let q = pmc_mincut::CutQuery::build(&g, &t, &lca, 0.5, &Meter::disabled());
        let m = Meter::disabled();
        let heavy =
            pmc_mincut::InterestSearch::build(&q, &lca, InterestStrategy::HeavyPath, &m);
        let centroid =
            pmc_mincut::InterestSearch::build(&q, &lca, InterestStrategy::Centroid, &m);
        for e in 1..g.n() as u32 {
            let set = heavy.brute_interesting_set(e, &m);
            let path: std::collections::HashSet<u32> =
                set.iter().copied().chain([e]).collect();
            // Connectivity: every edge of Π(e) reaches e through
            // interesting edges only.
            for &f in &set {
                let l = lca.lca(e, f);
                for mut cur in [f, e] {
                    while cur != l {
                        prop_assert!(
                            path.contains(&cur),
                            "e={}: gap at {} on the way to lca", e, cur
                        );
                        cur = t.parent(cur);
                    }
                }
            }
            // Branchlessness: a path's edge set touches each vertex at
            // most twice. Edge `v` is incident to vertices v and
            // parent(v).
            let mut incident = std::collections::HashMap::new();
            for &v in &path {
                *incident.entry(v).or_insert(0u32) += 1;
                *incident.entry(t.parent(v)).or_insert(0u32) += 1;
            }
            for (v, deg) in incident {
                prop_assert!(deg <= 2, "e={}: Π(e)∪{{e}} branches at vertex {}", e, v);
            }
            // Both strategies find the same, unique endpoints.
            let ah = heavy.arms(e, &m);
            let ac = centroid.arms(e, &m);
            prop_assert_eq!(ah, ac, "strategies disagree at e={}", e);
            // Tightness: de is the deepest interesting strict
            // descendant of e (or e itself), ce the deepest interesting
            // edge incomparable with e (or e itself).
            let deepest = |pred: &dyn Fn(u32) -> bool| -> Option<u32> {
                set.iter().copied().filter(|&f| pred(f)).max_by_key(|&f| t.depth(f))
            };
            let de = deepest(&|f| f != e && t.is_ancestor(e, f)).unwrap_or(e);
            let ce = deepest(&|f| !t.is_ancestor(e, f) && !t.is_ancestor(f, e)).unwrap_or(e);
            prop_assert_eq!(ah.de, de, "de not tight at e={}", e);
            prop_assert_eq!(ah.ce, ce, "ce not tight at e={}", e);
        }
    }

    /// Karger–Stein never undershoots and the pipeline equals it on its
    /// high-confidence settings.
    #[test]
    fn karger_stein_upper_bounds(
        n in 5usize..14,
        extra in 0usize..25,
        seed in 0u64..300,
    ) {
        let g = graph_from(n, extra, 6, seed);
        let expect = stoer_wagner_mincut(&g).value;
        let mut rng = StdRng::seed_from_u64(seed);
        let ks = karger_stein_mincut(&g, 2, &mut rng);
        prop_assert!(ks.value >= expect);
    }

    /// Graph text format round-trips arbitrary graphs.
    #[test]
    fn io_round_trip(
        n in 2usize..20,
        extra in 0usize..40,
        max_w in 1u64..1000,
        seed in 0u64..1000,
    ) {
        let g = graph_from(n, extra, max_w, seed);
        let text = pmc_graph::io::write_graph(&g);
        let g2 = pmc_graph::io::parse_graph(&text).unwrap();
        prop_assert_eq!(g.edges(), g2.edges());
        prop_assert_eq!(g.n(), g2.n());
    }

    /// Parallel prefix sums and radix sort match std equivalents.
    #[test]
    fn scan_and_sort_match_std(values in prop::collection::vec(0u64..1_000_000, 0..2000)) {
        let scanned = pmc_parallel::scan::exclusive_scan(&values);
        let mut acc = 0u64;
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(scanned[i], acc);
            acc += v;
        }
        prop_assert_eq!(scanned[values.len()], acc);

        let mut sorted = values.clone();
        pmc_parallel::sort::radix_sort(&mut sorted);
        let mut expect = values.clone();
        expect.sort_unstable();
        prop_assert_eq!(sorted, expect);
    }

    /// The stable LSD radix sort (the symmetric join's primitive) is
    /// bit-identical to the stable std sort under forced 1/2/4-thread
    /// pools — lengths straddle the sequential cutoff so both the
    /// fallback and the parallel pass loop are exercised.
    #[test]
    fn radix_lsd_matches_stable_sort_across_pools(
        len in 0usize..12_000,
        mask_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        // Narrow masks force heavy key collisions (stability stress);
        // the full mask exercises all radix passes.
        let mask = [0x7u64, 0xff, u64::MAX][mask_idx];
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa5a5);
        use rand::Rng;
        let keys: Vec<(u64, u64)> =
            (0..len as u64).map(|i| (rng.random_range(0..u64::MAX) & mask, i)).collect();
        let mut expect = keys.clone();
        expect.sort_by_key(|&(k, _)| k);
        for threads in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let got = pool.install(|| {
                let mut v = keys.clone();
                pmc_parallel::sort::radix_sort_lsd(&mut v, |&(k, _)| k);
                v
            });
            prop_assert_eq!(&got, &expect);
        }
    }

    /// The two-pass composite radix sort reproduces the comparison
    /// sort's (hi, lo) order at every pool width — the property the
    /// symmetric join's key packing rests on.
    #[test]
    fn composite_radix_matches_comparison_across_pools(
        len in 0usize..10_000,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5a5a);
        use rand::Rng;
        let items: Vec<(u64, u64, u64)> = (0..len as u64)
            .map(|i| (rng.random_range(0..64), rng.random_range(0..u64::MAX), i))
            .collect();
        let mut expect = items.clone();
        expect.sort_by_key(|&(h, l, _)| (h, l));
        for threads in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let got = pool.install(|| {
                let mut v = items.clone();
                pmc_parallel::sort::radix_sort_by_key2(&mut v, |&(h, _, _)| h, |&(_, l, _)| l);
                v
            });
            prop_assert_eq!(&got, &expect);
        }
    }

    /// Capped binomial sampling respects its bounds.
    #[test]
    fn binomial_capped_bounds(
        n in 0u64..1_000_000,
        p in 0.0f64..1.0,
        cap in 0u64..500,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = pmc_sparsify::binomial_capped(n, p, cap, &mut rng);
        prop_assert!(x <= cap);
        prop_assert!(x <= n);
    }

    /// SMAWK, divide-and-conquer, and a brute row scan agree on values
    /// AND leftmost argmins over random submodular Monge matrices, and
    /// SMAWK's metered distinct-entry count stays within its linear
    /// budget — undercutting D&C whenever D&C does nontrivial work
    /// (tiny instances where D&C's count sits at its additive floor are
    /// exempt; the calibrated threshold is `dc >= 3(r+c)`).
    #[test]
    fn smawk_matches_dc_and_brute_on_monge(
        rows in 1usize..40,
        cols in 1usize..40,
        density in 0u64..5,
        span in 1u64..1000,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51AA);
        use rand::Rng;
        // Submodular Monge construction: row/col offsets plus the
        // negated 2-D prefix sum of a non-negative grid — the mixed
        // second difference is `-d[i+1][j+1] <= 0`. Small `density`
        // produces plenty of ties, stressing the leftmost-argmin rule.
        let a: Vec<u64> = (0..rows).map(|_| rng.random_range(0..span)).collect();
        let b: Vec<u64> = (0..cols).map(|_| rng.random_range(0..span)).collect();
        let mut p = vec![vec![0u64; cols + 1]; rows + 1];
        for i in 1..=rows {
            for j in 1..=cols {
                let d = rng.random_range(0..=density);
                p[i][j] = p[i - 1][j] + p[i][j - 1] + d - p[i - 1][j - 1];
            }
        }
        let big = span + p[rows][cols];
        let f = |i: usize, j: usize| big + a[i] + b[j] - p[i + 1][j + 1];
        prop_assert!(pmc_monge::is_submodular(rows, cols, f));
        let (ms, md) = (Meter::enabled(), Meter::enabled());
        let sm = pmc_monge::smawk_row_minima(rows, cols, f, &ms);
        let dc = pmc_monge::dc_row_minima(rows, cols, f, &md);
        for i in 0..rows {
            let (mut bj, mut bv) = (0usize, f(i, 0));
            for j in 1..cols {
                let v = f(i, j);
                if v < bv {
                    bv = v;
                    bj = j;
                }
            }
            prop_assert_eq!(sm[i].value, bv, "smawk value, row {}", i);
            prop_assert_eq!(sm[i].col, bj, "smawk leftmost argmin, row {}", i);
            prop_assert_eq!(dc[i].value, bv, "dc value, row {}", i);
            prop_assert_eq!(dc[i].col, bj, "dc leftmost argmin, row {}", i);
        }
        let (se, de) = (ms.get(CostKind::MongeEntry), md.get(CostKind::MongeEntry));
        let budget = 4 * (rows + cols) as u64 + 8;
        prop_assert!(se <= budget, "smawk evals {} exceed linear budget {}", se, budget);
        if de >= 3 * (rows + cols) as u64 {
            prop_assert!(se <= de, "smawk {} > dc {} at {}x{}", se, de, rows, cols);
        }
    }

    /// Sparse-table (Euler tour) LCA equals binary lifting on random
    /// rooted trees under forced 1/2/4-thread pools, with the sparse
    /// path charging exactly one [`CostKind::LcaStep`] per query.
    #[test]
    fn sparse_and_lifting_lca_agree_across_pools(
        n in 2u32..400,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1CA);
        use rand::Rng;
        let parent: Vec<u32> =
            (0..n).map(|v| if v == 0 { 0 } else { rng.random_range(0..v) }).collect();
        let t = RootedTree::from_parents(0, &parent);
        let pairs: Vec<(u32, u32)> = (0..64)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        for threads in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let steps = pool.install(|| {
                let lifting = LcaEngine::build(&t, LcaStrategy::Lifting, &Meter::disabled());
                let sparse =
                    LcaEngine::build(&t, LcaStrategy::SparseTable, &Meter::disabled());
                let meter = Meter::enabled();
                for &(x, y) in &pairs {
                    let l = lifting.lca(x, y);
                    assert_eq!(sparse.lca(x, y), l, "lca({x},{y}) at {threads} threads");
                    assert_eq!(
                        pmc_tree::LcaOracle::lca_metered(&sparse, x, y, &meter),
                        l
                    );
                    assert_eq!(sparse.distance(x, y), lifting.distance(x, y));
                }
                meter.get(CostKind::LcaStep)
            });
            prop_assert_eq!(steps, pairs.len() as u64, "O(1): one step per sparse query");
        }
    }
}
