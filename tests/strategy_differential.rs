//! Differential tests for the pluggable interest-search strategies.
//!
//! The arm endpoints of `Π(e)` are uniquely determined (the deepest
//! vertex of each arm), so heavy-path descent and centroid descent must
//! agree *exactly* — with each other, and with the brute-force
//! interesting set — on every tree edge of every workload. On top of
//! the structural agreement, the full pipeline must match Stoer–Wagner
//! under both strategies: swapping the default descent can never change
//! an answer, only the query count.

use parallel_mincut::prelude::*;
use pmc_mincut::{CutQuery, InterestSearch};
use pmc_tree::RootedTree;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BOTH: [InterestStrategy; 2] = [InterestStrategy::HeavyPath, InterestStrategy::Centroid];

fn spanning_tree(g: &Graph, root: u32) -> std::sync::Arc<RootedTree> {
    let forest = pmc_parallel::spanning_forest::spanning_forest(g, &Meter::disabled());
    let edges: Vec<(u32, u32)> =
        forest.iter().map(|&i| (g.edge(i as usize).u, g.edge(i as usize).v)).collect();
    std::sync::Arc::new(RootedTree::from_edge_list(g.n(), &edges, root))
}

/// The differential workloads the issue pins down: ring-of-cliques,
/// non-sparse random, near-uniform weights — plus the fishbone
/// adversary for good measure.
fn workloads() -> Vec<(String, Graph)> {
    let mut out = Vec::new();
    out.push(("ring_of_cliques".into(), pmc_graph::generators::ring_of_cliques(6, 5, 3, 2)));
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for n in [24usize, 40, 56] {
        // Non-sparse: m ≈ n^1.5, near-uniform weights in {1, 2, 3}.
        let m = ((n as f64).powf(1.5).ceil() as usize).saturating_sub(n - 1);
        out.push((
            format!("non_sparse_{n}"),
            pmc_graph::generators::gnm_connected(n, m, 3, &mut rng),
        ));
    }
    let (fish, _, _) = pmc_graph::generators::fishbone(5, 8);
    out.push(("fishbone".into(), fish));
    out
}

/// For every tree edge: heavy-path `arms()`, centroid `arms()`, and the
/// brute-force interesting set must tell one consistent story.
#[test]
fn arms_agree_with_each_other_and_with_brute_force() {
    for (name, g) in workloads() {
        let t = spanning_tree(&g, 0);
        let lca = LcaEngine::build(&t, LcaStrategy::default(), &Meter::disabled());
        let q = CutQuery::build(&g, &t, &lca, 0.4, &Meter::disabled());
        let m = Meter::disabled();
        let heavy = InterestSearch::build(&q, &lca, InterestStrategy::HeavyPath, &m);
        let centroid = InterestSearch::build(&q, &lca, InterestStrategy::Centroid, &m);
        for e in (0..g.n() as u32).filter(|&v| v != t.root()) {
            let ah = heavy.arms(e, &m);
            let ac = centroid.arms(e, &m);
            assert_eq!(ah, ac, "{name}: strategies disagree at e={e}");
            // Brute-force agreement: the arm endpoints are exactly the
            // deepest interesting edges of each region (or e itself).
            let set = heavy.brute_interesting_set(e, &m);
            let deepest = |pred: &dyn Fn(u32) -> bool| -> Option<u32> {
                set.iter().copied().filter(|&f| pred(f)).max_by_key(|&f| t.depth(f))
            };
            let de = deepest(&|f| f != e && t.is_ancestor(e, f)).unwrap_or(e);
            let ce = deepest(&|f| !t.is_ancestor(e, f) && !t.is_ancestor(f, e)).unwrap_or(e);
            assert_eq!(ah.de, de, "{name}: de not the deepest interesting descendant, e={e}");
            assert_eq!(ah.ce, ce, "{name}: ce not the deepest incomparable edge, e={e}");
            // And every interesting edge lies on a root-path of an arm
            // endpoint (the guarantee the tuple generation consumes).
            for &f in &set {
                let covered = t.is_ancestor(f, ah.de) || t.is_ancestor(f, ah.ce);
                assert!(covered, "{name}: interesting edge {f} outside both arms of e={e}");
            }
        }
    }
}

/// `exact_mincut` equals Stoer–Wagner under both strategies on every
/// differential workload.
#[test]
fn exact_pipeline_matches_stoer_wagner_under_both_strategies() {
    for (name, g) in workloads() {
        let expect = stoer_wagner_mincut(&g).value;
        for strategy in BOTH {
            let params = ExactParams {
                interest_strategy: strategy,
                seed: 0xABCD,
                ..ExactParams::default()
            };
            let got = exact_mincut(&g, &params);
            assert_eq!(
                got.cut.value, expect,
                "{name}: exact_mincut under {strategy:?} disagrees with Stoer–Wagner"
            );
            // The reported side must realize the reported value.
            let mut side = vec![false; g.n()];
            for &v in &got.cut.side {
                side[v as usize] = true;
            }
            assert_eq!(cut_of_partition(&g, &side), got.cut.value, "{name} {strategy:?} side");
        }
    }
}

/// The O(1)-query substrate acceptance check: every `LcaStrategy` ×
/// `RowMinimaStrategy` combination returns bit-identical cut values AND
/// witness pairs, under forced 1/2/4-thread pools. LCAs are unique and
/// both row-minima engines pin the leftmost argmin, so swapping either
/// substrate (or the pool width) must not move a single bit of output.
#[test]
fn substrate_strategies_are_bit_identical_across_pools() {
    let mut rng = StdRng::seed_from_u64(0x5AB5);
    for trial in 0..4u32 {
        let n = 24 + 8 * trial as usize;
        let g = pmc_graph::generators::gnm_connected(n, 3 * n, 5, &mut rng);
        let t = spanning_tree(&g, 0);
        let m = Meter::disabled();
        let mut reference: Option<(u64, (u32, u32))> = None;
        for lca_strategy in [LcaStrategy::Lifting, LcaStrategy::SparseTable] {
            for monge_algo in [RowMinimaStrategy::DivideConquer, RowMinimaStrategy::Smawk] {
                for threads in [1usize, 2, 4] {
                    let pool = rayon::ThreadPoolBuilder::new()
                        .num_threads(threads)
                        .build()
                        .expect("pool");
                    let out = pool.install(|| {
                        let params = TwoRespectParams {
                            lca_strategy,
                            monge_algo,
                            ..TwoRespectParams::default()
                        };
                        two_respecting_mincut(&g, &t, &params, &m)
                    });
                    let label = format!(
                        "trial {trial} {:?}/{:?} @ {threads} threads",
                        lca_strategy, monge_algo
                    );
                    match reference {
                        None => reference = Some((out.cut.value, out.pair)),
                        Some((v, pair)) => {
                            assert_eq!(out.cut.value, v, "{label}: cut value moved");
                            assert_eq!(out.pair, pair, "{label}: witness pair moved");
                        }
                    }
                }
            }
        }
    }
}

/// The naive 2-respecting oracle agrees with the filtered solver under
/// both strategies on randomized trees (different roots shift which
/// configurations the arms hit).
#[test]
fn two_respecting_matches_oracle_under_both_strategies() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for trial in 0..6u32 {
        let n = 18 + 4 * trial as usize;
        let g = pmc_graph::generators::gnm_connected(n, 4 * n, 3, &mut rng);
        let t = spanning_tree(&g, trial % n as u32);
        let m = Meter::disabled();
        let reference = naive_two_respecting(&g, &t, 0.4, &m).cut.value;
        for strategy in BOTH {
            let params =
                TwoRespectParams { interest_strategy: strategy, ..TwoRespectParams::default() };
            let out = two_respecting_mincut(&g, &t, &params, &m);
            assert_eq!(out.cut.value, reference, "trial {trial} {strategy:?}");
        }
    }
}
