//! Bit-identity of the fused batch kernels (DESIGN.md §13): the
//! grouped + fused-range-sweep `cut_batch` path and the batched-LCA
//! build pass must return exactly the per-query answers — across
//! 1/2/4-thread pools, both [`LcaStrategy`] substrates, and
//! arbitrarily recycled scratch workspaces. Reuse and fusion are
//! optimizations, never behavioral inputs.

use parallel_mincut::prelude::*;
use pmc_bench::workloads::graph_with_tree;
use pmc_mincut::engine::TreeContext;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn with_pool<R>(threads: usize, op: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap().install(op)
}

fn context_for<'g>(
    g: &'g Graph,
    tree_edges: &[(u32, u32)],
    strategy: LcaStrategy,
) -> TreeContext<'g> {
    let params = TwoRespectParams { lca_strategy: strategy, ..TwoRespectParams::default() };
    TreeContext::from_edges(g, tree_edges, 0, &params, &Meter::disabled())
}

/// Request mix exercising every grouping case: hot duplicates, `e == f`
/// degenerates, nested and disjoint pairs, above the grouping cutoff.
fn request_mix(n: usize, rng: &mut StdRng) -> Vec<(u32, u32)> {
    let hot: Vec<(u32, u32)> = (0..40)
        .map(|_| (rng.random_range(1..n as u32), rng.random_range(1..n as u32)))
        .collect();
    let mut pairs: Vec<(u32, u32)> =
        (0..900).map(|_| hot[rng.random_range(0..hot.len())]).collect();
    pairs.extend((1..n as u32).step_by(7).map(|e| (e, e)));
    pairs
}

#[test]
fn fused_cut_batch_is_bit_identical_across_pools_and_strategies() {
    let mut rng = StdRng::seed_from_u64(501);
    let n = 220;
    let (g, tree_edges) = graph_with_tree(n, 0.5, 501);
    let pairs = request_mix(n, &mut rng);
    let es: Vec<u32> = (0..500).map(|_| rng.random_range(1..n as u32)).collect();

    // Baseline: per-query probes, 1 thread, lifting LCA.
    let m = Meter::disabled();
    let (expect_cut, expect_cov) = with_pool(1, || {
        let ctx = context_for(&g, &tree_edges, LcaStrategy::Lifting);
        let cuts: Vec<u64> = pairs.iter().map(|&(e, f)| ctx.cut(e, f, &m)).collect();
        let covs: Vec<u64> = es.iter().map(|&e| ctx.cov(e)).collect();
        (cuts, covs)
    });

    for threads in [1usize, 2, 4] {
        for strategy in [LcaStrategy::Lifting, LcaStrategy::SparseTable] {
            let (got_cut, got_cov, again) = with_pool(threads, || {
                let ctx = context_for(&g, &tree_edges, strategy);
                let mut cut_out = Vec::new();
                let mut cov_out = Vec::new();
                ctx.cut_batch_into(&pairs, &mut cut_out, &m);
                ctx.cov_batch_into(&es, &mut cov_out);
                // Second round on the same (now warm) context pool.
                let mut second = Vec::new();
                ctx.cut_batch_into(&pairs, &mut second, &m);
                (cut_out, cov_out, second)
            });
            assert_eq!(got_cut, expect_cut, "{threads} threads / {strategy:?}");
            assert_eq!(got_cov, expect_cov, "{threads} threads / {strategy:?}");
            assert_eq!(again, expect_cut, "{threads} threads / {strategy:?}: warm round");
        }
    }
}

/// One recycled workspace serving 100 consecutive batches of varying
/// shapes returns exactly what a fresh workspace returns for each.
#[test]
fn one_scratch_serves_100_consecutive_batches() {
    let mut rng = StdRng::seed_from_u64(502);
    let n = 150;
    let (g, tree_edges) = graph_with_tree(n, 0.4, 502);
    let ctx = context_for(&g, &tree_edges, LcaStrategy::SparseTable);
    let q = ctx.cut_query();
    let m = Meter::disabled();

    let mut scratch = Scratch::new();
    let mut out = Vec::new();
    for round in 0..100usize {
        // Vary the batch size across the grouping cutoff (64) so the
        // workspace alternates between the direct and fused paths.
        let len = [3, 200, 70, 1, 500, 64, 63][round % 7];
        let pairs: Vec<(u32, u32)> = (0..len)
            .map(|_| (rng.random_range(1..n as u32), rng.random_range(1..n as u32)))
            .collect();
        q.cut_batch_with(&pairs, &mut scratch, &mut out, &m);
        let mut fresh_out = Vec::new();
        q.cut_batch_with(&pairs, &mut Scratch::new(), &mut fresh_out, &m);
        assert_eq!(out, fresh_out, "round {round} (len {len})");
    }
}

/// 100 consecutive solves through one context (one workspace pool)
/// return the identical outcome — the serving-layer reuse contract
/// extended to the scratch-arena refactor.
#[test]
fn one_context_pool_serves_100_consecutive_solves() {
    let n = 90;
    let (g, tree_edges) = graph_with_tree(n, 0.5, 503);
    let ctx = context_for(&g, &tree_edges, LcaStrategy::SparseTable);
    let m = Meter::disabled();
    let first = ctx.solve(&m);
    for round in 0..99 {
        let again = ctx.solve(&m);
        assert_eq!(again.cut.value, first.cut.value, "round {round}");
        assert_eq!(again.pair, first.pair, "round {round}");
        assert_eq!(again.cut.side, first.cut.side, "round {round}");
    }
}
