//! The zero-allocation gate as an integration test: with the counting
//! allocator installed for this whole test binary, the steady-state
//! batched query path (`cut_batch_into` / `cov_batch_into` on a warm
//! `TreeContext`) must perform exactly zero heap allocations
//! (DESIGN.md §13).
//!
//! One `#[test]` only: the gauge is process-global, so sibling tests
//! running on harness threads would pollute the counters. The bench-bin
//! twin of this gate is `pmc-bench --bin allocs --smoke`.

use parallel_mincut::prelude::*;
use pmc_bench::alloc_meter::{self, CountingAlloc};
use pmc_mincut::engine::TreeContext;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_batch_queries_allocate_nothing() {
    let n = 400usize;
    let (graph, tree_edges) = pmc_bench::workloads::graph_with_tree(n, 0.5, 31);
    let ctx = TreeContext::from_edges(
        &graph,
        &tree_edges,
        0,
        &TwoRespectParams::default(),
        &Meter::disabled(),
    );

    let mut rng = StdRng::seed_from_u64(9);
    // Above the grouping cutoff, with duplicates: the full fused path.
    let hot: Vec<(u32, u32)> = (0..64)
        .map(|_| (rng.random_range(1..n as u32), rng.random_range(1..n as u32)))
        .collect();
    let pairs: Vec<(u32, u32)> =
        (0..2_000).map(|_| hot[rng.random_range(0..hot.len())]).collect();
    let es: Vec<u32> = (0..2_000).map(|_| rng.random_range(1..n as u32)).collect();
    let meter = Meter::disabled();

    // Warm-up sizes every scratch buffer (and must visibly allocate —
    // otherwise the allocator isn't counting and the gate is vacuous).
    let mut cut_out: Vec<u64> = Vec::new();
    let mut cov_out: Vec<u64> = Vec::new();
    let (_, warm) = alloc_meter::measure(|| {
        ctx.cut_batch_into(&pairs, &mut cut_out, &meter);
        ctx.cov_batch_into(&es, &mut cov_out);
    });
    assert!(warm.allocs > 0, "counting allocator not engaged");
    let expect_cut = cut_out.clone();
    let expect_cov = cov_out.clone();

    // Steady state: repeated batches reuse every warm buffer.
    for round in 0..5 {
        let (_, cut_gauge) =
            alloc_meter::measure(|| ctx.cut_batch_into(&pairs, &mut cut_out, &meter));
        let (_, cov_gauge) = alloc_meter::measure(|| ctx.cov_batch_into(&es, &mut cov_out));
        assert_eq!(
            (cut_gauge.allocs, cut_gauge.peak_growth_bytes),
            (0, 0),
            "round {round}: cut_batch_into allocated"
        );
        assert_eq!(
            (cov_gauge.allocs, cov_gauge.peak_growth_bytes),
            (0, 0),
            "round {round}: cov_batch_into allocated"
        );
        assert_eq!(cut_out, expect_cut, "round {round}: values drifted");
        assert_eq!(cov_out, expect_cov, "round {round}: values drifted");
    }

    // The values the zero-alloc path produced are the real ones.
    for (i, &(e, f)) in pairs.iter().enumerate().step_by(97) {
        assert_eq!(expect_cut[i], ctx.cut(e, f, &meter), "pair ({e},{f})");
    }
}
