//! Parallel primitives and work-span accounting.
//!
//! The paper analyses algorithms in the work-depth (work-span) model
//! (§2.1): *work* is the total number of operations, *depth* the longest
//! chain of dependent operations; Brent's theorem turns `(W, D)` into
//! `O(W/p + D)` running time on `p` processors. Rayon's work-stealing
//! scheduler realizes Brent's bound, but a laptop cannot *measure* PRAM
//! work or depth directly — so this crate provides:
//!
//! * [`meter`]: cheap atomic operation counters ([`Meter`]) and per-phase
//!   critical-path gauges that the algorithm crates use to report
//!   empirical work/depth, letting the benches regenerate the paper's
//!   Table 1 from measured counts;
//! * [`scan`]: parallel prefix sums;
//! * [`merge`]: parallel merge / merge sort / stream compaction;
//! * [`sort`]: a parallel LSD radix sort (the paper's sorting primitive,
//!   [Ble96]);
//! * [`scratch`]: reusable scratch workspaces ([`Scratch`],
//!   [`ScratchPool`], [`with_scratch`]) behind the allocation-free
//!   steady-state query path;
//! * [`union_find`]: sequential and lock-free concurrent union-find;
//! * [`spanning_forest`]: parallel spanning forests (the Halperin–Zwick
//!   substitute used by Theorem 2.6's certificates);
//! * [`connectivity`]: Shiloach–Vishkin style label-propagation
//!   connected components;
//! * [`mst`]: parallel Borůvka and sequential Kruskal minimum spanning
//!   forests with caller-supplied keys (the packing step of §4.2 needs
//!   MSTs with respect to dynamic loads).

pub mod connectivity;
pub mod merge;
pub mod meter;
pub mod mst;
pub mod scan;
pub mod scratch;
pub mod sort;
pub mod spanning_forest;
pub mod union_find;

pub use meter::{CostKind, CostReport, Meter};
pub use scratch::{with_scratch, Scratch, ScratchPool};
pub use sort::SortScratch;
pub use union_find::{ConcurrentUnionFind, UnionFind};
