//! Parallel LSD radix sort.
//!
//! The paper invokes "a parallel radix sort algorithm [Ble96]" whenever
//! points must be ordered by postorder index (Lemmas 4.24/4.25, A.1).
//! Keys here are `u64` but callers sort postorder indices bounded by
//! `n`, so the digit loop terminates after the significant bytes.
//!
//! The implementation is the textbook counting-sort-per-byte with
//! per-chunk histograms combined by a scan — `O(n)` work per digit and
//! logarithmic depth per digit modulo chunk granularity. A pair form
//! [`radix_sort_by_key`] carries a payload.
//!
//! Every entry point has a `_with` twin taking a [`SortScratch`]: the
//! double buffer, per-chunk histograms, and offset table live in the
//! scratch and are recycled call-to-call, so steady-state sorts of a
//! stable size perform no heap allocation (DESIGN.md §13).

// lint: hotpath-module
use rayon::prelude::*;

const RADIX_BITS: u32 = 8;
const BUCKETS: usize = 1 << RADIX_BITS;
const SEQ_CUTOFF: usize = 1 << 13;

/// Reusable workspace of the radix passes: the scatter double-buffer,
/// one histogram per chunk, and the chunk-major exclusive offsets.
/// `resize`d (never reallocated once warm) by [`radix_passes`].
#[derive(Debug)]
pub struct SortScratch<T> {
    buf: Vec<T>,
    histograms: Vec<[u32; BUCKETS]>,
    offsets: Vec<u64>,
}

impl<T> Default for SortScratch<T> {
    fn default() -> Self {
        // HOTPATH: warmup — constructing a workspace is the one-time
        // cost its reuse amortizes away.
        SortScratch { buf: Vec::new(), histograms: Vec::new(), offsets: Vec::new() }
    }
}

impl<T> SortScratch<T> {
    pub fn new() -> Self {
        SortScratch::default()
    }
}

/// Sort `items` ascending by `key(item)`.
///
/// Equal keys land in input order on the radix path but the small-`n`
/// fallback is `sort_unstable_by_key`; use [`radix_sort_lsd`] when
/// stability must hold at every size (e.g. as a pass of a multi-word
/// key sort).
pub fn radix_sort_by_key<T, F>(items: &mut Vec<T>, key: F)
where
    T: Copy + Send + Sync + Default,
    F: Fn(&T) -> u64 + Sync + Send,
{
    radix_sort_by_key_with(items, key, &mut SortScratch::new());
}

/// [`radix_sort_by_key`] with a caller-owned workspace.
pub fn radix_sort_by_key_with<T, F>(items: &mut Vec<T>, key: F, scratch: &mut SortScratch<T>)
where
    T: Copy + Send + Sync + Default,
    F: Fn(&T) -> u64 + Sync + Send,
{
    dispatch(items, &key, |v| v.sort_unstable_by_key(|it| key(it)), scratch);
}

/// Stable parallel LSD radix sort: equal keys keep their input order at
/// *every* size (the small-`n` fallback is the stable `sort_by_key`).
///
/// This is the primitive the engine's symmetric join sorts with, and —
/// because LSD passes compose — the building block of
/// [`radix_sort_by_key2`] for keys wider than one word.
pub fn radix_sort_lsd<T, F>(items: &mut Vec<T>, key: F)
where
    T: Copy + Send + Sync + Default,
    F: Fn(&T) -> u64 + Sync + Send,
{
    radix_sort_lsd_with(items, key, &mut SortScratch::new());
}

/// [`radix_sort_lsd`] with a caller-owned workspace. Above the cutoff
/// the radix passes are allocation-free once the workspace is warm;
/// below it the stable std fallback still takes its own temp buffer.
pub fn radix_sort_lsd_with<T, F>(items: &mut Vec<T>, key: F, scratch: &mut SortScratch<T>)
where
    T: Copy + Send + Sync + Default,
    F: Fn(&T) -> u64 + Sync + Send,
{
    dispatch(items, &key, |v| v.sort_by_key(|it| key(it)), scratch);
}

/// The single size dispatch behind every entry point: trivial inputs
/// return as-is, inputs below [`SEQ_CUTOFF`] run the supplied std
/// fallback (stable or unstable — the one semantic difference between
/// the entry points), larger inputs take the parallel pass loop. One
/// guard, one boundary, tested at `SEQ_CUTOFF ± 1` below.
fn dispatch<T, F, S>(items: &mut Vec<T>, key: &F, seq_fallback: S, scratch: &mut SortScratch<T>)
where
    T: Copy + Send + Sync + Default,
    F: Fn(&T) -> u64 + Sync + Send,
    S: FnOnce(&mut Vec<T>),
{
    let n = items.len();
    if n <= 1 {
        return;
    }
    if n < SEQ_CUTOFF {
        seq_fallback(items);
        return;
    }
    radix_passes(items, key, scratch);
}

/// Sort ascending by the composite key `(hi(item), lo(item))` — a
/// 128-bit key as two stable LSD word passes: sorting by `lo` first and
/// then stably by `hi` yields the lexicographic `(hi, lo)` order.
pub fn radix_sort_by_key2<T, FH, FL>(items: &mut Vec<T>, hi: FH, lo: FL)
where
    T: Copy + Send + Sync + Default,
    FH: Fn(&T) -> u64 + Sync + Send,
    FL: Fn(&T) -> u64 + Sync + Send,
{
    radix_sort_by_key2_with(items, hi, lo, &mut SortScratch::new());
}

/// [`radix_sort_by_key2`] with a caller-owned workspace shared by both
/// passes.
pub fn radix_sort_by_key2_with<T, FH, FL>(
    items: &mut Vec<T>,
    hi: FH,
    lo: FL,
    scratch: &mut SortScratch<T>,
) where
    T: Copy + Send + Sync + Default,
    FH: Fn(&T) -> u64 + Sync + Send,
    FL: Fn(&T) -> u64 + Sync + Send,
{
    radix_sort_lsd_with(items, lo, scratch);
    radix_sort_lsd_with(items, hi, scratch);
}

/// The counting-sort-per-byte pass loop shared by the entry points.
/// Stable: within a pass, chunk-major exclusive offsets preserve input
/// order inside each bucket.
// The scatter phase below is this crate's only unsafe (audited at each
// site); the per-item allow keeps the workspace-level `unsafe_code`
// lint watching everywhere else.
#[allow(unsafe_code)]
fn radix_passes<T, F>(items: &mut Vec<T>, key: &F, scratch: &mut SortScratch<T>)
where
    T: Copy + Send + Sync + Default,
    F: Fn(&T) -> u64 + Sync + Send,
{
    let n = items.len();
    let max_key = items.par_iter().map(key).max().unwrap_or(0);
    let passes = if max_key == 0 {
        1
    } else {
        ((64 - max_key.leading_zeros()).div_ceil(RADIX_BITS)) as usize
    };

    let threads = rayon::current_num_threads().max(1);
    let chunk = n.div_ceil(4 * threads).max(1);
    let num_chunks = n.div_ceil(chunk);
    // All three workspaces resize in place: after the first sort at a
    // given (n, thread-count) profile the passes are allocation-free.
    scratch.buf.resize(n, T::default());
    scratch.histograms.resize(num_chunks, [0u32; BUCKETS]);
    scratch.offsets.resize(num_chunks * BUCKETS, 0);

    for pass in 0..passes {
        let shift = (pass as u32) * RADIX_BITS;
        // Per-chunk histograms, written into the recycled table.
        {
            let items_ref: &[T] = items;
            scratch.histograms.par_iter_mut().enumerate().for_each(|(c, h)| {
                *h = [0u32; BUCKETS];
                let start = c * chunk;
                let end = (start + chunk).min(n);
                for it in &items_ref[start..end] {
                    h[((key(it) >> shift) as usize) & (BUCKETS - 1)] += 1;
                }
            });
        }
        // Global bucket offsets: for stability, chunk c's bucket b region
        // starts at sum of all buckets < b plus bucket b of chunks < c.
        {
            let mut acc = 0u64;
            for b in 0..BUCKETS {
                for (c, h) in scratch.histograms.iter().enumerate() {
                    scratch.offsets[c * BUCKETS + b] = acc;
                    acc += h[b] as u64;
                }
            }
        }
        // Scatter.
        let offsets = &scratch.offsets;
        let buf_ptr = SendPtr(scratch.buf.as_mut_ptr());
        items.par_chunks(chunk).enumerate().for_each(|(c, chunk_items)| {
            let mut cursors = [0u64; BUCKETS];
            cursors.copy_from_slice(&offsets[c * BUCKETS..(c + 1) * BUCKETS]);
            let ptr = buf_ptr;
            for it in chunk_items {
                let b = ((key(it) >> shift) as usize) & (BUCKETS - 1);
                // SAFETY: every (chunk, bucket) writes a disjoint range of
                // `buf` as computed by the exclusive scan above.
                unsafe {
                    *ptr.0.add(cursors[b] as usize) = *it;
                }
                cursors[b] += 1;
            }
        });
        std::mem::swap(items, &mut scratch.buf);
    }
}

/// Sort a vector of `u64` keys ascending.
pub fn radix_sort(keys: &mut Vec<u64>) {
    radix_sort_by_key(keys, |&k| k);
}

#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: the scatter phase partitions the output index space across
// threads; no two threads write the same element.
#[allow(unsafe_code)]
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: shared references to the wrapper only copy the pointer; all
// writes go through the partitioned-scatter argument above.
#[allow(unsafe_code)]
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sorts_small() {
        let mut v = vec![5u64, 3, 9, 1, 1, 0];
        radix_sort(&mut v);
        assert_eq!(v, vec![0, 1, 1, 3, 5, 9]);
    }

    #[test]
    fn sorts_empty_and_single() {
        let mut v: Vec<u64> = vec![];
        radix_sort(&mut v);
        assert!(v.is_empty());
        let mut v = vec![42u64];
        radix_sort(&mut v);
        assert_eq!(v, vec![42]);
    }

    #[test]
    fn sorts_large_random() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<u64> = (0..200_000).map(|_| rng.random_range(0..u64::MAX)).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_pairs_stably_within_key() {
        // Payload order for equal keys must be preserved (LSD stability).
        let mut rng = StdRng::seed_from_u64(8);
        let mut v: Vec<(u64, u64)> =
            (0..50_000u64).map(|i| (rng.random_range(0..100), i)).collect();
        let expect = {
            let mut e = v.clone();
            e.sort_by_key(|&(k, _)| k);
            e
        };
        radix_sort_by_key(&mut v, |&(k, _)| k);
        assert_eq!(v, expect);
    }

    #[test]
    fn all_equal_keys() {
        let mut v: Vec<(u64, u64)> = (0..30_000u64).map(|i| (7, i)).collect();
        radix_sort_by_key(&mut v, |&(k, _)| k);
        // Stability: payloads remain in original order.
        assert!(v.windows(2).all(|w| w[0].1 < w[1].1));
    }

    #[test]
    fn lsd_is_stable_at_every_size() {
        // Below the sequential cutoff the fallback must be the *stable*
        // std sort — the property radix_sort_by_key2 composes on.
        for n in [0usize, 1, 5, 100, 5_000, 20_000] {
            let mut v: Vec<(u64, u64)> = (0..n as u64).map(|i| (i % 7, i)).collect();
            radix_sort_lsd(&mut v, |&(k, _)| k);
            assert!(
                v.windows(2).all(|w| w[0].0 < w[1].0
                    || (w[0].0 == w[1].0 && w[0].1 < w[1].1)),
                "n={n}: equal keys must keep input order"
            );
        }
    }

    #[test]
    fn dispatch_boundary_is_seamless() {
        // Differential coverage at the exact fallback/radix boundary:
        // SEQ_CUTOFF − 1 takes the std fallback, SEQ_CUTOFF and
        // SEQ_CUTOFF + 1 take the parallel pass loop. Both paths must
        // produce the same answer — including stability for the lsd
        // entry point, which radix_sort_by_key2 composes on.
        let mut rng = StdRng::seed_from_u64(12);
        for n in [SEQ_CUTOFF - 1, SEQ_CUTOFF, SEQ_CUTOFF + 1] {
            // Heavy key collisions (keys in 0..7) so stability is load-
            // bearing, payload = input index so order is observable.
            let base: Vec<(u64, u64)> =
                (0..n as u64).map(|i| (rng.random_range(0..7), i)).collect();
            let stable_expect = {
                let mut e = base.clone();
                e.sort_by_key(|&(k, _)| k);
                e
            };
            let mut v = base.clone();
            radix_sort_lsd(&mut v, |&(k, _)| k);
            assert_eq!(v, stable_expect, "n={n}: lsd vs stable std sort");
            // radix_sort_by_key only promises key order at every size;
            // with payload folded into the comparison the expected
            // permutation is unique again.
            let mut v = base.clone();
            radix_sort_by_key(&mut v, |&(k, p)| (k << 32) | p);
            assert_eq!(v, stable_expect, "n={n}: by_key vs std sort");
        }
    }

    #[test]
    fn composite_key_boundary_matches_comparison_sort() {
        // The two-pass composite sort crosses the same boundary twice;
        // pin it against the std comparison sort at SEQ_CUTOFF ± 1.
        let mut rng = StdRng::seed_from_u64(13);
        for n in [SEQ_CUTOFF - 1, SEQ_CUTOFF, SEQ_CUTOFF + 1] {
            let mut v: Vec<(u64, u64, u64)> = (0..n as u64)
                .map(|i| (rng.random_range(0..5), rng.random_range(0..9), i))
                .collect();
            let mut expect = v.clone();
            expect.sort_by_key(|&(h, l, _)| (h, l));
            radix_sort_by_key2(&mut v, |&(h, _, _)| h, |&(_, l, _)| l);
            assert_eq!(v, expect, "n={n}: composite sort at the cutoff boundary");
        }
    }

    #[test]
    fn composite_key_matches_comparison_sort() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<(u64, u64, u64)> = (0..60_000u64)
            .map(|i| (rng.random_range(0..50), rng.random_range(0..u64::MAX), i))
            .collect();
        let mut expect = v.clone();
        expect.sort_by_key(|&(h, l, _)| (h, l));
        radix_sort_by_key2(&mut v, |&(h, _, _)| h, |&(_, l, _)| l);
        assert_eq!(v, expect);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_sizes() {
        // One workspace serving many sorts of different sizes (crossing
        // the cutoff both ways) must match the scratch-free entry point
        // exactly, stability included.
        let mut rng = StdRng::seed_from_u64(14);
        let mut scratch = SortScratch::new();
        for n in [100usize, 30_000, 500, SEQ_CUTOFF, 20_000, SEQ_CUTOFF - 1] {
            let base: Vec<(u64, u64)> =
                (0..n as u64).map(|i| (rng.random_range(0..9), i)).collect();
            let mut fresh = base.clone();
            radix_sort_lsd(&mut fresh, |&(k, _)| k);
            let mut reused = base.clone();
            radix_sort_lsd_with(&mut reused, |&(k, _)| k, &mut scratch);
            assert_eq!(fresh, reused, "n={n}");
        }
    }

    #[test]
    fn keys_spanning_many_bytes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u64> =
            (0..40_000).map(|_| rng.random_range(0..1u64 << 48)).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort(&mut v);
        assert_eq!(v, expect);
    }
}
