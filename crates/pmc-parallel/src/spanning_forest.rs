//! Parallel spanning forests.
//!
//! Theorem 2.6 builds sparse k-connectivity certificates from `k`
//! successive spanning forests; the paper plugs in Halperin–Zwick's
//! optimal EREW algorithm. We substitute a lock-free union-find forest:
//! every edge races to `union` its endpoints and the winners form the
//! forest. This is linear work and, in practice, `O(log n)`-ish span
//! under work stealing; the *output* (some spanning forest) is exactly
//! what the certificate construction needs (see DESIGN.md).

use crate::meter::{CostKind, Meter};
use crate::union_find::{ConcurrentUnionFind, UnionFind};
use pmc_graph::Graph;
use rayon::prelude::*;

/// Compute a spanning forest of `g`, returning indices into `g.edges()`.
///
/// The choice among parallel runs is nondeterministic but always a
/// maximal forest (`n - #components` edges).
pub fn spanning_forest(g: &Graph, meter: &Meter) -> Vec<u32> {
    let edges = g.edges();
    spanning_forest_of_pairs(
        g.n(),
        edges.len(),
        |i| (edges[i].u, edges[i].v),
        meter,
    )
}

/// Spanning forest over an arbitrary edge-pair accessor. `n` vertices,
/// `m` edges, `pair(i)` yields the endpoints of edge `i`. Returns the
/// selected edge indices (ascending).
pub fn spanning_forest_of_pairs(
    n: usize,
    m: usize,
    pair: impl Fn(usize) -> (u32, u32) + Sync,
    meter: &Meter,
) -> Vec<u32> {
    meter.add(CostKind::ForestEdge, m as u64);
    if m < 4096 {
        // Sequential fast path: deterministic and cheaper at small sizes.
        let mut uf = UnionFind::new(n);
        let mut out = Vec::new();
        for i in 0..m {
            let (u, v) = pair(i);
            if u != v && uf.union(u, v) {
                out.push(i as u32);
            }
        }
        return out;
    }
    let cuf = ConcurrentUnionFind::new(n);
    let mut out: Vec<u32> = (0..m)
        .into_par_iter()
        .filter_map(|i| {
            let (u, v) = pair(i);
            if u != v && cuf.union(u, v) {
                Some(i as u32)
            } else {
                None
            }
        })
        .collect();
    out.par_sort_unstable();
    out
}

/// Connected-component labels via the same mechanism; labels are the
/// union-find roots.
pub fn component_labels(g: &Graph, meter: &Meter) -> Vec<u32> {
    meter.add(CostKind::ForestEdge, g.m() as u64);
    let cuf = ConcurrentUnionFind::new(g.n());
    g.edges().par_iter().for_each(|e| {
        cuf.union(e.u, e.v);
    });
    (0..g.n() as u32).into_par_iter().map(|v| cuf.find(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmc_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn is_forest_spanning(g: &Graph, forest: &[u32]) -> bool {
        let mut uf = UnionFind::new(g.n());
        for &i in forest {
            let e = g.edge(i as usize);
            if !uf.union(e.u, e.v) {
                return false; // cycle
            }
        }
        uf.num_components() == g.num_components()
    }

    #[test]
    fn forest_of_connected_graph() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = generators::gnm_connected(500, 2000, 5, &mut rng);
        let f = spanning_forest(&g, &Meter::disabled());
        assert_eq!(f.len(), g.n() - 1);
        assert!(is_forest_spanning(&g, &f));
    }

    #[test]
    fn forest_of_disconnected_graph() {
        let g = Graph::from_edges(6, [(0, 1, 1), (1, 2, 1), (3, 4, 1), (0, 2, 1)]);
        let f = spanning_forest(&g, &Meter::disabled());
        assert_eq!(f.len(), 6 - g.num_components());
        assert!(is_forest_spanning(&g, &f));
    }

    #[test]
    fn forest_large_parallel_path() {
        let mut rng = StdRng::seed_from_u64(22);
        let g = generators::gnm_connected(3000, 12_000, 3, &mut rng);
        let f = spanning_forest(&g, &Meter::disabled());
        assert_eq!(f.len(), g.n() - 1);
        assert!(is_forest_spanning(&g, &f));
    }

    #[test]
    fn labels_match_components() {
        let g = Graph::from_edges(7, [(0, 1, 1), (2, 3, 1), (3, 4, 1), (5, 6, 1)]);
        let labels = component_labels(&g, &Meter::disabled());
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[5], labels[6]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[2], labels[5]);
    }

    #[test]
    fn meter_counts_edges() {
        let g = generators::complete(10, 1);
        let meter = Meter::enabled();
        let _ = spanning_forest(&g, &meter);
        assert_eq!(meter.get(CostKind::ForestEdge), g.m() as u64);
    }

    #[test]
    fn pair_accessor_form() {
        let pairs = [(0u32, 1u32), (1, 2), (2, 0), (3, 4)];
        let f = spanning_forest_of_pairs(5, pairs.len(), |i| pairs[i], &Meter::disabled());
        assert_eq!(f.len(), 3); // two components: {0,1,2} needs 2 edges, {3,4} needs 1
    }
}
