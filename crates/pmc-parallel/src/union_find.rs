//! Disjoint-set structures.
//!
//! [`UnionFind`] is the classic sequential structure with union by rank
//! and path halving. [`ConcurrentUnionFind`] is a lock-free variant in
//! the style of Jayanti–Tarjan: parents live in `AtomicU32`, `find`
//! performs CAS path halving, and `union` links the smaller root under
//! the larger by CAS-retry. The concurrent variant powers the parallel
//! spanning forests of Theorem 2.6's certificate construction.

use std::sync::atomic::{AtomicU32, Ordering};

/// Sequential union-find with union by rank and path halving.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect(), rank: vec![0; n], components: n }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Merge the sets of `a` and `b`; returns `true` when they were
    /// previously distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }

    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    pub fn num_components(&self) -> usize {
        self.components
    }

    pub fn len(&self) -> usize {
        self.parent.len()
    }

    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Reset to `n` singleton sets, reusing the allocation when possible.
    pub fn reset(&mut self, n: usize) {
        self.parent.clear();
        self.parent.extend(0..n as u32);
        self.rank.clear();
        self.rank.resize(n, 0);
        self.components = n;
    }
}

/// Lock-free concurrent union-find.
///
/// `find` is wait-free up to CAS contention; `union` retries until the
/// roots are linked or discovered equal. Linking uses the root *index*
/// as the tie-breaking priority (larger index wins), which preserves the
/// acyclicity invariant without per-node rank words.
#[derive(Debug)]
pub struct ConcurrentUnionFind {
    parent: Vec<AtomicU32>,
}

impl ConcurrentUnionFind {
    pub fn new(n: usize) -> Self {
        ConcurrentUnionFind { parent: (0..n as u32).map(AtomicU32::new).collect() }
    }

    pub fn len(&self) -> usize {
        self.parent.len()
    }

    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (with CAS path halving).
    // Relaxed throughout `find`: parent pointers only move towards
    // roots, any stale read is re-resolved on the next loop iteration,
    // and cross-thread agreement is carried by `union`'s AcqRel CAS.
    pub fn find(&self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize].load(Ordering::Relaxed);
            if p == x {
                return x;
            }
            // (Relaxed: see the note above `find`.)
            let gp = self.parent[p as usize].load(Ordering::Relaxed);
            if gp != p {
                // Path halving; failure is benign. (Relaxed: see above.)
                let _ = self.parent[x as usize].compare_exchange_weak(
                    p,
                    gp,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
            }
            x = gp;
        }
    }

    /// Merge the sets of `a` and `b`; returns `true` iff this call
    /// performed the link (exactly one concurrent caller wins per merge).
    pub fn union(&self, a: u32, b: u32) -> bool {
        loop {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                return false;
            }
            // Deterministic priority: link smaller root under larger.
            // (Relaxed on failure: the retry re-reads fresh roots.)
            let (hi, lo) = if ra > rb { (ra, rb) } else { (rb, ra) };
            if self.parent[lo as usize]
                .compare_exchange(lo, hi, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
            // Someone moved `lo`; retry from fresh roots.
        }
    }

    pub fn same(&self, a: u32, b: u32) -> bool {
        // Standard double-check loop: roots must be stable to conclude.
        loop {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                return true;
            }
            if self.parent[ra as usize].load(Ordering::Acquire) == ra {
                return false;
            }
        }
    }

    /// Number of components (linear scan; call after the parallel phase).
    pub fn num_components(&self) -> usize {
        (0..self.parent.len() as u32).filter(|&v| self.find(v) == v).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn sequential_basic() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert!(uf.same(0, 1));
        assert!(!uf.same(1, 2));
        assert_eq!(uf.num_components(), 3);
        uf.reset(2);
        assert_eq!(uf.num_components(), 2);
        assert!(!uf.same(0, 1));
    }

    #[test]
    fn concurrent_matches_sequential() {
        let n = 2000;
        let edges: Vec<(u32, u32)> =
            (0..n as u32 - 1).map(|i| (i, i + 1)).chain((0..500).map(|i| (i, i * 3 % n as u32))).collect();
        let cuf = ConcurrentUnionFind::new(n);
        edges.par_iter().for_each(|&(a, b)| {
            cuf.union(a, b);
        });
        assert_eq!(cuf.num_components(), 1);
    }

    #[test]
    fn concurrent_union_returns_true_once_per_merge() {
        // Hammer the same pair from many threads; exactly one wins.
        let cuf = ConcurrentUnionFind::new(2);
        let wins: usize = (0..64)
            .into_par_iter()
            .map(|_| if cuf.union(0, 1) { 1 } else { 0 })
            .sum();
        assert_eq!(wins, 1);
    }

    #[test]
    fn concurrent_components_count() {
        let cuf = ConcurrentUnionFind::new(10);
        // Two chains: 0-4, 5-9.
        (0..4u32).chain(5..9).par_bridge().for_each(|i| {
            cuf.union(i, i + 1);
        });
        assert_eq!(cuf.num_components(), 2);
        assert!(cuf.same(0, 4));
        assert!(!cuf.same(4, 5));
    }

    #[test]
    fn concurrent_spanning_tree_edge_count() {
        // The number of winning unions over a connected graph is n-1:
        // a spanning tree, no matter the interleaving.
        let n = 512u32;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in [i.wrapping_mul(7) % n, i.wrapping_mul(13) % n, (i + 1) % n] {
                if i != j {
                    edges.push((i, j));
                }
            }
        }
        let cuf = ConcurrentUnionFind::new(n as usize);
        let tree_edges: usize =
            edges.par_iter().map(|&(a, b)| if cuf.union(a, b) { 1 } else { 0 }).sum();
        assert_eq!(tree_edges, n as usize - 1);
    }
}
