//! Work-span accounting.
//!
//! A [`Meter`] is a bundle of relaxed atomic counters, one per
//! [`CostKind`], plus per-phase depth gauges. Algorithms thread a
//! `&Meter` through their hot paths and bump the counter that matches
//! the unit of work the paper counts (cut queries, range-tree node
//! visits, spanning-forest edge touches, ...). A disabled meter
//! compiles to a branch on a bool and is safe to pass everywhere.
//!
//! Depth is recorded per phase as the *maximum over parallel branches of
//! the sum over sequential steps* — algorithms know their own
//! composition structure, so they report critical-path contributions via
//! [`Meter::record_depth`] (take-max) and [`Meter::add_depth`]
//! (accumulate a sequential stage). The result is an empirical proxy for
//! PRAM depth that scales the way the theorems predict, which is what
//! the depth experiments check.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Categories of unit work, mirroring the quantities the paper's
/// analysis counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CostKind {
    /// One `cut(e, f)` / `cov(e, f)` evaluation (Lemma A.2).
    CutQuery,
    /// One node visit inside a 1-D/2-D range structure (Lemmas 4.24/4.25).
    RangeNode,
    /// One matrix entry inspected by a Monge minimum search (§4.1.2/4.1.3).
    MongeEntry,
    /// One edge touched by a spanning-forest computation (Thm 2.6).
    ForestEdge,
    /// One edge relaxation inside an MST round (§4.2 packing).
    MstEdge,
    /// One random sample drawn (binomial/skeleton sampling, §2.4.1).
    Sample,
    /// One tree-structure operation (Euler tour, LCA, decomposition).
    TreeOp,
    /// One cut/coverage query issued by the interest search while
    /// tracing arms (Claims 4.8/4.13) — counted *in addition to* the
    /// [`CostKind::CutQuery`] the evaluation itself records, so the
    /// ablation harness can attribute query volume to the arm tracing.
    InterestQuery,
    /// One table probe inside an LCA query: binary lifting charges one
    /// step per jump level examined (grows with `log depth`), the
    /// sparse-table RMQ path charges exactly one per query — the gauge
    /// the O(1)-query acceptance check reads.
    LcaStep,
    /// Anything else (bookkeeping, scans, sorts).
    Misc,
}

impl CostKind {
    pub const ALL: [CostKind; 10] = [
        CostKind::CutQuery,
        CostKind::RangeNode,
        CostKind::MongeEntry,
        CostKind::ForestEdge,
        CostKind::MstEdge,
        CostKind::Sample,
        CostKind::TreeOp,
        CostKind::InterestQuery,
        CostKind::LcaStep,
        CostKind::Misc,
    ];

    fn index(self) -> usize {
        match self {
            CostKind::CutQuery => 0,
            CostKind::RangeNode => 1,
            CostKind::MongeEntry => 2,
            CostKind::ForestEdge => 3,
            CostKind::MstEdge => 4,
            CostKind::Sample => 5,
            CostKind::TreeOp => 6,
            CostKind::InterestQuery => 7,
            CostKind::LcaStep => 8,
            CostKind::Misc => 9,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            CostKind::CutQuery => "cut_query",
            CostKind::RangeNode => "range_node",
            CostKind::MongeEntry => "monge_entry",
            CostKind::ForestEdge => "forest_edge",
            CostKind::MstEdge => "mst_edge",
            CostKind::Sample => "sample",
            CostKind::TreeOp => "tree_op",
            CostKind::InterestQuery => "interest_query",
            CostKind::LcaStep => "lca_step",
            CostKind::Misc => "misc",
        }
    }
}

/// Atomic work/depth accumulator. Cheap to share (`&Meter`) across
/// rayon tasks; all counter updates are `Relaxed` (we only need totals,
/// never ordering).
#[derive(Debug)]
pub struct Meter {
    enabled: bool,
    counters: [AtomicU64; 10],
    /// phase name -> critical-path units recorded for that phase.
    depths: Mutex<BTreeMap<&'static str, u64>>,
}

impl Default for Meter {
    fn default() -> Self {
        Meter::enabled()
    }
}

impl Meter {
    /// A meter that records.
    pub fn enabled() -> Self {
        Meter {
            enabled: true,
            counters: Default::default(),
            depths: Mutex::new(BTreeMap::new()),
        }
    }

    /// A meter that ignores everything (zero-cost fast path).
    pub fn disabled() -> Self {
        Meter {
            enabled: false,
            counters: Default::default(),
            depths: Mutex::new(BTreeMap::new()),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Count `amount` units of `kind` work.
    #[inline]
    pub fn add(&self, kind: CostKind, amount: u64) {
        if self.enabled {
            // Relaxed: independent event counters; totals are only read
            // from quiescent snapshots (`report`/`get` after a join).
            self.counters[kind.index()].fetch_add(amount, Ordering::Relaxed);
        }
    }

    /// Count one unit of `kind` work.
    #[inline]
    pub fn bump(&self, kind: CostKind) {
        self.add(kind, 1);
    }

    /// Record a critical-path contribution for `phase`, keeping the max
    /// (parallel composition: depth is the max over branches).
    pub fn record_depth(&self, phase: &'static str, depth: u64) {
        if self.enabled {
            let mut m = self.depths.lock();
            let d = m.entry(phase).or_insert(0);
            *d = (*d).max(depth);
        }
    }

    /// Add to the critical path of `phase` (sequential composition:
    /// depth is the sum over stages).
    pub fn add_depth(&self, phase: &'static str, depth: u64) {
        if self.enabled {
            let mut m = self.depths.lock();
            *m.entry(phase).or_insert(0) += depth;
        }
    }

    /// Current value of one counter.
    pub fn get(&self, kind: CostKind) -> u64 {
        // Relaxed: a statistical snapshot; callers read after the
        // metered parallel region has joined.
        self.counters[kind.index()].load(Ordering::Relaxed)
    }

    /// Snapshot all counters and depth gauges.
    pub fn report(&self) -> CostReport {
        let mut work = BTreeMap::new();
        for kind in CostKind::ALL {
            let v = self.get(kind);
            if v > 0 {
                work.insert(kind, v);
            }
        }
        CostReport { work, depth: self.depths.lock().clone() }
    }

    /// Reset all counters and gauges.
    pub fn reset(&self) {
        for c in &self.counters {
            // Relaxed: reset happens between metered regions, with no
            // concurrent writers to order against.
            c.store(0, Ordering::Relaxed);
        }
        self.depths.lock().clear();
    }
}

/// Immutable snapshot of a [`Meter`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostReport {
    pub work: BTreeMap<CostKind, u64>,
    pub depth: BTreeMap<&'static str, u64>,
}

impl CostReport {
    /// Total work across all kinds. [`CostKind::InterestQuery`] and
    /// [`CostKind::LcaStep`] are *attribution* gauges layered over work
    /// other counters already record (cut queries, tree probes), so they
    /// are excluded here to avoid double counting.
    pub fn total_work(&self) -> u64 {
        self.work
            .iter()
            .filter(|&(&k, _)| k != CostKind::InterestQuery && k != CostKind::LcaStep)
            .map(|(_, v)| v)
            .sum()
    }

    /// Work of one kind (0 if never recorded).
    pub fn work_of(&self, kind: CostKind) -> u64 {
        self.work.get(&kind).copied().unwrap_or(0)
    }

    /// Sum of all phase depths: an upper proxy for total critical path
    /// when phases run back-to-back.
    pub fn total_depth(&self) -> u64 {
        self.depth.values().sum()
    }

    /// Render a compact human-readable table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "work (ops):");
        for (k, v) in &self.work {
            let _ = writeln!(out, "  {:<12} {v}", k.name());
        }
        let _ = writeln!(out, "  {:<12} {}", "TOTAL", self.total_work());
        if !self.depth.is_empty() {
            let _ = writeln!(out, "depth (critical-path units):");
            for (p, d) in &self.depth {
                let _ = writeln!(out, "  {p:<24} {d}");
            }
            let _ = writeln!(out, "  {:<24} {}", "TOTAL", self.total_depth());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn counts_accumulate() {
        let m = Meter::enabled();
        m.bump(CostKind::CutQuery);
        m.add(CostKind::CutQuery, 4);
        m.add(CostKind::RangeNode, 10);
        assert_eq!(m.get(CostKind::CutQuery), 5);
        let r = m.report();
        assert_eq!(r.total_work(), 15);
        assert_eq!(r.work_of(CostKind::RangeNode), 10);
        assert_eq!(r.work_of(CostKind::Sample), 0);
    }

    #[test]
    fn disabled_records_nothing() {
        let m = Meter::disabled();
        m.add(CostKind::Misc, 100);
        m.record_depth("phase", 5);
        assert_eq!(m.report().total_work(), 0);
        assert_eq!(m.report().total_depth(), 0);
    }

    #[test]
    fn depth_max_and_sum_semantics() {
        let m = Meter::enabled();
        m.record_depth("pack", 3);
        m.record_depth("pack", 7);
        m.record_depth("pack", 5);
        assert_eq!(m.report().depth["pack"], 7);
        m.add_depth("cut", 2);
        m.add_depth("cut", 3);
        assert_eq!(m.report().depth["cut"], 5);
        assert_eq!(m.report().total_depth(), 12);
    }

    #[test]
    fn concurrent_updates_sum() {
        let m = Meter::enabled();
        (0..1000u64).into_par_iter().for_each(|_| m.bump(CostKind::Misc));
        assert_eq!(m.get(CostKind::Misc), 1000);
    }

    #[test]
    fn reset_clears() {
        let m = Meter::enabled();
        m.add(CostKind::TreeOp, 9);
        m.record_depth("p", 1);
        m.reset();
        assert_eq!(m.report().total_work(), 0);
        assert!(m.report().depth.is_empty());
    }

    #[test]
    fn render_contains_names() {
        let m = Meter::enabled();
        m.add(CostKind::MongeEntry, 2);
        m.record_depth("single_path", 4);
        let text = m.report().render();
        assert!(text.contains("monge_entry"));
        assert!(text.contains("single_path"));
    }
}
