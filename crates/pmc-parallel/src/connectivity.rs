//! Shiloach–Vishkin style label-propagation connectivity.
//!
//! An alternative to the union-find forest with a PRAM pedigree closer
//! to the paper's citations ([SV82]): every vertex carries a label,
//! rounds of parallel *hooking* (adopt the smaller neighbouring label)
//! and *pointer jumping* (label <- label of label) converge in
//! `O(log n)` rounds. Used as a cross-check for the union-find
//! implementation and as the connectivity probe in tests.

use pmc_graph::Graph;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Connected-component labels; two vertices share a label iff they are
/// connected. Labels are component minima (deterministic).
pub fn sv_component_labels(g: &Graph) -> Vec<u32> {
    let n = g.n();
    let label: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    if n == 0 {
        return Vec::new();
    }
    // Relaxed ordering throughout this kernel: labels only ever
    // decrease (`fetch_min` lattice descent, so lost races are retried
    // by the next round), every `par_iter` round ends in a join barrier
    // that orders rounds against each other, and the change flags are
    // only read after that barrier.
    loop {
        let changed = AtomicBool::new(false);
        // Hooking: each edge pulls both endpoint labels to their
        // minimum. (Relaxed: monotone descent + round barrier, above.)
        g.edges().par_iter().for_each(|e| {
            let lu = label[e.u as usize].load(Ordering::Relaxed);
            let lv = label[e.v as usize].load(Ordering::Relaxed);
            if lu < lv {
                if label[e.v as usize].fetch_min(lu, Ordering::Relaxed) > lu {
                    changed.store(true, Ordering::Relaxed);
                }
            // (Relaxed: same argument, mirrored direction.)
            } else if lv < lu && label[e.u as usize].fetch_min(lv, Ordering::Relaxed) > lv {
                changed.store(true, Ordering::Relaxed);
            }
        });
        // Pointer jumping until labels are fixpoints of themselves.
        // (Relaxed: monotone descent + round barrier, see above.)
        loop {
            let jumped = AtomicBool::new(false);
            (0..n).into_par_iter().for_each(|v| {
                let l = label[v].load(Ordering::Relaxed);
                let ll = label[l as usize].load(Ordering::Relaxed);
                if ll < l {
                    label[v].fetch_min(ll, Ordering::Relaxed);
                    jumped.store(true, Ordering::Relaxed);
                }
            });
            // Relaxed flag reads: both happen after the round's join
            // barrier, which is what orders them.
            if !jumped.load(Ordering::Relaxed) {
                break;
            }
        }
        if !changed.load(Ordering::Relaxed) {
            break;
        }
    }
    label.into_iter().map(|a| a.into_inner()).collect()
}

/// Number of connected components via [`sv_component_labels`].
pub fn sv_num_components(g: &Graph) -> usize {
    if g.n() == 0 {
        return 0;
    }
    let labels = sv_component_labels(g);
    let mut sorted = labels;
    sorted.par_sort_unstable();
    sorted.dedup();
    sorted.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmc_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_component() {
        let g = generators::cycle(50, 1);
        let labels = sv_component_labels(&g);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn multiple_components() {
        let g = Graph::from_edges(7, [(0, 1, 1), (2, 3, 1), (3, 4, 1)]);
        let labels = sv_component_labels(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[4]);
        assert_ne!(labels[0], labels[2]);
        // 5 and 6 are isolated singletons.
        assert_eq!(sv_num_components(&g), 4);
    }

    #[test]
    fn matches_bfs_labels_on_random() {
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..5 {
            let g = generators::gnm_multi(200, 250, 3, &mut rng);
            let sv = sv_component_labels(&g);
            let bfs = g.component_labels();
            // Same partition: equal labels iff equal labels.
            for u in 0..g.n() {
                for v in u + 1..g.n() {
                    assert_eq!(
                        sv[u] == sv[v],
                        bfs[u] == bfs[v],
                        "partition mismatch at ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, []);
        assert_eq!(sv_num_components(&g), 0);
        let g1 = Graph::from_edges(3, []);
        assert_eq!(sv_num_components(&g1), 3);
    }

    #[test]
    fn labels_are_component_minima() {
        let g = Graph::from_edges(6, [(5, 4, 1), (4, 3, 1), (1, 2, 1)]);
        let labels = sv_component_labels(&g);
        assert_eq!(labels[3], 3);
        assert_eq!(labels[4], 3);
        assert_eq!(labels[5], 3);
        assert_eq!(labels[1], 1);
        assert_eq!(labels[2], 1);
        assert_eq!(labels[0], 0);
    }
}
