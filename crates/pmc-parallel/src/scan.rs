//! Parallel prefix sums (scans).
//!
//! The classic two-pass chunked scan: partition the input into
//! `O(num_threads)` chunks, sum each chunk in parallel, exclusive-scan
//! the chunk totals sequentially (tiny), then rescan each chunk with its
//! offset in parallel. Work `O(n)`, depth `O(n / p + p)` which is
//! `O(log n)`-equivalent for the chunk counts used here.

use rayon::prelude::*;

/// Minimum chunk length before the parallel path engages; below this a
/// sequential scan is faster.
const SEQ_CUTOFF: usize = 1 << 14;

/// In-place exclusive prefix sum; returns the total.
///
/// After the call, `data[i]` holds the sum of the *original*
/// `data[..i]`.
pub fn exclusive_scan_in_place(data: &mut [u64]) -> u64 {
    if data.len() < SEQ_CUTOFF {
        let mut acc = 0u64;
        for x in data.iter_mut() {
            let v = *x;
            *x = acc;
            acc += v;
        }
        return acc;
    }
    let threads = rayon::current_num_threads().max(1);
    let chunk = data.len().div_ceil(4 * threads).max(1);
    let mut partials: Vec<u64> =
        data.par_chunks(chunk).map(|c| c.iter().sum()).collect();
    let mut acc = 0u64;
    for p in partials.iter_mut() {
        let v = *p;
        *p = acc;
        acc += v;
    }
    data.par_chunks_mut(chunk).zip(partials.par_iter()).for_each(|(c, &offset)| {
        let mut local = offset;
        for x in c.iter_mut() {
            let v = *x;
            *x = local;
            local += v;
        }
    });
    acc
}

/// Exclusive prefix sum into a fresh vector; the returned vector has
/// `data.len() + 1` entries, the last being the grand total.
pub fn exclusive_scan(data: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(data.len() + 1);
    out.extend_from_slice(data);
    let total = exclusive_scan_in_place(&mut out);
    out.push(total);
    out
}

/// Inclusive prefix sum into a fresh vector.
pub fn inclusive_scan(data: &[u64]) -> Vec<u64> {
    let ex = exclusive_scan(data);
    (0..data.len()).map(|i| ex[i + 1]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exclusive_small() {
        let mut v = vec![3, 1, 4, 1, 5];
        let total = exclusive_scan_in_place(&mut v);
        assert_eq!(v, vec![0, 3, 4, 8, 9]);
        assert_eq!(total, 14);
    }

    #[test]
    fn exclusive_empty_and_single() {
        let mut v: Vec<u64> = vec![];
        assert_eq!(exclusive_scan_in_place(&mut v), 0);
        let mut v = vec![7u64];
        assert_eq!(exclusive_scan_in_place(&mut v), 7);
        assert_eq!(v, vec![0]);
    }

    #[test]
    fn exclusive_matches_sequential_large() {
        let mut rng = StdRng::seed_from_u64(42);
        let data: Vec<u64> = (0..100_000).map(|_| rng.random_range(0..1000)).collect();
        let mut expect = Vec::with_capacity(data.len());
        let mut acc = 0u64;
        for &x in &data {
            expect.push(acc);
            acc += x;
        }
        let mut got = data.clone();
        let total = exclusive_scan_in_place(&mut got);
        assert_eq!(got, expect);
        assert_eq!(total, acc);
    }

    #[test]
    fn scan_vector_form() {
        let out = exclusive_scan(&[2, 2, 2]);
        assert_eq!(out, vec![0, 2, 4, 6]);
    }

    #[test]
    fn inclusive_matches() {
        let out = inclusive_scan(&[3, 1, 4]);
        assert_eq!(out, vec![3, 4, 8]);
        let empty: Vec<u64> = vec![];
        assert!(inclusive_scan(&empty).is_empty());
    }
}
