//! Parallel merge, merge sort and stream compaction.
//!
//! The remaining [Ble96] toolbox pieces the paper's constructions lean
//! on implicitly: the auxiliary-array construction of Lemma 4.25 merges
//! sorted child arrays level by level, and tuple grouping (Lemma 4.16)
//! is a sort + compaction. `pmc-range` uses the radix path instead, so
//! these comparison-based versions serve as the general-`T` fallback
//! and as cross-checks.

use rayon::prelude::*;

/// Below this size, sequential merging wins.
const SEQ_CUTOFF: usize = 1 << 12;

/// Merge two sorted slices into a sorted vector (stable: ties take from
/// `a` first). Parallel by binary-searched splitting.
pub fn parallel_merge<T: Ord + Copy + Send + Sync>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = vec![None::<T>; a.len() + b.len()];
    merge_into(a, b, &mut out);
    out.into_iter().map(|x| x.expect("filled")) .collect()
}

fn merge_into<T: Ord + Copy + Send + Sync>(a: &[T], b: &[T], out: &mut [Option<T>]) {
    debug_assert_eq!(out.len(), a.len() + b.len());
    if a.len() + b.len() <= SEQ_CUTOFF {
        let (mut i, mut j, mut k) = (0, 0, 0);
        while i < a.len() && j < b.len() {
            if a[i] <= b[j] {
                out[k] = Some(a[i]);
                i += 1;
            } else {
                out[k] = Some(b[j]);
                j += 1;
            }
            k += 1;
        }
        for &x in &a[i..] {
            out[k] = Some(x);
            k += 1;
        }
        for &x in &b[j..] {
            out[k] = Some(x);
            k += 1;
        }
        return;
    }
    // Split at the median of the longer side; binary search the other.
    let (long, short, long_first) = if a.len() >= b.len() { (a, b, true) } else { (b, a, false) };
    let mid = long.len() / 2;
    let pivot = long[mid];
    // Stability: elements equal to the pivot go left from `a`, right
    // from `b`; partition_point with <= / < keeps that.
    let cut = if long_first {
        short.partition_point(|x| *x < pivot)
    } else {
        short.partition_point(|x| *x <= pivot)
    };
    let (l1, l2) = long.split_at(mid);
    let (s1, s2) = short.split_at(cut);
    let left_len = l1.len() + s1.len();
    let (o1, o2) = out.split_at_mut(left_len);
    let ((a1, b1), (a2, b2)) =
        if long_first { ((l1, s1), (l2, s2)) } else { ((s1, l1), (s2, l2)) };
    rayon::join(|| merge_into(a1, b1, o1), || merge_into(a2, b2, o2));
}

/// Parallel stable merge sort (the comparison-based counterpart of the
/// radix sort in [`crate::sort`]).
pub fn parallel_merge_sort<T: Ord + Copy + Send + Sync>(data: &[T]) -> Vec<T> {
    if data.len() <= SEQ_CUTOFF {
        let mut v = data.to_vec();
        v.sort();
        return v;
    }
    let mid = data.len() / 2;
    let (a, b) = rayon::join(
        || parallel_merge_sort(&data[..mid]),
        || parallel_merge_sort(&data[mid..]),
    );
    parallel_merge(&a, &b)
}

/// Stream compaction (`pack`): keep elements satisfying `keep`,
/// preserving order. Parallel filter + ordered collect.
pub fn pack<T: Copy + Send + Sync>(data: &[T], keep: impl Fn(&T) -> bool + Sync) -> Vec<T> {
    if data.len() <= SEQ_CUTOFF {
        return data.iter().copied().filter(|x| keep(x)).collect();
    }
    data.par_iter().copied().filter(|x| keep(x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn merge_small() {
        assert_eq!(parallel_merge(&[1, 3, 5], &[2, 4, 6]), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(parallel_merge::<u32>(&[], &[1, 2]), vec![1, 2]);
        assert_eq!(parallel_merge::<u32>(&[1, 2], &[]), vec![1, 2]);
        assert_eq!(parallel_merge::<u32>(&[], &[]), Vec::<u32>::new());
    }

    #[test]
    fn merge_large_random() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut a: Vec<u64> = (0..60_000).map(|_| rng.random_range(0..1_000_000)).collect();
        let mut b: Vec<u64> = (0..45_000).map(|_| rng.random_range(0..1_000_000)).collect();
        a.sort_unstable();
        b.sort_unstable();
        let merged = parallel_merge(&a, &b);
        let mut expect = [a, b].concat();
        expect.sort_unstable();
        assert_eq!(merged, expect);
    }

    #[test]
    fn merge_stability() {
        // Pairs ordered by key; payloads mark origin.
        let a: Vec<(u64, u64)> = vec![(5, 1), (5, 2), (7, 1)];
        let b: Vec<(u64, u64)> = vec![(5, 100), (7, 100)];
        // Compare by full tuple would break the test; use key-only merge
        // via a wrapper ordered by key then side marker.
        #[derive(Clone, Copy, PartialEq, Eq, Debug)]
        struct K(u64, u64);
        impl Ord for K {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                self.0.cmp(&o.0)
            }
        }
        impl PartialOrd for K {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        let a: Vec<K> = a.into_iter().map(|(k, p)| K(k, p)).collect();
        let b: Vec<K> = b.into_iter().map(|(k, p)| K(k, p)).collect();
        let merged = parallel_merge(&a, &b);
        // All a-side 5s precede the b-side 5.
        let fives: Vec<u64> = merged.iter().filter(|k| k.0 == 5).map(|k| k.1).collect();
        assert_eq!(fives, vec![1, 2, 100]);
    }

    #[test]
    fn merge_sort_matches_std() {
        let mut rng = StdRng::seed_from_u64(2);
        let data: Vec<u64> = (0..100_000).map(|_| rng.random_range(0..1000)).collect();
        let sorted = parallel_merge_sort(&data);
        let mut expect = data.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn pack_preserves_order() {
        let data: Vec<u64> = (0..50_000).collect();
        let evens = pack(&data, |x| x % 2 == 0);
        assert_eq!(evens.len(), 25_000);
        assert!(evens.windows(2).all(|w| w[0] < w[1]));
        assert!(evens.iter().all(|x| x % 2 == 0));
    }

    #[test]
    fn pack_empty_and_all() {
        let data = [1u64, 2, 3];
        assert!(pack(&data, |_| false).is_empty());
        assert_eq!(pack(&data, |_| true), vec![1, 2, 3]);
    }
}
