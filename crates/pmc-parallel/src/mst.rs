//! Minimum spanning forests with caller-supplied keys.
//!
//! The tree-packing phase (§4.2) runs `O(log^2 n)` MST computations
//! where the edge order is *not* the static weight but a dynamic load
//! vector (Plotkin–Shmoys–Tardos). Both algorithms therefore take a key
//! function `key(edge index) -> K`; ties must be broken consistently, so
//! callers should include the edge index in `K` when keys can collide
//! (the helpers here do this for the common `u64` case).
//!
//! * [`boruvka_msf_by`] — parallel Borůvka: `O(log n)` rounds, each
//!   finding per-component minimum edges in parallel. This substitutes
//!   for Pettie–Ramachandran in the paper (see DESIGN.md).
//! * [`kruskal_msf_by`] — sequential sort-based Kruskal, the oracle.

use crate::meter::{CostKind, Meter};
use crate::union_find::UnionFind;
use pmc_graph::Graph;
use rayon::prelude::*;

/// Parallel Borůvka minimum spanning forest.
///
/// Returns the indices of the forest edges (ascending). `key` must be a
/// *strict total order* on edges — include the edge index as a
/// tie-breaker if the primary key can repeat — otherwise the forest is
/// still minimal but the edge choice may differ from Kruskal's.
pub fn boruvka_msf_by<K>(
    g: &Graph,
    key: impl Fn(usize) -> K + Sync,
    meter: &Meter,
) -> Vec<u32>
where
    K: Ord + Copy + Send + Sync,
{
    let n = g.n();
    let m = g.m();
    let mut uf = UnionFind::new(n);
    let mut chosen: Vec<u32> = Vec::new();
    if n == 0 || m == 0 {
        return chosen;
    }
    // Edge pool shrinks every round: only inter-component edges survive.
    let mut pool: Vec<u32> = (0..m as u32).collect();
    let mut roots = vec![u32::MAX; n];

    loop {
        meter.add(CostKind::MstEdge, pool.len() as u64);
        // Root lookup table (sequential refresh; pool scan is parallel).
        for v in 0..n as u32 {
            roots[v as usize] = uf.find(v);
        }
        let roots_ref = &roots;
        // Candidate minimum outgoing edge per component.
        let candidates: Vec<(u32, K, u32)> = pool
            .par_iter()
            .filter_map(|&i| {
                let e = g.edge(i as usize);
                let (ru, rv) = (roots_ref[e.u as usize], roots_ref[e.v as usize]);
                if ru == rv {
                    None
                } else {
                    Some((ru, rv, key(i as usize), i))
                }
            })
            .flat_map_iter(|(ru, rv, k, i)| [(ru, k, i), (rv, k, i)])
            .collect();
        if candidates.is_empty() {
            break;
        }
        // Reduce: minimum key per component root.
        let mut best: Vec<Option<(K, u32)>> = vec![None; n];
        for (root, k, i) in candidates {
            let slot = &mut best[root as usize];
            if slot.is_none_or(|s| (k, i) < s) {
                *slot = Some((k, i));
            }
        }
        let mut merged_any = false;
        for slot in best.iter().flatten() {
            let e = g.edge(slot.1 as usize);
            if uf.union(e.u, e.v) {
                chosen.push(slot.1);
                merged_any = true;
            }
        }
        if !merged_any {
            break;
        }
        // Prune intra-component edges from the pool.
        for v in 0..n as u32 {
            roots[v as usize] = uf.find(v);
        }
        let roots_ref = &roots;
        pool = pool
            .into_par_iter()
            .filter(|&i| {
                let e = g.edge(i as usize);
                roots_ref[e.u as usize] != roots_ref[e.v as usize]
            })
            .collect();
        if pool.is_empty() {
            break;
        }
    }
    chosen.sort_unstable();
    chosen
}

/// Sequential Kruskal minimum spanning forest (oracle for tests).
pub fn kruskal_msf_by<K>(g: &Graph, key: impl Fn(usize) -> K) -> Vec<u32>
where
    K: Ord + Copy,
{
    let mut order: Vec<u32> = (0..g.m() as u32).collect();
    order.sort_by_key(|&i| (key(i as usize), i));
    let mut uf = UnionFind::new(g.n());
    let mut out = Vec::new();
    for i in order {
        let e = g.edge(i as usize);
        if uf.union(e.u, e.v) {
            out.push(i);
        }
    }
    out.sort_unstable();
    out
}

/// MSF by static edge weight (ties broken by index).
pub fn boruvka_msf(g: &Graph, meter: &Meter) -> Vec<u32> {
    boruvka_msf_by(g, |i| (g.edge(i).w, i as u32), meter)
}

/// Kruskal by static edge weight (ties broken by index).
pub fn kruskal_msf(g: &Graph) -> Vec<u32> {
    kruskal_msf_by(g, |i| (g.edge(i).w, i as u32))
}

/// Total weight of a set of edges.
pub fn forest_weight(g: &Graph, forest: &[u32]) -> u64 {
    forest.iter().map(|&i| g.edge(i as usize).w).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmc_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn boruvka_matches_kruskal_weight_random() {
        let mut rng = StdRng::seed_from_u64(51);
        for n in [10, 50, 200] {
            let g = generators::gnm_connected(n, 3 * n, 50, &mut rng);
            let b = boruvka_msf(&g, &Meter::disabled());
            let k = kruskal_msf(&g);
            assert_eq!(b.len(), n - 1);
            assert_eq!(forest_weight(&g, &b), forest_weight(&g, &k), "n={n}");
        }
    }

    #[test]
    fn identical_edges_with_distinct_tie_break() {
        // All weights equal: unique keys via index => identical forests.
        let g = generators::complete(20, 7);
        let b = boruvka_msf(&g, &Meter::disabled());
        let k = kruskal_msf(&g);
        assert_eq!(b, k);
    }

    #[test]
    fn custom_key_inverts_order() {
        // Max spanning tree via negated key.
        let g = Graph::from_edges(3, [(0, 1, 1), (1, 2, 10), (0, 2, 5)]);
        let max_tree = kruskal_msf_by(&g, |i| std::cmp::Reverse(g.edge(i).w));
        assert_eq!(forest_weight(&g, &max_tree), 15);
        let b = boruvka_msf_by(&g, |i| (std::cmp::Reverse(g.edge(i).w), i as u32), &Meter::disabled());
        assert_eq!(forest_weight(&g, &b), 15);
    }

    #[test]
    fn disconnected_forest() {
        let g = Graph::from_edges(5, [(0, 1, 2), (1, 2, 2), (3, 4, 2)]);
        let b = boruvka_msf(&g, &Meter::disabled());
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn empty_and_trivial() {
        let g = Graph::from_edges(3, []);
        assert!(boruvka_msf(&g, &Meter::disabled()).is_empty());
        let g0 = Graph::from_edges(0, []);
        assert!(boruvka_msf(&g0, &Meter::disabled()).is_empty());
    }

    #[test]
    fn parallel_multigraph_edges() {
        let g = Graph::from_edges(2, [(0, 1, 5), (0, 1, 2), (0, 1, 9)]);
        let b = boruvka_msf(&g, &Meter::disabled());
        assert_eq!(b, vec![1]); // lightest parallel edge
    }

    #[test]
    fn load_based_keys_change_tree() {
        // Simulate packing: penalize previously used edges.
        let g = generators::cycle(6, 1);
        let first = kruskal_msf(&g);
        let loads: Vec<u64> = (0..g.m()).map(|i| if first.contains(&(i as u32)) { 1 } else { 0 }).collect();
        let second = kruskal_msf_by(&g, |i| (loads[i], g.edge(i).w, i as u32));
        // The second tree must prefer the unused edge.
        assert_ne!(first, second);
    }

    #[test]
    fn meter_records_mst_work() {
        let g = generators::complete(16, 1);
        let meter = Meter::enabled();
        let _ = boruvka_msf(&g, &meter);
        assert!(meter.get(CostKind::MstEdge) >= g.m() as u64);
    }
}
