//! Reusable scratch workspaces for the allocation-free query path.
//!
//! The steady-state serving story (ROADMAP: cut-query serving) needs
//! `cut_batch`/`cov_batch` and the per-tree solve stages to stop paying
//! the allocator on every call. A [`Scratch`] bundles every transient
//! buffer those kernels need — packed sort keys, run boundaries, rect
//! batches, range-tree cover items, Euler-tour sweep state — as plain
//! `Vec`s that are `clear()`ed (capacity retained) instead of dropped.
//! After the first call at a given batch size every buffer is warm and
//! the kernels run with **zero heap allocations** (gated by the
//! counting-allocator smoke in `pmc-bench`).
//!
//! Ownership rules (DESIGN.md §13):
//!
//! * A `Scratch` is exclusively borrowed for the duration of one kernel
//!   call; kernels never stash pointers into it across calls.
//! * Buffers carry no meaning between calls — every kernel `clear()`s
//!   what it uses before writing. Reuse is an optimization, never a
//!   behavioral input, so results are bit-identical whichever `Scratch`
//!   (fresh or warm) serves a call.
//! * Callers that own no workspace go through [`with_scratch`] (a
//!   per-worker thread-local pool) or a shared [`ScratchPool`]
//!   (per-`TreeContext`); both recycle workspaces pop/push-style so the
//!   steady state touches no allocator.

use crate::sort::SortScratch;
use std::cell::RefCell;
use std::sync::Mutex;

/// The transient buffers of the batched query kernels, named after
/// their primary role. All fields are public: the kernels split borrows
/// field-by-field (`&scratch.rects` next to `&mut scratch.cover`), which
/// accessor methods cannot express.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Packed `(key, slot)` pairs — batch dedup sorts.
    pub keys: Vec<(u64, u32)>,
    /// `[start, end)` run boundaries over `keys`.
    pub runs: Vec<(u32, u32)>,
    /// Per-run primary accumulators (e.g. `cov(e) + cov(f)`).
    pub vals: Vec<u64>,
    /// Per-run secondary accumulators (e.g. the fused `cov(e, f)`).
    pub acc: Vec<u64>,
    /// Tagged rectangles `(x1, x2, y1, y2, tag)` for the fused
    /// range-tree pass.
    pub rects: Vec<(u32, u32, u32, u32, u32)>,
    /// Range-tree cover items `(packed level/node, packed y-range, tag)`.
    pub cover: Vec<(u64, u64, u32)>,
    /// `(a, b)` vertex pairs (batched LCA requests).
    pub pairs: Vec<(u32, u32)>,
    /// `u32` results (batched LCA answers).
    pub idx: Vec<u32>,
    /// Packed `(position, query)` orderings for offline sweeps.
    pub order: Vec<u64>,
    /// Monotone-stack positions for offline sweeps.
    pub stack: Vec<u32>,
    /// Radix-sort workspace for `(u64, u32)` items.
    pub sort2: SortScratch<(u64, u32)>,
    /// Radix-sort workspace for `(u64, u32, u32)` items (symmetric join).
    pub sort3: SortScratch<(u64, u32, u32)>,
}

impl Scratch {
    pub fn new() -> Self {
        Scratch::default()
    }
}

thread_local! {
    /// Per-worker workspace pool. A pool (rather than a single slot)
    /// keeps [`with_scratch`] reentrancy-safe: a kernel that calls
    /// another kernel on the same thread pops a second workspace instead
    /// of aliasing the first.
    static WORKER_SCRATCH: RefCell<Vec<Scratch>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with this worker's pooled [`Scratch`]. The workspace is
/// popped before and pushed back after, so nested calls compose and the
/// steady state performs no allocation (the pool `Vec` and every buffer
/// inside the recycled workspaces keep their capacity).
pub fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    let mut s = WORKER_SCRATCH
        .with(|pool| pool.borrow_mut().pop())
        .unwrap_or_default();
    let r = f(&mut s);
    WORKER_SCRATCH.with(|pool| pool.borrow_mut().push(s));
    r
}

/// A shared workspace pool for long-lived owners (one per
/// `TreeContext`): concurrent batch calls against one context each pop
/// a workspace, warm workspaces are recycled across calls and callers.
#[derive(Debug, Default)]
pub struct ScratchPool {
    pool: Mutex<Vec<Scratch>>,
}

impl ScratchPool {
    pub fn new() -> Self {
        ScratchPool::default()
    }

    /// Run `f` with a pooled workspace (popped under the lock, run
    /// outside it, pushed back after). Lock poisoning is harmless here —
    /// the pool holds only recyclable buffers — so a poisoned lock is
    /// unwrapped into its inner state rather than propagated.
    pub fn with<R>(&self, f: impl FnOnce(&mut Scratch) -> R) -> R {
        let mut s = self
            .pool
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .pop()
            .unwrap_or_default();
        let r = f(&mut s);
        self.pool
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(s);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_scratch_recycles_capacity() {
        let cap0 = with_scratch(|s| {
            s.keys.clear();
            s.keys.extend((0..1000u32).map(|i| (i as u64, i)));
            s.keys.capacity()
        });
        // The same thread gets the same (warm) workspace back.
        let cap1 = with_scratch(|s| s.keys.capacity());
        assert!(cap1 >= cap0);
        assert!(cap1 >= 1000);
    }

    #[test]
    fn with_scratch_is_reentrant() {
        let (a, b) = with_scratch(|outer| {
            outer.idx.clear();
            outer.idx.push(7);
            let inner_val = with_scratch(|inner| {
                // The nested workspace is a different object.
                inner.idx.clear();
                inner.idx.push(9);
                inner.idx[0]
            });
            (outer.idx[0], inner_val)
        });
        assert_eq!((a, b), (7, 9));
    }

    #[test]
    fn pool_recycles_across_calls() {
        let pool = ScratchPool::new();
        let cap0 = pool.with(|s| {
            s.vals.clear();
            s.vals.resize(512, 0);
            s.vals.capacity()
        });
        let cap1 = pool.with(|s| s.vals.capacity());
        assert!(cap1 >= cap0);
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool = std::sync::Arc::new(ScratchPool::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let p = std::sync::Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                p.with(|s| {
                    s.vals.clear();
                    s.vals.extend(0..t + 10);
                    s.vals.iter().sum::<u64>()
                })
            }));
        }
        for (t, h) in handles.into_iter().enumerate() {
            let expect: u64 = (0..t as u64 + 10).sum();
            assert_eq!(h.join().expect("scratch pool thread"), expect);
        }
    }
}
