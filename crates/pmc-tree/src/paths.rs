//! Edge-disjoint path decompositions and the Root-paths structure.
//!
//! §4.1.1 needs a partition `P` of the tree edges into descending paths
//! such that any root-to-leaf path meets `O(log n)` members of `P`
//! (Property 4.3). Two constructions are provided:
//!
//! * **Heavy paths**: the light edge above each chain head is prepended
//!   to the chain's heavy edges, giving edge-disjoint descending paths;
//!   a root-to-leaf path crosses at most `log2(n) + 1` of them.
//!   Deterministic, and the default.
//! * **Boughs** (GG18, Lemma 4.4): repeatedly peel all maximal pendant
//!   chains; every round at least halves the number of leaves, so
//!   `O(log n)` rounds suffice and a root-to-leaf path meets at most
//!   one bough per round.
//!
//! [`PathDecomposition::root_paths`] is the query of Lemma 4.5: the
//! decomposition paths met by the root-to-`u` path, found by jumping
//! from a path's top edge to its parent.

use crate::rooted::RootedTree;
use pmc_parallel::meter::{CostKind, Meter};

/// Which decomposition to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PathStrategy {
    /// Heavy-path chains with the light top edge attached.
    #[default]
    HeavyPath,
    /// GG18 bough peeling.
    Bough,
}

/// An edge-disjoint partition of tree edges into descending paths.
///
/// Tree edges are identified by their lower endpoint; `paths[p]` lists
/// the edge-vertices of path `p` from shallowest to deepest, forming a
/// contiguous vertical chain.
#[derive(Debug, Clone)]
pub struct PathDecomposition {
    paths: Vec<Vec<u32>>,
    /// Path id of the edge below `v`; `u32::MAX` for the root.
    path_of: Vec<u32>,
    /// Position of edge `v` inside its path.
    pos_of: Vec<u32>,
}

impl PathDecomposition {
    pub fn build(tree: &RootedTree, strategy: PathStrategy, meter: &Meter) -> Self {
        meter.add(CostKind::TreeOp, tree.n() as u64);
        let paths = match strategy {
            PathStrategy::HeavyPath => heavy_paths(tree),
            PathStrategy::Bough => bough_paths(tree),
        };
        let n = tree.n();
        let mut path_of = vec![u32::MAX; n];
        let mut pos_of = vec![u32::MAX; n];
        for (pid, p) in paths.iter().enumerate() {
            for (i, &v) in p.iter().enumerate() {
                debug_assert_eq!(path_of[v as usize], u32::MAX, "edge in two paths");
                path_of[v as usize] = pid as u32;
                pos_of[v as usize] = i as u32;
            }
        }
        PathDecomposition { paths, path_of, pos_of }
    }

    #[inline]
    pub fn num_paths(&self) -> usize {
        self.paths.len()
    }

    #[inline]
    pub fn paths(&self) -> &[Vec<u32>] {
        &self.paths
    }

    #[inline]
    pub fn path(&self, pid: u32) -> &[u32] {
        &self.paths[pid as usize]
    }

    /// Path containing the edge below `v` (`u32::MAX` for the root).
    #[inline]
    pub fn path_of(&self, v: u32) -> u32 {
        self.path_of[v as usize]
    }

    /// Position of edge `v` inside its path.
    #[inline]
    pub fn pos_of(&self, v: u32) -> u32 {
        self.pos_of[v as usize]
    }

    /// Lemma 4.5's `Root-paths(u)`: ids of the decomposition paths that
    /// intersect the root-to-`u` tree path, ordered from `u` upwards.
    /// `O(log n)` time by Property 4.3.
    pub fn root_paths(&self, tree: &RootedTree, u: u32) -> Vec<u32> {
        let mut out = Vec::new();
        let mut v = u;
        while v != tree.root() {
            let pid = self.path_of[v as usize];
            out.push(pid);
            let top = self.paths[pid as usize][0];
            v = tree.parent(top);
        }
        out
    }

    /// Maximum number of decomposition paths met by any root-to-leaf
    /// path — the quantity Property 4.3 bounds by `O(log n)`.
    pub fn max_root_path_crossings(&self, tree: &RootedTree) -> usize {
        tree.leaves()
            .into_iter()
            .map(|l| self.root_paths(tree, l).len())
            .max()
            .unwrap_or(0)
    }

    /// Sanity invariants: every non-root edge is covered exactly once and
    /// every path is a vertical chain ordered shallow-to-deep.
    pub fn validate(&self, tree: &RootedTree) -> Result<(), String> {
        let mut covered = 0usize;
        for (pid, p) in self.paths.iter().enumerate() {
            if p.is_empty() {
                return Err(format!("path {pid} is empty"));
            }
            for w in p.windows(2) {
                if tree.parent(w[1]) != w[0] {
                    return Err(format!(
                        "path {pid} is not a vertical chain at {} -> {}",
                        w[0], w[1]
                    ));
                }
            }
            covered += p.len();
        }
        if covered != tree.n() - 1 {
            return Err(format!("covered {covered} edges, expected {}", tree.n() - 1));
        }
        Ok(())
    }
}

/// Heavy-path based partition.
fn heavy_paths(tree: &RootedTree) -> Vec<Vec<u32>> {
    let n = tree.n();
    if n <= 1 {
        return Vec::new();
    }
    let mut heavy = vec![u32::MAX; n];
    for v in 0..n as u32 {
        if let Some(h) = tree.heavy_child(v) {
            heavy[v as usize] = h;
        }
    }
    let mut paths = Vec::new();
    // Chain heads: the root, and every vertex that is not its parent's
    // heavy child.
    for v in 0..n as u32 {
        let is_head = v == tree.root() || heavy[tree.parent(v) as usize] != v;
        if !is_head {
            continue;
        }
        let mut path = Vec::new();
        if v != tree.root() {
            path.push(v); // the light edge above the chain head
        }
        let mut cur = heavy[v as usize];
        while cur != u32::MAX {
            path.push(cur);
            cur = heavy[cur as usize];
        }
        if !path.is_empty() {
            paths.push(path);
        }
    }
    paths
}

/// GG18 bough peeling.
fn bough_paths(tree: &RootedTree) -> Vec<Vec<u32>> {
    let n = tree.n();
    if n <= 1 {
        return Vec::new();
    }
    let root = tree.root();
    let mut alive_children: Vec<u32> = (0..n as u32).map(|v| tree.children(v).len() as u32).collect();
    let mut removed = vec![false; n]; // edge below v removed
    let mut frontier: Vec<u32> = tree.leaves();
    let mut paths = Vec::new();
    while !frontier.is_empty() {
        // Snapshot of the tree shape at round start: the walk-up must not
        // see removals performed in this same round.
        let snapshot = alive_children.clone();
        let mut next = Vec::new();
        for &leaf in &frontier {
            if leaf == root || removed[leaf as usize] {
                continue;
            }
            // Climb while the parent is a non-root chain vertex.
            let mut chain = vec![leaf];
            let mut top = leaf;
            loop {
                let p = tree.parent(top);
                if p == root || snapshot[p as usize] != 1 {
                    break;
                }
                chain.push(p);
                top = p;
            }
            chain.reverse();
            // Remove the bough.
            for &v in &chain {
                removed[v as usize] = true;
            }
            let attach = tree.parent(top);
            alive_children[attach as usize] -= 1;
            if alive_children[attach as usize] == 0 && attach != root && !removed[attach as usize]
            {
                next.push(attach);
            }
            paths.push(chain);
        }
        frontier = next;
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample() -> RootedTree {
        // Shape from rooted.rs: 0-(1,2), 1-(3,4), 2-5, 4-6.
        RootedTree::from_parents(0, &[0, 0, 0, 1, 1, 2, 4])
    }

    fn random_tree(n: u32, rng: &mut StdRng) -> RootedTree {
        let parent: Vec<u32> =
            (0..n).map(|v| if v == 0 { 0 } else { rng.random_range(0..v) }).collect();
        RootedTree::from_parents(0, &parent)
    }

    fn path_tree(n: u32) -> RootedTree {
        let parent: Vec<u32> = (0..n).map(|v| v.saturating_sub(1)).collect();
        RootedTree::from_parents(0, &parent)
    }

    #[test]
    fn heavy_valid_on_sample() {
        let t = sample();
        let d = PathDecomposition::build(&t, PathStrategy::HeavyPath, &Meter::disabled());
        d.validate(&t).expect("decomposition invariants hold");
        // Edge count preserved.
        let total: usize = d.paths().iter().map(|p| p.len()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn bough_valid_on_sample() {
        let t = sample();
        let d = PathDecomposition::build(&t, PathStrategy::Bough, &Meter::disabled());
        d.validate(&t).expect("decomposition invariants hold");
    }

    #[test]
    fn both_valid_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(71);
        for n in [2u32, 3, 5, 17, 64, 257, 1000] {
            let t = random_tree(n, &mut rng);
            for s in [PathStrategy::HeavyPath, PathStrategy::Bough] {
                let d = PathDecomposition::build(&t, s, &Meter::disabled());
                d.validate(&t).unwrap_or_else(|e| panic!("{s:?} n={n}: {e}"));
            }
        }
    }

    #[test]
    fn property_4_3_crossing_bound() {
        let mut rng = StdRng::seed_from_u64(72);
        for n in [16u32, 64, 256, 1024, 4096] {
            let t = random_tree(n, &mut rng);
            let log2n = (n as f64).log2();
            for (s, factor) in [(PathStrategy::HeavyPath, 1.0), (PathStrategy::Bough, 2.0)] {
                let d = PathDecomposition::build(&t, s, &Meter::disabled());
                let crossings = d.max_root_path_crossings(&t) as f64;
                assert!(
                    crossings <= factor * log2n + 2.0,
                    "{s:?} n={n}: {crossings} crossings > {factor}*log2(n)+2"
                );
            }
        }
    }

    #[test]
    fn path_tree_single_path() {
        let t = path_tree(100);
        for s in [PathStrategy::HeavyPath, PathStrategy::Bough] {
            let d = PathDecomposition::build(&t, s, &Meter::disabled());
            assert_eq!(d.num_paths(), 1, "{s:?}");
            assert_eq!(d.path(0).len(), 99);
            // Ordered shallow-to-deep.
            assert_eq!(d.path(0)[0], 1);
            assert_eq!(*d.path(0).last().expect("path 0 is non-empty"), 99);
        }
    }

    #[test]
    fn star_tree_many_paths() {
        let n = 50u32;
        let parent: Vec<u32> = vec![0; n as usize];
        let t = RootedTree::from_parents(0, &parent);
        for s in [PathStrategy::HeavyPath, PathStrategy::Bough] {
            let d = PathDecomposition::build(&t, s, &Meter::disabled());
            assert_eq!(d.num_paths(), n as usize - 1, "{s:?}");
            assert_eq!(d.max_root_path_crossings(&t), 1);
        }
    }

    #[test]
    fn root_paths_walks_to_root() {
        let mut rng = StdRng::seed_from_u64(73);
        let t = random_tree(200, &mut rng);
        for s in [PathStrategy::HeavyPath, PathStrategy::Bough] {
            let d = PathDecomposition::build(&t, s, &Meter::disabled());
            for u in 0..200u32 {
                let rp = d.root_paths(&t, u);
                // Union of path edges restricted to root->u chain equals chain.
                let mut chain = Vec::new();
                let mut v = u;
                while v != t.root() {
                    chain.push(v);
                    v = t.parent(v);
                }
                // Every chain edge's path id must appear in rp.
                for &e in &chain {
                    assert!(rp.contains(&d.path_of(e)), "{s:?} u={u} missing path of edge {e}");
                }
                // And no duplicates.
                let mut sorted = rp.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), rp.len(), "{s:?} duplicate path ids");
            }
        }
    }

    #[test]
    fn pos_of_matches_path_contents() {
        let mut rng = StdRng::seed_from_u64(74);
        let t = random_tree(150, &mut rng);
        let d = PathDecomposition::build(&t, PathStrategy::Bough, &Meter::disabled());
        for v in 1..150u32 {
            let pid = d.path_of(v);
            assert_eq!(d.path(pid)[d.pos_of(v) as usize], v);
        }
    }

    #[test]
    fn single_vertex_tree_empty() {
        let t = RootedTree::from_parents(0, &[0]);
        for s in [PathStrategy::HeavyPath, PathStrategy::Bough] {
            let d = PathDecomposition::build(&t, s, &Meter::disabled());
            assert_eq!(d.num_paths(), 0);
        }
    }
}
