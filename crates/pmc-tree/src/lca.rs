//! Binary-lifting LCA, level-ancestor queries, and the pluggable
//! [`LcaEngine`] that dispatches between lifting and the O(1)
//! sparse-table path.
//!
//! The interest search (§4.1.3) binary-searches along root-to-vertex
//! chains; [`LcaTable::ancestor_at_depth`] provides the `O(log n)` jump
//! primitive. Construction is `O(n log n)` work, queries `O(log n)`.
//! For the pure-LCA volume (one query per graph edge in the coverage
//! build, Lemma A.1) [`LcaStrategy::SparseTable`] swaps in
//! [`crate::rmq::SparseLca`] — O(1) per query — while level-ancestor
//! queries always stay with the lifting table.

use crate::rmq::SparseLca;
use crate::rooted::RootedTree;
use pmc_parallel::meter::{CostKind, Meter};
use pmc_parallel::scratch::Scratch;

/// Sparse jump-pointer table over a [`RootedTree`].
#[derive(Debug, Clone)]
pub struct LcaTable {
    /// `up[k][v]` = the `2^k`-th ancestor of `v` (clamped at the root).
    up: Vec<Vec<u32>>,
    depth: Vec<u32>,
}

impl LcaTable {
    pub fn build(tree: &RootedTree) -> Self {
        let n = tree.n();
        let levels = usize::BITS as usize - n.max(2).leading_zeros() as usize;
        let mut up = Vec::with_capacity(levels);
        let base: Vec<u32> = (0..n as u32).map(|v| tree.parent(v)).collect();
        up.push(base);
        for k in 1..levels.max(1) {
            let prev = &up[k - 1];
            let next: Vec<u32> = (0..n).map(|v| prev[prev[v] as usize]).collect();
            up.push(next);
        }
        let depth = (0..n as u32).map(|v| tree.depth(v)).collect();
        LcaTable { up, depth }
    }

    #[inline]
    pub fn depth(&self, v: u32) -> u32 {
        self.depth[v as usize]
    }

    /// Number of jump levels in the table (`ceil(log2 n)`, at least 1).
    #[inline]
    pub fn levels(&self) -> usize {
        self.up.len()
    }

    /// The `k`-th ancestor of `v`, **saturating at the root** when `k`
    /// exceeds `depth(v)`.
    ///
    /// The saturation must be explicit: the jump loop below only walks
    /// `up.len()` levels, so bits of `k` at positions `>= up.len()`
    /// would otherwise be *silently dropped* (e.g. `n = 8`, `k = 8`
    /// would return `v` unchanged instead of the root). Clamping `k` to
    /// `depth(v)` first is always representable — `depth(v) < n <=
    /// 2^levels` — and pins the contract to "walk to the root, stop
    /// there".
    pub fn kth_ancestor(&self, mut v: u32, k: u32) -> u32 {
        debug_assert!((v as usize) < self.depth.len(), "vertex out of range");
        let mut k = k.min(self.depth[v as usize]);
        let mut level = 0;
        while k > 0 {
            debug_assert!(level < self.up.len(), "clamped k must fit the table");
            if k & 1 == 1 {
                v = self.up[level][v as usize];
            }
            k >>= 1;
            level += 1;
        }
        v
    }

    /// The ancestor of `v` at depth `d`; panics if `d > depth(v)`.
    pub fn ancestor_at_depth(&self, v: u32, d: u32) -> u32 {
        let dv = self.depth[v as usize];
        assert!(d <= dv, "requested depth below vertex");
        let a = self.kth_ancestor(v, dv - d);
        debug_assert_eq!(self.depth[a as usize], d, "level-ancestor landed off-depth");
        a
    }

    /// Lowest common ancestor of `a` and `b`.
    pub fn lca(&self, mut a: u32, mut b: u32) -> u32 {
        if self.depth[a as usize] < self.depth[b as usize] {
            std::mem::swap(&mut a, &mut b);
        }
        a = self.kth_ancestor(a, self.depth[a as usize] - self.depth[b as usize]);
        if a == b {
            return a;
        }
        for level in (0..self.up.len()).rev() {
            let (ua, ub) = (self.up[level][a as usize], self.up[level][b as usize]);
            if ua != ub {
                a = ua;
                b = ub;
            }
        }
        self.up[0][a as usize]
    }

    /// Distance (number of tree edges) between `a` and `b`.
    pub fn distance(&self, a: u32, b: u32) -> u32 {
        let l = self.lca(a, b);
        self.depth[a as usize] + self.depth[b as usize] - 2 * self.depth[l as usize]
    }
}

/// Which engine answers plain `lca(a, b)` queries. Mirrors
/// `InterestStrategy`/`RowMinimaStrategy`: a params enum with a
/// human-readable [`name`](LcaStrategy::name) for ablation tables.
///
/// Level-ancestor queries (`kth_ancestor`, `ancestor_at_depth`) are not
/// affected — both strategies keep the binary-lifting table for those.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LcaStrategy {
    /// Binary lifting: `O(n log n)` build, `O(log n)` table probes per
    /// query.
    Lifting,
    /// Euler tour + block-decomposed sparse table
    /// ([`crate::rmq::SparseLca`]): `O(n)` build words, one probe per
    /// query.
    #[default]
    SparseTable,
}

impl LcaStrategy {
    pub fn name(self) -> &'static str {
        match self {
            LcaStrategy::Lifting => "lifting",
            LcaStrategy::SparseTable => "sparse-table",
        }
    }
}

/// Anything that can answer LCA queries with metered step accounting.
///
/// `lca_metered` charges [`CostKind::LcaStep`] with the number of table
/// probes the query performs — `levels()` for binary lifting (grows
/// with `log n`), exactly 1 for the sparse-table path. The ablation
/// harness reads this gauge to *record* (not assert) that the O(1)
/// engine's per-query cost does not grow with depth.
pub trait LcaOracle: Sync {
    /// Lowest common ancestor of `a` and `b`.
    fn lca(&self, a: u32, b: u32) -> u32;
    /// Depth of vertex `v` (named to avoid colliding with the inherent
    /// `depth` accessors of the implementors).
    fn node_depth(&self, v: u32) -> u32;
    /// [`LcaOracle::lca`] plus a [`CostKind::LcaStep`] charge per table
    /// probe.
    fn lca_metered(&self, a: u32, b: u32, meter: &Meter) -> u32;

    /// Batched [`LcaOracle::lca_metered`]: answer `pairs[i]` into
    /// `out[i]`, reusing `scratch` buffers so a warm steady state
    /// allocates nothing. The default walks the per-query path (so the
    /// metered step totals are unchanged); [`SparseLca`] overrides it
    /// with the one-pass Euler-tour sweep
    /// ([`SparseLca::lca_batch_into`]), which is bit-identical to the
    /// per-query RMQs — the differential suites pin both the values and
    /// the step totals.
    fn lca_batch_metered(
        &self,
        pairs: &[(u32, u32)],
        out: &mut Vec<u32>,
        scratch: &mut Scratch,
        meter: &Meter,
    ) {
        let _ = scratch;
        out.clear();
        out.reserve(pairs.len());
        for &(a, b) in pairs {
            out.push(self.lca_metered(a, b, meter));
        }
    }
}

impl LcaOracle for LcaTable {
    #[inline]
    fn lca(&self, a: u32, b: u32) -> u32 {
        LcaTable::lca(self, a, b)
    }

    #[inline]
    fn node_depth(&self, v: u32) -> u32 {
        self.depth(v)
    }

    #[inline]
    fn lca_metered(&self, a: u32, b: u32, meter: &Meter) -> u32 {
        // The lifting descent examines every jump level once (plus the
        // equalizing kth_ancestor walk, same order) — charge one step
        // per level so the gauge scales like the real probe count.
        meter.add(CostKind::LcaStep, self.levels() as u64);
        LcaTable::lca(self, a, b)
    }
}

impl LcaOracle for SparseLca {
    #[inline]
    fn lca(&self, a: u32, b: u32) -> u32 {
        SparseLca::lca(self, a, b)
    }

    #[inline]
    fn node_depth(&self, v: u32) -> u32 {
        self.depth(v)
    }

    #[inline]
    fn lca_metered(&self, a: u32, b: u32, meter: &Meter) -> u32 {
        // One O(1) RMQ probe, whatever the tree depth.
        meter.bump(CostKind::LcaStep);
        SparseLca::lca(self, a, b)
    }

    fn lca_batch_metered(
        &self,
        pairs: &[(u32, u32)],
        out: &mut Vec<u32>,
        scratch: &mut Scratch,
        meter: &Meter,
    ) {
        // Same charge as pairs.len() per-query probes — the sweep
        // changes the constant factors, never the gauge.
        meter.add(CostKind::LcaStep, pairs.len() as u64);
        self.lca_batch_into(pairs, out, &mut scratch.order, &mut scratch.stack);
    }
}

/// The LCA substrate a solver context carries: always the lifting table
/// (level ancestors need it), plus the O(1) sparse structure when
/// [`LcaStrategy::SparseTable`] is selected. `lca`/`distance` dispatch
/// on the strategy; `kth_ancestor`/`ancestor_at_depth` delegate to the
/// lifting table unconditionally.
#[derive(Debug, Clone)]
pub struct LcaEngine {
    lifting: LcaTable,
    sparse: Option<SparseLca>,
}

impl LcaEngine {
    pub fn build(tree: &RootedTree, strategy: LcaStrategy, meter: &Meter) -> Self {
        let lifting = LcaTable::build(tree);
        let sparse = match strategy {
            LcaStrategy::Lifting => None,
            LcaStrategy::SparseTable => Some(SparseLca::build(tree, meter)),
        };
        LcaEngine { lifting, sparse }
    }

    /// The strategy this engine was built with.
    #[inline]
    pub fn strategy(&self) -> LcaStrategy {
        if self.sparse.is_some() {
            LcaStrategy::SparseTable
        } else {
            LcaStrategy::Lifting
        }
    }

    /// The underlying binary-lifting table (level-ancestor substrate).
    #[inline]
    pub fn table(&self) -> &LcaTable {
        &self.lifting
    }

    #[inline]
    pub fn depth(&self, v: u32) -> u32 {
        self.lifting.depth(v)
    }

    /// See [`LcaTable::kth_ancestor`] — saturates at the root.
    #[inline]
    pub fn kth_ancestor(&self, v: u32, k: u32) -> u32 {
        self.lifting.kth_ancestor(v, k)
    }

    /// See [`LcaTable::ancestor_at_depth`].
    #[inline]
    pub fn ancestor_at_depth(&self, v: u32, d: u32) -> u32 {
        self.lifting.ancestor_at_depth(v, d)
    }

    #[inline]
    pub fn lca(&self, a: u32, b: u32) -> u32 {
        match &self.sparse {
            Some(s) => s.lca(a, b),
            None => self.lifting.lca(a, b),
        }
    }

    #[inline]
    pub fn distance(&self, a: u32, b: u32) -> u32 {
        match &self.sparse {
            Some(s) => s.distance(a, b),
            None => self.lifting.distance(a, b),
        }
    }
}

impl LcaOracle for LcaEngine {
    #[inline]
    fn lca(&self, a: u32, b: u32) -> u32 {
        LcaEngine::lca(self, a, b)
    }

    #[inline]
    fn node_depth(&self, v: u32) -> u32 {
        self.depth(v)
    }

    #[inline]
    fn lca_metered(&self, a: u32, b: u32, meter: &Meter) -> u32 {
        match &self.sparse {
            Some(s) => s.lca_metered(a, b, meter),
            None => self.lifting.lca_metered(a, b, meter),
        }
    }

    fn lca_batch_metered(
        &self,
        pairs: &[(u32, u32)],
        out: &mut Vec<u32>,
        scratch: &mut Scratch,
        meter: &Meter,
    ) {
        match &self.sparse {
            Some(s) => s.lca_batch_metered(pairs, out, scratch, meter),
            None => self.lifting.lca_batch_metered(pairs, out, scratch, meter),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (RootedTree, LcaTable) {
        // Same shape as rooted.rs sample.
        let t = RootedTree::from_parents(0, &[0, 0, 0, 1, 1, 2, 4]);
        let l = LcaTable::build(&t);
        (t, l)
    }

    #[test]
    fn kth_ancestors() {
        let (_, l) = sample();
        assert_eq!(l.kth_ancestor(6, 1), 4);
        assert_eq!(l.kth_ancestor(6, 2), 1);
        assert_eq!(l.kth_ancestor(6, 3), 0);
        assert_eq!(l.kth_ancestor(6, 99), 0); // clamped
    }

    #[test]
    fn kth_ancestor_saturates_when_k_exceeds_table_levels() {
        // Regression: a path of 8 vertices yields a 4-level table, and
        // before the clamp any k whose set bits all sat at positions
        // >= levels (k = 16, 32, ...) walked zero levels and returned v
        // unchanged instead of saturating at the root.
        let parent: Vec<u32> = (0..8u32).map(|v| v.saturating_sub(1)).collect();
        let t = RootedTree::from_parents(0, &parent);
        let l = LcaTable::build(&t);
        for k in [8u32, 16, 32, 64, 128, 1 << 20, u32::MAX] {
            assert_eq!(l.kth_ancestor(7, k), 0, "k={k} must saturate at root");
            assert_eq!(l.kth_ancestor(3, k), 0, "k={k} must saturate at root");
        }
        // Exact jumps still land exactly.
        assert_eq!(l.kth_ancestor(7, 7), 0);
        assert_eq!(l.kth_ancestor(7, 6), 1);
        // Tiny trees: every k saturates at the root immediately.
        let t2 = RootedTree::from_parents(0, &[0, 0]);
        let l2 = LcaTable::build(&t2);
        assert_eq!(l2.kth_ancestor(1, u32::MAX), 0);
        assert_eq!(l2.kth_ancestor(0, 5), 0);
    }

    #[test]
    fn ancestor_at_depth() {
        let (_, l) = sample();
        assert_eq!(l.ancestor_at_depth(6, 3), 6);
        assert_eq!(l.ancestor_at_depth(6, 2), 4);
        assert_eq!(l.ancestor_at_depth(6, 0), 0);
    }

    #[test]
    #[should_panic]
    fn ancestor_below_vertex_panics() {
        let (_, l) = sample();
        l.ancestor_at_depth(3, 3);
    }

    #[test]
    fn lca_pairs() {
        let (_, l) = sample();
        assert_eq!(l.lca(3, 6), 1);
        assert_eq!(l.lca(3, 4), 1);
        assert_eq!(l.lca(3, 5), 0);
        assert_eq!(l.lca(6, 5), 0);
        assert_eq!(l.lca(4, 6), 4);
        assert_eq!(l.lca(2, 2), 2);
    }

    #[test]
    fn distances() {
        let (_, l) = sample();
        assert_eq!(l.distance(3, 6), 3);
        assert_eq!(l.distance(5, 6), 5);
        assert_eq!(l.distance(0, 0), 0);
    }

    #[test]
    fn long_path_correct() {
        let n = 1 << 12;
        let parent: Vec<u32> = (0..n as u32).map(|v| v.saturating_sub(1)).collect();
        let t = RootedTree::from_parents(0, &parent);
        let l = LcaTable::build(&t);
        assert_eq!(l.lca(100, 4000), 100);
        assert_eq!(l.kth_ancestor(4095, 4095), 0);
        assert_eq!(l.ancestor_at_depth(4095, 1234), 1234);
        assert_eq!(l.distance(10, 20), 10);
    }

    #[test]
    fn engine_strategies_agree_and_meter_steps() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(91);
        let n = 400u32;
        let parent: Vec<u32> =
            (0..n).map(|v| if v == 0 { 0 } else { rng.random_range(0..v) }).collect();
        let t = RootedTree::from_parents(0, &parent);
        let lifting = LcaEngine::build(&t, LcaStrategy::Lifting, &Meter::disabled());
        let sparse = LcaEngine::build(&t, LcaStrategy::SparseTable, &Meter::disabled());
        assert_eq!(lifting.strategy(), LcaStrategy::Lifting);
        assert_eq!(sparse.strategy(), LcaStrategy::SparseTable);
        let (ml, ms) = (Meter::enabled(), Meter::enabled());
        for _ in 0..200 {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            assert_eq!(lifting.lca_metered(a, b, &ml), sparse.lca_metered(a, b, &ms));
            assert_eq!(lifting.distance(a, b), sparse.distance(a, b));
            assert_eq!(lifting.kth_ancestor(a, u32::MAX), 0);
            assert_eq!(sparse.kth_ancestor(a, u32::MAX), 0);
        }
        // Sparse charges exactly one step per query; lifting charges
        // levels() per query (> 1 for n = 400).
        assert_eq!(ms.get(CostKind::LcaStep), 200);
        assert_eq!(ml.get(CostKind::LcaStep), 200 * lifting.table().levels() as u64);
        assert!(ml.get(CostKind::LcaStep) > ms.get(CostKind::LcaStep));
    }

    #[test]
    fn lca_step_constant_per_query_as_depth_grows() {
        // The acceptance gauge: sparse-table steps/query must not grow
        // with tree depth, lifting's must.
        let mut lift_prev = 0u64;
        for n in [1u32 << 6, 1 << 10, 1 << 14] {
            let parent: Vec<u32> = (0..n).map(|v| v.saturating_sub(1)).collect();
            let t = RootedTree::from_parents(0, &parent);
            let sparse = LcaEngine::build(&t, LcaStrategy::SparseTable, &Meter::disabled());
            let lifting = LcaEngine::build(&t, LcaStrategy::Lifting, &Meter::disabled());
            let (ms, ml) = (Meter::enabled(), Meter::enabled());
            for q in 0..64u32 {
                let a = q % n;
                let b = n - 1 - (q % n);
                assert_eq!(sparse.lca_metered(a, b, &ms), lifting.lca_metered(a, b, &ml));
            }
            assert_eq!(ms.get(CostKind::LcaStep), 64, "O(1): one step per query at n={n}");
            let lift_now = ml.get(CostKind::LcaStep);
            assert!(lift_now > lift_prev, "lifting steps grow with depth at n={n}");
            lift_prev = lift_now;
        }
    }

    #[test]
    fn batched_lca_matches_per_query_and_meter_for_both_strategies() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(92);
        let n = 600u32;
        let parent: Vec<u32> =
            (0..n).map(|v| if v == 0 { 0 } else { rng.random_range(0..v) }).collect();
        let t = RootedTree::from_parents(0, &parent);
        let pairs: Vec<(u32, u32)> =
            (0..500).map(|_| (rng.random_range(0..n), rng.random_range(0..n))).collect();
        let mut scratch = Scratch::new();
        for strategy in [LcaStrategy::Lifting, LcaStrategy::SparseTable] {
            let engine = LcaEngine::build(&t, strategy, &Meter::disabled());
            let (mb, mq) = (Meter::enabled(), Meter::enabled());
            let mut out = Vec::new();
            engine.lca_batch_metered(&pairs, &mut out, &mut scratch, &mb);
            let singles: Vec<u32> =
                pairs.iter().map(|&(a, b)| engine.lca_metered(a, b, &mq)).collect();
            assert_eq!(out, singles, "{strategy:?}: batch vs per-query values");
            assert_eq!(
                mb.get(CostKind::LcaStep),
                mq.get(CostKind::LcaStep),
                "{strategy:?}: batch must charge exactly the per-query step total"
            );
        }
    }

    #[test]
    fn random_tree_lca_vs_naive() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let n = 300u32;
        let parent: Vec<u32> =
            (0..n).map(|v| if v == 0 { 0 } else { rng.random_range(0..v) }).collect();
        let t = RootedTree::from_parents(0, &parent);
        let l = LcaTable::build(&t);
        let naive_lca = |mut a: u32, mut b: u32| {
            while a != b {
                if t.depth(a) >= t.depth(b) {
                    a = t.parent(a);
                } else {
                    b = t.parent(b);
                }
            }
            a
        };
        for _ in 0..500 {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            assert_eq!(l.lca(a, b), naive_lca(a, b));
        }
    }
}
