//! Binary-lifting LCA and level-ancestor queries.
//!
//! The interest search (§4.1.3) binary-searches along root-to-vertex
//! chains; [`LcaTable::ancestor_at_depth`] provides the `O(log n)` jump
//! primitive. Construction is `O(n log n)` work, queries `O(log n)`.

use crate::rooted::RootedTree;

/// Sparse jump-pointer table over a [`RootedTree`].
#[derive(Debug, Clone)]
pub struct LcaTable {
    /// `up[k][v]` = the `2^k`-th ancestor of `v` (clamped at the root).
    up: Vec<Vec<u32>>,
    depth: Vec<u32>,
}

impl LcaTable {
    pub fn build(tree: &RootedTree) -> Self {
        let n = tree.n();
        let levels = usize::BITS as usize - n.max(2).leading_zeros() as usize;
        let mut up = Vec::with_capacity(levels);
        let base: Vec<u32> = (0..n as u32).map(|v| tree.parent(v)).collect();
        up.push(base);
        for k in 1..levels.max(1) {
            let prev = &up[k - 1];
            let next: Vec<u32> = (0..n).map(|v| prev[prev[v] as usize]).collect();
            up.push(next);
        }
        let depth = (0..n as u32).map(|v| tree.depth(v)).collect();
        LcaTable { up, depth }
    }

    #[inline]
    pub fn depth(&self, v: u32) -> u32 {
        self.depth[v as usize]
    }

    /// The `k`-th ancestor of `v` (clamped at the root).
    pub fn kth_ancestor(&self, mut v: u32, mut k: u32) -> u32 {
        let mut level = 0;
        while k > 0 && level < self.up.len() {
            if k & 1 == 1 {
                v = self.up[level][v as usize];
            }
            k >>= 1;
            level += 1;
        }
        v
    }

    /// The ancestor of `v` at depth `d`; panics if `d > depth(v)`.
    pub fn ancestor_at_depth(&self, v: u32, d: u32) -> u32 {
        let dv = self.depth[v as usize];
        assert!(d <= dv, "requested depth below vertex");
        self.kth_ancestor(v, dv - d)
    }

    /// Lowest common ancestor of `a` and `b`.
    pub fn lca(&self, mut a: u32, mut b: u32) -> u32 {
        if self.depth[a as usize] < self.depth[b as usize] {
            std::mem::swap(&mut a, &mut b);
        }
        a = self.kth_ancestor(a, self.depth[a as usize] - self.depth[b as usize]);
        if a == b {
            return a;
        }
        for level in (0..self.up.len()).rev() {
            let (ua, ub) = (self.up[level][a as usize], self.up[level][b as usize]);
            if ua != ub {
                a = ua;
                b = ub;
            }
        }
        self.up[0][a as usize]
    }

    /// Distance (number of tree edges) between `a` and `b`.
    pub fn distance(&self, a: u32, b: u32) -> u32 {
        let l = self.lca(a, b);
        self.depth[a as usize] + self.depth[b as usize] - 2 * self.depth[l as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (RootedTree, LcaTable) {
        // Same shape as rooted.rs sample.
        let t = RootedTree::from_parents(0, &[0, 0, 0, 1, 1, 2, 4]);
        let l = LcaTable::build(&t);
        (t, l)
    }

    #[test]
    fn kth_ancestors() {
        let (_, l) = sample();
        assert_eq!(l.kth_ancestor(6, 1), 4);
        assert_eq!(l.kth_ancestor(6, 2), 1);
        assert_eq!(l.kth_ancestor(6, 3), 0);
        assert_eq!(l.kth_ancestor(6, 99), 0); // clamped
    }

    #[test]
    fn ancestor_at_depth() {
        let (_, l) = sample();
        assert_eq!(l.ancestor_at_depth(6, 3), 6);
        assert_eq!(l.ancestor_at_depth(6, 2), 4);
        assert_eq!(l.ancestor_at_depth(6, 0), 0);
    }

    #[test]
    #[should_panic]
    fn ancestor_below_vertex_panics() {
        let (_, l) = sample();
        l.ancestor_at_depth(3, 3);
    }

    #[test]
    fn lca_pairs() {
        let (_, l) = sample();
        assert_eq!(l.lca(3, 6), 1);
        assert_eq!(l.lca(3, 4), 1);
        assert_eq!(l.lca(3, 5), 0);
        assert_eq!(l.lca(6, 5), 0);
        assert_eq!(l.lca(4, 6), 4);
        assert_eq!(l.lca(2, 2), 2);
    }

    #[test]
    fn distances() {
        let (_, l) = sample();
        assert_eq!(l.distance(3, 6), 3);
        assert_eq!(l.distance(5, 6), 5);
        assert_eq!(l.distance(0, 0), 0);
    }

    #[test]
    fn long_path_correct() {
        let n = 1 << 12;
        let parent: Vec<u32> = (0..n as u32).map(|v| v.saturating_sub(1)).collect();
        let t = RootedTree::from_parents(0, &parent);
        let l = LcaTable::build(&t);
        assert_eq!(l.lca(100, 4000), 100);
        assert_eq!(l.kth_ancestor(4095, 4095), 0);
        assert_eq!(l.ancestor_at_depth(4095, 1234), 1234);
        assert_eq!(l.distance(10, 20), 10);
    }

    #[test]
    fn random_tree_lca_vs_naive() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let n = 300u32;
        let parent: Vec<u32> =
            (0..n).map(|v| if v == 0 { 0 } else { rng.random_range(0..v) }).collect();
        let t = RootedTree::from_parents(0, &parent);
        let l = LcaTable::build(&t);
        let naive_lca = |mut a: u32, mut b: u32| {
            while a != b {
                if t.depth(a) >= t.depth(b) {
                    a = t.parent(a);
                } else {
                    b = t.parent(b);
                }
            }
            a
        };
        for _ in 0..500 {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            assert_eq!(l.lca(a, b), naive_lca(a, b));
        }
    }
}
