//! Rooted tree machinery for the 2-respecting min-cut algorithm.
//!
//! Everything in §4.1 of the paper operates on a rooted spanning tree
//! `T`: tree edges are identified with their lower endpoint (the child),
//! subtrees with contiguous postorder intervals, and tree decompositions
//! steer the search for the two cut edges. This crate provides:
//!
//! * [`rooted::RootedTree`]: parent/children arrays, depth, subtree
//!   size, postorder numbering and the `start(u)`/`post(u)` interval
//!   machinery of Lemma A.1 (computed by the Euler-tour technique,
//!   implemented as iterative DFS so path-shaped trees do not overflow
//!   the stack);
//! * [`euler`]: the explicit Euler tour ([J'92]) with a full sparse
//!   table (the O(n log n)-word cross-check);
//! * [`rmq`]: the block-decomposed O(1) RMQ ([`rmq::BlockRmq`]) and the
//!   production Euler-tour LCA built on it ([`rmq::SparseLca`]);
//! * [`lca`]: binary-lifting LCA, level ancestors, and the pluggable
//!   [`lca::LcaEngine`] dispatching between the two via
//!   [`lca::LcaStrategy`];
//! * [`paths`]: heavy-path and bough decompositions — both satisfy
//!   Property 4.3 (any root-to-leaf path meets `O(log n)` decomposition
//!   paths) — plus the Root-paths query structure of Lemma 4.5;
//! * [`centroid`]: the centroid decomposition of Definition 4.11 /
//!   Lemma 4.12.

pub mod centroid;
pub mod euler;
pub mod lca;
pub mod paths;
pub mod rmq;
pub mod rooted;

pub use centroid::CentroidDecomposition;
pub use euler::EulerTour;
pub use lca::{LcaEngine, LcaOracle, LcaStrategy, LcaTable};
pub use paths::{PathDecomposition, PathStrategy};
pub use rmq::{BlockRmq, SparseLca};
pub use rooted::RootedTree;
