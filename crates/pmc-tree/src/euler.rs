//! The Euler-tour technique ([J'92]) and sparse-table RMQ LCA.
//!
//! The paper invokes "the Eulerian circuit technique" for postorder
//! numbers, subtree sizes and descendant counts (Lemma A.1, Lemma 4.12).
//! This module materializes the tour itself — the DFS edge walk of
//! length `2n - 1` in vertex-visit form — plus the classic
//! `O(n log n)`-table constant-time LCA over it, which cross-checks the
//! binary-lifting [`crate::lca::LcaTable`] and gives `O(1)` queries
//! where the interest search is query-bound.

use crate::rooted::RootedTree;
use pmc_parallel::meter::{CostKind, Meter};

/// Euler tour of a rooted tree with first-visit indices and a sparse
/// min-table over visit depths (RMQ -> LCA).
#[derive(Debug, Clone)]
pub struct EulerTour {
    /// Vertex visited at each tour position (`2n - 1` entries).
    tour: Vec<u32>,
    /// Depth of the vertex at each tour position.
    tour_depth: Vec<u32>,
    /// First tour position of each vertex.
    first: Vec<u32>,
    /// `sparse[k][i]` = position of the minimum depth in
    /// `tour[i .. i + 2^k)`.
    sparse: Vec<Vec<u32>>,
}

impl EulerTour {
    pub fn build(tree: &RootedTree, meter: &Meter) -> Self {
        let n = tree.n();
        meter.add(CostKind::TreeOp, (2 * n) as u64);
        let mut tour = Vec::with_capacity(2 * n);
        let mut tour_depth = Vec::with_capacity(2 * n);
        let mut first = vec![u32::MAX; n];
        // Iterative DFS emitting a vertex on entry and after each child.
        let mut stack: Vec<(u32, usize)> = vec![(tree.root(), 0)];
        while let Some(&mut (v, ref mut cursor)) = stack.last_mut() {
            if *cursor == 0 {
                if first[v as usize] == u32::MAX {
                    first[v as usize] = tour.len() as u32;
                }
                tour.push(v);
                tour_depth.push(tree.depth(v));
            }
            let kids = tree.children(v);
            if *cursor < kids.len() {
                let c = kids[*cursor];
                *cursor += 1;
                stack.push((c, 0));
            } else {
                stack.pop();
                if let Some(&mut (p, _)) = stack.last_mut() {
                    tour.push(p);
                    tour_depth.push(tree.depth(p));
                }
            }
        }
        debug_assert_eq!(tour.len(), 2 * n - 1);

        // Sparse table over tour positions by depth.
        let len = tour.len();
        let levels = (usize::BITS - len.max(1).leading_zeros()) as usize;
        let mut sparse: Vec<Vec<u32>> = Vec::with_capacity(levels);
        sparse.push((0..len as u32).collect());
        let mut k = 1;
        while (1 << k) <= len {
            let half = 1 << (k - 1);
            let prev = &sparse[k - 1];
            let cur: Vec<u32> = (0..len - (1 << k) + 1)
                .map(|i| {
                    let a = prev[i];
                    let b = prev[i + half];
                    if tour_depth[a as usize] <= tour_depth[b as usize] {
                        a
                    } else {
                        b
                    }
                })
                .collect();
            sparse.push(cur);
            k += 1;
        }
        EulerTour { tour, tour_depth, first, sparse }
    }

    /// Tour length (`2n - 1`).
    pub fn len(&self) -> usize {
        self.tour.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tour.is_empty()
    }

    /// The vertex sequence of the tour.
    pub fn tour(&self) -> &[u32] {
        &self.tour
    }

    /// First tour position of `v`.
    pub fn first_visit(&self, v: u32) -> u32 {
        self.first[v as usize]
    }

    /// Lowest common ancestor in `O(1)` via depth RMQ on the tour.
    pub fn lca(&self, a: u32, b: u32) -> u32 {
        let (mut i, mut j) = (self.first[a as usize] as usize, self.first[b as usize] as usize);
        if i > j {
            std::mem::swap(&mut i, &mut j);
        }
        let span = j - i + 1;
        let k = (usize::BITS - span.leading_zeros() - 1) as usize;
        let x = self.sparse[k][i];
        let y = self.sparse[k][j + 1 - (1 << k)];
        let pos = if self.tour_depth[x as usize] <= self.tour_depth[y as usize] { x } else { y };
        self.tour[pos as usize]
    }

    /// Tree distance via the RMQ LCA.
    pub fn distance(&self, a: u32, b: u32, tree: &RootedTree) -> u32 {
        let l = self.lca(a, b);
        tree.depth(a) + tree.depth(b) - 2 * tree.depth(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lca::LcaTable;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tree(n: u32, rng: &mut StdRng) -> RootedTree {
        let parent: Vec<u32> =
            (0..n).map(|v| if v == 0 { 0 } else { rng.random_range(0..v) }).collect();
        RootedTree::from_parents(0, &parent)
    }

    #[test]
    fn tour_shape() {
        let t = RootedTree::from_parents(0, &[0, 0, 0, 1, 1, 2, 4]);
        let e = EulerTour::build(&t, &Meter::disabled());
        assert_eq!(e.len(), 2 * 7 - 1);
        assert_eq!(e.tour()[0], 0);
        assert_eq!(*e.tour().last().expect("tour is non-empty"), 0);
        // Every vertex appears; first visits are consistent.
        for v in 0..7u32 {
            assert_eq!(e.tour()[e.first_visit(v) as usize], v);
        }
        // Consecutive tour vertices are tree neighbours.
        for w in e.tour().windows(2) {
            assert!(
                t.parent(w[0]) == w[1] || t.parent(w[1]) == w[0],
                "tour steps along tree edges"
            );
        }
    }

    #[test]
    fn rmq_lca_matches_binary_lifting() {
        let mut rng = StdRng::seed_from_u64(61);
        for n in [2u32, 5, 30, 200, 1000] {
            let t = random_tree(n, &mut rng);
            let euler = EulerTour::build(&t, &Meter::disabled());
            let lifting = LcaTable::build(&t);
            for _ in 0..300 {
                let a = rng.random_range(0..n);
                let b = rng.random_range(0..n);
                assert_eq!(euler.lca(a, b), lifting.lca(a, b), "n={n} ({a},{b})");
            }
        }
    }

    #[test]
    fn lca_of_self_and_root() {
        let mut rng = StdRng::seed_from_u64(62);
        let t = random_tree(50, &mut rng);
        let e = EulerTour::build(&t, &Meter::disabled());
        for v in 0..50u32 {
            assert_eq!(e.lca(v, v), v);
            assert_eq!(e.lca(v, 0), 0);
        }
    }

    #[test]
    fn distances_match() {
        let mut rng = StdRng::seed_from_u64(63);
        let t = random_tree(120, &mut rng);
        let e = EulerTour::build(&t, &Meter::disabled());
        let l = LcaTable::build(&t);
        for _ in 0..200 {
            let a = rng.random_range(0..120);
            let b = rng.random_range(0..120);
            assert_eq!(e.distance(a, b, &t), l.distance(a, b));
        }
    }

    #[test]
    fn deep_path_tour() {
        let n = 50_000u32;
        let parent: Vec<u32> = (0..n).map(|v| v.saturating_sub(1)).collect();
        let t = RootedTree::from_parents(0, &parent);
        let e = EulerTour::build(&t, &Meter::disabled());
        assert_eq!(e.len(), 2 * n as usize - 1);
        assert_eq!(e.lca(100, 40_000), 100);
    }

    #[test]
    fn single_vertex() {
        let t = RootedTree::from_parents(0, &[0]);
        let e = EulerTour::build(&t, &Meter::disabled());
        assert_eq!(e.len(), 1);
        assert_eq!(e.lca(0, 0), 0);
    }
}
