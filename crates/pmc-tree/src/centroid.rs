//! Centroid decomposition (Definition 4.11, Lemma 4.12).
//!
//! The decomposition tree has depth `O(log n)`: removing a centroid
//! leaves components of at most half the size. The paper uses it to
//! steer the search for interested edges (Claim 4.13), which is what
//! the default `Centroid` interest strategy in `pmc-mincut::interest`
//! does; the component-aware queries below ([`children`],
//! [`component_contains`], [`child_toward`], [`post_range`]) are the
//! navigation primitives that descent needs.
//!
//! [`children`]: CentroidDecomposition::children
//! [`component_contains`]: CentroidDecomposition::component_contains
//! [`child_toward`]: CentroidDecomposition::child_toward
//! [`post_range`]: CentroidDecomposition::post_range

use crate::rooted::RootedTree;
use pmc_parallel::meter::{CostKind, Meter};

/// Centroid decomposition of a rooted tree.
///
/// Each centroid-tree node `c` owns a *component*: the connected piece
/// of the tree `c` was the centroid of. The component of the top
/// centroid is the whole tree; the components of `c`'s centroid-tree
/// children partition `component(c) \ {c}`.
#[derive(Debug, Clone)]
pub struct CentroidDecomposition {
    /// Parent in the centroid tree; `u32::MAX` for the top centroid.
    parent_c: Vec<u32>,
    /// Depth in the centroid tree (top centroid = 0).
    depth_c: Vec<u32>,
    /// Per-vertex centroid ancestors, top-down: `anc[v][d]` is `v`'s
    /// centroid ancestor at centroid depth `d` (so `anc[v]` has length
    /// `depth_c[v] + 1` and ends with `v` itself). Total size
    /// `O(n log n)` by Lemma 4.12.
    anc: Vec<Vec<u32>>,
    /// Number of vertices in each centroid's component.
    comp_size: Vec<u32>,
    /// Min/max postorder index over each centroid's component.
    post_lo: Vec<u32>,
    /// See `post_lo`.
    post_hi: Vec<u32>,
    /// Centroid-tree children, CSR layout.
    child_offsets: Vec<u32>,
    child_list: Vec<u32>,
    top: u32,
}

/// The `O(n log n)` work charged for building the decomposition:
/// every vertex is touched once per centroid level it survives, and
/// Lemma 4.12 bounds the levels by `⌊log₂ n⌋ + 1`.
pub fn build_charge(n: usize) -> u64 {
    let n = n.max(1) as u64;
    n * (n.ilog2() as u64 + 1)
}

impl CentroidDecomposition {
    pub fn build(tree: &RootedTree, meter: &Meter) -> Self {
        let n = tree.n();
        meter.add(CostKind::TreeOp, build_charge(n));
        // Undirected adjacency from the rooted structure.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for v in 0..n as u32 {
            if v != tree.root() {
                let p = tree.parent(v);
                adj[v as usize].push(p);
                adj[p as usize].push(v);
            }
        }
        let mut parent_c = vec![u32::MAX; n];
        let mut depth_c = vec![u32::MAX; n];
        let mut anc: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut comp_size = vec![0u32; n];
        let mut post_lo = vec![u32::MAX; n];
        let mut post_hi = vec![0u32; n];
        let mut removed = vec![false; n];
        let mut size = vec![0u32; n];
        let mut top = 0u32;

        // Work queue of (component representative, centroid parent, depth).
        let mut queue: Vec<(u32, u32, u32)> = vec![(tree.root(), u32::MAX, 0)];
        let mut stack: Vec<(u32, u32)> = Vec::new();
        let mut order: Vec<u32> = Vec::new();

        // DFS parent within the current component, indexed by vertex.
        let mut dfs_parent = vec![u32::MAX; n];

        while let Some((rep, cpar, cdepth)) = queue.pop() {
            // Collect the component in DFS preorder, recording DFS parents.
            order.clear();
            stack.clear();
            stack.push((rep, u32::MAX));
            while let Some((v, from)) = stack.pop() {
                order.push(v);
                dfs_parent[v as usize] = from;
                for &u in &adj[v as usize] {
                    if u != from && !removed[u as usize] {
                        stack.push((u, v));
                    }
                }
            }
            // Subtree sizes by reverse-preorder accumulation.
            let comp_size_count = order.len() as u32;
            for &v in &order {
                size[v as usize] = 1;
            }
            for &v in order.iter().rev() {
                let p = dfs_parent[v as usize];
                if p != u32::MAX {
                    size[p as usize] += size[v as usize];
                }
            }
            // Find the centroid: walk from rep toward any too-big part.
            let mut c = rep;
            'outer: loop {
                for &u in &adj[c as usize] {
                    if removed[u as usize] || dfs_parent[u as usize] != c {
                        continue;
                    }
                    if size[u as usize] * 2 > comp_size_count {
                        c = u;
                        continue 'outer;
                    }
                }
                break;
            }
            // The part above c must also be at most half.
            debug_assert!((comp_size_count - size[c as usize]) * 2 <= comp_size_count);

            parent_c[c as usize] = cpar;
            depth_c[c as usize] = cdepth;
            comp_size[c as usize] = comp_size_count;
            if cpar == u32::MAX {
                top = c;
            }
            // Every vertex of this component has `c` as its centroid
            // ancestor at depth `cdepth`; the depths a vertex sees are
            // strictly increasing, so pushing keeps `anc[v]` indexed by
            // centroid depth.
            for &v in &order {
                debug_assert_eq!(anc[v as usize].len(), cdepth as usize);
                anc[v as usize].push(c);
                let p = tree.post(v);
                post_lo[c as usize] = post_lo[c as usize].min(p);
                post_hi[c as usize] = post_hi[c as usize].max(p);
            }
            removed[c as usize] = true;
            for &u in &adj[c as usize] {
                if !removed[u as usize] {
                    queue.push((u, c, cdepth + 1));
                }
            }
        }
        // Centroid-tree children in CSR layout.
        let mut counts = vec![0u32; n + 1];
        for &p in &parent_c {
            if p != u32::MAX {
                counts[p as usize + 1] += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let child_offsets = counts.clone();
        let mut cursor = counts;
        let mut child_list = vec![0u32; n.saturating_sub(1)];
        for v in 0..n as u32 {
            let p = parent_c[v as usize];
            if p != u32::MAX {
                child_list[cursor[p as usize] as usize] = v;
                cursor[p as usize] += 1;
            }
        }
        CentroidDecomposition {
            parent_c,
            depth_c,
            anc,
            comp_size,
            post_lo,
            post_hi,
            child_offsets,
            child_list,
            top,
        }
    }

    /// The root of the centroid tree.
    #[inline]
    pub fn top(&self) -> u32 {
        self.top
    }

    /// Parent of `v` in the centroid tree (`u32::MAX` at the top).
    #[inline]
    pub fn parent(&self, v: u32) -> u32 {
        self.parent_c[v as usize]
    }

    /// Depth of `v` in the centroid tree.
    #[inline]
    pub fn depth(&self, v: u32) -> u32 {
        self.depth_c[v as usize]
    }

    /// Maximum centroid-tree depth (`O(log n)` by Lemma 4.12).
    pub fn max_depth(&self) -> u32 {
        self.depth_c.iter().copied().max().unwrap_or(0)
    }

    /// Is `a` an ancestor of `b` in the centroid tree (inclusive)?
    pub fn is_centroid_ancestor(&self, a: u32, b: u32) -> bool {
        let mut v = b;
        loop {
            if v == a {
                return true;
            }
            if self.depth_c[v as usize] == 0 {
                return false;
            }
            v = self.parent_c[v as usize];
        }
    }

    /// Centroid-tree ancestors of `v`, from `v` to the top.
    pub fn ancestors(&self, v: u32) -> Vec<u32> {
        let mut out = vec![v];
        let mut cur = v;
        while self.parent_c[cur as usize] != u32::MAX {
            cur = self.parent_c[cur as usize];
            out.push(cur);
        }
        out
    }

    /// Centroid-tree children of `c` — the centroids of the components
    /// that `component(c) \ {c}` falls apart into.
    #[inline]
    pub fn children(&self, c: u32) -> &[u32] {
        let lo = self.child_offsets[c as usize] as usize;
        let hi = self.child_offsets[c as usize + 1] as usize;
        &self.child_list[lo..hi]
    }

    /// Number of vertices in `c`'s component (the whole tree for the
    /// top centroid; halves at least once per level by Lemma 4.12).
    #[inline]
    pub fn component_size(&self, c: u32) -> u32 {
        self.comp_size[c as usize]
    }

    /// Does `c`'s component contain `v`? `O(1)`: the component of `c`
    /// is exactly the set of vertices whose centroid ancestor at
    /// `depth(c)` is `c` (including `c` itself).
    #[inline]
    pub fn component_contains(&self, c: u32, v: u32) -> bool {
        self.anc[v as usize].get(self.depth_c[c as usize] as usize) == Some(&c)
    }

    /// The centroid child of `c` whose component contains `v`, in
    /// `O(1)`: it is `v`'s centroid ancestor one level below `c`.
    /// Requires `v` to lie in `c`'s component and differ from `c` — the
    /// boundary-routing lookup of the interest descent (Claim 4.13).
    #[inline]
    pub fn child_toward(&self, c: u32, v: u32) -> u32 {
        debug_assert!(self.component_contains(c, v) && v != c, "v must be in component(c) \\ {{c}}");
        self.anc[v as usize][self.depth_c[c as usize] as usize + 1]
    }

    /// The `[min, max]` postorder-index range of `c`'s component — a
    /// necessary (not sufficient) membership interval: components are
    /// connected subtrees but not postorder-contiguous in general.
    #[inline]
    pub fn post_range(&self, c: u32) -> (u32, u32) {
        (self.post_lo[c as usize], self.post_hi[c as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tree(n: u32, rng: &mut StdRng) -> RootedTree {
        let parent: Vec<u32> =
            (0..n).map(|v| if v == 0 { 0 } else { rng.random_range(0..v) }).collect();
        RootedTree::from_parents(0, &parent)
    }

    #[test]
    fn every_vertex_assigned() {
        let mut rng = StdRng::seed_from_u64(81);
        let t = random_tree(300, &mut rng);
        let cd = CentroidDecomposition::build(&t, &Meter::disabled());
        let mut tops = 0;
        for v in 0..300u32 {
            assert_ne!(cd.depth(v), u32::MAX, "vertex {v} unassigned");
            if cd.parent(v) == u32::MAX {
                tops += 1;
                assert_eq!(cd.top(), v);
            }
        }
        assert_eq!(tops, 1);
    }

    #[test]
    fn depth_logarithmic() {
        let mut rng = StdRng::seed_from_u64(82);
        for n in [15u32, 127, 1024, 5000] {
            let t = random_tree(n, &mut rng);
            let cd = CentroidDecomposition::build(&t, &Meter::disabled());
            let bound = (n as f64).log2().ceil() as u32 + 1;
            assert!(cd.max_depth() <= bound, "n={n}: depth {} > {bound}", cd.max_depth());
        }
    }

    #[test]
    fn path_tree_depth_logarithmic() {
        let n = 1024u32;
        let parent: Vec<u32> = (0..n).map(|v| v.saturating_sub(1)).collect();
        let t = RootedTree::from_parents(0, &parent);
        let cd = CentroidDecomposition::build(&t, &Meter::disabled());
        assert!(cd.max_depth() <= 11);
    }

    #[test]
    fn centroid_lca_lies_on_tree_path() {
        // Classic property: for any u, v the lowest common centroid
        // ancestor lies on the tree path between u and v.
        let mut rng = StdRng::seed_from_u64(83);
        let t = random_tree(120, &mut rng);
        let cd = CentroidDecomposition::build(&t, &Meter::disabled());
        let on_path = |u: u32, v: u32, x: u32| -> bool {
            // naive tree path
            let mut pu = vec![u];
            let mut a = u;
            while a != t.root() {
                a = t.parent(a);
                pu.push(a);
            }
            let mut pv = vec![v];
            let mut b = v;
            while b != t.root() {
                b = t.parent(b);
                pv.push(b);
            }
            let setu: std::collections::HashSet<u32> = pu.iter().copied().collect();
            let lca = *pv.iter().find(|x| setu.contains(x)).expect("root paths intersect");
            let du = pu.iter().position(|&y| y == lca).expect("lca lies on u's root path");
            let dv = pv.iter().position(|&y| y == lca).expect("lca lies on v's root path");
            pu[..=du].contains(&x) || pv[..=dv].contains(&x)
        };
        for _ in 0..300 {
            let u = rng.random_range(0..120);
            let v = rng.random_range(0..120);
            let au = cd.ancestors(u);
            let av: std::collections::HashSet<u32> = cd.ancestors(v).into_iter().collect();
            let meet = *au.iter().find(|x| av.contains(x)).expect("ancestor chains intersect");
            assert!(on_path(u, v, meet), "centroid meet {meet} off path {u}-{v}");
        }
    }

    #[test]
    fn ancestor_queries() {
        let mut rng = StdRng::seed_from_u64(84);
        let t = random_tree(60, &mut rng);
        let cd = CentroidDecomposition::build(&t, &Meter::disabled());
        for v in 0..60u32 {
            assert!(cd.is_centroid_ancestor(cd.top(), v));
            assert!(cd.is_centroid_ancestor(v, v));
        }
    }

    #[test]
    fn single_vertex() {
        let t = RootedTree::from_parents(0, &[0]);
        let cd = CentroidDecomposition::build(&t, &Meter::disabled());
        assert_eq!(cd.top(), 0);
        assert_eq!(cd.max_depth(), 0);
    }

    #[test]
    fn two_vertices() {
        let t = RootedTree::from_parents(0, &[0, 0]);
        let cd = CentroidDecomposition::build(&t, &Meter::disabled());
        assert!(cd.max_depth() <= 1);
        assert!(cd.is_centroid_ancestor(cd.top(), 0));
        assert!(cd.is_centroid_ancestor(cd.top(), 1));
    }

    /// Reference components by brute force: remove all centroids of
    /// depth < depth(c), take the connected piece containing c.
    fn brute_component(t: &RootedTree, cd: &CentroidDecomposition, c: u32) -> Vec<u32> {
        let n = t.n();
        let alive = |v: u32| v == c || cd.depth(v) >= cd.depth(c);
        let mut seen = vec![false; n];
        let mut stack = vec![c];
        seen[c as usize] = true;
        let mut out = Vec::new();
        while let Some(v) = stack.pop() {
            out.push(v);
            let mut nbrs: Vec<u32> = t.children(v).to_vec();
            if v != t.root() {
                nbrs.push(t.parent(v));
            }
            for u in nbrs {
                if alive(u) && !seen[u as usize] {
                    seen[u as usize] = true;
                    stack.push(u);
                }
            }
        }
        out
    }

    #[test]
    fn component_queries_match_bruteforce() {
        let mut rng = StdRng::seed_from_u64(85);
        let t = random_tree(90, &mut rng);
        let cd = CentroidDecomposition::build(&t, &Meter::disabled());
        for c in 0..90u32 {
            let comp = brute_component(&t, &cd, c);
            assert_eq!(comp.len() as u32, cd.component_size(c), "size of component({c})");
            let (lo, hi) = cd.post_range(c);
            let mut in_comp = [false; 90];
            for &v in &comp {
                in_comp[v as usize] = true;
                assert!(cd.component_contains(c, v), "{v} in component({c})");
                assert!((lo..=hi).contains(&t.post(v)), "post range of component({c})");
                if v != c {
                    // Routing: the centroid child toward v is a child of
                    // c whose component contains v.
                    let d = cd.child_toward(c, v);
                    assert_eq!(cd.parent(d), c);
                    assert!(cd.component_contains(d, v));
                }
            }
            for v in 0..90u32 {
                if !in_comp[v as usize] {
                    assert!(!cd.component_contains(c, v), "{v} not in component({c})");
                }
            }
            // Children's components partition component(c) \ {c}.
            let sub: u32 = cd.children(c).iter().map(|&d| cd.component_size(d)).sum();
            assert_eq!(sub + 1, cd.component_size(c), "children partition component({c})");
        }
    }

    #[test]
    fn build_charge_is_n_log_n() {
        // The satellite fix: the charged construction cost is the
        // documented `n · (⌊log₂ n⌋ + 1)`, not a bit-trick expression.
        for n in [1usize, 2, 3, 7, 8, 100, 1024, 5000] {
            let expect = (n.max(1) as u64) * ((n.max(1) as f64).log2().floor() as u64 + 1);
            assert_eq!(build_charge(n), expect, "n={n}");
        }
        let mut rng = StdRng::seed_from_u64(86);
        let t = random_tree(300, &mut rng);
        let meter = Meter::enabled();
        let _ = CentroidDecomposition::build(&t, &meter);
        assert_eq!(meter.get(pmc_parallel::meter::CostKind::TreeOp), build_charge(300));
    }
}
