//! Centroid decomposition (Definition 4.11, Lemma 4.12).
//!
//! The decomposition tree has depth `O(log n)`: removing a centroid
//! leaves components of at most half the size. The paper uses it to
//! steer the search for interested edges (Claim 4.13); this workspace's
//! default interest search uses heavy paths instead (see DESIGN.md), but
//! the decomposition is provided, tested and benchmarked as part of the
//! Lemma 4.12 reproduction.

use crate::rooted::RootedTree;
use pmc_parallel::meter::{CostKind, Meter};

/// Centroid decomposition of a rooted tree.
#[derive(Debug, Clone)]
pub struct CentroidDecomposition {
    /// Parent in the centroid tree; `u32::MAX` for the top centroid.
    parent_c: Vec<u32>,
    /// Depth in the centroid tree (top centroid = 0).
    depth_c: Vec<u32>,
    top: u32,
}

impl CentroidDecomposition {
    pub fn build(tree: &RootedTree, meter: &Meter) -> Self {
        let n = tree.n();
        meter.add(CostKind::TreeOp, (n.max(1) as u64) * (usize::BITS as u64 - n.max(1).leading_zeros() as u64));
        // Undirected adjacency from the rooted structure.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for v in 0..n as u32 {
            if v != tree.root() {
                let p = tree.parent(v);
                adj[v as usize].push(p);
                adj[p as usize].push(v);
            }
        }
        let mut parent_c = vec![u32::MAX; n];
        let mut depth_c = vec![u32::MAX; n];
        let mut removed = vec![false; n];
        let mut size = vec![0u32; n];
        let mut top = 0u32;

        // Work queue of (component representative, centroid parent, depth).
        let mut queue: Vec<(u32, u32, u32)> = vec![(tree.root(), u32::MAX, 0)];
        let mut stack: Vec<(u32, u32)> = Vec::new();
        let mut order: Vec<u32> = Vec::new();

        // DFS parent within the current component, indexed by vertex.
        let mut dfs_parent = vec![u32::MAX; n];

        while let Some((rep, cpar, cdepth)) = queue.pop() {
            // Collect the component in DFS preorder, recording DFS parents.
            order.clear();
            stack.clear();
            stack.push((rep, u32::MAX));
            while let Some((v, from)) = stack.pop() {
                order.push(v);
                dfs_parent[v as usize] = from;
                for &u in &adj[v as usize] {
                    if u != from && !removed[u as usize] {
                        stack.push((u, v));
                    }
                }
            }
            // Subtree sizes by reverse-preorder accumulation.
            let comp_size = order.len() as u32;
            for &v in &order {
                size[v as usize] = 1;
            }
            for &v in order.iter().rev() {
                let p = dfs_parent[v as usize];
                if p != u32::MAX {
                    size[p as usize] += size[v as usize];
                }
            }
            // Find the centroid: walk from rep toward any too-big part.
            let mut c = rep;
            'outer: loop {
                for &u in &adj[c as usize] {
                    if removed[u as usize] || dfs_parent[u as usize] != c {
                        continue;
                    }
                    if size[u as usize] * 2 > comp_size {
                        c = u;
                        continue 'outer;
                    }
                }
                break;
            }
            // The part above c must also be at most half.
            debug_assert!((comp_size - size[c as usize]) * 2 <= comp_size);

            parent_c[c as usize] = cpar;
            depth_c[c as usize] = cdepth;
            if cpar == u32::MAX {
                top = c;
            }
            removed[c as usize] = true;
            for &u in &adj[c as usize] {
                if !removed[u as usize] {
                    queue.push((u, c, cdepth + 1));
                }
            }
        }
        CentroidDecomposition { parent_c, depth_c, top }
    }

    /// The root of the centroid tree.
    #[inline]
    pub fn top(&self) -> u32 {
        self.top
    }

    /// Parent of `v` in the centroid tree (`u32::MAX` at the top).
    #[inline]
    pub fn parent(&self, v: u32) -> u32 {
        self.parent_c[v as usize]
    }

    /// Depth of `v` in the centroid tree.
    #[inline]
    pub fn depth(&self, v: u32) -> u32 {
        self.depth_c[v as usize]
    }

    /// Maximum centroid-tree depth (`O(log n)` by Lemma 4.12).
    pub fn max_depth(&self) -> u32 {
        self.depth_c.iter().copied().max().unwrap_or(0)
    }

    /// Is `a` an ancestor of `b` in the centroid tree (inclusive)?
    pub fn is_centroid_ancestor(&self, a: u32, b: u32) -> bool {
        let mut v = b;
        loop {
            if v == a {
                return true;
            }
            if self.depth_c[v as usize] == 0 {
                return false;
            }
            v = self.parent_c[v as usize];
        }
    }

    /// Centroid-tree ancestors of `v`, from `v` to the top.
    pub fn ancestors(&self, v: u32) -> Vec<u32> {
        let mut out = vec![v];
        let mut cur = v;
        while self.parent_c[cur as usize] != u32::MAX {
            cur = self.parent_c[cur as usize];
            out.push(cur);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tree(n: u32, rng: &mut StdRng) -> RootedTree {
        let parent: Vec<u32> =
            (0..n).map(|v| if v == 0 { 0 } else { rng.random_range(0..v) }).collect();
        RootedTree::from_parents(0, &parent)
    }

    #[test]
    fn every_vertex_assigned() {
        let mut rng = StdRng::seed_from_u64(81);
        let t = random_tree(300, &mut rng);
        let cd = CentroidDecomposition::build(&t, &Meter::disabled());
        let mut tops = 0;
        for v in 0..300u32 {
            assert_ne!(cd.depth(v), u32::MAX, "vertex {v} unassigned");
            if cd.parent(v) == u32::MAX {
                tops += 1;
                assert_eq!(cd.top(), v);
            }
        }
        assert_eq!(tops, 1);
    }

    #[test]
    fn depth_logarithmic() {
        let mut rng = StdRng::seed_from_u64(82);
        for n in [15u32, 127, 1024, 5000] {
            let t = random_tree(n, &mut rng);
            let cd = CentroidDecomposition::build(&t, &Meter::disabled());
            let bound = (n as f64).log2().ceil() as u32 + 1;
            assert!(cd.max_depth() <= bound, "n={n}: depth {} > {bound}", cd.max_depth());
        }
    }

    #[test]
    fn path_tree_depth_logarithmic() {
        let n = 1024u32;
        let parent: Vec<u32> = (0..n).map(|v| v.saturating_sub(1)).collect();
        let t = RootedTree::from_parents(0, &parent);
        let cd = CentroidDecomposition::build(&t, &Meter::disabled());
        assert!(cd.max_depth() <= 11);
    }

    #[test]
    fn centroid_lca_lies_on_tree_path() {
        // Classic property: for any u, v the lowest common centroid
        // ancestor lies on the tree path between u and v.
        let mut rng = StdRng::seed_from_u64(83);
        let t = random_tree(120, &mut rng);
        let cd = CentroidDecomposition::build(&t, &Meter::disabled());
        let on_path = |u: u32, v: u32, x: u32| -> bool {
            // naive tree path
            let mut pu = vec![u];
            let mut a = u;
            while a != t.root() {
                a = t.parent(a);
                pu.push(a);
            }
            let mut pv = vec![v];
            let mut b = v;
            while b != t.root() {
                b = t.parent(b);
                pv.push(b);
            }
            let setu: std::collections::HashSet<u32> = pu.iter().copied().collect();
            let lca = *pv.iter().find(|x| setu.contains(x)).unwrap();
            let du = pu.iter().position(|&y| y == lca).unwrap();
            let dv = pv.iter().position(|&y| y == lca).unwrap();
            pu[..=du].contains(&x) || pv[..=dv].contains(&x)
        };
        for _ in 0..300 {
            let u = rng.random_range(0..120);
            let v = rng.random_range(0..120);
            let au = cd.ancestors(u);
            let av: std::collections::HashSet<u32> = cd.ancestors(v).into_iter().collect();
            let meet = *au.iter().find(|x| av.contains(x)).unwrap();
            assert!(on_path(u, v, meet), "centroid meet {meet} off path {u}-{v}");
        }
    }

    #[test]
    fn ancestor_queries() {
        let mut rng = StdRng::seed_from_u64(84);
        let t = random_tree(60, &mut rng);
        let cd = CentroidDecomposition::build(&t, &Meter::disabled());
        for v in 0..60u32 {
            assert!(cd.is_centroid_ancestor(cd.top(), v));
            assert!(cd.is_centroid_ancestor(v, v));
        }
    }

    #[test]
    fn single_vertex() {
        let t = RootedTree::from_parents(0, &[0]);
        let cd = CentroidDecomposition::build(&t, &Meter::disabled());
        assert_eq!(cd.top(), 0);
        assert_eq!(cd.max_depth(), 0);
    }

    #[test]
    fn two_vertices() {
        let t = RootedTree::from_parents(0, &[0, 0]);
        let cd = CentroidDecomposition::build(&t, &Meter::disabled());
        assert!(cd.max_depth() <= 1);
        assert!(cd.is_centroid_ancestor(cd.top(), 0));
        assert!(cd.is_centroid_ancestor(cd.top(), 1));
    }
}
