//! Block-decomposed O(1) range-minimum queries and the Euler-tour LCA
//! built on them.
//!
//! [`crate::euler::EulerTour`] carries a *full* sparse table over the
//! tour — `O(n log n)` words. This module is the production substrate:
//! the tour is cut into blocks of [`BLOCK`] entries, each position keeps
//! a 64-bit monotone-stack mask that answers in-block queries with one
//! shift and a `trailing_zeros`, and a sparse table is built only over
//! the `n / 64` block minima. Build is `O(n)` work and `O(n)` words;
//! queries are O(1) with the **leftmost** argmin on ties — the same tie
//! rule as SMAWK and `dc_row_minima`, so witnesses stay bit-identical
//! whichever engine answers.
//!
//! The derivation of the mask invariant (why the lowest set bit ≥ `l`
//! of `mask[r]` is the leftmost minimum of `v[l..=r]`) is written out
//! in DESIGN.md §10.

use crate::rooted::RootedTree;
use pmc_parallel::meter::{CostKind, Meter};

/// In-block width: one machine word of mask per position.
pub const BLOCK: usize = 64;

/// O(1) range-minimum structure over a `u32` array in `O(n)` words.
///
/// Ties resolve to the **leftmost** index, both inside blocks (the
/// monotone stack pops only on *strictly* greater values, so earlier
/// equal entries survive and win the `trailing_zeros`) and across
/// blocks (comparisons keep the left candidate on equality).
#[derive(Debug, Clone)]
pub struct BlockRmq {
    values: Vec<u32>,
    /// `masks[i]`: bit `j` set iff in-block position `j <= i % BLOCK`
    /// is on the monotone stack after scanning up to `i` — i.e. `j` is
    /// the leftmost minimum of some suffix window ending at `i`.
    masks: Vec<u64>,
    /// Global index of the leftmost minimum of each block.
    block_argmin: Vec<u32>,
    /// `sparse[k][b]` = global index of the leftmost minimum over
    /// blocks `[b, b + 2^k)`.
    sparse: Vec<Vec<u32>>,
}

impl BlockRmq {
    pub fn new(values: Vec<u32>) -> Self {
        let n = values.len();
        let mut masks = vec![0u64; n];
        let blocks = n.div_ceil(BLOCK);
        let mut block_argmin = Vec::with_capacity(blocks);
        let mut stack: Vec<u32> = Vec::with_capacity(BLOCK);
        for b in 0..blocks {
            let start = b * BLOCK;
            let end = (start + BLOCK).min(n);
            stack.clear();
            let mut mask = 0u64;
            for i in start..end {
                let off = (i - start) as u32;
                while let Some(&top) = stack.last() {
                    if values[start + top as usize] > values[i] {
                        mask &= !(1u64 << top);
                        stack.pop();
                    } else {
                        break;
                    }
                }
                stack.push(off);
                mask |= 1u64 << off;
                masks[i] = mask;
            }
            // Stack bottom is the leftmost block minimum.
            block_argmin.push(start as u32 + masks[end - 1].trailing_zeros());
        }

        // Sparse table over block minima only: O((n/64) log(n/64)) words.
        let levels = if blocks == 0 {
            0
        } else {
            (usize::BITS - blocks.leading_zeros()) as usize
        };
        let mut sparse: Vec<Vec<u32>> = Vec::with_capacity(levels);
        if blocks > 0 {
            sparse.push(block_argmin.clone());
            let mut k = 1;
            while (1 << k) <= blocks {
                let half = 1usize << (k - 1);
                let prev = &sparse[k - 1];
                let cur: Vec<u32> = (0..blocks - (1 << k) + 1)
                    .map(|b| {
                        let a = prev[b];
                        let c = prev[b + half];
                        if values[a as usize] <= values[c as usize] {
                            a
                        } else {
                            c
                        }
                    })
                    .collect();
                sparse.push(cur);
                k += 1;
            }
        }
        BlockRmq { values, masks, block_argmin, sparse }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    #[inline]
    pub fn value(&self, i: usize) -> u32 {
        self.values[i]
    }

    /// Leftmost minimum inside one block over global indices `[l, r]`.
    #[inline]
    fn in_block(&self, l: usize, r: usize) -> usize {
        let base = r - (r % BLOCK);
        let window = self.masks[r] >> (l - base);
        debug_assert!(window != 0, "position r is always on its own stack");
        l + window.trailing_zeros() as usize
    }

    /// Leftmost minimum over whole blocks `[lb, rb]` via the sparse
    /// table.
    #[inline]
    fn over_blocks(&self, lb: usize, rb: usize) -> usize {
        let span = rb - lb + 1;
        if span == 1 {
            return self.block_argmin[lb] as usize;
        }
        let k = (usize::BITS - span.leading_zeros() - 1) as usize;
        let a = self.sparse[k][lb] as usize;
        let b = self.sparse[k][rb + 1 - (1 << k)] as usize;
        if self.values[a] <= self.values[b] {
            a
        } else {
            b
        }
    }

    /// Index of the **leftmost** minimum of `values[l..=r]`. O(1).
    pub fn argmin(&self, l: usize, r: usize) -> usize {
        debug_assert!(l <= r && r < self.values.len(), "argmin range out of bounds");
        let (lb, rb) = (l / BLOCK, r / BLOCK);
        if lb == rb {
            return self.in_block(l, r);
        }
        // Suffix of l's block, interior whole blocks, prefix of r's
        // block — replace only on *strictly* smaller values so the
        // leftmost candidate survives ties.
        let mut best = self.in_block(l, (lb + 1) * BLOCK - 1);
        if lb < rb - 1 {
            let mid = self.over_blocks(lb + 1, rb - 1);
            if self.values[mid] < self.values[best] {
                best = mid;
            }
        }
        let pre = self.in_block(rb * BLOCK, r);
        if self.values[pre] < self.values[best] {
            best = pre;
        }
        best
    }
}

/// Euler-tour + [`BlockRmq`] LCA: `O(n)` build work, `O(n)` words,
/// O(1) per query.
///
/// This is the [`crate::lca::LcaStrategy::SparseTable`] engine. It
/// answers *only* `lca`/`depth`/`distance`; level-ancestor queries
/// (`kth_ancestor`, `ancestor_at_depth`) stay with the binary-lifting
/// [`crate::lca::LcaTable`], which [`crate::lca::LcaEngine`] keeps
/// alongside this structure.
#[derive(Debug, Clone)]
pub struct SparseLca {
    /// Vertex at each tour position (`2n - 1` entries).
    tour: Vec<u32>,
    /// First tour position of each vertex.
    first: Vec<u32>,
    /// Vertex depths, indexed by vertex (for `depth`/`distance`).
    depth: Vec<u32>,
    /// RMQ over per-position tour depths.
    rmq: BlockRmq,
}

impl SparseLca {
    pub fn build(tree: &RootedTree, meter: &Meter) -> Self {
        let n = tree.n();
        meter.add(CostKind::TreeOp, (2 * n) as u64);
        let mut tour = Vec::with_capacity(2 * n);
        let mut tour_depth = Vec::with_capacity(2 * n);
        let mut first = vec![u32::MAX; n];
        let mut stack: Vec<(u32, usize)> = vec![(tree.root(), 0)];
        while let Some(&mut (v, ref mut cursor)) = stack.last_mut() {
            if *cursor == 0 {
                first[v as usize] = tour.len() as u32;
                tour.push(v);
                tour_depth.push(tree.depth(v));
            }
            let kids = tree.children(v);
            if *cursor < kids.len() {
                let c = kids[*cursor];
                *cursor += 1;
                stack.push((c, 0));
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    tour.push(p);
                    tour_depth.push(tree.depth(p));
                }
            }
        }
        debug_assert_eq!(tour.len(), 2 * n - 1);
        let depth = (0..n as u32).map(|v| tree.depth(v)).collect();
        SparseLca { tour, first, depth, rmq: BlockRmq::new(tour_depth) }
    }

    #[inline]
    pub fn depth(&self, v: u32) -> u32 {
        self.depth[v as usize]
    }

    /// Lowest common ancestor in O(1): depth RMQ between first visits.
    pub fn lca(&self, a: u32, b: u32) -> u32 {
        let (mut i, mut j) = (self.first[a as usize] as usize, self.first[b as usize] as usize);
        if i > j {
            std::mem::swap(&mut i, &mut j);
        }
        self.tour[self.rmq.argmin(i, j)]
    }

    /// Tree distance via the O(1) LCA.
    pub fn distance(&self, a: u32, b: u32) -> u32 {
        let l = self.lca(a, b);
        self.depth[a as usize] + self.depth[b as usize] - 2 * self.depth[l as usize]
    }

    /// Batched LCA: answer all of `pairs` with **one** sorted sweep over
    /// the Euler tour instead of `pairs.len()` independent RMQs.
    ///
    /// Offline algorithm: each query becomes the tour window
    /// `[min(first[a], first[b]), max(first[a], first[b])]`; queries are
    /// ordered by right endpoint (`order` holds packed
    /// `(right, query-index)` words), and one left-to-right pass over
    /// the tour maintains a monotone stack of positions whose depths are
    /// weakly increasing bottom-to-top — popping only on *strictly*
    /// greater depth, the same leftmost-tie rule as [`BlockRmq`]. When
    /// the sweep reaches a query's right endpoint, the answer is the
    /// first stack entry at or past its left endpoint: every popped
    /// position is dominated by a strictly shallower one inside the
    /// window, and stack depths increase along the stack, so that entry
    /// is exactly the leftmost minimum [`BlockRmq::argmin`] would
    /// return. Results are therefore bit-identical to per-query
    /// [`SparseLca::lca`].
    ///
    /// `O((t + q log q))` work for tour length `t` and `q` queries, one
    /// cache-friendly pass over the tour; `out`, `order`, and `stack`
    /// are caller-recycled buffers, so a warm steady state allocates
    /// nothing. Small batches dispatch to per-query probes — the sweep's
    /// fixed `O(t)` tour scan dwarfs a handful of `O(1)` RMQs (measured
    /// in the `fused` bench) — with identical answers either way.
    pub fn lca_batch_into(
        &self,
        pairs: &[(u32, u32)],
        out: &mut Vec<u32>,
        order: &mut Vec<u64>,
        stack: &mut Vec<u32>,
    ) {
        if pairs.len() * 8 < self.tour.len() {
            out.clear();
            out.extend(pairs.iter().map(|&(a, b)| self.lca(a, b)));
            return;
        }
        out.clear();
        out.resize(pairs.len(), 0);
        order.clear();
        order.reserve(pairs.len());
        for (i, &(a, b)) in pairs.iter().enumerate() {
            let (fa, fb) = (self.first[a as usize], self.first[b as usize]);
            order.push(((fa.max(fb) as u64) << 32) | i as u64);
        }
        // In-place unstable sort: (right, index) words are distinct, so
        // the order — and the sweep — is fully deterministic.
        order.sort_unstable();
        stack.clear();
        let mut qi = 0;
        for pos in 0..self.tour.len() {
            if qi == order.len() {
                break;
            }
            let d = self.rmq.value(pos);
            while let Some(&top) = stack.last() {
                if self.rmq.value(top as usize) > d {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push(pos as u32);
            while qi < order.len() && (order[qi] >> 32) as usize == pos {
                let i = (order[qi] & u32::MAX as u64) as usize;
                let (a, b) = pairs[i];
                let l = self.first[a as usize].min(self.first[b as usize]);
                // Leftmost minimum of [l, pos]: the first (shallowest)
                // stack entry at or past l.
                let k = stack.partition_point(|&p| p < l);
                out[i] = self.tour[stack[k] as usize];
                qi += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lca::LcaTable;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute_argmin(v: &[u32], l: usize, r: usize) -> usize {
        let mut best = l;
        for i in l + 1..=r {
            if v[i] < v[best] {
                best = i;
            }
        }
        best
    }

    #[test]
    fn rmq_matches_brute_with_leftmost_ties() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1usize, 2, 63, 64, 65, 127, 128, 129, 500, 1000] {
            // Small value range forces many ties.
            let v: Vec<u32> = (0..n).map(|_| rng.random_range(0..6)).collect();
            let rmq = BlockRmq::new(v.clone());
            for _ in 0..400 {
                let a = rng.random_range(0..n);
                let b = rng.random_range(0..n);
                let (l, r) = (a.min(b), a.max(b));
                assert_eq!(rmq.argmin(l, r), brute_argmin(&v, l, r), "n={n} [{l},{r}]");
            }
        }
    }

    #[test]
    fn rmq_exhaustive_small() {
        let mut rng = StdRng::seed_from_u64(12);
        for n in [1usize, 5, 64, 65, 130] {
            let v: Vec<u32> = (0..n).map(|_| rng.random_range(0..4)).collect();
            let rmq = BlockRmq::new(v.clone());
            for l in 0..n {
                for r in l..n {
                    assert_eq!(rmq.argmin(l, r), brute_argmin(&v, l, r), "n={n} [{l},{r}]");
                }
            }
        }
    }

    #[test]
    fn rmq_block_boundaries() {
        // Strictly decreasing then constant: minima pin to boundaries.
        let mut v = vec![0u32; 200];
        for (i, x) in v.iter_mut().enumerate() {
            *x = (200 - i) as u32;
        }
        let rmq = BlockRmq::new(v.clone());
        assert_eq!(rmq.argmin(0, 199), 199);
        assert_eq!(rmq.argmin(63, 64), 64);
        assert_eq!(rmq.argmin(0, 63), 63);
        assert_eq!(rmq.argmin(64, 127), 127);
        let flat = BlockRmq::new(vec![7u32; 300]);
        // All equal: leftmost everywhere, including across blocks.
        assert_eq!(flat.argmin(0, 299), 0);
        assert_eq!(flat.argmin(63, 200), 63);
        assert_eq!(flat.argmin(64, 128), 64);
    }

    fn random_tree(n: u32, rng: &mut StdRng) -> RootedTree {
        let parent: Vec<u32> =
            (0..n).map(|v| if v == 0 { 0 } else { rng.random_range(0..v) }).collect();
        RootedTree::from_parents(0, &parent)
    }

    #[test]
    fn sparse_lca_matches_lifting() {
        let mut rng = StdRng::seed_from_u64(13);
        for n in [1u32, 2, 3, 17, 64, 65, 300, 2000] {
            let t = random_tree(n, &mut rng);
            let sparse = SparseLca::build(&t, &Meter::disabled());
            let lifting = LcaTable::build(&t);
            for _ in 0..500 {
                let a = rng.random_range(0..n);
                let b = rng.random_range(0..n);
                assert_eq!(sparse.lca(a, b), lifting.lca(a, b), "n={n} ({a},{b})");
                assert_eq!(sparse.distance(a, b), lifting.distance(a, b));
            }
        }
    }

    #[test]
    fn sparse_lca_deep_path() {
        let n = 100_000u32;
        let parent: Vec<u32> = (0..n).map(|v| v.saturating_sub(1)).collect();
        let t = RootedTree::from_parents(0, &parent);
        let s = SparseLca::build(&t, &Meter::disabled());
        assert_eq!(s.lca(100, 99_999), 100);
        assert_eq!(s.lca(0, n - 1), 0);
        assert_eq!(s.distance(10, 30), 20);
    }

    #[test]
    fn sparse_lca_single_vertex() {
        let t = RootedTree::from_parents(0, &[0]);
        let s = SparseLca::build(&t, &Meter::disabled());
        assert_eq!(s.lca(0, 0), 0);
        assert_eq!(s.distance(0, 0), 0);
    }

    #[test]
    fn lca_batch_matches_per_query() {
        let mut rng = StdRng::seed_from_u64(21);
        let (mut out, mut order, mut stack) = (Vec::new(), Vec::new(), Vec::new());
        for n in [1u32, 2, 3, 17, 64, 65, 300, 2000] {
            let t = random_tree(n, &mut rng);
            let s = SparseLca::build(&t, &Meter::disabled());
            // Random pairs plus the degenerate diagonal and repeats —
            // duplicates and a == b must sweep correctly too.
            let mut pairs: Vec<(u32, u32)> = (0..400)
                .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
                .collect();
            pairs.push((0, 0));
            pairs.push((n - 1, n - 1));
            pairs.push(pairs[0]);
            s.lca_batch_into(&pairs, &mut out, &mut order, &mut stack);
            assert_eq!(out.len(), pairs.len());
            for (i, &(a, b)) in pairs.iter().enumerate() {
                assert_eq!(out[i], s.lca(a, b), "n={n} query {i} = ({a},{b})");
            }
        }
    }

    #[test]
    fn lca_batch_reused_buffers_and_empty() {
        let mut rng = StdRng::seed_from_u64(22);
        let t = random_tree(500, &mut rng);
        let s = SparseLca::build(&t, &Meter::disabled());
        let (mut out, mut order, mut stack) = (Vec::new(), Vec::new(), Vec::new());
        s.lca_batch_into(&[], &mut out, &mut order, &mut stack);
        assert!(out.is_empty());
        // The same buffers, reused across differently-sized batches,
        // keep answering exactly.
        for round in 0..5 {
            let pairs: Vec<(u32, u32)> = (0..50 + round * 111)
                .map(|_| (rng.random_range(0..500), rng.random_range(0..500)))
                .collect();
            s.lca_batch_into(&pairs, &mut out, &mut order, &mut stack);
            for (i, &(a, b)) in pairs.iter().enumerate() {
                assert_eq!(out[i], s.lca(a, b), "round {round} query {i}");
            }
        }
    }
}
