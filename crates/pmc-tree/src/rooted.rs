//! Rooted tree representation and postorder interval machinery.
//!
//! A tree edge is identified with its *lower endpoint* (the child):
//! edge `e_v = (v, parent(v))` for every non-root `v`. The subtree of
//! `e_v` — `Te` in the paper — is the postorder interval
//! `[start(v), post(v)]`, which is what turns cut queries into 2-D
//! rectangle sums (Lemma A.1).

use pmc_parallel::meter::{CostKind, Meter};

/// An immutable rooted tree over vertices `0..n`.
#[derive(Debug, Clone)]
pub struct RootedTree {
    root: u32,
    parent: Vec<u32>,
    /// Children in DFS visit order, CSR layout.
    child_offsets: Vec<u32>,
    children: Vec<u32>,
    depth: Vec<u32>,
    size: Vec<u32>,
    /// Postorder index of each vertex (0-based; root gets `n - 1`).
    post: Vec<u32>,
    /// `post` inverted: `order[post[v]] == v`.
    order: Vec<u32>,
}

impl RootedTree {
    /// Build from a parent array; `parent[root] == root`. Panics if the
    /// array does not describe a tree (cycle or unreachable vertex).
    pub fn from_parents(root: u32, parent: &[u32]) -> Self {
        let n = parent.len();
        assert!((root as usize) < n && parent[root as usize] == root, "bad root");
        // Children CSR (stable by child id; DFS order derives from this).
        let mut counts = vec![0u32; n + 1];
        for v in 0..n {
            if v as u32 != root {
                counts[parent[v] as usize + 1] += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let child_offsets = counts.clone();
        let mut cursor = counts;
        let mut children = vec![0u32; n.saturating_sub(1)];
        for v in 0..n as u32 {
            if v != root {
                let p = parent[v as usize] as usize;
                children[cursor[p] as usize] = v;
                cursor[p] += 1;
            }
        }

        let mut t = RootedTree {
            root,
            parent: parent.to_vec(),
            child_offsets,
            children,
            depth: vec![0; n],
            size: vec![1; n],
            post: vec![0; n],
            order: vec![0; n],
        };
        t.compute_orders();
        t
    }

    /// Build from an undirected edge list spanning `0..n`, rooted at
    /// `root`. Panics if the edges do not form a spanning tree.
    pub fn from_edge_list(n: usize, edges: &[(u32, u32)], root: u32) -> Self {
        assert_eq!(edges.len(), n.saturating_sub(1), "a tree on {n} vertices has n-1 edges");
        // Adjacency
        let mut deg = vec![0u32; n + 1];
        for &(u, v) in edges {
            deg[u as usize + 1] += 1;
            deg[v as usize + 1] += 1;
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let offsets = deg.clone();
        let mut cursor = deg;
        let mut adj = vec![0u32; edges.len() * 2];
        for &(u, v) in edges {
            adj[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            adj[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        // Orient away from root (iterative BFS).
        let mut parent = vec![u32::MAX; n];
        parent[root as usize] = root;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(root);
        let mut seen = 1usize;
        while let Some(v) = queue.pop_front() {
            let lo = offsets[v as usize] as usize;
            let hi = offsets[v as usize + 1] as usize;
            for &u in &adj[lo..hi] {
                if parent[u as usize] == u32::MAX {
                    parent[u as usize] = v;
                    seen += 1;
                    queue.push_back(u);
                }
            }
        }
        assert_eq!(seen, n, "edge list is not connected");
        Self::from_parents(root, &parent)
    }

    /// Iterative DFS computing depth, subtree size and postorder.
    fn compute_orders(&mut self) {
        let n = self.parent.len();
        let mut post_counter = 0u32;
        // Stack of (vertex, next child cursor).
        let mut stack: Vec<(u32, u32)> = Vec::with_capacity(64);
        stack.push((self.root, 0));
        self.depth[self.root as usize] = 0;
        let mut visited = 1usize;
        while let Some(&mut (v, ref mut cursor)) = stack.last_mut() {
            let kids = self.children_range(v);
            if (*cursor as usize) < kids.len() {
                let c = kids[*cursor as usize];
                *cursor += 1;
                assert_ne!(c, v, "cycle detected");
                self.depth[c as usize] = self.depth[v as usize] + 1;
                visited += 1;
                stack.push((c, 0));
            } else {
                // Post-visit: children complete.
                let mut size = 1u32;
                for &c in kids {
                    size += self.size[c as usize];
                }
                self.size[v as usize] = size;
                self.post[v as usize] = post_counter;
                self.order[post_counter as usize] = v;
                post_counter += 1;
                stack.pop();
            }
        }
        assert_eq!(visited, n, "parent array does not reach every vertex");
        assert_eq!(post_counter as usize, n);
    }

    fn children_range(&self, v: u32) -> &[u32] {
        let lo = self.child_offsets[v as usize] as usize;
        let hi = self.child_offsets[v as usize + 1] as usize;
        &self.children[lo..hi]
    }

    #[inline]
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    #[inline]
    pub fn root(&self) -> u32 {
        self.root
    }

    #[inline]
    pub fn parent(&self, v: u32) -> u32 {
        self.parent[v as usize]
    }

    #[inline]
    pub fn depth(&self, v: u32) -> u32 {
        self.depth[v as usize]
    }

    #[inline]
    pub fn size(&self, v: u32) -> u32 {
        self.size[v as usize]
    }

    /// Children of `v` in DFS order. Their postorder intervals are
    /// consecutive and tile `[start(v), post(v) - 1]`.
    #[inline]
    pub fn children(&self, v: u32) -> &[u32] {
        self.children_range(v)
    }

    /// Postorder index of `v`.
    #[inline]
    pub fn post(&self, v: u32) -> u32 {
        self.post[v as usize]
    }

    /// First postorder index inside `v`'s subtree:
    /// `start(v) = post(v) - size(v) + 1`.
    #[inline]
    pub fn start(&self, v: u32) -> u32 {
        self.post[v as usize] + 1 - self.size[v as usize]
    }

    /// Vertex with postorder index `i`.
    #[inline]
    pub fn vertex_at_post(&self, i: u32) -> u32 {
        self.order[i as usize]
    }

    /// Is `a` an ancestor of `b` (inclusive: `a` is its own ancestor)?
    #[inline]
    pub fn is_ancestor(&self, a: u32, b: u32) -> bool {
        self.start(a) <= self.post(b) && self.post(b) <= self.post(a)
    }

    /// Non-root vertices, i.e. the tree edges (edge `v` = `(v, parent(v))`).
    pub fn edge_vertices(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.n() as u32).filter(move |&v| v != self.root)
    }

    /// Heavy child of `v` (child with the largest subtree), if any.
    pub fn heavy_child(&self, v: u32) -> Option<u32> {
        self.children_range(v).iter().copied().max_by_key(|&c| self.size[c as usize])
    }

    /// All leaves (vertices without children).
    pub fn leaves(&self) -> Vec<u32> {
        (0..self.n() as u32).filter(|&v| self.children_range(v).is_empty()).collect()
    }

    /// Height of the tree: the maximum vertex depth (0 for a single
    /// vertex).
    pub fn height(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Record the `O(n)` tree-construction work on a meter.
    pub fn charge_build(&self, meter: &Meter) {
        meter.add(CostKind::TreeOp, self.n() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed example:
    /// ```text
    ///        0
    ///       / \
    ///      1   2
    ///     /|   |
    ///    3 4   5
    ///      |
    ///      6
    /// ```
    fn sample() -> RootedTree {
        RootedTree::from_parents(0, &[0, 0, 0, 1, 1, 2, 4])
    }

    #[test]
    fn parents_and_depths() {
        let t = sample();
        assert_eq!(t.n(), 7);
        assert_eq!(t.root(), 0);
        assert_eq!(t.parent(6), 4);
        assert_eq!(t.depth(0), 0);
        assert_eq!(t.depth(3), 2);
        assert_eq!(t.depth(6), 3);
    }

    #[test]
    fn height_is_max_depth() {
        assert_eq!(sample().height(), 3);
        assert_eq!(RootedTree::from_parents(0, &[0]).height(), 0);
        let path: Vec<u32> = (0..10u32).map(|v| v.saturating_sub(1)).collect();
        assert_eq!(RootedTree::from_parents(0, &path).height(), 9);
    }

    #[test]
    fn sizes() {
        let t = sample();
        assert_eq!(t.size(0), 7);
        assert_eq!(t.size(1), 4);
        assert_eq!(t.size(2), 2);
        assert_eq!(t.size(4), 2);
        assert_eq!(t.size(6), 1);
    }

    #[test]
    fn postorder_intervals() {
        let t = sample();
        // Subtree of v occupies [start(v), post(v)], length = size(v).
        for v in 0..7u32 {
            assert_eq!(t.post(v) - t.start(v) + 1, t.size(v));
        }
        // Root interval covers everything.
        assert_eq!(t.start(0), 0);
        assert_eq!(t.post(0), 6);
        // The postorder permutation is a bijection.
        let mut seen = [false; 7];
        for v in 0..7u32 {
            let p = t.post(v) as usize;
            assert!(!seen[p]);
            seen[p] = true;
            assert_eq!(t.vertex_at_post(t.post(v)), v);
        }
    }

    #[test]
    fn ancestor_queries() {
        let t = sample();
        assert!(t.is_ancestor(0, 6));
        assert!(t.is_ancestor(1, 6));
        assert!(t.is_ancestor(4, 6));
        assert!(t.is_ancestor(6, 6));
        assert!(!t.is_ancestor(6, 4));
        assert!(!t.is_ancestor(2, 6));
        assert!(!t.is_ancestor(3, 4));
    }

    #[test]
    fn children_tile_subtree_interval() {
        let t = sample();
        for v in 0..7u32 {
            let kids = t.children(v);
            if kids.is_empty() {
                continue;
            }
            // DFS order: consecutive children intervals, ending at post(v)-1.
            let mut expect_start = t.start(v);
            for &c in kids {
                assert_eq!(t.start(c), expect_start);
                expect_start = t.post(c) + 1;
            }
            assert_eq!(expect_start, t.post(v));
        }
    }

    #[test]
    fn from_edge_list_matches() {
        let edges = [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (4, 6)];
        let t = RootedTree::from_edge_list(7, &edges, 0);
        assert_eq!(t.parent(6), 4);
        assert_eq!(t.size(1), 4);
        assert!(t.is_ancestor(1, 6));
    }

    #[test]
    fn deep_path_no_stack_overflow() {
        let n = 200_000;
        let parent: Vec<u32> = (0..n as u32).map(|v| v.saturating_sub(1)).collect();
        let t = RootedTree::from_parents(0, &parent);
        assert_eq!(t.depth(n as u32 - 1), n as u32 - 1);
        assert_eq!(t.size(0), n as u32);
        assert_eq!(t.post(0), n as u32 - 1);
    }

    #[test]
    fn heavy_child_and_leaves() {
        let t = sample();
        assert_eq!(t.heavy_child(0), Some(1));
        assert_eq!(t.heavy_child(1), Some(4));
        assert_eq!(t.heavy_child(6), None);
        let mut leaves = t.leaves();
        leaves.sort_unstable();
        assert_eq!(leaves, vec![3, 5, 6]);
    }

    #[test]
    #[should_panic]
    fn disconnected_edge_list_rejected() {
        RootedTree::from_edge_list(4, &[(0, 1), (2, 3)], 0);
    }

    #[test]
    fn single_vertex() {
        let t = RootedTree::from_parents(0, &[0]);
        assert_eq!(t.n(), 1);
        assert_eq!(t.size(0), 1);
        assert_eq!(t.post(0), 0);
        assert_eq!(t.start(0), 0);
    }
}
