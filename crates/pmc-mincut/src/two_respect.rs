//! Minimum 2-respecting cut of a spanning tree (Theorem 4.2).
//!
//! Given graph `G` and spanning tree `T`, find the minimum cut of `G`
//! crossing at most two edges of `T`:
//!
//! 1. **1-respecting** cuts are the subtree weights `cov(e)` — a single
//!    sweep.
//! 2. **Single-path** pairs (§4.1.2): decompose `T` into descending
//!    paths (Property 4.3); for each path the cut matrix restricted to
//!    `i < j` is partial Monge — supermodular orientation, as every pair
//!    on a vertical chain is nested — and [`pmc_monge::triangle_minimum`]
//!    inspects `O(ℓ log ℓ)` entries.
//! 3. **Cross-path** pairs (§4.1.3): every improving pair is mutually
//!    interesting, so the interest arms (`de`/`ce`, [`crate::interest`])
//!    over-approximate the candidate paths via Root-paths queries
//!    (Claim 4.15); the symmetric join of Lemma 4.16 produces, per path
//!    pair, the edge lists `r`/`s`. Each pair splits into at most two
//!    configuration-uniform Monge blocks (the nested prefix of `r`
//!    against `s`, and the incomparable remainder; DESIGN.md derives the
//!    split and orientations), solved by SMAWK.
//!
//! All three stages run in parallel across paths/pairs through rayon.

use crate::cutquery::CutQuery;
use crate::engine::TreeContext;
use crate::interest::{InterestEngine, InterestSearch, InterestStrategy};
use pmc_graph::{CutResult, Graph};
use pmc_monge::{monge_minimum_with, triangle_minimum_with, Orient, RowMinimaAlgo};
use pmc_parallel::meter::Meter;
use pmc_parallel::scratch::ScratchPool;
use pmc_parallel::sort::SortScratch;
use pmc_tree::{LcaEngine, LcaStrategy, LcaTable, PathDecomposition, PathStrategy, RootedTree};
use rayon::prelude::*;
use std::sync::Arc;

/// Tuning knobs for the 2-respecting solver.
#[derive(Debug, Clone, Copy)]
pub struct TwoRespectParams {
    /// `ε` of the range structures (Lemma 4.25 / Theorem 4.26). Values
    /// near `1/log n` give the binary range tree; larger values give
    /// flatter trees with cheaper construction and costlier queries.
    pub eps: f64,
    /// Which Property-4.3 decomposition to use.
    pub strategy: PathStrategy,
    /// Row-minima engine: SMAWK (work-optimal, the [RV94] substitute)
    /// or divide-and-conquer (log-factor work, polylog span, [AKPS90]).
    pub monge_algo: RowMinimaAlgo,
    /// Which decomposition traces the interest arms (Claim 4.13):
    /// centroid descent (`O(log n)` cut queries per edge, the default)
    /// or the heavy-path fallback (`O(log² n)`, DESIGN.md §2).
    ///
    /// Heeded by direct [`two_respecting_mincut`] callers; inside the
    /// exact pipeline, `ExactParams::interest_strategy` is authoritative
    /// and overwrites this field — set the knob there instead.
    pub interest_strategy: InterestStrategy,
    /// Which substrate answers plain LCA queries: binary lifting
    /// (`O(log n)` probes per query) or the Euler-tour sparse table
    /// (`O(1)`). Level-ancestor queries always stay with lifting.
    pub lca_strategy: LcaStrategy,
}

impl Default for TwoRespectParams {
    fn default() -> Self {
        TwoRespectParams {
            eps: 0.25,
            strategy: PathStrategy::HeavyPath,
            monge_algo: RowMinimaAlgo::Smawk,
            interest_strategy: InterestStrategy::default(),
            lca_strategy: LcaStrategy::default(),
        }
    }
}

impl TwoRespectParams {
    /// The paper-faithful configuration of Theorem 4.2: SMAWK row
    /// minima (the [RV94] substitute of §4.1.2/§4.1.3), centroid-descent
    /// interest arms (Claim 4.13), and the O(1)-query Euler-tour LCA —
    /// the variants the complexity statements assume. `Default`
    /// currently coincides on the substrate knobs; `paper()` pins them
    /// explicitly so experiment configs stay stable if defaults move.
    pub fn paper() -> Self {
        TwoRespectParams {
            monge_algo: RowMinimaAlgo::Smawk,
            interest_strategy: InterestStrategy::Centroid,
            lca_strategy: LcaStrategy::SparseTable,
            ..TwoRespectParams::default()
        }
    }
}

/// Outcome of the 2-respecting search: the best cut value, one side of
/// the partition, and the witnessing tree edge pair.
#[derive(Debug, Clone)]
pub struct TwoRespectOutcome {
    pub cut: CutResult,
    /// `(e, f)` lower endpoints; `e == f` for a 1-respecting cut.
    pub pair: (u32, u32),
}

/// Best `(value, e, f)` triple, reduced over parallel stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Best {
    value: u64,
    e: u32,
    f: u32,
}

impl Best {
    const NONE: Best = Best { value: u64::MAX, e: u32::MAX, f: u32::MAX };
    fn min(self, other: Best) -> Best {
        if self.value <= other.value {
            self
        } else {
            other
        }
    }
}

/// # Example
///
/// ```
/// use pmc_mincut::{two_respecting_mincut, TwoRespectParams};
/// use pmc_parallel::Meter;
/// use pmc_tree::RootedTree;
///
/// // A 4-cycle with a path spanning tree: min cut = 2, realized by a
/// // pair of tree edges.
/// let g = pmc_graph::Graph::from_edges(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1)]);
/// let tree = RootedTree::from_parents(0, &[0, 0, 1, 2]);
/// let out = two_respecting_mincut(&g, &tree, &TwoRespectParams::default(), &Meter::disabled());
/// assert_eq!(out.cut.value, 2);
/// ```
/// Minimum 2-respecting cut of `tree` in `g` (Theorem 4.2).
///
/// One-shot wrapper: builds a [`TreeContext`] (parallel sub-builds) and
/// solves once. Callers that solve repeatedly — or query the same tree
/// — should build the context themselves and use
/// [`two_respecting_mincut_in`] / [`TreeContext::solve`].
pub fn two_respecting_mincut(
    g: &Graph,
    tree: &RootedTree,
    params: &TwoRespectParams,
    meter: &Meter,
) -> TwoRespectOutcome {
    let ctx = TreeContext::build(g, Arc::new(tree.clone()), params, meter);
    two_respecting_mincut_in(&ctx, meter)
}

/// [`two_respecting_mincut`] over a prebuilt [`TreeContext`]: pure
/// query work, no per-call construction.
pub fn two_respecting_mincut_in(ctx: &TreeContext<'_>, meter: &Meter) -> TwoRespectOutcome {
    let tree = ctx.tree();
    let q = ctx.cut_query();
    let params = ctx.params();
    if meter.is_enabled() {
        meter.record_depth("two_respect:tree_height", tree.height() as u64);
    }

    // Stage 1: 1-respecting cuts — the batched coverage slice.
    let root = tree.root();
    let one = q
        .cov_all()
        .par_iter()
        .enumerate()
        .filter(|&(v, _)| v as u32 != root)
        .map(|(v, &c)| Best { value: c, e: v as u32, f: v as u32 })
        .reduce(|| Best::NONE, Best::min);

    // Stage 2: single-path partial Monge searches.
    let decomp = ctx.decomposition();
    let single = decomp
        .paths()
        .par_iter()
        .map(|p| {
            if p.len() < 2 {
                return Best::NONE;
            }
            match triangle_minimum_with(
                params.monge_algo,
                p.len(),
                Orient::Supermodular,
                |i, j| q.cut(p[i], p[j], meter),
                meter,
            ) {
                Some(loc) => Best { value: loc.value, e: p[loc.row], f: p[loc.col] },
                None => Best::NONE,
            }
        })
        .reduce(|| Best::NONE, Best::min);

    // Stage 3: cross-path pairs via interest arms.
    let cross = cross_path_minimum(
        q,
        ctx.lca(),
        decomp,
        params.monge_algo,
        ctx.interest(),
        ctx.scratch_pool(),
        meter,
    );

    let best = one.min(single).min(cross);
    debug_assert_ne!(best.value, u64::MAX);
    let side = q.cut_side(best.e, best.f);
    TwoRespectOutcome {
        cut: CutResult { value: best.value, side },
        pair: (best.e, best.f),
    }
}

/// Stage 3 worker: interest arms -> tuples -> symmetric join -> Monge
/// blocks.
#[allow(clippy::too_many_arguments)]
fn cross_path_minimum(
    q: &CutQuery<'_>,
    lca: &LcaEngine,
    decomp: &PathDecomposition,
    algo: RowMinimaAlgo,
    engine: &InterestEngine,
    pool: &ScratchPool,
    meter: &Meter,
) -> Best {
    let tree = q.tree();
    let n = tree.n();
    if decomp.num_paths() < 2 {
        return Best::NONE;
    }
    let search = InterestSearch::with_engine(q, lca, engine);

    // Interest tuples (Claim 4.15): for each edge e, the decomposition
    // paths on the root-paths of its arm endpoints.
    let tuples: Vec<(u32, u32, u32)> = (0..n as u32)
        .into_par_iter()
        .filter(|&v| v != tree.root())
        .flat_map_iter(|e| {
            let arms = search.arms(e, meter);
            let p_e = decomp.path_of(e);
            let mut qs: Vec<u32> = decomp
                .root_paths(tree, arms.de)
                .into_iter()
                .chain(decomp.root_paths(tree, arms.ce))
                .filter(|&qid| qid != p_e)
                .collect();
            qs.sort_unstable();
            qs.dedup();
            qs.into_iter().map(move |qid| (p_e, qid, e)).collect::<Vec<_>>()
        })
        .collect();

    // Symmetric join (Lemma 4.16): group by unordered path pair through
    // a deterministic parallel sort — key by the packed pair id, with
    // the side (r vs s) and the in-path position as tie-breaks. Equal
    // keys cannot occur (each (p, q, e) tuple is unique and positions
    // within a path are distinct), so job order, list order, and the
    // metered query counts are identical across runs and thread counts;
    // the HashMap this replaces grouped in allocator order.
    let mut keyed: Vec<(u64, u32, u32)> = tuples
        .into_par_iter()
        .map(|(p, qid, e)| {
            let (a, b, side) = if p < qid { (p, qid, 0u32) } else { (qid, p, 1u32) };
            (((a as u64) << 32) | b as u64, side, e)
        })
        .collect();
    // The radix passes run out of the context's recycled workspace:
    // repeated solves against one context stop paying the sort's
    // buffer/histogram allocations.
    pool.with(|s| sort_join_keys(&mut keyed, decomp, n, &mut s.sort3));

    // Contiguous runs of one pair id = one join group.
    let mut jobs: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < keyed.len() {
        let mut j = i + 1;
        while j < keyed.len() && keyed[j].0 == keyed[i].0 {
            j += 1;
        }
        jobs.push((i, j));
        i = j;
    }

    let keyed = &keyed;
    jobs.into_par_iter()
        .map(|(lo, hi)| {
            let run = &keyed[lo..hi];
            // Entries are sorted r-side (0) before s-side (1), each
            // shallow-to-deep along its path.
            let split = run.partition_point(|&(_, side, _)| side == 0);
            let (r_run, s_run) = run.split_at(split);
            if r_run.is_empty() || s_run.is_empty() {
                return Best::NONE;
            }
            pair_minimum(q, r_run, s_run, algo, meter)
        })
        .reduce(|| Best::NONE, Best::min)
}

/// Sort the symmetric-join tuples into `(pair, side, pos_of(e), e)`
/// order with a two-word parallel LSD radix sort: the high word is the
/// packed path-pair id, the low word packs `(side, position, edge)` —
/// the paper's "(path-id, position)" key — so no comparisons happen on
/// the hot path. Positions and edge ids are `< n < 2^31`, so the low
/// word is exact; the wider case falls back to the comparison sort,
/// whose order the radix path reproduces bit-identically — see
/// `radix_join_order_matches_comparison_sort` and the shrunken-guard
/// test driving the fallback through [`sort_join_keys_with_limit`].
fn sort_join_keys(
    keyed: &mut Vec<(u64, u32, u32)>,
    decomp: &PathDecomposition,
    n: usize,
    scratch: &mut SortScratch<(u64, u32, u32)>,
) {
    sort_join_keys_with_limit(keyed, decomp, n, 1 << 31, scratch);
}

/// [`sort_join_keys`] with the packed-key guard exposed: the radix path
/// runs only when `n < limit` (so the `(side, pos, e)` low word cannot
/// collide). Production passes `2^31`; tests shrink `limit` to force
/// the comparison fallback on reachable sizes and pin both paths to the
/// same order.
fn sort_join_keys_with_limit(
    keyed: &mut Vec<(u64, u32, u32)>,
    decomp: &PathDecomposition,
    n: usize,
    limit: u64,
    scratch: &mut SortScratch<(u64, u32, u32)>,
) {
    if (n as u64) < limit {
        pmc_parallel::sort::radix_sort_by_key2_with(
            keyed,
            |&(pair, _, _)| pair,
            |&(_, side, e)| {
                ((side as u64) << 63) | ((decomp.pos_of(e) as u64) << 32) | e as u64
            },
            scratch,
        );
    } else {
        keyed.par_sort_unstable_by_key(|&(pair, side, e)| (pair, side, decomp.pos_of(e), e));
    }
}

/// Minimum over `r x s` where `r`, `s` are vertical chains from two
/// distinct decomposition paths, handed in as sorted join-run slices
/// (`(pair, side, edge)` tuples; only `.2` is read). Working directly on
/// the run slices means the join jobs materialize no per-pair edge
/// lists. Splits into the nested-prefix block and the incomparable
/// block (at most one side can contain ancestors of the other, and the
/// ancestor prefix is uniform across the other list — see DESIGN.md).
fn pair_minimum(
    q: &CutQuery<'_>,
    r: &[(u64, u32, u32)],
    s: &[(u64, u32, u32)],
    algo: RowMinimaAlgo,
    meter: &Meter,
) -> Best {
    let tree = q.tree();
    // Swap so that no edge of `s` is an ancestor of an edge of `r`.
    // INVARIANT: chains handed to pair_minimum are non-empty (the
    // interest search never emits an empty chain).
    let last_r = r.last().expect("non-empty chain").2;
    let (r, s) = if tree.is_ancestor(s[0].2, last_r) { (s, r) } else { (r, s) };
    // Nested prefix: r[..k] are ancestors of every edge in s.
    let k = r.partition_point(|&(_, _, e)| tree.is_ancestor(e, s[0].2));
    let mut best = Best::NONE;
    if k > 0 {
        // Nested block: supermodular orientation.
        if let Some(loc) = monge_minimum_with(
            algo,
            k,
            s.len(),
            Orient::Supermodular,
            |i, j| q.cut(r[i].2, s[j].2, meter),
            meter,
        ) {
            best = best.min(Best { value: loc.value, e: r[loc.row].2, f: s[loc.col].2 });
        }
    }
    if k < r.len() {
        // Incomparable block: submodular orientation.
        let rr = &r[k..];
        if let Some(loc) = monge_minimum_with(
            algo,
            rr.len(),
            s.len(),
            Orient::Submodular,
            |i, j| q.cut(rr[i].2, s[j].2, meter),
            meter,
        ) {
            best = best.min(Best { value: loc.value, e: rr[loc.row].2, f: s[loc.col].2 });
        }
    }
    best
}

/// The `O(n^2)` exhaustive 2-respecting solver: every pair of tree
/// edges via cut queries. The correctness oracle for
/// [`two_respecting_mincut`] and the "no structure" ablation baseline
/// (the work profile GG18-era algorithms pay per tree, up to logs).
pub fn naive_two_respecting(
    g: &Graph,
    tree: &RootedTree,
    eps: f64,
    meter: &Meter,
) -> TwoRespectOutcome {
    let n = tree.n();
    assert!(n >= 2);
    let tree = Arc::new(tree.clone());
    let lca = LcaTable::build(&tree);
    let q = CutQuery::build(g, &tree, &lca, eps, meter);
    let root = tree.root();
    let best = (0..n as u32)
        .into_par_iter()
        .filter(|&e| e != root)
        .map(|e| {
            let mut local = Best { value: q.cov(e), e, f: e };
            for f in e + 1..n as u32 {
                if f == root {
                    continue;
                }
                let v = q.cut(e, f, meter);
                local = local.min(Best { value: v, e, f });
            }
            local
        })
        .reduce(|| Best::NONE, Best::min);
    let side = q.cut_side(best.e, best.f);
    TwoRespectOutcome { cut: CutResult { value: best.value, side }, pair: (best.e, best.f) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmc_graph::graph::cut_of_partition;
    use pmc_graph::generators;
    use pmc_monge::{is_submodular, is_supermodular};
    use pmc_parallel::spanning_forest::spanning_forest;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spanning_tree_of(g: &Graph, root: u32) -> Arc<RootedTree> {
        let forest = spanning_forest(g, &Meter::disabled());
        let edges: Vec<(u32, u32)> =
            forest.iter().map(|&i| (g.edge(i as usize).u, g.edge(i as usize).v)).collect();
        Arc::new(RootedTree::from_edge_list(g.n(), &edges, root))
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(401);
        for trial in 0..12 {
            let n = 10 + trial * 3;
            let g = generators::gnm_connected(n, 3 * n, 9, &mut rng);
            let t = spanning_tree_of(&g, (trial % n) as u32);
            let m = Meter::disabled();
            let naive = naive_two_respecting(&g, &t, 0.5, &m);
            for strategy in [PathStrategy::HeavyPath, PathStrategy::Bough] {
                for interest_strategy in
                    [InterestStrategy::HeavyPath, InterestStrategy::Centroid]
                {
                    let params = TwoRespectParams {
                        eps: 0.4,
                        strategy,
                        interest_strategy,
                        ..TwoRespectParams::default()
                    };
                    let fast = two_respecting_mincut(&g, &t, &params, &m);
                    assert_eq!(
                        fast.cut.value, naive.cut.value,
                        "trial {trial} {strategy:?}/{interest_strategy:?}: fast {} vs naive {}",
                        fast.cut.value, naive.cut.value
                    );
                }
            }
        }
    }

    #[test]
    fn matches_naive_on_structured_graphs() {
        let graphs = vec![
            generators::dumbbell(6, 4, 1),
            generators::ring_of_cliques(5, 3, 5, 1),
            generators::grid(6, 4, 3),
            generators::hypercube(4, 2),
            generators::cycle(30, 2),
            generators::star(20, 3),
        ];
        let m = Meter::disabled();
        for (gi, g) in graphs.into_iter().enumerate() {
            let t = spanning_tree_of(&g, 0);
            let naive = naive_two_respecting(&g, &t, 0.5, &m);
            let fast = two_respecting_mincut(&g, &t, &TwoRespectParams::default(), &m);
            assert_eq!(fast.cut.value, naive.cut.value, "graph {gi}");
        }
    }

    #[test]
    fn reported_side_realizes_value() {
        let mut rng = StdRng::seed_from_u64(402);
        for _ in 0..6 {
            let g = generators::gnm_connected(20, 60, 7, &mut rng);
            let t = spanning_tree_of(&g, 0);
            let out =
                two_respecting_mincut(&g, &t, &TwoRespectParams::default(), &Meter::disabled());
            let mut side = vec![false; g.n()];
            for &v in &out.cut.side {
                side[v as usize] = true;
            }
            assert_eq!(cut_of_partition(&g, &side), out.cut.value);
            assert!(!out.cut.side.is_empty() && out.cut.side.len() < g.n());
        }
    }

    #[test]
    fn single_path_matrix_is_supermodular() {
        // The orientation claim behind stage 2 (paper's partial Monge
        // inequality), checked on real cut matrices.
        let mut rng = StdRng::seed_from_u64(403);
        for _ in 0..6 {
            let g = generators::gnm_connected(22, 60, 5, &mut rng);
            let t = spanning_tree_of(&g, 0);
            let lca = LcaTable::build(&t);
            let q = CutQuery::build(&g, &t, &lca, 0.5, &Meter::disabled());
            let m = Meter::disabled();
            let decomp = PathDecomposition::build(&t, PathStrategy::HeavyPath, &m);
            for p in decomp.paths() {
                if p.len() < 3 {
                    continue;
                }
                // Strict upper triangle: check all 2x2 submatrices that
                // avoid the diagonal.
                let l = p.len();
                for i in 0..l - 1 {
                    for j in i + 2..l - 1 {
                        let a = q.cut(p[i], p[j], &m) as i128
                            + q.cut(p[i + 1], p[j + 1], &m) as i128;
                        let b = q.cut(p[i], p[j + 1], &m) as i128
                            + q.cut(p[i + 1], p[j], &m) as i128;
                        assert!(a >= b, "supermodularity violated at ({i},{j})");
                    }
                }
            }
        }
    }

    #[test]
    fn pair_block_orientations() {
        // Nested blocks are supermodular, incomparable blocks submodular
        // — the two claims pair_minimum relies on.
        let mut rng = StdRng::seed_from_u64(404);
        for _ in 0..10 {
            let g = generators::gnm_connected(24, 70, 6, &mut rng);
            let t = spanning_tree_of(&g, 0);
            let lca = LcaTable::build(&t);
            let q = CutQuery::build(&g, &t, &lca, 0.5, &Meter::disabled());
            let m = Meter::disabled();
            // Sample vertical chains: root-to-leaf paths, then pick two
            // disjoint chains.
            let chains: Vec<Vec<u32>> = t
                .leaves()
                .into_iter()
                .map(|l| {
                    let mut c = vec![l];
                    let mut v = l;
                    while t.parent(v) != t.root() {
                        v = t.parent(v);
                        c.push(v);
                    }
                    c.reverse();
                    c
                })
                .collect();
            for a in 0..chains.len() {
                for b in a + 1..chains.len() {
                    let (ca, cb) = (&chains[a], &chains[b]);
                    // Incomparable suffixes: drop the common prefix.
                    let mut i = 0;
                    while i < ca.len() && i < cb.len() && ca[i] == cb[i] {
                        i += 1;
                    }
                    let (ra, sb) = (&ca[i..], &cb[i..]);
                    if ra.len() >= 2 && sb.len() >= 2 {
                        assert!(
                            is_submodular(ra.len(), sb.len(), |x, y| q
                                .cut(ra[x], sb[y], &m)),
                            "incomparable block not submodular"
                        );
                    }
                    // Nested: common prefix (ancestors) vs the deeper
                    // suffix of the other chain.
                    if i >= 2 && cb.len() > i + 1 {
                        let anc = &ca[..i]; // == cb[..i], ancestors of all
                        let desc = &cb[i..];
                        assert!(
                            is_supermodular(anc.len(), desc.len(), |x, y| q
                                .cut(anc[x], desc[y], &m)),
                            "nested block not supermodular"
                        );
                    }
                }
            }
        }
    }

    /// The radix join sort must reproduce the pre-refactor comparison
    /// sort bit-identically — same `(pair, side, pos, e)` order, hence
    /// the same jobs, metered counts, and witness pair.
    #[test]
    fn radix_join_order_matches_comparison_sort() {
        let mut rng = StdRng::seed_from_u64(406);
        for trial in 0..8 {
            let n = 40 + trial * 17;
            let g = generators::gnm_connected(n, 4 * n, 11, &mut rng);
            let t = spanning_tree_of(&g, 0);
            let m = Meter::disabled();
            let decomp = PathDecomposition::build(&t, PathStrategy::HeavyPath, &m);
            // Synthesize join tuples covering every (pair, side, pos, e)
            // dimension: every ordered pair of paths, every edge of the
            // first path.
            let mut keyed: Vec<(u64, u32, u32)> = Vec::new();
            for p in 0..decomp.num_paths() as u32 {
                for q in 0..decomp.num_paths() as u32 {
                    if p == q {
                        continue;
                    }
                    let (a, b, side) = if p < q { (p, q, 0u32) } else { (q, p, 1u32) };
                    for &e in decomp.path(p) {
                        keyed.push((((a as u64) << 32) | b as u64, side, e));
                    }
                }
            }
            let mut expect = keyed.clone();
            expect.sort_unstable_by_key(|&(pair, side, e)| {
                (pair, side, decomp.pos_of(e), e)
            });
            sort_join_keys(&mut keyed, &decomp, n, &mut SortScratch::new());
            assert_eq!(keyed, expect, "trial {trial} (n={n})");
        }
    }

    /// The `n < 2^31` packed-key guard itself, exercised from both
    /// sides at reachable sizes: shrinking the limit forces the
    /// comparison fallback, widening it keeps the radix path, and the
    /// two must agree bit-for-bit (duplicates included) so the guard
    /// can flip without changing any downstream job order.
    #[test]
    fn shrunken_guard_pins_radix_to_comparison_sort() {
        let mut rng = StdRng::seed_from_u64(407);
        let n = 120;
        let g = generators::gnm_connected(n, 5 * n, 13, &mut rng);
        let t = spanning_tree_of(&g, 0);
        let decomp =
            PathDecomposition::build(&t, PathStrategy::HeavyPath, &Meter::disabled());
        let mut keyed: Vec<(u64, u32, u32)> = Vec::new();
        for p in 0..decomp.num_paths() as u32 {
            for q in 0..decomp.num_paths() as u32 {
                if p == q {
                    continue;
                }
                let (a, b, side) = if p < q { (p, q, 0u32) } else { (q, p, 1u32) };
                for &e in decomp.path(p) {
                    keyed.push((((a as u64) << 32) | b as u64, side, e));
                    // Duplicate some tuples: ties across identical keys
                    // must land identically on both paths too.
                    if e % 3 == 0 {
                        keyed.push((((a as u64) << 32) | b as u64, side, e));
                    }
                }
            }
        }
        let mut scratch = SortScratch::new();
        let mut via_radix = keyed.clone();
        sort_join_keys_with_limit(&mut via_radix, &decomp, n, u64::MAX, &mut scratch);
        let mut via_cmp = keyed.clone();
        sort_join_keys_with_limit(&mut via_cmp, &decomp, n, 0, &mut scratch); // n >= 0: fallback
        assert_eq!(via_radix, via_cmp, "guard sides must agree");
        // And the production entry point takes the radix side here.
        sort_join_keys(&mut keyed, &decomp, n, &mut scratch);
        assert_eq!(keyed, via_radix);
    }

    #[test]
    fn cycle_two_respecting_value() {
        // Cycle with a path tree: min cut = 2 (any two cycle edges). The
        // value is reachable both 1-respecting (each tree edge is covered
        // by itself plus the closing chord) and 2-respecting; only the
        // value is pinned down.
        let mut edges: Vec<(u32, u32, u64)> = (0..9u32).map(|i| (i, i + 1, 1)).collect();
        edges.push((0, 9, 1)); // closes the cycle
        let g = Graph::from_edges(10, edges);
        let parent: Vec<u32> = (0..10u32).map(|v| v.saturating_sub(1)).collect();
        let t = Arc::new(RootedTree::from_parents(0, &parent));
        let m = Meter::disabled();
        let out = two_respecting_mincut(&g, &t, &TwoRespectParams::default(), &m);
        assert_eq!(out.cut.value, 2);

        // Force a genuine pair: make every single edge expensive by
        // doubling the chord weight — then cov(e) = 3 everywhere but a
        // pair of tree edges cutting the chord-free segment... on a
        // cycle every 2-respecting pair cuts {two tree edges} + maybe
        // the chord; with chord weight 2 the best pair value is
        // 1 + 1 = 2 < 3 when the chord is *not* cut: edges i and j with
        // the chord endpoints 0,9 on the same side, i.e. 1 <= i < j <= 9
        // cut edges i,j only.
        let mut edges2: Vec<(u32, u32, u64)> = (0..9u32).map(|i| (i, i + 1, 1)).collect();
        edges2.push((0, 9, 2));
        let g2 = Graph::from_edges(10, edges2);
        let out2 = two_respecting_mincut(&g2, &t, &TwoRespectParams::default(), &m);
        assert_eq!(out2.cut.value, 2);
        assert_ne!(out2.pair.0, out2.pair.1, "optimum requires a genuine pair");
    }

    #[test]
    fn star_tree_one_respecting() {
        let g = generators::star(12, 4);
        let parent: Vec<u32> = (0..12u32).map(|_| 0).collect();
        let t = Arc::new(RootedTree::from_parents(0, &parent));
        let out =
            two_respecting_mincut(&g, &t, &TwoRespectParams::default(), &Meter::disabled());
        assert_eq!(out.cut.value, 4, "isolate one leaf");
    }

    #[test]
    fn two_vertex_graph() {
        let g = Graph::from_edges(2, [(0, 1, 5)]);
        let t = Arc::new(RootedTree::from_parents(0, &[0, 0]));
        let out =
            two_respecting_mincut(&g, &t, &TwoRespectParams::default(), &Meter::disabled());
        assert_eq!(out.cut.value, 5);
        assert_eq!(out.pair, (1, 1));
    }

    #[test]
    fn eps_sweep_consistent() {
        let mut rng = StdRng::seed_from_u64(405);
        let g = generators::gnm_connected(26, 80, 8, &mut rng);
        let t = spanning_tree_of(&g, 0);
        let m = Meter::disabled();
        let reference =
            naive_two_respecting(&g, &t, 0.5, &m).cut.value;
        for eps in [0.1, 0.25, 0.5, 0.75, 1.0] {
            let params = TwoRespectParams { eps, ..TwoRespectParams::default() };
            let out = two_respecting_mincut(&g, &t, &params, &m);
            assert_eq!(out.cut.value, reference, "eps={eps}");
        }
    }

    use pmc_graph::Graph;
}
