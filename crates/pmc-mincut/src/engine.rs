//! The two-level solver engine: graph-lifetime vs tree-lifetime state.
//!
//! The Theorem 4.2 stage runs once per packed tree (`O(log n)` trees),
//! but the structures it needs split cleanly by lifetime:
//!
//! * **graph-lifetime** ([`GraphContext`]): the coalesced graph,
//!   component labels / connectivity, weighted degrees and the
//!   min-degree fallback cut. Built once per graph, valid for every
//!   packed tree and every repeated solve. Coalescing is the flat
//!   sort-and-merge of [`Graph::coalesced`] — no hash map on the build
//!   path.
//! * **tree-lifetime** ([`TreeContext`]): the rooted tree, its LCA
//!   table, the 2m-point cut-query structure of Lemma A.1, the
//!   Property 4.3 path decomposition, and the interest-search engine of
//!   Claim 4.13. Built once per packed tree; the postorder-dependent
//!   state lives here and nowhere else. The range trees underneath the
//!   cut-query structure store all levels in contiguous CSR-style
//!   arenas (flat `Vec` + offsets), so the per-query level walks touch
//!   a handful of contiguous buffers.
//!
//! Inside [`TreeContext::build`] the mutually independent sub-builds
//! fork under `rayon::join`: the LCA table feeds the coverage array
//! while the 2-D range tree, the path decomposition, and the centroid
//! (or heavy-path) decomposition need only the tree itself. Both
//! contexts expose a batched query facade (`cov_all` / `cov_batch` /
//! `cut_batch`) so callers submit query slices instead of single
//! probes — the substrate the serving/batching layers build on.
//!
//! The one-shot free functions ([`crate::exact_mincut`],
//! [`crate::mincut_small`], [`crate::two_respecting_mincut`],
//! [`crate::approx_mincut`]) remain as thin wrappers that build a
//! context and solve once, so the pre-engine API is unchanged.
//!
//! ```
//! use pmc_mincut::engine::GraphContext;
//! use pmc_mincut::{ExactParams, exact_mincut_in};
//! use pmc_parallel::Meter;
//!
//! let g = pmc_graph::generators::ring_of_cliques(4, 5, 6, 2);
//! let meter = Meter::disabled();
//! let ctx = GraphContext::build(&g, &meter);
//! // The context is reusable: repeated solves share every
//! // graph-lifetime structure and return identical results.
//! let a = exact_mincut_in(&ctx, &ExactParams::default(), &meter);
//! let b = exact_mincut_in(&ctx, &ExactParams::default(), &meter);
//! assert_eq!(a.cut.value, 4);
//! assert_eq!(a.cut, b.cut);
//! ```

use crate::cutquery::CutQuery;
use crate::interest::InterestEngine;
use crate::two_respect::{two_respecting_mincut_in, TwoRespectOutcome, TwoRespectParams};
use pmc_graph::{CutResult, Graph};
use pmc_parallel::meter::{CostKind, Meter};
use pmc_parallel::scratch::ScratchPool;
use pmc_tree::{LcaEngine, PathDecomposition, RootedTree};
use rayon::prelude::*;
use std::sync::Arc;

/// `ceil(log2 x)` with the usual `x >= 2` clamp (depth gauges).
fn lg2(x: usize) -> u64 {
    (x.max(2) as f64).log2().ceil() as u64
}

/// How the context holds its graph: owning (coalesced or adopted) or
/// borrowing the caller's.
enum GraphStore<'g> {
    Owned(Graph),
    Borrowed(&'g Graph),
}

impl GraphStore<'_> {
    fn graph(&self) -> &Graph {
        match self {
            GraphStore::Owned(g) => g,
            GraphStore::Borrowed(g) => g,
        }
    }
}

/// Graph-lifetime state of the solver engine: everything derivable from
/// the graph alone, shared by every packed tree and repeated solve.
pub struct GraphContext<'g> {
    store: GraphStore<'g>,
    /// Component representative per vertex (one connectivity pass).
    labels: Vec<u32>,
    connected: bool,
    /// Weighted degree per vertex (`w(δ(v))`).
    degrees: Vec<u64>,
    /// `(argmin, min)` of the weighted degrees — the always-valid
    /// fallback cut of the pipeline.
    min_degree: (u32, u64),
}

impl<'g> GraphContext<'g> {
    /// Build from a raw input graph: coalesces parallel edges (the
    /// pipeline's canonical first step) and derives the shared state.
    pub fn build(g: &Graph, meter: &Meter) -> GraphContext<'static> {
        GraphContext::adopt(g.coalesced(), meter)
    }

    /// Take ownership of an already-clean graph (hierarchy layers,
    /// certificates, skeletons) without re-coalescing.
    pub fn adopt(g: Graph, meter: &Meter) -> GraphContext<'static> {
        GraphContext::finish(GraphStore::Owned(g), meter)
    }

    /// Borrow the caller's graph as-is (no coalescing, no copy) — the
    /// wrapper path that must preserve the exact pre-engine semantics
    /// of [`crate::mincut_small`] and [`crate::approx_mincut`].
    pub fn attach(g: &'g Graph, meter: &Meter) -> GraphContext<'g> {
        GraphContext::finish(GraphStore::Borrowed(g), meter)
    }

    fn finish(store: GraphStore<'g>, meter: &Meter) -> GraphContext<'g> {
        // Panic-capable probe: chaos plans kill the build here; the
        // unwind is absorbed by the robust entry's guard (or a job's
        // catch_unwind when the build runs inside a parallel solve).
        pmc_fault::point_panicking("engine:graph_build");
        let (labels, degrees) = {
            let g = store.graph();
            // Component labels and weighted degrees are independent
            // passes over the adjacency — fork them.
            rayon::join(
                || g.component_labels(),
                || (0..g.n() as u32).into_par_iter().map(|v| g.weighted_degree(v)).collect::<Vec<u64>>(),
            )
        };
        let connected = labels.iter().all(|&l| l == labels[0]);
        // Same `min_by_key` tie-break as `Graph::min_weighted_degree_vertex`
        // (first minimal index), so the fallback cut is bit-identical.
        let min_degree = degrees
            .iter()
            .enumerate()
            .map(|(v, &d)| (v as u32, d))
            .min_by_key(|&(_, d)| d)
            .unwrap_or((0, 0));
        {
            let g = store.graph();
            meter.add(CostKind::Misc, g.m() as u64 + g.n() as u64);
            // Construction critical path: connectivity ~ log n levels,
            // degree reduction ~ log m (documented in DESIGN.md §8).
            meter.record_depth("engine:graph_build", lg2(g.n()) + lg2(g.m().max(2)));
        }
        GraphContext { store, labels, connected, degrees, min_degree }
    }

    /// The context's graph (coalesced when built via
    /// [`GraphContext::build`]).
    #[inline]
    pub fn graph(&self) -> &Graph {
        self.store.graph()
    }

    #[inline]
    pub fn n(&self) -> usize {
        self.graph().n()
    }

    #[inline]
    pub fn m(&self) -> usize {
        self.graph().m()
    }

    #[inline]
    pub fn is_connected(&self) -> bool {
        self.connected
    }

    /// Component representative per vertex (precomputed).
    #[inline]
    pub fn component_labels(&self) -> &[u32] {
        &self.labels
    }

    /// Weighted degree per vertex (precomputed).
    #[inline]
    pub fn weighted_degrees(&self) -> &[u64] {
        &self.degrees
    }

    /// The min-degree singleton cut — the pipeline's always-valid
    /// fallback candidate.
    pub fn min_degree_cut(&self) -> CutResult {
        CutResult { value: self.min_degree.1, side: vec![self.min_degree.0] }
    }

    /// The degenerate answers every solver entry point shares: `n < 2`
    /// has no cut (infinite), a disconnected graph has a zero cut with
    /// vertex 0's component as one side. `None` on a connected graph
    /// with at least one potential cut — the inputs the pipeline
    /// actually works on.
    pub fn trivial_cut(&self) -> Option<CutResult> {
        if self.n() < 2 {
            return Some(CutResult::infinite());
        }
        if !self.connected {
            let l0 = self.labels[0];
            let side =
                (0..self.n() as u32).filter(|&v| self.labels[v as usize] == l0).collect();
            return Some(CutResult { value: 0, side });
        }
        None
    }
}

/// Tree-lifetime state of the solver engine: everything that depends on
/// one packed tree's postorder. Built once per tree; solving, batched
/// queries, and repeated solves all share it.
pub struct TreeContext<'g> {
    tree: Arc<RootedTree>,
    lca: LcaEngine,
    q: CutQuery<'g>,
    decomp: PathDecomposition,
    interest: InterestEngine,
    params: TwoRespectParams,
    /// Recycled per-context workspaces: batched queries and repeated
    /// solves against this context reuse warm buffers instead of
    /// allocating (DESIGN.md §13).
    scratch: ScratchPool,
}

impl<'g> TreeContext<'g> {
    /// Build every per-tree structure, forking the independent
    /// sub-builds (DESIGN.md §8): the LCA table (which feeds the
    /// coverage array inside [`CutQuery::build`]) runs alongside the
    /// path decomposition and the interest engine's centroid/heavy-path
    /// decomposition, and the 2-D range tree overlaps the coverage
    /// array one level further down.
    pub fn build(
        g: &'g Graph,
        tree: Arc<RootedTree>,
        params: &TwoRespectParams,
        meter: &Meter,
    ) -> Self {
        assert!(tree.n() >= 2, "need at least one tree edge");
        assert_eq!(g.n(), tree.n(), "graph and tree must share the vertex set");
        // Panic-capable probe: see `engine:graph_build`.
        pmc_fault::point_panicking("engine:tree_build");
        let ((lca, q), (decomp, interest)) = rayon::join(
            || {
                let lca = LcaEngine::build(&tree, params.lca_strategy, meter);
                let q = CutQuery::build(g, &tree, &lca, params.eps, meter);
                (lca, q)
            },
            || {
                rayon::join(
                    || PathDecomposition::build(&tree, params.strategy, meter),
                    || InterestEngine::build(&tree, params.interest_strategy, meter),
                )
            },
        );
        // Construction critical path: LCA/centroid levels ~ log n plus
        // the range-tree height (DESIGN.md §8).
        meter.record_depth("engine:tree_build", lg2(tree.n()) + q.range_height() as u64);
        TreeContext { tree, lca, q, decomp, interest, params: *params, scratch: ScratchPool::new() }
    }

    /// The pre-engine build profile: every sub-build back-to-back on
    /// one thread. This is the rebuild-per-tree ablation baseline of
    /// the `E-amortize` experiment, not a production path.
    pub fn build_sequential(
        g: &'g Graph,
        tree: Arc<RootedTree>,
        params: &TwoRespectParams,
        meter: &Meter,
    ) -> Self {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().expect("pool");
        pool.install(|| Self::build(g, tree, params, meter))
    }

    /// Build from a packed tree's edge list (the Phase 5 entry point).
    pub fn from_edges(
        g: &'g Graph,
        edges: &[(u32, u32)],
        root: u32,
        params: &TwoRespectParams,
        meter: &Meter,
    ) -> Self {
        let tree = Arc::new(RootedTree::from_edge_list(g.n(), edges, root));
        Self::build(g, tree, params, meter)
    }

    #[inline]
    pub fn graph(&self) -> &Graph {
        self.q.graph()
    }

    #[inline]
    pub fn tree(&self) -> &RootedTree {
        &self.tree
    }

    /// A shared handle on the tree.
    #[inline]
    pub fn tree_handle(&self) -> Arc<RootedTree> {
        Arc::clone(&self.tree)
    }

    /// The LCA substrate built for [`TwoRespectParams::lca_strategy`]:
    /// plain `lca` dispatches to the strategy's engine, level ancestors
    /// stay with the lifting table.
    #[inline]
    pub fn lca(&self) -> &LcaEngine {
        &self.lca
    }

    #[inline]
    pub fn cut_query(&self) -> &CutQuery<'g> {
        &self.q
    }

    #[inline]
    pub fn decomposition(&self) -> &PathDecomposition {
        &self.decomp
    }

    /// The prebuilt interest-search engine (Claim 4.13 state).
    #[inline]
    pub fn interest(&self) -> &InterestEngine {
        &self.interest
    }

    #[inline]
    pub fn params(&self) -> &TwoRespectParams {
        &self.params
    }

    /// `w(Te)` for one tree edge (1-respecting cut value).
    #[inline]
    pub fn cov(&self, e: u32) -> u64 {
        self.q.cov(e)
    }

    /// The whole coverage array as one slice (batched 1-respecting
    /// values).
    #[inline]
    pub fn cov_all(&self) -> &[u64] {
        self.q.cov_all()
    }

    /// Batched coverage lookup.
    pub fn cov_batch(&self, es: &[u32]) -> Vec<u64> {
        self.q.cov_batch(es)
    }

    /// Batched coverage lookup into a caller-owned buffer — the
    /// allocation-free steady-state serving form.
    pub fn cov_batch_into(&self, es: &[u32], out: &mut Vec<u64>) {
        self.q.cov_batch_into(es, out);
    }

    /// This context's recycled workspace pool (shared by the batch
    /// facades and the solve stages).
    #[inline]
    pub fn scratch_pool(&self) -> &ScratchPool {
        &self.scratch
    }

    /// One 2-respecting cut value.
    #[inline]
    pub fn cut(&self, e: u32, f: u32, meter: &Meter) -> u64 {
        self.q.cut(e, f, meter)
    }

    /// Batched 2-respecting cut values: one pass over the pair slice,
    /// deterministic output order.
    pub fn cut_batch(&self, pairs: &[(u32, u32)], meter: &Meter) -> Vec<u64> {
        self.q.cut_batch(pairs, meter)
    }

    /// Batched 2-respecting cut values into a caller-owned buffer,
    /// using this context's recycled workspace pool: with warm buffers
    /// the steady-state call performs zero heap allocations (the
    /// counting-allocator gate in `pmc-bench` pins this).
    pub fn cut_batch_into(&self, pairs: &[(u32, u32)], out: &mut Vec<u64>, meter: &Meter) {
        self.scratch.with(|s| self.q.cut_batch_with(pairs, s, out, meter));
    }

    /// [`TreeContext::cut_batch`] under a cooperative deadline: answers
    /// a prefix of the request and flags whether it ran to the end (see
    /// [`CutQuery::cut_batch_until`]).
    pub fn cut_batch_until(
        &self,
        pairs: &[(u32, u32)],
        deadline: &pmc_fault::Deadline,
        meter: &Meter,
    ) -> crate::cutquery::BatchOutcome {
        self.q.cut_batch_until(pairs, deadline, meter)
    }

    /// The minimum 2-respecting cut of this tree (Theorem 4.2), reusing
    /// every prebuilt structure. Repeated calls return identical
    /// results.
    pub fn solve(&self, meter: &Meter) -> TwoRespectOutcome {
        two_respecting_mincut_in(self, meter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_mincut, exact_mincut_in, ExactParams};
    use crate::two_respect::two_respecting_mincut;
    use pmc_graph::generators;
    use pmc_parallel::spanning_forest::spanning_forest;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spanning_tree_of(g: &Graph, root: u32) -> Arc<RootedTree> {
        let forest = spanning_forest(g, &Meter::disabled());
        let edges: Vec<(u32, u32)> =
            forest.iter().map(|&i| (g.edge(i as usize).u, g.edge(i as usize).v)).collect();
        Arc::new(RootedTree::from_edge_list(g.n(), &edges, root))
    }

    #[test]
    fn trivial_cut_matches_legacy_early_returns() {
        let m = Meter::disabled();
        // n < 2: no cut.
        let g1 = Graph::from_edges(1, []);
        assert_eq!(GraphContext::build(&g1, &m).trivial_cut(), Some(CutResult::infinite()));
        // Disconnected: zero cut, vertex 0's component as the side.
        let g2 = Graph::from_edges(4, [(0, 1, 2), (2, 3, 2)]);
        let t = GraphContext::build(&g2, &m).trivial_cut().expect("disconnected");
        assert_eq!(t.value, 0);
        assert_eq!(t.side, vec![0, 1]);
        // Connected: no trivial answer.
        let g3 = generators::cycle(6, 1);
        assert_eq!(GraphContext::build(&g3, &m).trivial_cut(), None);
    }

    #[test]
    fn graph_context_matches_graph_accessors() {
        let mut rng = StdRng::seed_from_u64(811);
        let g = generators::gnm_connected(20, 50, 9, &mut rng);
        let ctx = GraphContext::attach(&g, &Meter::disabled());
        assert!(ctx.is_connected());
        assert_eq!(ctx.component_labels(), &g.component_labels()[..]);
        for v in 0..g.n() as u32 {
            assert_eq!(ctx.weighted_degrees()[v as usize], g.weighted_degree(v));
        }
        let (v, d) = g.min_weighted_degree_vertex();
        assert_eq!(ctx.min_degree_cut(), CutResult { value: d, side: vec![v] });
    }

    #[test]
    fn build_coalesces_like_the_pipeline() {
        let g = Graph::from_edges(3, [(0, 1, 2), (0, 1, 3), (1, 2, 4)]);
        let ctx = GraphContext::build(&g, &Meter::disabled());
        let gc = g.coalesced();
        assert_eq!(ctx.m(), gc.m());
        assert_eq!(ctx.graph().total_weight(), gc.total_weight());
        // attach leaves the multigraph alone.
        let raw = GraphContext::attach(&g, &Meter::disabled());
        assert_eq!(raw.m(), 3);
    }

    #[test]
    fn tree_context_solve_matches_free_function() {
        let mut rng = StdRng::seed_from_u64(812);
        for trial in 0..6 {
            let g = generators::gnm_connected(18, 50, 7, &mut rng);
            let tree = spanning_tree_of(&g, 0);
            let m = Meter::disabled();
            let params = TwoRespectParams::default();
            let ctx = TreeContext::build(&g, Arc::clone(&tree), &params, &m);
            let a = ctx.solve(&m);
            let b = ctx.solve(&m); // reuse: bit-identical
            let free = two_respecting_mincut(&g, &tree, &params, &m);
            assert_eq!(a.cut, b.cut, "trial {trial} reuse");
            assert_eq!(a.pair, b.pair, "trial {trial} reuse pair");
            assert_eq!(a.cut, free.cut, "trial {trial} vs free fn");
        }
    }

    #[test]
    fn sequential_build_agrees_with_parallel() {
        let mut rng = StdRng::seed_from_u64(813);
        let g = generators::gnm_connected(22, 60, 5, &mut rng);
        let tree = spanning_tree_of(&g, 0);
        let m = Meter::disabled();
        let params = TwoRespectParams::default();
        let par = TreeContext::build(&g, Arc::clone(&tree), &params, &m);
        let seq = TreeContext::build_sequential(&g, Arc::clone(&tree), &params, &m);
        assert_eq!(par.solve(&m).cut, seq.solve(&m).cut);
        assert_eq!(par.cov_all(), seq.cov_all());
    }

    #[test]
    fn batched_queries_match_single_probes() {
        let mut rng = StdRng::seed_from_u64(814);
        let g = generators::gnm_connected(16, 40, 6, &mut rng);
        let tree = spanning_tree_of(&g, 0);
        let m = Meter::disabled();
        let ctx = TreeContext::build(&g, tree, &TwoRespectParams::default(), &m);
        let n = g.n() as u32;
        let root = ctx.tree().root();
        let es: Vec<u32> = (0..n).filter(|&v| v != root).collect();
        assert_eq!(ctx.cov_batch(&es), es.iter().map(|&e| ctx.cov(e)).collect::<Vec<_>>());
        let pairs: Vec<(u32, u32)> = es
            .iter()
            .flat_map(|&e| es.iter().map(move |&f| (e, f)))
            .filter(|&(e, f)| e < f)
            .collect();
        let batch = ctx.cut_batch(&pairs, &m);
        for (i, &(e, f)) in pairs.iter().enumerate() {
            assert_eq!(batch[i], ctx.cut(e, f, &m), "pair ({e},{f})");
        }
    }

    #[test]
    fn exact_in_reuses_context() {
        let g = generators::ring_of_cliques(4, 4, 5, 2);
        let m = Meter::disabled();
        let ctx = GraphContext::build(&g, &m);
        let params = ExactParams::default();
        let one_shot = exact_mincut(&g, &params);
        let a = exact_mincut_in(&ctx, &params, &m);
        let b = exact_mincut_in(&ctx, &params, &m);
        assert_eq!(a.cut, one_shot.cut);
        assert_eq!(a.cut, b.cut);
    }

    #[test]
    fn depth_gauges_recorded() {
        let g = generators::grid(5, 5, 3);
        let meter = Meter::enabled();
        let ctx = GraphContext::build(&g, &meter);
        let tree = spanning_tree_of(ctx.graph(), 0);
        let _tc = TreeContext::build(ctx.graph(), tree, &TwoRespectParams::default(), &meter);
        let rendered = meter.report().render();
        assert!(rendered.contains("engine:graph_build"), "{rendered}");
        assert!(rendered.contains("engine:tree_build"), "{rendered}");
    }

    use pmc_graph::Graph;
}
