//! Greedy tree packing (Theorem 4.18, §4.2).
//!
//! Karger's packing framework: sparsify (skeleton of Theorem 2.4 with
//! Observation 4.22's weight cap, then the certificate of Theorem 2.6),
//! then run the Plotkin–Shmoys–Tardos greedy packing — a sequence of
//! minimum spanning trees with respect to *loads* `uses(e) / w(e)`.
//! A constant fraction (by weight) of the packed trees 2-constrains the
//! minimum cut, so the cut-finding stage only needs the distinct trees
//! of the packing.
//!
//! The MST subroutine is the parallel Borůvka of `pmc-parallel`
//! (substituting Pettie–Ramachandran, DESIGN.md).

use pmc_graph::Graph;
use pmc_parallel::meter::Meter;
use pmc_parallel::mst::boruvka_msf_by;
use std::collections::HashSet;

/// Packing parameters.
#[derive(Debug, Clone, Copy)]
pub struct PackingParams {
    /// Number of PST iterations per `log^2 n` (paper: `O(log^2 n)`
    /// iterations total).
    pub iterations_factor: f64,
    /// Hard floor / ceiling on iteration count.
    pub min_iterations: usize,
    pub max_iterations: usize,
    /// Trees handed to the cut-finding stage per `log2 n` (the paper's
    /// `O(log n)` trees "by weight"): a constant fraction of the packing
    /// weight 2-respects the min cut, so sampling the iteration sequence
    /// at weight-proportional (evenly spaced) positions succeeds w.h.p.
    pub trees_factor: f64,
    /// Hard floor on the number of selected trees.
    pub min_trees: usize,
}

impl Default for PackingParams {
    fn default() -> Self {
        PackingParams {
            iterations_factor: 2.0,
            min_iterations: 12,
            max_iterations: 4000,
            trees_factor: 4.0,
            min_trees: 12,
        }
    }
}

impl PackingParams {
    /// Iteration count for an `n`-vertex packing input.
    pub fn iterations(&self, n: usize) -> usize {
        let l = (n.max(2) as f64).log2();
        ((self.iterations_factor * l * l).ceil() as usize)
            .clamp(self.min_iterations, self.max_iterations)
    }

    /// Number of trees forwarded to the cut-finding stage.
    pub fn max_trees(&self, n: usize) -> usize {
        let l = (n.max(2) as f64).log2();
        ((self.trees_factor * l).ceil() as usize).max(self.min_trees)
    }
}

/// Greedy (PST) tree packing on `h`; returns the *distinct* spanning
/// trees as edge-endpoint lists. `h` must be connected.
///
/// Each iteration computes an MST of `h` under the load order
/// `uses(e)/w(e)` (ties by static weight, then index) and increments the
/// loads of the chosen edges.
/// # Example
///
/// ```
/// use pmc_mincut::{greedy_tree_packing, PackingParams};
/// use pmc_parallel::Meter;
///
/// let g = pmc_graph::generators::cycle(8, 1);
/// let trees = greedy_tree_packing(&g, &PackingParams::default(), &Meter::disabled());
/// // Every packed tree spans all 8 vertices.
/// assert!(trees.iter().all(|t| t.len() == 7));
/// ```
pub fn greedy_tree_packing(
    h: &Graph,
    params: &PackingParams,
    meter: &Meter,
) -> Vec<Vec<(u32, u32)>> {
    assert!(h.n() >= 2, "packing needs at least one edge");
    let iterations = params.iterations(h.n());
    meter.record_depth("packing:iterations", iterations as u64);
    let mut uses: Vec<u64> = vec![0; h.m()];
    // Tree chosen at each iteration (the packing with multiplicities).
    let mut sequence: Vec<Vec<u32>> = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        // Load order uses(e)/w(e) as the fixed-point key
        // `(uses << 32) / w`: exact for ratio gaps above 2^-32 (uses is
        // bounded by the iteration count, weights by the certificate
        // cap), with (weight, index) tie-breaks keeping the packing
        // deterministic.
        let u = &uses;
        let forest = boruvka_msf_by(
            h,
            |i| {
                let w = h.edge(i).w.max(1);
                let scaled: u128 = (u[i] as u128) << 32;
                (scaled / w as u128, h.edge(i).w, i as u32)
            },
            meter,
        );
        assert_eq!(forest.len(), h.n() - 1, "packing input must be connected");
        for &i in &forest {
            uses[i as usize] += 1;
        }
        sequence.push(forest);
    }
    // Weight-proportional selection: evenly spaced iterations, then
    // dedup. Every tree has weight 1 in the PST packing, so spacing over
    // iterations is spacing over packing weight; a constant fraction of
    // that weight 2-respects the min cut (Karger), hence w.h.p. a
    // selected tree does.
    let want = params.max_trees(h.n()).min(sequence.len());
    let stride = sequence.len() as f64 / want as f64;
    let mut seen: HashSet<Vec<u32>> = HashSet::new();
    let mut trees = Vec::with_capacity(want);
    for k in 0..want {
        let idx = (k as f64 * stride) as usize;
        let forest = &sequence[idx.min(sequence.len() - 1)];
        if seen.insert(forest.clone()) {
            trees.push(
                forest
                    .iter()
                    .map(|&i| {
                        let e = h.edge(i as usize);
                        (e.u, e.v)
                    })
                    .collect(),
            );
        }
    }
    trees
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmc_graph::generators;
    use pmc_parallel::union_find::UnionFind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn is_spanning_tree(n: usize, edges: &[(u32, u32)]) -> bool {
        if edges.len() != n - 1 {
            return false;
        }
        let mut uf = UnionFind::new(n);
        edges.iter().all(|&(u, v)| uf.union(u, v))
    }

    #[test]
    fn all_outputs_are_spanning_trees() {
        let mut rng = StdRng::seed_from_u64(501);
        let g = generators::gnm_connected(30, 90, 7, &mut rng);
        let trees = greedy_tree_packing(&g, &PackingParams::default(), &Meter::disabled());
        assert!(!trees.is_empty());
        for t in &trees {
            assert!(is_spanning_tree(30, t));
        }
    }

    #[test]
    fn trees_are_distinct() {
        let mut rng = StdRng::seed_from_u64(502);
        let g = generators::gnm_connected(20, 60, 5, &mut rng);
        let trees = greedy_tree_packing(&g, &PackingParams::default(), &Meter::disabled());
        let mut canon: Vec<Vec<(u32, u32)>> = trees
            .iter()
            .map(|t| {
                let mut c: Vec<(u32, u32)> =
                    t.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
                c.sort_unstable();
                c
            })
            .collect();
        let before = canon.len();
        canon.sort();
        canon.dedup();
        assert_eq!(canon.len(), before, "duplicate trees in packing");
    }

    #[test]
    fn loads_spread_over_cycle() {
        // On a cycle every spanning tree omits one edge; the greedy
        // packing must rotate the omitted edge, producing many distinct
        // trees.
        let g = generators::cycle(8, 1);
        let trees = greedy_tree_packing(&g, &PackingParams::default(), &Meter::disabled());
        assert!(trees.len() >= 4, "only {} distinct trees", trees.len());
    }

    #[test]
    fn min_cut_two_respects_some_tree() {
        // The packing guarantee (Karger): on a graph whose min cut is the
        // planted bridge pair, some packed tree crosses the cut at most
        // twice.
        let g = generators::ring_of_cliques(4, 4, 4, 1);
        // Min cut = 2 bridges of weight 1.
        let trees = greedy_tree_packing(&g, &PackingParams::default(), &Meter::disabled());
        // The optimal partition: one clique (vertices 0..4) vs the rest?
        // No: ring of 4 cliques, min cut splits the ring in two arcs; one
        // valid optimum: cliques {0,1} vs {2,3} -> vertices 0..8.
        let side: Vec<bool> = (0..16).map(|v| v < 8).collect();
        let crossings_ok = trees.iter().any(|t| {
            let crossing =
                t.iter().filter(|&&(u, v)| side[u as usize] != side[v as usize]).count();
            crossing <= 2
        });
        assert!(crossings_ok, "no packed tree 2-respects the optimal cut");
    }

    #[test]
    fn iteration_count_scales() {
        let p = PackingParams::default();
        assert!(p.iterations(16) >= 12);
        assert!(p.iterations(1 << 16) <= 4000);
        assert!(p.iterations(1024) >= p.iterations(16));
    }

    #[test]
    #[should_panic]
    fn disconnected_input_rejected() {
        let g = pmc_graph::Graph::from_edges(4, [(0, 1, 1), (2, 3, 1)]);
        greedy_tree_packing(&g, &PackingParams::default(), &Meter::disabled());
    }
}
