//! The parallel `O(1)`-approximation of the minimum cut (§3,
//! Theorem 3.1) and its `(1 ± ε)` refinement.
//!
//! The hierarchy machinery: sub-sample the multigraph level by level
//! (Def. 3.3), truncate per-edge at the critical layer (Def. 3.9),
//! compute per-layer certificates with global budgets (Alg. 3.17), and
//! read the *skeleton layer* off the layer min-cut profile: the unique
//! layer `s` whose certificate min-cut lands in the calibration window
//! `[0.75, 1.25] · c_w log n` (Claims 3.6/3.11–3.13 give the w.h.p.
//! separation between the window and the layers above/below). The
//! estimate is then `value_s · 2^s`.
//!
//! Layer min-cuts use [`mincut_small`]: its output is always a genuine
//! cut value (never an underestimate), and Claims 3.12/3.13 only need
//! one-sided accuracy away from the window, so classification is safe
//! even where the packing budget is exceeded (see DESIGN.md).
//!
//! When even layer 0 sits below the window, the layer-0 certificate
//! preserves the min-cut exactly (Claim 3.18) and the "approximation"
//! is in fact exact — `ApproxResult::below_window` reports this.

use crate::engine::GraphContext;
use crate::exact::{mincut_small, mincut_small_in};
use crate::packing::PackingParams;
use crate::two_respect::TwoRespectParams;
use pmc_graph::Graph;
use pmc_parallel::meter::Meter;
use pmc_sparsify::certificate::k_certificate;
use pmc_sparsify::hierarchy::{CertificateHierarchy, ExclusiveHierarchy, HierarchyParams};
use pmc_sparsify::skeleton::{skeleton, skeleton_probability};
use rayon::prelude::*;

/// Parameters of the approximation phase.
#[derive(Debug, Clone)]
pub struct ApproxParams {
    pub hierarchy: HierarchyParams,
    /// Window centre as a multiple of `log2 n` (the paper's skeleton
    /// sampling target `100 log n`; the ratio to `crit_factor` = 500 is
    /// what matters, so the default tracks `hierarchy.crit_factor / 5`).
    pub window_center_factor: f64,
    pub two_respect: TwoRespectParams,
    pub packing: PackingParams,
}

impl Default for ApproxParams {
    fn default() -> Self {
        let hierarchy = HierarchyParams::practical(0xAB5EED);
        ApproxParams {
            window_center_factor: hierarchy.crit_factor / 5.0,
            hierarchy,
            two_respect: TwoRespectParams::default(),
            packing: PackingParams::default(),
        }
    }
}

impl ApproxParams {
    /// The constants as printed in the paper (§3: 500/400/200/100 log n).
    /// Only meaningful for min-cuts well above `500 log n`.
    pub fn paper(seed: u64) -> Self {
        let hierarchy = HierarchyParams::paper(seed);
        ApproxParams {
            window_center_factor: hierarchy.crit_factor / 5.0,
            hierarchy,
            two_respect: TwoRespectParams::default(),
            packing: PackingParams::default(),
        }
    }

    /// Lower edge of the window at this `n` (`0.75 · centre · log2 n`).
    pub fn window_low(&self, n: usize) -> u64 {
        (0.75 * self.window_center_factor * (n.max(2) as f64).log2()).ceil() as u64
    }
}

/// Outcome of the approximation.
#[derive(Debug, Clone)]
pub struct ApproxResult {
    /// The min-cut estimate (`value_s · 2^s`), a `(1 ± 1/3)`-factor
    /// estimate w.h.p. — exact when `below_window` is set.
    pub lambda: u64,
    /// The layer identified as the skeleton layer.
    pub layer: usize,
    /// Layer-certificate min-cut values, index = layer.
    pub layer_values: Vec<u64>,
    /// True when even layer 0 fell below the window: the certificate
    /// preserved the min-cut exactly and `lambda` is exact.
    pub below_window: bool,
}

/// Theorem 3.1: a constant-factor approximation of the minimum cut with
/// `O(m log n + n polylog n)` work and polylog depth.
/// # Example
///
/// ```
/// use pmc_mincut::{approx_mincut, ApproxParams};
/// use pmc_parallel::Meter;
///
/// // Small min cut: the layer-0 certificate answers exactly.
/// let g = pmc_graph::generators::dumbbell(8, 10, 3);
/// let a = approx_mincut(&g, &ApproxParams::default(), &Meter::disabled());
/// assert!(a.below_window);
/// assert_eq!(a.lambda, 3);
/// ```
pub fn approx_mincut(g: &Graph, params: &ApproxParams, meter: &Meter) -> ApproxResult {
    let ctx = GraphContext::attach(g, meter);
    approx_mincut_in(&ctx, params, meter)
}

/// [`approx_mincut`] over a prebuilt [`GraphContext`] — the exact
/// pipeline passes its own context through so Phase 1 shares the
/// coalesced graph and connectivity state instead of re-deriving them.
pub fn approx_mincut_in(ctx: &GraphContext<'_>, params: &ApproxParams, meter: &Meter) -> ApproxResult {
    if ctx.n() < 2 || !ctx.is_connected() {
        return ApproxResult {
            lambda: if ctx.n() < 2 { u64::MAX } else { 0 },
            layer: 0,
            layer_values: Vec::new(),
            below_window: true,
        };
    }
    let g = ctx.graph();
    let hierarchy = ExclusiveHierarchy::build(g, &params.hierarchy, meter);
    let certs = CertificateHierarchy::build(g, &hierarchy, &params.hierarchy, meter);
    meter.record_depth("approx:hierarchy_levels", hierarchy.num_levels() as u64);
    // Layer min-cuts in parallel (§3.1.4 computes the O(log n) instances
    // simultaneously). Each layer's union graph gets its own
    // graph-lifetime context (connectivity + degrees derived once per
    // layer, not once per probe inside the solver).
    let layer_values: Vec<u64> = (0..certs.num_levels())
        .into_par_iter()
        .map(|i| {
            let u = certs.union_graph(g, i);
            let uctx = GraphContext::adopt(u, meter);
            let c = mincut_small_in(&uctx, &params.two_respect, &params.packing, meter);
            if c.value == u64::MAX {
                0
            } else {
                c.value
            }
        })
        .collect();
    let low = params.window_low(g.n());
    // Largest layer still at or above the window floor = the skeleton
    // layer (values only shrink going up the hierarchy, Claims 3.11-13).
    let layer = layer_values.iter().rposition(|&v| v >= low);
    match layer {
        Some(s) => ApproxResult {
            lambda: layer_values[s] << s,
            layer: s,
            layer_values,
            below_window: false,
        },
        None => ApproxResult {
            lambda: layer_values.first().copied().unwrap_or(0),
            layer: 0,
            layer_values,
            below_window: true,
        },
    }
}

/// The `(1 ± ε)` refinement stated after Theorem 3.1: re-skeletonize at
/// accuracy `ε` using the constant-factor estimate, then measure the
/// skeleton's min-cut exactly and rescale.
pub fn approx_mincut_eps(
    g: &Graph,
    eps: f64,
    params: &ApproxParams,
    seed: u64,
    meter: &Meter,
) -> u64 {
    assert!(eps > 0.0 && eps <= 1.0);
    let base = approx_mincut(g, params, meter);
    if base.below_window || base.lambda == 0 || base.lambda == u64::MAX {
        return base.lambda;
    }
    let lambda_under = (base.lambda / 2).max(1);
    let c = 24.0; // oversampling constant for the refinement skeleton
    let p = skeleton_probability(g.n(), eps, lambda_under, c);
    if p >= 1.0 {
        // The graph is already in the exactly-measurable regime.
        return mincut_small(g, &params.two_respect, &params.packing, meter).value;
    }
    let cap_scale = (c * (g.n().max(2) as f64).ln() / (eps * eps)).ceil();
    let cap = (8.0 * cap_scale) as u64;
    let h = skeleton(g, p, cap, seed, meter);
    let hc = k_certificate(&h, 2 * cap, meter);
    let value = mincut_small(&hc, &params.two_respect, &params.packing, meter).value;
    if value == u64::MAX {
        return 0;
    }
    (value as f64 / p).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmc_graph::{generators, stoer_wagner_mincut};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_constant_factor(g: &Graph, params: &ApproxParams, factor: f64, label: &str) {
        let expect = stoer_wagner_mincut(g).value as f64;
        let got = approx_mincut(g, params, &Meter::disabled());
        let lam = got.lambda as f64;
        assert!(
            lam >= expect / factor && lam <= expect * factor,
            "{label}: estimate {lam} not within {factor}x of {expect}"
        );
    }

    #[test]
    fn small_cut_graphs_exact_via_window_floor() {
        // Min cut far below the window: layer 0 certificate is exact.
        let params = ApproxParams::default();
        for (g, lambda) in [
            (generators::dumbbell(8, 5, 3), 3),
            (generators::cycle(20, 2), 4),
            (generators::grid(5, 5, 1), 2),
        ] {
            let r = approx_mincut(&g, &params, &Meter::disabled());
            assert!(r.below_window, "min-cut {lambda} should be below the window");
            assert_eq!(r.lambda, lambda);
        }
    }

    #[test]
    fn heavy_graphs_constant_factor() {
        let mut rng = StdRng::seed_from_u64(701);
        for trial in 0..3 {
            let g = generators::heavy_cycle_with_chords(16, 30, 4000, 100, &mut rng);
            let params = ApproxParams {
                hierarchy: HierarchyParams::practical(900 + trial),
                ..ApproxParams::default()
            };
            check_constant_factor(&g, &params, 2.5, &format!("heavy {trial}"));
        }
    }

    #[test]
    fn dumbbell_heavy_bridge() {
        // lambda = 6000 (bridge), far above the window.
        let g = generators::dumbbell(10, 2000, 6000);
        check_constant_factor(&g, &ApproxParams::default(), 2.5, "dumbbell heavy");
    }

    #[test]
    fn layer_profile_monotone_through_window() {
        // Layer values should generally decay going up; the chosen layer
        // must sit at the window boundary.
        let mut rng = StdRng::seed_from_u64(702);
        let g = generators::heavy_cycle_with_chords(14, 24, 3000, 60, &mut rng);
        let params = ApproxParams::default();
        let r = approx_mincut(&g, &params, &Meter::disabled());
        assert!(!r.below_window);
        let low = params.window_low(g.n());
        assert!(r.layer_values[r.layer] >= low);
        for v in &r.layer_values[r.layer + 1..] {
            assert!(*v < low, "layers above s must be below the window");
        }
    }

    #[test]
    fn eps_refinement_tightens() {
        let g = generators::dumbbell(10, 2000, 6000);
        let params = ApproxParams::default();
        let lam = approx_mincut_eps(&g, 0.25, &params, 11, &Meter::disabled());
        let expect = 6000.0;
        assert!(
            (lam as f64) >= expect * 0.6 && (lam as f64) <= expect * 1.4,
            "eps-refined {lam} vs {expect}"
        );
    }

    #[test]
    fn eps_refinement_exact_when_small() {
        let g = generators::cycle(16, 3);
        let params = ApproxParams::default();
        let lam = approx_mincut_eps(&g, 0.3, &params, 12, &Meter::disabled());
        assert_eq!(lam, 6);
    }

    #[test]
    fn degenerate_inputs() {
        let params = ApproxParams::default();
        let g0 = Graph::from_edges(1, []);
        assert_eq!(approx_mincut(&g0, &params, &Meter::disabled()).lambda, u64::MAX);
        let g1 = Graph::from_edges(4, [(0, 1, 5), (2, 3, 5)]);
        assert_eq!(approx_mincut(&g1, &params, &Meter::disabled()).lambda, 0);
    }

    use pmc_graph::Graph;
}
