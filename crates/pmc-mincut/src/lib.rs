//! Work-optimal parallel minimum cuts (López-Martínez, Mukhopadhyay,
//! Nanongkai; SPAA 2021).
//!
//! The crate implements the paper end to end:
//!
//! * [`cutquery`]: the cut-query structure of Lemma A.1/A.2 — postorder
//!   intervals plus a 2-D range tree turn `cut(e, f)` into rectangle
//!   sums. Implemented through the uniform *coverage* form
//!   `cut(e,f) = cov(e) + cov(f) - 2 cov(e,f)` (see DESIGN.md).
//! * [`interest`]: the cross-/down-interest search of Definition 4.7 /
//!   Claims 4.8, 4.13 — per tree edge, the endpoints `ce`/`de` of the
//!   path of edges it is interested in, traced by a pluggable
//!   [`interest::DecompositionStrategy`] (centroid descent by default,
//!   heavy-path descent as the fallback).
//! * [`two_respect`]: the minimum 2-respecting cut of a spanning tree
//!   (Theorem 4.2): path decomposition, partial-Monge single-path
//!   search, interest tuples, and Monge pair search.
//! * [`packing`]: skeleton + certificate + greedy (PST) tree packing
//!   (Theorem 4.18).
//! * [`approx`]: the `O(1)`-approximation through the sampling
//!   hierarchies of §3 (Theorem 3.1).
//! * [`exact`]: the full pipeline (Theorems 4.1 and 4.26) and the
//!   simpler baselines used by the experiments.
//! * [`engine`]: the two-level solver engine — graph-lifetime
//!   [`GraphContext`] vs tree-lifetime [`TreeContext`], parallel
//!   sub-builds, and the batched query facade. The one-shot functions
//!   above are thin wrappers over it.
//!
//! Quick start:
//!
//! ```
//! use pmc_graph::generators;
//! use pmc_mincut::{exact_mincut, ExactParams};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let g = generators::dumbbell(8, 10, 3); // min cut = 3 (the bridge)
//! let result = exact_mincut(&g, &ExactParams::default());
//! assert_eq!(result.cut.value, 3);
//! ```

pub mod approx;
pub mod cutquery;
pub mod engine;
pub mod exact;
pub mod interest;
pub mod packing;
pub mod robust;
pub mod two_respect;

pub use approx::{approx_mincut, approx_mincut_eps, approx_mincut_in, ApproxParams, ApproxResult};
pub use cutquery::{BatchOutcome, CutQuery};
pub use engine::{GraphContext, TreeContext};
pub use exact::{
    exact_mincut, exact_mincut_deadline, exact_mincut_deadline_in, exact_mincut_in,
    exact_mincut_metered, mincut_small, mincut_small_in, ExactParams, ExactResult,
};
// The robustness vocabulary (shared with every crate through
// `pmc-fault`) re-exported where solver callers already look.
pub use pmc_fault::{Deadline, DegradeReason, FaultPlan, PmcError, SolveQuality};
pub use robust::exact_mincut_robust;
pub use interest::{
    Arms, CentroidDescent, DecompositionStrategy, HeavyPathDescent, InterestEngine,
    InterestSearch, InterestStrategy,
};
pub use packing::{greedy_tree_packing, PackingParams};
pub use two_respect::{
    naive_two_respecting, two_respecting_mincut, two_respecting_mincut_in, TwoRespectParams,
};
