//! The interest relation and its path endpoints (Def. 4.7, Claims
//! 4.8/4.13).
//!
//! Through the coverage form, tree edge `f` is *interesting* for `e`
//! iff `2·cov(e,f) > cov(e)` — exactly the paper's cross-/down-interest
//! unified (DESIGN.md derives the equivalence). The interesting set
//! `Π(e)` is a single tree path through `e`'s location:
//!
//! * any graph edge covering both `e` and `f` also covers every tree
//!   edge between them, so `Π(e) ∪ {e}` is connected; and
//! * two tree edges on different branches below a node have disjoint
//!   "covering" edge sets, so at most one branch can exceed half of
//!   `cov(e)` — `Π(e)` never branches.
//!
//! Hence `Π(e)` = a *down-arm* descending from `e` (ending at `de`) plus
//! an *up-arm* climbing from `e` that turns downward at most once
//! (ending at `ce`) — the paper's `de` and `ce` nodes.
//!
//! Both arms are traced by a pluggable [`DecompositionStrategy`]:
//!
//! * [`CentroidDescent`] (the default, the paper's Claim 4.13): walk
//!   down the centroid tree maintaining the invariant that the current
//!   centroid component contains the arm endpoint. Routing toward a
//!   component is an `O(1)` structural lookup
//!   ([`pmc_tree::CentroidDecomposition::child_toward`]); at most one
//!   coverage query decides each level, so an arm costs `O(log n)` cut
//!   queries on bounded-degree trees (`O(log n · log Δ)` in general,
//!   from the child-locating binary searches at the `O(log n)`
//!   centroids that land on the arm).
//! * [`HeavyPathDescent`] (the retained fallback, DESIGN.md §2):
//!   interest is monotone along any root-down chain, so the arm is
//!   traced by (1) binary searching its extent along the current heavy
//!   chain, and (2) locating the unique possible branching child by
//!   binary search over the children's contiguous postorder intervals.
//!   Each arm costs `O(log² n)` cut queries.
//!
//! The `tests/complexity_regression.rs` suite turns the asymptotic gap
//! into an executable check with metered query counts.

use crate::cutquery::CutQuery;
use pmc_parallel::meter::{CostKind, Meter};
use pmc_tree::{CentroidDecomposition, LcaEngine};

/// Endpoints of the interesting path of one edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arms {
    /// Deepest node of the descending arm (equals `e` when empty).
    pub de: u32,
    /// Deepest node of the up-and-over arm (equals `e` when the arm
    /// never turns into a sibling branch; pure up-arms are subsumed by
    /// the root-path of `de`).
    pub ce: u32,
}

/// Which decomposition steers the interest search — the selector for
/// the two [`DecompositionStrategy`] implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterestStrategy {
    /// Heavy-path descent: `O(log² n)` cut queries per edge. The
    /// provable fallback described in DESIGN.md §2.
    HeavyPath,
    /// Centroid descent (the paper's Claim 4.13): `O(log n)` cut
    /// queries per edge on the workloads the theorem targets.
    #[default]
    Centroid,
}

impl InterestStrategy {
    /// Stable display name (experiment tables, logs).
    pub fn name(self) -> &'static str {
        match self {
            InterestStrategy::HeavyPath => "heavy-path",
            InterestStrategy::Centroid => "centroid",
        }
    }
}

/// The pluggable arm-tracing engine of the interest search.
///
/// An implementation traces one arm of `Π(e)`: the maximal descending
/// run of interesting edges starting below `start` (with at most one
/// child branch of `start` masked by `exclude`). The two shipped
/// implementations are [`HeavyPathDescent`] and [`CentroidDescent`];
/// both rely only on the public query surface of [`InterestSearch`], so
/// external experiments can plug in further strategies through
/// [`InterestSearch::build_with`].
pub trait DecompositionStrategy: Sync {
    /// Deepest vertex of the arm of `e` descending from `start`
    /// (`start` itself when the arm is empty). `exclude` masks one
    /// child branch of `start` — the branch the up-arm arrived from.
    fn descend(
        &self,
        search: &InterestSearch<'_>,
        e: u32,
        start: u32,
        cov_e: u64,
        exclude: Option<u32>,
        meter: &Meter,
    ) -> u32;

    /// Stable display name (experiment tables, logs).
    fn name(&self) -> &'static str;
}

/// Heavy-path descent (DESIGN.md §2): `O(log² n)` cut queries per arm.
pub struct HeavyPathDescent {
    /// Heavy chains flattened CSR-style: chain `c` is
    /// `chain_nodes[chain_offsets[c]..chain_offsets[c + 1]]`, vertices
    /// listed top to bottom (every vertex is on exactly one chain, so
    /// the node arena has exactly `n` entries).
    chain_nodes: Vec<u32>,
    chain_offsets: Vec<u32>,
    chain_of: Vec<u32>,
    chain_pos: Vec<u32>,
}

impl HeavyPathDescent {
    pub fn build(tree: &pmc_tree::RootedTree, meter: &Meter) -> Self {
        let n = tree.n();
        meter.add(CostKind::TreeOp, n as u64);
        let mut chain_of = vec![u32::MAX; n];
        let mut chain_pos = vec![u32::MAX; n];
        let mut chain_nodes = Vec::with_capacity(n);
        let mut chain_offsets = vec![0u32];
        for v in 0..n as u32 {
            let is_head = v == tree.root()
                || tree.heavy_child(tree.parent(v)) != Some(v);
            if !is_head {
                continue;
            }
            let id = chain_offsets.len() as u32 - 1;
            let start = chain_nodes.len();
            chain_nodes.push(v);
            let mut cur = v;
            while let Some(h) = tree.heavy_child(cur) {
                chain_nodes.push(h);
                cur = h;
            }
            for (i, &x) in chain_nodes[start..].iter().enumerate() {
                chain_of[x as usize] = id;
                chain_pos[x as usize] = i as u32;
            }
            chain_offsets.push(chain_nodes.len() as u32);
        }
        HeavyPathDescent { chain_nodes, chain_offsets, chain_of, chain_pos }
    }

    /// One heavy chain as a slice of the flat node arena.
    #[inline]
    fn chain(&self, id: u32) -> &[u32] {
        let lo = self.chain_offsets[id as usize] as usize;
        let hi = self.chain_offsets[id as usize + 1] as usize;
        &self.chain_nodes[lo..hi]
    }
}

impl DecompositionStrategy for HeavyPathDescent {
    /// Trace an arm downward from `start`: repeatedly (1) find the
    /// unique interesting child branch (none -> stop), (2) binary
    /// search the arm's extent along that child's heavy chain.
    fn descend(
        &self,
        search: &InterestSearch<'_>,
        e: u32,
        start: u32,
        cov_e: u64,
        mut exclude: Option<u32>,
        meter: &Meter,
    ) -> u32 {
        let mut v = start;
        loop {
            let Some(c) = search.interesting_child(e, v, cov_e, exclude, meter) else {
                return v;
            };
            exclude = None;
            // Binary search the deepest interesting edge on c's heavy
            // chain (interest is monotone along the vertical chain).
            let chain = self.chain(self.chain_of[c as usize]);
            let k = self.chain_pos[c as usize] as usize;
            let (mut lo, mut hi) = (k, chain.len() - 1);
            while lo < hi {
                let mid = (lo + hi).div_ceil(2);
                if search.interesting(e, chain[mid], meter) {
                    lo = mid;
                } else {
                    hi = mid - 1;
                }
            }
            let x = chain[lo];
            if x == v {
                return v;
            }
            v = x;
        }
    }

    fn name(&self) -> &'static str {
        InterestStrategy::HeavyPath.name()
    }
}

/// Centroid descent (Claim 4.13): `O(log n)` cut queries per arm on
/// bounded-degree trees.
///
/// The arm endpoint `t` is the deepest vertex of a root-down chain of
/// vertices `v` with `t ∈ subtree(v)`, and that membership is decidable
/// with at most one coverage query (`interesting(e, v)` when `v` lies
/// strictly below the deepest confirmed arm vertex; structurally
/// otherwise). The descent walks the centroid tree keeping the
/// invariant *"the current centroid's component contains `t`"*: each
/// level either routes structurally (`child_toward`, zero queries),
/// spends one query to discover the centroid is off the arm, or lands
/// on the arm and re-anchors via the unique-interesting-child search.
pub struct CentroidDescent {
    cd: CentroidDecomposition,
}

impl CentroidDescent {
    pub fn build(tree: &pmc_tree::RootedTree, meter: &Meter) -> Self {
        CentroidDescent { cd: CentroidDecomposition::build(tree, meter) }
    }

    /// The underlying decomposition (tests, experiments).
    pub fn decomposition(&self) -> &CentroidDecomposition {
        &self.cd
    }
}

impl DecompositionStrategy for CentroidDescent {
    fn descend(
        &self,
        search: &InterestSearch<'_>,
        e: u32,
        start: u32,
        cov_e: u64,
        mut exclude: Option<u32>,
        meter: &Meter,
    ) -> u32 {
        let tree = search.q.tree();
        let cd = &self.cd;
        // Deepest confirmed arm vertex; the endpoint lies in its subtree.
        let mut a = start;
        let mut c = cd.top();
        loop {
            if c == a {
                // The centroid is the deepest confirmed arm vertex:
                // extend the arm by its unique interesting child, or
                // certify that the arm ends here.
                match search.interesting_child(e, a, cov_e, exclude, meter) {
                    None => return a,
                    Some(u) => {
                        exclude = None;
                        a = u;
                        c = cd.child_toward(c, u);
                        continue;
                    }
                }
            }
            let route_to = if tree.is_ancestor(c, a) {
                // Strictly above `a`: descend toward it (structural).
                search.lca.ancestor_at_depth(a, tree.depth(c) + 1)
            } else if tree.is_ancestor(a, c) {
                // Strictly below `a`: on the excluded branch the
                // endpoint cannot be; otherwise one query decides
                // whether `c` is on the arm.
                let masked = exclude.is_some_and(|x| tree.is_ancestor(x, c));
                if !masked && search.interesting(e, c, meter) {
                    // `c` is an arm vertex: re-anchor and resolve it as
                    // the new deepest confirmed vertex next iteration.
                    exclude = None;
                    a = c;
                    continue;
                }
                // Off the arm: the endpoint is outside subtree(c).
                tree.parent(c)
            } else {
                // Incomparable with `a`: the endpoint lives in
                // subtree(a), disjoint from subtree(c).
                tree.parent(c)
            };
            c = cd.child_toward(c, route_to);
        }
    }

    fn name(&self) -> &'static str {
        InterestStrategy::Centroid.name()
    }
}

/// A built arm-tracing engine: the tree-lifetime state of the interest
/// search (heavy chains or the centroid decomposition). Building one is
/// the expensive part of [`InterestSearch::build`]; a
/// [`crate::engine::TreeContext`] constructs it once per packed tree and
/// binds it to fresh [`InterestSearch`] views via
/// [`InterestSearch::with_engine`] without rebuilding.
pub enum InterestEngine {
    HeavyPath(HeavyPathDescent),
    Centroid(CentroidDescent),
    Custom(Box<dyn DecompositionStrategy + Send>),
}

impl InterestEngine {
    /// Build the tree-lifetime engine for `strategy`.
    pub fn build(tree: &pmc_tree::RootedTree, strategy: InterestStrategy, meter: &Meter) -> Self {
        match strategy {
            InterestStrategy::HeavyPath => {
                InterestEngine::HeavyPath(HeavyPathDescent::build(tree, meter))
            }
            InterestStrategy::Centroid => {
                InterestEngine::Centroid(CentroidDescent::build(tree, meter))
            }
        }
    }

    /// The engine as a trait object.
    pub fn strategy(&self) -> &dyn DecompositionStrategy {
        match self {
            InterestEngine::HeavyPath(h) => h,
            InterestEngine::Centroid(c) => c,
            InterestEngine::Custom(b) => b.as_ref(),
        }
    }
}

enum EngineRef<'a> {
    Owned(InterestEngine),
    Borrowed(&'a InterestEngine),
}

/// Interest-path search over a fixed [`CutQuery`] structure.
///
/// Holds an [`LcaEngine`] rather than a bare lifting table: the arm
/// binary searches need level-ancestor queries (which stay with the
/// lifting substrate whatever the LCA strategy), so the engine is the
/// right capability bundle here.
pub struct InterestSearch<'a> {
    q: &'a CutQuery<'a>,
    lca: &'a LcaEngine,
    engine: EngineRef<'a>,
}

impl<'a> InterestSearch<'a> {
    /// Build the search with the given arm-tracing strategy (building
    /// the engine from scratch; use [`InterestSearch::with_engine`] to
    /// reuse a prebuilt one).
    pub fn build(
        q: &'a CutQuery<'a>,
        lca: &'a LcaEngine,
        strategy: InterestStrategy,
        meter: &Meter,
    ) -> Self {
        let engine = InterestEngine::build(q.tree(), strategy, meter);
        InterestSearch { q, lca, engine: EngineRef::Owned(engine) }
    }

    /// Bind the search to a prebuilt tree-lifetime engine — the reuse
    /// path of the two-level solver engine: no per-call rebuild.
    pub fn with_engine(
        q: &'a CutQuery<'a>,
        lca: &'a LcaEngine,
        engine: &'a InterestEngine,
    ) -> Self {
        InterestSearch { q, lca, engine: EngineRef::Borrowed(engine) }
    }

    /// Build the search around a caller-supplied arm-tracing engine —
    /// the extension point for experimenting with further descent
    /// schemes beyond the two shipped ones.
    pub fn build_with(
        q: &'a CutQuery<'a>,
        lca: &'a LcaEngine,
        engine: Box<dyn DecompositionStrategy + Send>,
    ) -> Self {
        InterestSearch { q, lca, engine: EngineRef::Owned(InterestEngine::Custom(engine)) }
    }

    /// The active arm-tracing engine.
    pub fn strategy(&self) -> &dyn DecompositionStrategy {
        match &self.engine {
            EngineRef::Owned(e) => e.strategy(),
            EngineRef::Borrowed(e) => e.strategy(),
        }
    }

    /// Is `f` interesting for `e` (`2 cov(e,f) > cov(e)`)?
    pub fn interesting(&self, e: u32, f: u32, meter: &Meter) -> bool {
        meter.bump(CostKind::InterestQuery);
        2 * self.q.cov2(e, f, meter) > self.q.cov(e)
    }

    /// Compute the arm endpoints for edge `e` (a non-root vertex).
    pub fn arms(&self, e: u32, meter: &Meter) -> Arms {
        let tree = self.q.tree();
        debug_assert_ne!(e, tree.root());
        let cov_e = self.q.cov(e);
        if cov_e == 0 {
            return Arms { de: e, ce: e };
        }
        let strategy = self.strategy();
        // Down-arm: descend inside subtree(e).
        let de = strategy.descend(self, e, e, cov_e, None, meter);

        // Up-arm: highest interesting ancestor edge by binary search on
        // depth (interest decreases going up).
        let de_pth = tree.depth(e);
        let apex = if de_pth >= 2 {
            let parent = tree.parent(e);
            if self.interesting(e, parent, meter) {
                // Minimal depth d in [1, depth(e)-1] with the ancestor
                // edge at depth d interesting.
                let (mut lo, mut hi) = (1u32, de_pth - 1);
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    let x = self.lca.ancestor_at_depth(e, mid);
                    if self.interesting(e, x, meter) {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                Some(self.lca.ancestor_at_depth(e, lo))
            } else {
                None
            }
        } else {
            None
        };
        // Turn node: top of the up-arm (or e's parent for an empty
        // up-arm); the branch we arrived from is excluded.
        let (turn_node, exclude) = match apex {
            Some(x_star) => (tree.parent(x_star), x_star),
            None => (tree.parent(e), e),
        };
        let over = strategy.descend(self, e, turn_node, cov_e, Some(exclude), meter);
        let ce = if over == turn_node { e } else { over };
        Arms { de, ce }
    }

    /// The unique child `c` of `v` (excluding `exclude`) whose edge is
    /// interesting for `e`, if any: binary search for the child interval
    /// where the cumulative coverage mass crosses `cov(e)/2`, then
    /// verify. `O(log deg(v))` coverage queries.
    pub fn interesting_child(
        &self,
        e: u32,
        v: u32,
        cov_e: u64,
        exclude: Option<u32>,
        meter: &Meter,
    ) -> Option<u32> {
        let tree = self.q.tree();
        let children = tree.children(v);
        if children.is_empty() {
            return None;
        }
        // Mass of covering edges landing in the y-interval [y1, y2]
        // (a union of child subtrees): the other endpoint must be on the
        // far side of e.
        let nested_mode = tree.is_ancestor(e, v);
        let (es, ep) = (tree.start(e), tree.post(e));
        let max_coord = (tree.n() as u32) - 1;
        let mass = |y1: u32, y2: u32| -> u64 {
            meter.bump(CostKind::CutQuery);
            meter.bump(CostKind::InterestQuery);
            if nested_mode {
                // Children lie below e: covering edges run from the
                // child's subtree to outside subtree(e); count from the
                // complement-x side.
                let mut total = 0;
                if es > 0 {
                    total += self.q.rect(0, es - 1, y1, y2, meter);
                }
                if ep < max_coord {
                    total += self.q.rect(ep + 1, max_coord, y1, y2, meter);
                }
                total
            } else {
                // Children are incomparable with e: covering edges run
                // from subtree(e) into the child's subtree.
                self.q.rect(es, ep, y1, y2, meter)
            }
        };
        // Child index segments (exclusion splits the array in two).
        let ex_idx = exclude.and_then(|x| children.iter().position(|&c| c == x));
        let segments: [(usize, usize); 2] = match ex_idx {
            Some(i) => [(0, i), (i + 1, children.len())],
            None => [(0, children.len()), (0, 0)],
        };
        for &(s0, s1) in &segments {
            if s0 >= s1 {
                continue;
            }
            if s1 - s0 == 1 {
                // Single candidate: one mass probe decides.
                let c = children[s0];
                if 2 * mass(tree.start(c), tree.post(c)) > cov_e {
                    return Some(c);
                }
                continue;
            }
            let seg_lo = tree.start(children[s0]);
            let total = mass(seg_lo, tree.post(children[s1 - 1]));
            if 2 * total <= cov_e {
                continue;
            }
            // Smallest j with cumulative(s0..=j) * 2 > cov_e.
            let (mut lo, mut hi) = (s0, s1 - 1);
            while lo < hi {
                let mid = (lo + hi) / 2;
                if 2 * mass(seg_lo, tree.post(children[mid])) > cov_e {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            let c = children[lo];
            // Verify: the crossing child really is interesting.
            if 2 * mass(tree.start(c), tree.post(c)) > cov_e {
                return Some(c);
            }
        }
        None
    }

    /// Brute-force interesting set (tests/ablation): all `f` with
    /// `2 cov(e,f) > cov(e)`.
    pub fn brute_interesting_set(&self, e: u32, meter: &Meter) -> Vec<u32> {
        let tree = self.q.tree();
        (0..tree.n() as u32)
            .filter(|&f| f != tree.root() && f != e && self.interesting(e, f, meter))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmc_graph::{generators, Graph};
    use pmc_parallel::spanning_forest::spanning_forest;
    use pmc_tree::{LcaStrategy, RootedTree};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const BOTH: [InterestStrategy; 2] =
        [InterestStrategy::HeavyPath, InterestStrategy::Centroid];

    fn lca_of(tree: &RootedTree) -> LcaEngine {
        LcaEngine::build(tree, LcaStrategy::default(), &Meter::disabled())
    }

    struct Fixture {
        g: Graph,
        tree: std::sync::Arc<RootedTree>,
    }

    fn fixture(n: usize, extra: usize, seed: u64) -> Fixture {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnm_connected(n, extra, 9, &mut rng);
        let forest = spanning_forest(&g, &Meter::disabled());
        let edges: Vec<(u32, u32)> =
            forest.iter().map(|&i| (g.edge(i as usize).u, g.edge(i as usize).v)).collect();
        let tree = std::sync::Arc::new(RootedTree::from_edge_list(g.n(), &edges, 0));
        Fixture { g, tree }
    }

    /// The root-to-x vertex chain.
    fn root_chain(tree: &RootedTree, x: u32) -> Vec<u32> {
        let mut out = vec![x];
        let mut v = x;
        while v != tree.root() {
            v = tree.parent(v);
            out.push(v);
        }
        out
    }

    #[test]
    fn interesting_set_is_a_path() {
        // Claim 4.8 empirically: Π(e) ∪ {e} is connected and branchless.
        for seed in 0..5 {
            let f = fixture(24, 50, 200 + seed);
            let lca = lca_of(&f.tree);
            let q = CutQuery::build(&f.g, &f.tree, &lca, 0.5, &Meter::disabled());
            let is =
                InterestSearch::build(&q, &lca, InterestStrategy::default(), &Meter::disabled());
            let m = Meter::disabled();
            for e in 1..24u32 {
                let set = is.brute_interesting_set(e, &m);
                // Each interesting edge's chain to e must be interesting
                // throughout (connectivity along the tree path).
                for &fe in &set {
                    let l = lca.lca(e, fe);
                    // walk fe up to l; every edge strictly between fe and
                    // l must be interesting too.
                    let mut cur = fe;
                    while cur != l {
                        let nxt = f.tree.parent(cur);
                        if cur != fe && cur != e {
                            assert!(
                                set.contains(&cur),
                                "seed {seed} e={e}: gap at {cur} inside Π"
                            );
                        }
                        cur = nxt;
                    }
                    // and from e up to l (excluding e itself).
                    let mut cur = e;
                    while cur != l {
                        let nxt = f.tree.parent(cur);
                        if cur != e {
                            assert!(set.contains(&cur), "seed {seed} e={e}: gap at {cur}");
                        }
                        cur = nxt;
                    }
                }
            }
        }
    }

    #[test]
    fn arms_cover_interesting_set() {
        // The guarantee the tuple generation needs: every interesting f
        // lies on root->de or root->ce — under both strategies.
        for seed in 0..8 {
            let f = fixture(30, 70, 300 + seed);
            let lca = lca_of(&f.tree);
            let q = CutQuery::build(&f.g, &f.tree, &lca, 0.4, &Meter::disabled());
            let m = Meter::disabled();
            for strategy in BOTH {
                let is = InterestSearch::build(&q, &lca, strategy, &m);
                for e in 1..30u32 {
                    let arms = is.arms(e, &m);
                    let set = is.brute_interesting_set(e, &m);
                    let cover: std::collections::HashSet<u32> = root_chain(&f.tree, arms.de)
                        .into_iter()
                        .chain(root_chain(&f.tree, arms.ce))
                        .collect();
                    for &fe in &set {
                        assert!(
                            cover.contains(&fe),
                            "seed {seed} {strategy:?} e={e}: interesting edge {fe} not \
                             covered by arms {arms:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn strategies_agree_exactly() {
        // The arm endpoints are uniquely determined (deepest vertex of
        // each arm), so the two descents must return identical `Arms`.
        for seed in 0..10 {
            let f = fixture(28, 64, 500 + seed);
            let lca = lca_of(&f.tree);
            let q = CutQuery::build(&f.g, &f.tree, &lca, 0.5, &Meter::disabled());
            let m = Meter::disabled();
            let heavy = InterestSearch::build(&q, &lca, InterestStrategy::HeavyPath, &m);
            let centroid = InterestSearch::build(&q, &lca, InterestStrategy::Centroid, &m);
            for e in 1..28u32 {
                assert_eq!(
                    heavy.arms(e, &m),
                    centroid.arms(e, &m),
                    "seed {seed} e={e}: strategies disagree"
                );
            }
        }
    }

    #[test]
    fn arms_cover_on_structured_graphs() {
        let graphs = vec![
            generators::dumbbell(6, 5, 2),
            generators::ring_of_cliques(4, 4, 3, 1),
            generators::grid(5, 5, 2),
            generators::cycle(20, 3),
        ];
        for (gi, g) in graphs.into_iter().enumerate() {
            let forest = spanning_forest(&g, &Meter::disabled());
            let edges: Vec<(u32, u32)> =
                forest.iter().map(|&i| (g.edge(i as usize).u, g.edge(i as usize).v)).collect();
            let tree = std::sync::Arc::new(RootedTree::from_edge_list(g.n(), &edges, 0));
            let lca = lca_of(&tree);
            let q = CutQuery::build(&g, &tree, &lca, 0.5, &Meter::disabled());
            let m = Meter::disabled();
            for strategy in BOTH {
                let is = InterestSearch::build(&q, &lca, strategy, &m);
                for e in (0..g.n() as u32).filter(|&v| v != tree.root()) {
                    let arms = is.arms(e, &m);
                    let set = is.brute_interesting_set(e, &m);
                    let cover: std::collections::HashSet<u32> = root_chain(&tree, arms.de)
                        .into_iter()
                        .chain(root_chain(&tree, arms.ce))
                        .collect();
                    for &fe in &set {
                        assert!(cover.contains(&fe), "graph {gi} {strategy:?} e={e}: {fe}");
                    }
                }
            }
        }
    }

    #[test]
    fn path_tree_arms() {
        // Path graph: every pair of path edges has cut 2w; cov = w.
        // cov2(e, f) = 0 for distinct path edges (no edge covers both on
        // a pure path graph), so nothing is interesting.
        let g = generators::path(12, 4);
        let parent: Vec<u32> = (0..12u32).map(|v| v.saturating_sub(1)).collect();
        let tree = std::sync::Arc::new(RootedTree::from_parents(0, &parent));
        let lca = lca_of(&tree);
        let q = CutQuery::build(&g, &tree, &lca, 0.5, &Meter::disabled());
        let m = Meter::disabled();
        for strategy in BOTH {
            let is = InterestSearch::build(&q, &lca, strategy, &m);
            for e in 1..12u32 {
                assert!(is.brute_interesting_set(e, &m).is_empty());
                let arms = is.arms(e, &m);
                assert_eq!(arms, Arms { de: e, ce: e }, "{strategy:?}");
            }
        }
    }

    #[test]
    fn cycle_arms_reach_everywhere() {
        // Cycle graph with a path tree: the heavy chord covers every
        // tree edge, so for each e all other edges are interesting.
        let mut edges: Vec<(u32, u32, u64)> =
            (0..9u32).map(|i| (i, i + 1, 1)).collect();
        edges.push((0, 9, 5)); // heavy chord
        let g = Graph::from_edges(10, edges);
        let parent: Vec<u32> = (0..10u32).map(|v| v.saturating_sub(1)).collect();
        let tree = std::sync::Arc::new(RootedTree::from_parents(0, &parent));
        let lca = lca_of(&tree);
        let q = CutQuery::build(&g, &tree, &lca, 0.5, &Meter::disabled());
        let m = Meter::disabled();
        // Every tree edge is covered by the chord (weight 5) and itself
        // (weight 1): cov = 6, cov2 = 5 between any two tree edges.
        for strategy in BOTH {
            let is = InterestSearch::build(&q, &lca, strategy, &m);
            for e in 1..10u32 {
                assert_eq!(q.cov(e), 6);
                let set = is.brute_interesting_set(e, &m);
                assert_eq!(set.len(), 8, "{strategy:?} e={e}: all other edges interesting");
                let arms = is.arms(e, &m);
                // Down-arm reaches the deepest vertex, up-arm the rest.
                let cover: std::collections::HashSet<u32> = root_chain(&tree, arms.de)
                    .into_iter()
                    .chain(root_chain(&tree, arms.ce))
                    .collect();
                for &fe in &set {
                    assert!(cover.contains(&fe));
                }
            }
        }
    }

    #[test]
    fn figure_1_interest_relations() {
        // The example of Figure 1: an unweighted graph whose spanning
        // tree is drawn with solid edges. We reproduce the relations the
        // caption states: e cross-interested in f, f in e, and e'
        // down-interested in f.
        //
        //            r(0)
        //           /    \
        //         a(1)   b(2)
        //          |      |     tree edges: e = (1,3), f' chain on right:
        //         e:3    e'(4)  e' = (2,4), f = (4,5)
        //                 |
        //                f:5
        // non-tree: (3,5) x2 — heavy coverage between T_e and T_f.
        let g = Graph::from_edges(
            6,
            [
                (0, 1, 1),
                (0, 2, 1),
                (1, 3, 1),
                (2, 4, 1),
                (4, 5, 1),
                (3, 5, 2), // dashed, weight 2
            ],
        );
        let tree = std::sync::Arc::new(RootedTree::from_parents(0, &[0, 0, 0, 1, 2, 4]));
        let lca = lca_of(&tree);
        let q = CutQuery::build(&g, &tree, &lca, 0.5, &Meter::disabled());
        let is = InterestSearch::build(&q, &lca, InterestStrategy::default(), &Meter::disabled());
        let m = Meter::disabled();
        let (e, f, e_prime) = (3u32, 5u32, 4u32);
        // e is cross-interested in f and vice versa.
        assert!(is.interesting(e, f, &m));
        assert!(is.interesting(f, e, &m));
        // e' is down-interested in f.
        assert!(is.interesting(e_prime, f, &m));
    }

    #[test]
    fn custom_strategy_plugs_in() {
        // The build_with extension point: a naive linear-scan descent
        // must slot in behind the trait and agree with the defaults.
        struct LinearScan;
        impl DecompositionStrategy for LinearScan {
            fn descend(
                &self,
                search: &InterestSearch<'_>,
                e: u32,
                start: u32,
                cov_e: u64,
                mut exclude: Option<u32>,
                meter: &Meter,
            ) -> u32 {
                let mut v = start;
                loop {
                    let Some(c) = search.interesting_child(e, v, cov_e, exclude, meter)
                    else {
                        return v;
                    };
                    exclude = None;
                    v = c;
                }
            }
            fn name(&self) -> &'static str {
                "linear-scan"
            }
        }
        let f = fixture(26, 60, 900);
        let lca = lca_of(&f.tree);
        let q = CutQuery::build(&f.g, &f.tree, &lca, 0.5, &Meter::disabled());
        let m = Meter::disabled();
        let custom = InterestSearch::build_with(&q, &lca, Box::new(LinearScan));
        let default = InterestSearch::build(&q, &lca, InterestStrategy::default(), &m);
        assert_eq!(custom.strategy().name(), "linear-scan");
        for e in 1..26u32 {
            assert_eq!(custom.arms(e, &m), default.arms(e, &m), "e={e}");
        }
    }

    #[test]
    fn centroid_descent_issues_fewer_queries_on_long_arms() {
        // On the fishbone workload every spine arm crosses a fresh
        // heavy chain per level, so heavy-path descent pays a binary
        // search per level (Θ(log² n) per edge) while centroid descent
        // re-anchors in O(1) queries per centroid level.
        let levels = 9; // n = 3·2⁹ − 2 = 1534
        let (g, parent, spine) = generators::fishbone(levels, 8);
        let tree = std::sync::Arc::new(RootedTree::from_parents(0, &parent));
        let lca = lca_of(&tree);
        let q = CutQuery::build(&g, &tree, &lca, 0.5, &Meter::disabled());
        let count = |strategy: InterestStrategy| -> u64 {
            let is = InterestSearch::build(&q, &lca, strategy, &Meter::disabled());
            let meter = Meter::enabled();
            for &e in &spine[1..] {
                is.arms(e, &meter);
            }
            meter.get(CostKind::CutQuery)
        };
        let heavy = count(InterestStrategy::HeavyPath);
        let centroid = count(InterestStrategy::Centroid);
        assert!(
            centroid < heavy,
            "centroid {centroid} queries should undercut heavy-path {heavy}"
        );
    }
}
