//! The cut-query structure (Lemma A.1 / A.2).
//!
//! Tree edges are identified by their lower endpoint `v` (the child of
//! the edge `(v, parent(v))`). Every graph edge `(a, b, w)` becomes two
//! grid points `(post(a), post(b))` and `(post(b), post(a))`, so for
//! disjoint postorder intervals `X, Y` the rectangle sum over `X x Y`
//! counts each `X`–`Y` edge exactly once.
//!
//! We work with the *coverage* formulation (GMW'21 style, equivalent to
//! the paper's three-case Lemma A.2; the equivalence is spelled out in
//! DESIGN.md and verified by brute force in the tests):
//!
//! * `cov(e)`   — weight of graph edges whose tree path uses `e`; equals
//!   the paper's `w(Te)` and is precomputed for all edges in `O(m log n
//!   + n)` by the LCA difference trick.
//! * `cov(e,f)` — weight of graph edges whose tree path uses both:
//!   `w(Te, Tf)` when the subtrees are disjoint, `w(T_low, T \ T_high)`
//!   when nested — one or two rectangle sums either way.
//! * `cut(e,f) = cov(e) + cov(f) - 2 cov(e,f)` in *every* configuration.

// lint: hotpath-module
use pmc_fault::{Deadline, SolveQuality};
use pmc_graph::Graph;
use pmc_parallel::meter::{CostKind, Meter};
use pmc_parallel::scratch::{with_scratch, Scratch};
use pmc_range::{Point2, RangeTree2D};
use pmc_tree::{LcaOracle, RootedTree};
use std::sync::Arc;

/// Result of a deadline-bounded batch ([`CutQuery::cut_batch_until`]):
/// the values for the prefix of the request that completed, how long
/// that prefix is, and whether the batch ran to the end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Cut values for `pairs[..completed]`, in request order.
    pub values: Vec<u64>,
    /// How many requested pairs were answered (`values.len()`).
    pub completed: usize,
    /// [`SolveQuality::Exact`] iff every requested pair was answered.
    pub quality: SolveQuality,
}

/// Cut queries for a fixed spanning tree of a fixed graph.
///
/// The tree is held through an [`Arc`] so the structure can live inside
/// a tree-lifetime context ([`crate::engine::TreeContext`]) alongside
/// the other per-tree structures without borrowing across fields.
pub struct CutQuery<'a> {
    g: &'a Graph,
    tree: Arc<RootedTree>,
    points: RangeTree2D,
    /// `cov[v]` = `w(T_{e_v})` for the tree edge below `v`; 0 at the root.
    cov: Vec<u64>,
    /// Largest valid coordinate (`n - 1`).
    max_coord: u32,
}

impl<'a> CutQuery<'a> {
    /// Preprocess with the `n^eps`-degree range tree of Lemma 4.25.
    /// `eps` close to `1/log n` gives the binary-tree profile; larger
    /// `eps` trades query fan-out for height (Theorem 4.26's knob).
    ///
    /// The two halves of the build are independent given the LCA table —
    /// the grid points only need postorder numbers, the coverage array
    /// only the LCA difference trick — so they fork under `rayon::join`
    /// (DESIGN.md §8).
    ///
    /// Generic over the LCA substrate: the coverage pass issues one LCA
    /// query *per graph edge* — the single largest LCA volume in the
    /// solver — so it goes through [`LcaOracle::lca_metered`] and the
    /// [`pmc_parallel::meter::CostKind::LcaStep`] gauge records whether
    /// those `m` queries cost `O(1)` or `O(log n)` probes each.
    pub fn build<L: LcaOracle>(
        g: &'a Graph,
        tree: &Arc<RootedTree>,
        lca: &L,
        eps: f64,
        meter: &Meter,
    ) -> Self {
        let n = tree.n();
        assert_eq!(g.n(), n, "graph and tree must share the vertex set");
        let (points, cov) = rayon::join(
            || {
                // Grid points, both orientations.
                let mut pts = Vec::with_capacity(g.m() * 2);
                for e in g.edges() {
                    let (pu, pv) = (tree.post(e.u), tree.post(e.v));
                    pts.push(Point2 { x: pu, y: pv, w: e.w });
                    pts.push(Point2 { x: pv, y: pu, w: e.w });
                }
                RangeTree2D::build(pts, n.max(2), eps, meter)
            },
            || {
                // cov via the LCA difference trick: +w at both endpoints,
                // -2w at the LCA; subtree sums in postorder. The m LCA
                // queries go through the *batched* oracle kernel: one
                // sorted sweep over the Euler tour instead of m
                // independent RMQs (bit-identical answers and meter
                // charges; see `LcaOracle::lca_batch_metered`).
                // HOTPATH: warmup — build-time staging, once per tree.
                let mut pairs = Vec::with_capacity(g.m());
                pairs.extend(g.edges().iter().map(|e| (e.u, e.v)));
                // HOTPATH: warmup — build-time staging, once per tree.
                let mut lcas = Vec::with_capacity(g.m());
                with_scratch(|s| lca.lca_batch_metered(&pairs, &mut lcas, s, meter));
                // HOTPATH: warmup — build-time array, once per tree.
                let mut diff = vec![0i64; n];
                for (e, &l) in g.edges().iter().zip(lcas.iter()) {
                    diff[e.u as usize] += e.w as i64;
                    diff[e.v as usize] += e.w as i64;
                    diff[l as usize] -= 2 * e.w as i64;
                }
                meter.add(CostKind::TreeOp, g.m() as u64 + n as u64);
                // HOTPATH: warmup — build-time array, once per tree.
                let mut cov_acc = vec![0i64; n];
                for idx in 0..n as u32 {
                    let v = tree.vertex_at_post(idx);
                    let mut acc = diff[v as usize];
                    for &c in tree.children(v) {
                        acc += cov_acc[c as usize];
                    }
                    cov_acc[v as usize] = acc;
                }
                // HOTPATH: warmup — the coverage arena itself.
                cov_acc
                    .into_iter()
                    .map(|x| u64::try_from(x).expect("coverage must be non-negative"))
                    .collect::<Vec<u64>>()
            },
        );
        meter.record_depth("cutquery:range_height", points.height() as u64);
        CutQuery {
            g,
            tree: Arc::clone(tree),
            points,
            cov,
            max_coord: (n as u32).saturating_sub(1),
        }
    }

    #[inline]
    pub fn graph(&self) -> &Graph {
        self.g
    }

    #[inline]
    pub fn tree(&self) -> &RootedTree {
        &self.tree
    }

    /// A shared handle on the tree (for contexts that outlive borrows).
    #[inline]
    pub fn tree_handle(&self) -> Arc<RootedTree> {
        Arc::clone(&self.tree)
    }

    /// Height of the underlying 2-D range tree (depth accounting).
    #[inline]
    pub fn range_height(&self) -> usize {
        self.points.height()
    }

    /// `w(Te)` for the edge below `v` — the 1-respecting cut value.
    #[inline]
    pub fn cov(&self, v: u32) -> u64 {
        self.cov[v as usize]
    }

    /// The whole coverage array, indexed by lower endpoint (`cov[root]`
    /// is 0) — the batched form of [`CutQuery::cov`]: stages that scan
    /// every 1-respecting value read one slice instead of probing vertex
    /// by vertex.
    #[inline]
    pub fn cov_all(&self) -> &[u64] {
        &self.cov
    }

    /// Batched coverage lookup over a slice of tree edges — a gather
    /// from the flat coverage arena into a caller-owned buffer.
    /// Allocation free once `out` is warm: this is the steady-state
    /// serving form gated by the counting-allocator smoke.
    pub fn cov_batch_into(&self, es: &[u32], out: &mut Vec<u64>) {
        // Delay/exhaust-capable probe (inert unless a fault plan is
        // armed): lets chaos plans stall or expire a batch stage.
        pmc_fault::point("engine:cov_batch");
        out.clear();
        out.extend(es.iter().map(|&v| self.cov(v)));
    }

    /// Batched coverage lookup returning a fresh buffer — the
    /// convenience form of [`CutQuery::cov_batch_into`].
    pub fn cov_batch(&self, es: &[u32]) -> Vec<u64> {
        // HOTPATH: warmup — compat wrapper; the zero-alloc serving path
        // is `cov_batch_into` with a caller-owned buffer.
        let mut out = Vec::with_capacity(es.len());
        self.cov_batch_into(es, &mut out);
        out
    }

    /// Batched cut queries into caller-owned buffers, deterministic
    /// output order. `e == f` entries degenerate to the 1-respecting
    /// value, mirroring [`CutQuery::cut`].
    ///
    /// Large batches are grouped on the packed `(e, f)` key so
    /// duplicate pairs — common when many clients probe the same hot
    /// cuts — are evaluated once and scattered back to every requester;
    /// the meter consequently counts *distinct* queries. Small batches
    /// skip the grouping pass and map directly.
    ///
    /// All transients live in `scratch`; every distinct pair's 1–2
    /// complement rectangles are submitted to the range tree's fused
    /// single-sweep kernel ([`RangeTree2D::sum_rects_tagged`]) rather
    /// than probed pair by pair. With warm buffers the whole batch runs
    /// with **zero heap allocations** (the counting-allocator gate in
    /// `pmc-bench` pins this), and the values and meter charges are
    /// bit-identical to per-pair [`CutQuery::cut`] probes.
    pub fn cut_batch_with(
        &self,
        pairs: &[(u32, u32)],
        scratch: &mut Scratch,
        out: &mut Vec<u64>,
        meter: &Meter,
    ) {
        // Delay/exhaust-capable probe, see `cov_batch_into`.
        pmc_fault::point("engine:cut_batch");
        /// Below this size the sort costs more than duplicate probes.
        const GROUP_CUTOFF: usize = 64;
        out.clear();
        if pairs.len() < GROUP_CUTOFF {
            out.extend(pairs.iter().map(|&(e, f)| self.cut(e, f, meter)));
            return;
        }
        // Tag each pair with its slot and sort. `sort_unstable` on the
        // full `(key, slot)` tuple is in-place (no allocation) and —
        // because slots are distinct and ascending per input order —
        // produces exactly the stable-by-key order the grouping relies
        // on.
        scratch.keys.clear();
        scratch
            .keys
            .extend(pairs.iter().enumerate().map(|(i, &(e, f))| {
                (((e as u64) << 32) | f as u64, i as u32)
            }));
        scratch.keys.sort_unstable();
        scratch.runs.clear();
        scratch.vals.clear();
        scratch.rects.clear();
        let mut i = 0;
        while i < scratch.keys.len() {
            let key = scratch.keys[i].0;
            let mut j = i + 1;
            while j < scratch.keys.len() && scratch.keys[j].0 == key {
                j += 1;
            }
            let ri = scratch.runs.len() as u32;
            scratch.runs.push((i as u32, j as u32));
            // One evaluation per distinct pair: the additive part now,
            // the rectangle part deferred to the fused sweep below.
            let (e, f) = ((key >> 32) as u32, key as u32);
            if e == f {
                scratch.vals.push(self.cov(e));
            } else {
                meter.bump(CostKind::CutQuery);
                scratch.vals.push(self.cov(e) + self.cov(f));
                self.push_cov2_rects(e, f, ri, &mut scratch.rects);
            }
            i = j;
        }
        // Fused range-tree pass: every distinct pair's rectangles,
        // answered in one sorted sweep over the flat arena.
        scratch.acc.clear();
        scratch.acc.resize(scratch.runs.len(), 0);
        self.points.sum_rects_tagged(&scratch.rects, &mut scratch.acc, &mut scratch.cover, meter);
        out.resize(pairs.len(), 0);
        for (ri, &(lo, hi)) in scratch.runs.iter().enumerate() {
            let value = scratch.vals[ri] - 2 * scratch.acc[ri];
            for &(_, slot) in &scratch.keys[lo as usize..hi as usize] {
                out[slot as usize] = value;
            }
        }
    }

    /// Batched cut queries returning a fresh buffer — the convenience
    /// form of [`CutQuery::cut_batch_with`] over a pooled workspace.
    pub fn cut_batch(&self, pairs: &[(u32, u32)], meter: &Meter) -> Vec<u64> {
        // HOTPATH: warmup — compat wrapper; the zero-alloc serving path
        // is `cut_batch_with` with caller-owned buffers.
        let mut out = Vec::with_capacity(pairs.len());
        with_scratch(|s| self.cut_batch_with(pairs, s, &mut out, meter));
        out
    }

    /// The tagged complement rectangles of `cov(e, f)` for distinct
    /// `e != f` — exactly the rectangles [`CutQuery::cov2`] probes,
    /// emitted for the fused sweep instead of queried on the spot.
    fn push_cov2_rects(&self, e: u32, f: u32, tag: u32, rects: &mut Vec<(u32, u32, u32, u32, u32)>) {
        let t = &self.tree;
        // Nested: edges from T_low to outside T_high (two complement
        // slabs). Disjoint: the single between-subtrees rectangle.
        let (a, b) = if t.is_ancestor(e, f) {
            (f, e)
        } else if t.is_ancestor(f, e) {
            (e, f)
        } else {
            rects.push((t.start(e), t.post(e), t.start(f), t.post(f), tag));
            return;
        };
        let (ax1, ax2) = (t.start(a), t.post(a));
        let (bs, bp) = (t.start(b), t.post(b));
        if bs > 0 {
            rects.push((ax1, ax2, 0, bs - 1, tag));
        }
        if bp < self.max_coord {
            rects.push((ax1, ax2, bp + 1, self.max_coord, tag));
        }
    }

    /// [`CutQuery::cut_batch`] under a cooperative [`Deadline`]: the
    /// pair slice is processed in chunks, the token is consulted
    /// (non-consuming) at each chunk boundary, and on expiry the values
    /// computed so far are returned with `completed < pairs.len()` and
    /// a [`SolveQuality::Degraded`] flag. A batch that runs to the end
    /// is bit-identical to `cut_batch` and flagged
    /// [`SolveQuality::Exact`].
    pub fn cut_batch_until(
        &self,
        pairs: &[(u32, u32)],
        deadline: &Deadline,
        meter: &Meter,
    ) -> BatchOutcome {
        /// Chunk granularity: coarse enough that the per-chunk deadline
        /// probe is noise, fine enough that expiry reacts quickly.
        const CHUNK: usize = 256;
        // HOTPATH: warmup — the result buffer handed to the caller.
        let mut values = Vec::with_capacity(pairs.len());
        let mut quality = SolveQuality::Exact;
        // One workspace and one chunk buffer serve every chunk: past the
        // first chunk the loop body is allocation free.
        with_scratch(|s| {
            // HOTPATH: warmup — reused across all chunks of this batch.
            let mut chunk_out = Vec::with_capacity(CHUNK);
            for chunk in pairs.chunks(CHUNK) {
                if deadline.expired() {
                    quality = SolveQuality::Degraded(deadline.degrade_reason("cut_batch"));
                    break;
                }
                self.cut_batch_with(chunk, s, &mut chunk_out, meter);
                values.extend_from_slice(&chunk_out);
            }
        });
        BatchOutcome { completed: values.len(), values, quality }
    }

    /// Rectangle sum over `[x1,x2] x [y1,y2]` (inclusive; empty if
    /// inverted).
    pub fn rect(&self, x1: u32, x2: u32, y1: u32, y2: u32, meter: &Meter) -> u64 {
        self.points.sum_rect(x1, x2, y1, y2, meter)
    }

    /// Weight of graph edges from inside subtree(`a`) to *outside*
    /// subtree(`b`), where subtree(`a`) ⊆ subtree(`b`). The complement
    /// of `b`'s postorder interval splits into two slabs, submitted as
    /// one rectangle batch.
    fn weight_to_outside(&self, a: u32, b: u32, meter: &Meter) -> u64 {
        let (ax1, ax2) = (self.tree.start(a), self.tree.post(a));
        let (bs, bp) = (self.tree.start(b), self.tree.post(b));
        let mut rects = [(0u32, 0u32, 0u32, 0u32); 2];
        let mut k = 0;
        if bs > 0 {
            rects[k] = (ax1, ax2, 0, bs - 1);
            k += 1;
        }
        if bp < self.max_coord {
            rects[k] = (ax1, ax2, bp + 1, self.max_coord);
            k += 1;
        }
        self.points.sum_rects(&rects[..k], meter)
    }

    /// `cov(e, f)`: weight of graph edges covering both tree edges.
    /// `e` and `f` are lower endpoints; must be distinct non-roots.
    pub fn cov2(&self, e: u32, f: u32, meter: &Meter) -> u64 {
        debug_assert_ne!(e, f);
        meter.bump(CostKind::CutQuery);
        let t = &self.tree;
        if t.is_ancestor(e, f) {
            // f strictly below e: edges from T_f to outside T_e.
            self.weight_to_outside(f, e, meter)
        } else if t.is_ancestor(f, e) {
            self.weight_to_outside(e, f, meter)
        } else {
            // Disjoint subtrees: edges between them.
            self.rect(t.start(e), t.post(e), t.start(f), t.post(f), meter)
        }
    }

    /// The 2-respecting cut value determined by tree edges `e` and `f`
    /// (Lemma A.2): `cov(e) + cov(f) - 2 cov(e, f)`.
    pub fn cut(&self, e: u32, f: u32, meter: &Meter) -> u64 {
        if e == f {
            return self.cov(e);
        }
        self.cov(e) + self.cov(f) - 2 * self.cov2(e, f, meter)
    }

    /// The vertex side realizing `cut(e, f)` (for result extraction):
    /// nested: `T_high \ T_low`; disjoint: `T_e ∪ T_f`.
    pub fn cut_side(&self, e: u32, f: u32) -> Vec<u32> {
        let t = &self.tree;
        let interval = |v: u32| (t.start(v), t.post(v));
        if e == f {
            let (s, p) = interval(e);
            // HOTPATH: warmup — result extraction, once per solve.
            return (s..=p).map(|i| t.vertex_at_post(i)).collect();
        }
        if t.is_ancestor(e, f) || t.is_ancestor(f, e) {
            let (hi, lo) = if t.is_ancestor(e, f) { (e, f) } else { (f, e) };
            let (hs, hp) = interval(hi);
            let (ls, lp) = interval(lo);
            // HOTPATH: warmup — result extraction, once per solve.
            (hs..=hp).filter(|&i| i < ls || i > lp).map(|i| t.vertex_at_post(i)).collect()
        } else {
            let (es, ep) = interval(e);
            let (fs, fp) = interval(f);
            // HOTPATH: warmup — result extraction, once per solve.
            (es..=ep).chain(fs..=fp).map(|i| t.vertex_at_post(i)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmc_graph::graph::cut_of_partition;
    use pmc_graph::{generators, Graph};
    use pmc_parallel::spanning_forest::spanning_forest;
    use pmc_tree::LcaTable;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spanning_tree_of(g: &Graph, root: u32) -> Arc<RootedTree> {
        let forest = spanning_forest(g, &Meter::disabled());
        let edges: Vec<(u32, u32)> =
            forest.iter().map(|&i| (g.edge(i as usize).u, g.edge(i as usize).v)).collect();
        Arc::new(RootedTree::from_edge_list(g.n(), &edges, root))
    }

    /// Brute-force cov(e): edges with exactly one endpoint below v.
    fn brute_cov(g: &Graph, t: &RootedTree, v: u32) -> u64 {
        g.edges()
            .iter()
            .filter(|e| t.is_ancestor(v, e.u) != t.is_ancestor(v, e.v))
            .map(|e| e.w)
            .sum()
    }

    /// Brute-force cut(e, f) from the explicit vertex partition.
    fn brute_cut(g: &Graph, t: &RootedTree, e: u32, f: u32) -> u64 {
        let mut side = vec![false; g.n()];
        if t.is_ancestor(e, f) || t.is_ancestor(f, e) {
            let (hi, lo) = if t.is_ancestor(e, f) { (e, f) } else { (f, e) };
            for v in 0..g.n() as u32 {
                side[v as usize] = t.is_ancestor(hi, v) && !t.is_ancestor(lo, v);
            }
        } else {
            for v in 0..g.n() as u32 {
                side[v as usize] = t.is_ancestor(e, v) || t.is_ancestor(f, v);
            }
        }
        cut_of_partition(g, &side)
    }

    #[test]
    fn cov_matches_bruteforce() {
        let mut rng = StdRng::seed_from_u64(101);
        for trial in 0..10 {
            let g = generators::gnm_connected(30, 60, 9, &mut rng);
            let t = spanning_tree_of(&g, trial % 30);
            let lca = LcaTable::build(&t);
            let q = CutQuery::build(&g, &t, &lca, 0.3, &Meter::disabled());
            for v in 0..30u32 {
                if v == t.root() {
                    continue;
                }
                assert_eq!(q.cov(v), brute_cov(&g, &t, v), "trial {trial} vertex {v}");
            }
        }
    }

    #[test]
    fn cut_matches_bruteforce_all_pairs() {
        let mut rng = StdRng::seed_from_u64(102);
        for trial in 0..6 {
            let g = generators::gnm_connected(18, 40, 7, &mut rng);
            let t = spanning_tree_of(&g, 0);
            let lca = LcaTable::build(&t);
            let q = CutQuery::build(&g, &t, &lca, 0.5, &Meter::disabled());
            let m = Meter::disabled();
            for e in 1..18u32 {
                for f in 1..18u32 {
                    if e == f || e == t.root() || f == t.root() {
                        continue;
                    }
                    assert_eq!(
                        q.cut(e, f, &m),
                        brute_cut(&g, &t, e, f),
                        "trial {trial} pair ({e},{f})"
                    );
                }
            }
        }
    }

    #[test]
    fn cov2_symmetric() {
        let mut rng = StdRng::seed_from_u64(103);
        let g = generators::gnm_connected(25, 70, 5, &mut rng);
        let t = spanning_tree_of(&g, 0);
        let lca = LcaTable::build(&t);
        let q = CutQuery::build(&g, &t, &lca, 0.4, &Meter::disabled());
        let m = Meter::disabled();
        for e in 1..25u32 {
            for f in e + 1..25u32 {
                assert_eq!(q.cov2(e, f, &m), q.cov2(f, e, &m), "pair ({e},{f})");
            }
        }
    }

    #[test]
    fn cut_side_realizes_value() {
        let mut rng = StdRng::seed_from_u64(104);
        let g = generators::gnm_connected(16, 35, 6, &mut rng);
        let t = spanning_tree_of(&g, 0);
        let lca = LcaTable::build(&t);
        let q = CutQuery::build(&g, &t, &lca, 0.5, &Meter::disabled());
        let m = Meter::disabled();
        for e in 1..16u32 {
            for f in 1..16u32 {
                if e == f {
                    continue;
                }
                let side_vs = q.cut_side(e, f);
                let mut side = vec![false; 16];
                for &v in &side_vs {
                    side[v as usize] = true;
                }
                assert_eq!(
                    cut_of_partition(&g, &side),
                    q.cut(e, f, &m),
                    "pair ({e},{f})"
                );
                assert!(!side_vs.is_empty() && side_vs.len() < 16, "proper side");
            }
        }
    }

    #[test]
    fn one_respecting_equals_cov() {
        let mut rng = StdRng::seed_from_u64(105);
        let g = generators::gnm_connected(20, 50, 4, &mut rng);
        let t = spanning_tree_of(&g, 0);
        let lca = LcaTable::build(&t);
        let q = CutQuery::build(&g, &t, &lca, 0.5, &Meter::disabled());
        for v in 1..20u32 {
            // cut(e, e) degenerates to the 1-respecting cut.
            assert_eq!(q.cut(v, v, &Meter::disabled()), q.cov(v));
            // And the side is the subtree.
            let side_vs = q.cut_side(v, v);
            assert_eq!(side_vs.len() as u32, t.size(v));
        }
    }

    #[test]
    fn eps_variants_agree() {
        let mut rng = StdRng::seed_from_u64(106);
        let g = generators::gnm_connected(40, 120, 8, &mut rng);
        let t = spanning_tree_of(&g, 0);
        let lca = LcaTable::build(&t);
        let m = Meter::disabled();
        let q1 = CutQuery::build(&g, &t, &lca, 0.12, &m);
        let q2 = CutQuery::build(&g, &t, &lca, 0.9, &m);
        for e in 1..40u32 {
            for f in (e + 1..40u32).step_by(3) {
                assert_eq!(q1.cut(e, f, &m), q2.cut(e, f, &m));
            }
        }
    }

    #[test]
    fn path_graph_cuts() {
        // On a path graph with a path tree, cut(e_i, e_j) severs the
        // middle segment: exactly the two tree edges (no non-tree edges).
        let g = generators::path(10, 5);
        let parent: Vec<u32> = (0..10u32).map(|v| v.saturating_sub(1)).collect();
        let t = Arc::new(RootedTree::from_parents(0, &parent));
        let lca = LcaTable::build(&t);
        let q = CutQuery::build(&g, &t, &lca, 0.5, &Meter::disabled());
        let m = Meter::disabled();
        for e in 1..10u32 {
            assert_eq!(q.cov(e), 5, "each edge is a 1-cut of weight 5");
            for f in e + 1..10u32 {
                assert_eq!(q.cut(e, f, &m), 10, "two path edges sever 10");
            }
        }
    }

    /// Grouped batches (above the dedup cutoff, with duplicates) must
    /// return exactly the per-pair values in slot order, and evaluate
    /// duplicates once.
    #[test]
    fn cut_batch_grouping_matches_individual_probes() {
        let mut rng = StdRng::seed_from_u64(108);
        let g = generators::gnm_connected(30, 80, 6, &mut rng);
        let t = spanning_tree_of(&g, 0);
        let lca = LcaTable::build(&t);
        let q = CutQuery::build(&g, &t, &lca, 0.5, &Meter::disabled());
        let m = Meter::disabled();
        // 300 pairs cycling over 25 distinct ones: plenty of duplicates.
        let pairs: Vec<(u32, u32)> =
            (0..300u32).map(|i| (1 + (i * 7) % 25, 1 + (i * 11) % 25)).collect();
        let batch = q.cut_batch(&pairs, &m);
        for (i, &(e, f)) in pairs.iter().enumerate() {
            assert_eq!(batch[i], q.cut(e, f, &m), "slot {i} pair ({e},{f})");
        }
        // The meter sees one CutQuery per distinct (ordered) pair.
        let distinct: std::collections::HashSet<(u32, u32)> =
            pairs.iter().copied().filter(|&(e, f)| e != f).collect();
        let meter = Meter::enabled();
        let _ = q.cut_batch(&pairs, &meter);
        assert_eq!(meter.get(CostKind::CutQuery), distinct.len() as u64);
    }

    #[test]
    fn meter_counts_queries() {
        let mut rng = StdRng::seed_from_u64(107);
        let g = generators::gnm_connected(12, 25, 3, &mut rng);
        let t = spanning_tree_of(&g, 0);
        let lca = LcaTable::build(&t);
        let q = CutQuery::build(&g, &t, &lca, 0.5, &Meter::disabled());
        let meter = Meter::enabled();
        let _ = q.cut(1, 2, &meter);
        let _ = q.cut(3, 4, &meter);
        assert_eq!(meter.get(CostKind::CutQuery), 2);
        assert!(meter.get(CostKind::RangeNode) > 0);
    }
}
