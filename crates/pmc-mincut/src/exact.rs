//! The exact minimum-cut pipeline (Theorems 4.1 and 4.26).
//!
//! ```text
//! approx λ̃ (§3)  ->  skeleton (Thm 2.4 + Obs 4.22)
//!               ->  sparse certificate (Thm 2.6)
//!               ->  greedy tree packing (Thm 4.18)
//!               ->  per packed tree: min 2-respecting cut in G (Thm 4.2)
//! ```
//!
//! Every candidate the pipeline produces is a *real* cut of `G` (1- or
//! 2-respecting values are evaluated in `G` itself, and the minimum
//! weighted degree is always included), so the output can only ever
//! over-estimate; with the packing guarantee it equals the minimum cut
//! w.h.p. — the property the test-suite checks against Stoer–Wagner
//! across seeds.

use crate::approx::{approx_mincut_in, ApproxParams};
use crate::engine::{GraphContext, TreeContext};
use crate::interest::InterestStrategy;
use crate::packing::{greedy_tree_packing, PackingParams};
use crate::two_respect::TwoRespectParams;
use pmc_fault::{Deadline, DegradeReason, PmcError, SolveQuality};
use pmc_graph::{CutResult, Graph};
use pmc_parallel::meter::Meter;
use pmc_sparsify::certificate::k_certificate;
use pmc_sparsify::skeleton::{skeleton, skeleton_probability};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

/// Parameters of the exact pipeline.
#[derive(Debug, Clone)]
pub struct ExactParams {
    pub two_respect: TwoRespectParams,
    pub packing: PackingParams,
    pub approx: ApproxParams,
    /// How the 2-respecting solver traces interest arms (Claim 4.13).
    /// Mirrored into [`TwoRespectParams::interest_strategy`] for every
    /// packed tree, overriding whatever `two_respect` carries, so the
    /// pipeline-level knob is authoritative. Centroid descent is the
    /// default; [`ExactParams::paper`] pins it explicitly.
    pub interest_strategy: InterestStrategy,
    /// Skeleton oversampling constant (`c` in `p = c ln n / (ε² λ̃)`).
    pub skeleton_c: f64,
    /// Skeleton accuracy `ε` (paper: a small constant like 1/6).
    pub skeleton_eps: f64,
    /// Known min-cut (under)estimate; skips the approximation phase.
    pub lambda_hint: Option<u64>,
    /// RNG seed for skeleton sampling.
    pub seed: u64,
}

impl Default for ExactParams {
    fn default() -> Self {
        ExactParams {
            two_respect: TwoRespectParams::default(),
            packing: PackingParams::default(),
            approx: ApproxParams::default(),
            interest_strategy: InterestStrategy::default(),
            skeleton_c: 12.0,
            skeleton_eps: 1.0 / 3.0,
            lambda_hint: None,
            seed: 0x5EED,
        }
    }
}

/// Diagnostics of one exact run.
#[derive(Debug, Clone, Default)]
pub struct ExactStats {
    /// The constant-factor underestimate used for sampling.
    pub lambda_estimate: u64,
    /// Skeleton sampling probability actually used.
    pub skeleton_p: f64,
    /// Edges of the skeleton after sampling.
    pub skeleton_edges: usize,
    /// Total weight of the packing input (after the certificate).
    pub certificate_weight: u64,
    /// Distinct trees the packing produced.
    pub num_trees: usize,
}

/// Result of the exact pipeline.
#[derive(Debug, Clone)]
pub struct ExactResult {
    pub cut: CutResult,
    pub stats: ExactStats,
    /// Whether the run completed every phase ([`SolveQuality::Exact`])
    /// or expired mid-pipeline and returned the best valid cut found so
    /// far ([`SolveQuality::Degraded`] naming the reason and phase).
    /// Degraded answers are still genuine cuts of the input — they can
    /// only over-estimate, never be silently wrong.
    pub quality: SolveQuality,
}

impl ExactParams {
    /// Paper-faithful constants throughout (see `ApproxParams::paper`);
    /// the sampling machinery then only engages for min-cuts far above
    /// `log n`, exactly as in the paper's regime.
    pub fn paper(seed: u64) -> Self {
        ExactParams {
            approx: ApproxParams::paper(seed),
            // Theorem 4.2's substrate choices (SMAWK row minima, O(1)
            // Euler-tour LCA) pinned for every packed tree.
            two_respect: TwoRespectParams::paper(),
            // The paper's Claim 4.13 search; pinned here so the preset
            // stays faithful even if the workspace default moves.
            interest_strategy: InterestStrategy::Centroid,
            skeleton_c: 36.0,
            skeleton_eps: 1.0 / 6.0,
            seed,
            ..ExactParams::default()
        }
    }
}

/// Exact minimum cut of `g` (Theorem 4.1 / 4.26), w.h.p.
pub fn exact_mincut(g: &Graph, params: &ExactParams) -> ExactResult {
    exact_mincut_metered(g, params, &Meter::disabled())
}

/// [`exact_mincut`] with work-span accounting. One-shot wrapper: builds
/// the graph-lifetime [`GraphContext`] and solves once; callers that
/// solve the same graph repeatedly should build the context themselves
/// and use [`exact_mincut_in`].
pub fn exact_mincut_metered(g: &Graph, params: &ExactParams, meter: &Meter) -> ExactResult {
    let ctx = GraphContext::build(g, meter);
    exact_mincut_in(&ctx, params, meter)
}

/// [`exact_mincut`] over a prebuilt [`GraphContext`]: the graph-lifetime
/// state (coalesced graph, connectivity, degrees, fallback cut) is
/// reused across calls; only the per-run sampling and per-tree contexts
/// are built here.
pub fn exact_mincut_in(ctx: &GraphContext<'_>, params: &ExactParams, meter: &Meter) -> ExactResult {
    exact_mincut_deadline_in(ctx, params, &Deadline::never(), meter)
}

/// [`exact_mincut`] under a cooperative [`Deadline`]: one-shot wrapper
/// over [`exact_mincut_deadline_in`].
pub fn exact_mincut_deadline(
    g: &Graph,
    params: &ExactParams,
    deadline: &Deadline,
    meter: &Meter,
) -> ExactResult {
    let ctx = GraphContext::build(g, meter);
    exact_mincut_deadline_in(&ctx, params, deadline, meter)
}

/// Map a phase-boundary [`Deadline::check`] error onto the degradation
/// flag. Only the deadline/budget variants can come out of `check`; the
/// defensive arm keeps the mapping total.
fn degrade_reason_of(e: PmcError) -> DegradeReason {
    match e {
        PmcError::DeadlineExpired { phase } => DegradeReason::DeadlineExpired { phase },
        PmcError::BudgetExhausted { phase } => DegradeReason::BudgetExhausted { phase },
        other => DegradeReason::InjectedFault { point: other.to_string() },
    }
}

/// The deadline-aware exact pipeline. The token is consulted at every
/// phase boundary ([`Deadline::check`], which also spends one unit of a
/// logical budget) and per tree inside the Phase 5 parallel loop
/// (non-consuming [`Deadline::expired`]). On expiry the run stops
/// where it is and returns the best *valid* cut accumulated so far —
/// at minimum the min-degree fallback [`GraphContext::min_degree_cut`]
/// — flagged [`SolveQuality::Degraded`] with the phase it died in. It
/// never blocks past the token and never returns an unflagged partial
/// answer.
pub fn exact_mincut_deadline_in(
    ctx: &GraphContext<'_>,
    params: &ExactParams,
    deadline: &Deadline,
    meter: &Meter,
) -> ExactResult {
    if let Some(cut) = ctx.trivial_cut() {
        // Degenerate inputs have exact answers regardless of budget.
        return ExactResult { cut, stats: ExactStats::default(), quality: SolveQuality::Exact };
    }
    let gc = ctx.graph();
    let mut stats = ExactStats::default();
    // The degradation ladder's floor: always a genuine cut of `g`.
    let fallback = ctx.min_degree_cut();
    // Best valid candidate accumulated so far; refined phase by phase.
    let degraded = |stats: ExactStats, reason: pmc_fault::DegradeReason| ExactResult {
        cut: fallback.clone(),
        stats,
        quality: SolveQuality::Degraded(reason),
    };

    // Phase 1: constant-factor underestimate of the min cut.
    if let Err(e) = deadline.check("phase1:approx") {
        return degraded(stats, degrade_reason_of(e));
    }
    pmc_fault::point("engine:phase1_approx");
    let lambda_est = match params.lambda_hint {
        Some(l) => l.max(1),
        None => {
            let a = approx_mincut_in(ctx, &params.approx, meter);
            (a.lambda / 2).max(1)
        }
    };
    stats.lambda_estimate = lambda_est;

    // Phase 2: skeleton (p from Theorem 2.4; weights capped per
    // Observation 4.22). If the estimate was too optimistic and the
    // skeleton disconnects, re-sample denser: a disconnected skeleton
    // can only happen when p λ is too small, so doubling p restores the
    // Theorem 2.4 regime within O(log) retries.
    if let Err(e) = deadline.check("phase2:skeleton") {
        return degraded(stats, degrade_reason_of(e));
    }
    pmc_fault::point("engine:phase2_skeleton");
    let eps = params.skeleton_eps;
    let cap_scale = (params.skeleton_c * (gc.n().max(2) as f64).ln() / (eps * eps)).ceil();
    let cap = (8.0 * cap_scale) as u64;
    let mut p = skeleton_probability(gc.n(), eps, lambda_est, params.skeleton_c);
    let mut h = skeleton(gc, p, cap, params.seed, meter);
    let mut retries = 0;
    while !h.is_connected() && p < 1.0 {
        if deadline.expired() {
            return degraded(stats, deadline.degrade_reason("phase2:skeleton_retry"));
        }
        p = (p * 2.0).min(1.0);
        retries += 1;
        h = skeleton(gc, p, cap, params.seed.wrapping_add(retries), meter);
    }
    stats.skeleton_p = p;
    stats.skeleton_edges = h.m();

    // Phase 3: sparse certificate bounds the packing input weight.
    if let Err(e) = deadline.check("phase3:certificate") {
        return degraded(stats, degrade_reason_of(e));
    }
    pmc_fault::point("engine:phase3_certificate");
    let k_cert = 2 * cap;
    let hc = k_certificate(&h, k_cert, meter);
    stats.certificate_weight = hc.total_weight();

    // Phase 4: greedy packing.
    if let Err(e) = deadline.check("phase4:packing") {
        return degraded(stats, degrade_reason_of(e));
    }
    pmc_fault::point("engine:phase4_packing");
    let trees = greedy_tree_packing(&hc, &params.packing, meter);
    stats.num_trees = trees.len();

    // Phase 5: per-tree 2-respecting minimum cuts in the original graph,
    // in parallel (the paper's outermost parallel loop). Each packed
    // tree gets a tree-lifetime context (parallel sub-builds inside);
    // the graph-lifetime state comes from `ctx`. The pipeline's
    // interest-strategy knob overrides the per-solver one. Trees are
    // skipped (not solved) once the deadline expires mid-loop; a
    // skipped tree flags the whole run as degraded, because the packing
    // guarantee needs every tree.
    if let Err(e) = deadline.check("phase5:trees") {
        return degraded(stats, degrade_reason_of(e));
    }
    let tr_params =
        TwoRespectParams { interest_strategy: params.interest_strategy, ..params.two_respect };
    let skipped = AtomicBool::new(false);
    let from_trees = trees
        .par_iter()
        .map(|edges| {
            if deadline.expired() {
                // Relaxed: a monotone one-way flag read once after the
                // loop's join; the reduction itself synchronises.
                skipped.store(true, Ordering::Relaxed);
                return CutResult::infinite();
            }
            let tc = TreeContext::from_edges(gc, edges, 0, &tr_params, meter);
            tc.solve(meter).cut
        })
        .reduce(CutResult::infinite, CutResult::min);

    // Always-valid fallback candidate: the minimum weighted degree
    // (precomputed once in the context).
    let cut = from_trees.min(fallback);
    // Relaxed: see the store above.
    let quality = if skipped.load(Ordering::Relaxed) {
        SolveQuality::Degraded(deadline.degrade_reason("phase5:trees"))
    } else {
        SolveQuality::Exact
    };
    ExactResult { cut, stats, quality }
}

/// Exact min-cut for graphs whose minimum cut is already `O(polylog)`
/// (certificates, skeletons, hierarchy layers): packs trees directly on
/// `g` without the sampling phases. Returns a valid cut value of `g`
/// always; equals the minimum w.h.p. whenever the min cut is small
/// enough for the packing iteration budget — exactly the regime §3 uses
/// it in (layer classification errs only upward, which Claim 3.13
/// tolerates).
pub fn mincut_small(
    g: &Graph,
    two_respect: &TwoRespectParams,
    packing: &PackingParams,
    meter: &Meter,
) -> CutResult {
    let ctx = GraphContext::attach(g, meter);
    mincut_small_in(&ctx, two_respect, packing, meter)
}

/// [`mincut_small`] over a prebuilt [`GraphContext`] — the §3 hierarchy
/// and approximation layers call this once per layer graph, deriving
/// connectivity/degree state exactly once instead of on every probe.
pub fn mincut_small_in(
    ctx: &GraphContext<'_>,
    two_respect: &TwoRespectParams,
    packing: &PackingParams,
    meter: &Meter,
) -> CutResult {
    if let Some(cut) = ctx.trivial_cut() {
        return cut;
    }
    let g = ctx.graph();
    let trees = greedy_tree_packing(g, packing, meter);
    let from_trees = trees
        .par_iter()
        .map(|edges| {
            let tc = TreeContext::from_edges(g, edges, 0, two_respect, meter);
            tc.solve(meter).cut
        })
        .reduce(CutResult::infinite, CutResult::min);
    from_trees.min(ctx.min_degree_cut())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmc_graph::graph::cut_of_partition;
    use pmc_graph::{generators, stoer_wagner_mincut};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_exact(g: &Graph, params: &ExactParams, label: &str) {
        let expect = stoer_wagner_mincut(g).value;
        let got = exact_mincut(g, params);
        assert_eq!(got.cut.value, expect, "{label}");
        // The reported side must realize the value.
        let mut side = vec![false; g.n()];
        for &v in &got.cut.side {
            side[v as usize] = true;
        }
        assert_eq!(cut_of_partition(g, &side), got.cut.value, "{label} side");
    }

    #[test]
    fn structured_graphs_exact() {
        let params = ExactParams::default();
        assert_exact(&generators::dumbbell(8, 10, 3), &params, "dumbbell");
        assert_exact(&generators::ring_of_cliques(4, 5, 6, 2), &params, "ring");
        assert_exact(&generators::grid(5, 6, 4), &params, "grid");
        assert_exact(&generators::hypercube(4, 3), &params, "hypercube");
        assert_exact(&generators::complete(12, 2), &params, "complete");
        assert_exact(&generators::cycle(25, 7), &params, "cycle");
    }

    #[test]
    fn random_graphs_exact_many_seeds() {
        let mut rng = StdRng::seed_from_u64(601);
        for trial in 0..10 {
            let n = 12 + trial * 2;
            let g = generators::gnm_connected(n, 3 * n, 9, &mut rng);
            let params = ExactParams { seed: 700 + trial as u64, ..ExactParams::default() };
            assert_exact(&g, &params, &format!("trial {trial}"));
        }
    }

    #[test]
    fn weighted_random_graphs_exact() {
        let mut rng = StdRng::seed_from_u64(602);
        for trial in 0..6 {
            let g = generators::gnm_connected(16, 60, 1000, &mut rng);
            let params = ExactParams { seed: trial, ..ExactParams::default() };
            assert_exact(&g, &params, &format!("weighted {trial}"));
        }
    }

    #[test]
    fn heavy_min_cut_graphs_exact() {
        // Min-cut large enough that the skeleton genuinely subsamples.
        let mut rng = StdRng::seed_from_u64(603);
        for trial in 0..4 {
            let g = generators::heavy_cycle_with_chords(14, 20, 3000, 80, &mut rng);
            let params = ExactParams { seed: 40 + trial, ..ExactParams::default() };
            assert_exact(&g, &params, &format!("heavy {trial}"));
        }
    }

    #[test]
    fn trivial_and_degenerate() {
        let params = ExactParams::default();
        // Single vertex: no cut.
        let g1 = Graph::from_edges(1, []);
        assert_eq!(exact_mincut(&g1, &params).cut.value, u64::MAX);
        // Two vertices.
        let g2 = Graph::from_edges(2, [(0, 1, 9)]);
        assert_eq!(exact_mincut(&g2, &params).cut.value, 9);
        // Disconnected.
        let g3 = Graph::from_edges(4, [(0, 1, 2), (2, 3, 2)]);
        let r = exact_mincut(&g3, &params);
        assert_eq!(r.cut.value, 0);
        assert!(!r.cut.side.is_empty() && r.cut.side.len() < 4);
    }

    #[test]
    fn lambda_hint_short_circuits_approx() {
        let g = generators::dumbbell(8, 10, 3);
        let params = ExactParams { lambda_hint: Some(2), ..ExactParams::default() };
        let r = exact_mincut(&g, &params);
        assert_eq!(r.cut.value, 3);
        assert_eq!(r.stats.lambda_estimate, 2);
    }

    #[test]
    fn mincut_small_matches_oracle() {
        let mut rng = StdRng::seed_from_u64(604);
        for trial in 0..8 {
            let g = generators::gnm_connected(15, 45, 6, &mut rng);
            let got = mincut_small(
                &g,
                &TwoRespectParams::default(),
                &PackingParams::default(),
                &Meter::disabled(),
            );
            let expect = stoer_wagner_mincut(&g).value;
            assert_eq!(got.value, expect, "trial {trial}");
        }
    }

    #[test]
    fn parallel_multigraph_input() {
        // Parallel edges must coalesce, not confuse the pipeline.
        let g = Graph::from_edges(
            4,
            [(0, 1, 2), (0, 1, 3), (1, 2, 4), (2, 3, 4), (3, 0, 1), (1, 3, 2)],
        );
        assert_exact(&g, &ExactParams::default(), "multigraph");
    }

    #[test]
    fn stats_populated() {
        let g = generators::ring_of_cliques(4, 4, 5, 2);
        let r = exact_mincut(&g, &ExactParams::default());
        assert!(r.stats.num_trees >= 1);
        assert!(r.stats.skeleton_p > 0.0);
        assert!(r.stats.lambda_estimate >= 1);
    }

    use pmc_graph::Graph;
}
