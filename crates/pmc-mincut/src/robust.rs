//! The robust solver entry point: the top rung of the degradation
//! ladder (DESIGN.md §12).
//!
//! [`exact_mincut_robust`] wraps the whole pipeline — context build
//! included — in a panic guard and guarantees a typed outcome:
//!
//! 1. **Exact** — every phase completed: the Theorem 4.1 answer,
//!    flagged [`SolveQuality::Exact`].
//! 2. **Degraded, still valid** — the deadline/budget expired, or an
//!    *injected* fault ([`pmc_fault::InjectedPanic`], the chaos
//!    plane's typed payload) killed the solve: the best valid cut
//!    available (at minimum the min-degree fallback), flagged
//!    [`SolveQuality::Degraded`] with the reason.
//! 3. **Typed error** — a panic that is *not* an injected fault is a
//!    genuine bug; it surfaces as [`PmcError::SolvePanicked`] with the
//!    payload's message instead of aborting the process.
//!
//! The one thing this entry point never does is hang, abort, or return
//! an unflagged partial answer — the property the chaos suite sweeps
//! seeded fault plans against.

use crate::exact::{exact_mincut_deadline, ExactParams, ExactResult, ExactStats};
use pmc_fault::{Deadline, DegradeReason, InjectedPanic, PmcError, SolveQuality};
use pmc_graph::{CutResult, Graph};
use pmc_parallel::meter::Meter;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The min-degree fallback computed from the raw graph alone — usable
/// even when the engine's own context build was the thing that died.
/// Mirrors [`crate::engine::GraphContext::trivial_cut`] +
/// [`crate::engine::GraphContext::min_degree_cut`] exactly.
fn raw_fallback_cut(g: &Graph) -> CutResult {
    if g.n() < 2 {
        return CutResult::infinite();
    }
    let labels = g.component_labels();
    if labels.iter().any(|&l| l != labels[0]) {
        let side = (0..g.n() as u32).filter(|&v| labels[v as usize] == labels[0]).collect();
        return CutResult { value: 0, side };
    }
    let (v, d) = g.min_weighted_degree_vertex();
    CutResult { value: d, side: vec![v] }
}

/// [`crate::exact_mincut`] hardened for a long-lived process: runs the
/// deadline-aware pipeline under a panic guard and always returns a
/// typed outcome (see the module docs for the ladder).
pub fn exact_mincut_robust(
    g: &Graph,
    params: &ExactParams,
    deadline: &Deadline,
    meter: &Meter,
) -> Result<ExactResult, PmcError> {
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        exact_mincut_deadline(g, params, deadline, meter)
    }));
    match attempt {
        Ok(result) => Ok(result),
        Err(payload) => {
            if let Some(injected) = InjectedPanic::from_payload(payload.as_ref()) {
                // Chaos-plane fault: degrade to the raw fallback, which
                // needs nothing the dead solve half-built.
                return Ok(ExactResult {
                    cut: raw_fallback_cut(g),
                    stats: ExactStats::default(),
                    quality: SolveQuality::Degraded(DegradeReason::InjectedFault {
                        point: injected.point.clone(),
                    }),
                });
            }
            // A genuine bug: surface it as a typed error, preserving
            // the panic message when there is one.
            let context = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(PmcError::SolvePanicked { context })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmc_graph::generators;

    #[test]
    fn robust_matches_plain_exact_when_nothing_goes_wrong() {
        let g = generators::dumbbell(6, 8, 3);
        let params = ExactParams::default();
        let plain = crate::exact::exact_mincut(&g, &params);
        let robust =
            exact_mincut_robust(&g, &params, &Deadline::never(), &Meter::disabled())
                .expect("fault-free robust solve");
        assert_eq!(robust.cut, plain.cut);
        assert!(robust.quality.is_exact());
    }

    #[test]
    fn expired_deadline_returns_flagged_min_degree_fallback() {
        let g = generators::ring_of_cliques(4, 5, 6, 2);
        let params = ExactParams::default();
        let deadline = Deadline::ticks(0);
        let r = exact_mincut_robust(&g, &params, &deadline, &Meter::disabled())
            .expect("degraded, not an error");
        assert!(r.quality.is_degraded());
        // The acceptance-criterion pin: the degraded cut is exactly the
        // engine's min-degree fallback.
        let ctx = crate::engine::GraphContext::build(&g, &Meter::disabled());
        assert_eq!(r.cut, ctx.min_degree_cut());
    }

    #[test]
    fn raw_fallback_handles_degenerate_graphs() {
        assert_eq!(raw_fallback_cut(&Graph::from_edges(1, [])), CutResult::infinite());
        let disc = Graph::from_edges(4, [(0, 1, 2), (2, 3, 2)]);
        let f = raw_fallback_cut(&disc);
        assert_eq!(f.value, 0);
        assert_eq!(f.side, vec![0, 1]);
    }
}
