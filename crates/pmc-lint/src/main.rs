//! `pmc-lint` — the workspace's unsafe-audit and facade-discipline
//! gate, run in CI as `cargo run -p pmc-lint` (nonzero exit on any
//! violation).
//!
//! A dependency-free lexical scanner (this environment is offline, so
//! no syn/clippy): each `.rs` file under `crates/` and `vendor/` is
//! split into code, comments, and string literals by a small state
//! machine, and the *code* stream is matched against five rules:
//!
//! | rule                    | violation                                              |
//! |-------------------------|--------------------------------------------------------|
//! | `unsafe-without-safety` | `unsafe` without an adjacent `SAFETY`/`# Safety` comment |
//! | `file-allow-unsafe`     | file-level `#![allow(unsafe_code)]` (must be per-item)  |
//! | `facade`                | `std::sync`/`std::thread` in `vendor/rayon/src` outside the `sync.rs` facade |
//! | `static-mut`            | any `static mut` item                                   |
//! | `relaxed`               | `::Relaxed` ordering without a nearby justifying comment |
//! | `unwrap-invariant`      | bare `.unwrap()` in library code (`crates/*/src`, non-bin, outside `#[cfg(test)]`) without a nearby `INVARIANT:` comment |
//! | `hotpath-alloc`         | `Vec::new(` / `vec![` / `.collect(` in a marked hot-path module, outside `#[cfg(test)]`, without a nearby `HOTPATH:` comment |
//!
//! Escape hatch: a comment `lint: allow(<rule>)` on the offending line
//! or in the contiguous comment block directly above it. The pragma is
//! deliberately per-site — there is no file-level opt-out. The
//! `hotpath-alloc` rule is inverted: it is *opt-in per file* via the
//! [`HOTPATH_MARKER`] comment, because only the steady-state query
//! kernels carry the zero-allocation contract (DESIGN.md §13).
//! `Vec::with_capacity` is deliberately not flagged — sizing a buffer
//! once up front is the sanctioned warm-up idiom.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const RULE_UNSAFE: &str = "unsafe-without-safety";
const RULE_FILE_ALLOW: &str = "file-allow-unsafe";
const RULE_FACADE: &str = "facade";
const RULE_STATIC_MUT: &str = "static-mut";
const RULE_RELAXED: &str = "relaxed";
const RULE_UNWRAP: &str = "unwrap-invariant";
const RULE_HOTPATH: &str = "hotpath-alloc";

/// The opt-in marker for the `hotpath-alloc` rule: a file containing
/// this comment anywhere declares itself a zero-allocation hot-path
/// module, and every allocating idiom in its non-test code must carry a
/// `HOTPATH:` justification (warm-up, build phase, cold fallback).
const HOTPATH_MARKER: &str = "lint: hotpath-module";

/// How many lines above a `::Relaxed` use may hold its justification —
/// enough to cover a comment above a multi-line `compare_exchange`
/// call, small enough that the comment stays adjacent.
const RELAXED_COMMENT_WINDOW: usize = 8;

/// One source line after lexing: the code outside comments and string
/// literals, and the concatenated comment text.
struct Line {
    code: String,
    comment: String,
}

#[derive(Debug)]
struct Violation {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Lexer state carried across lines.
enum State {
    Normal,
    /// Nested block comment depth (Rust block comments nest).
    Block(usize),
    Str,
    /// Raw string with this many `#`s in its delimiter.
    RawStr(usize),
}

/// Split source into per-line code and comment streams, skipping the
/// contents of string/char literals (so pattern text inside a literal —
/// e.g. in this linter's own source — never trips a rule).
fn lex(source: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut state = State::Normal;
    for raw in source.lines() {
        let chars: Vec<char> = raw.chars().collect();
        let mut code = String::new();
        let mut comment = String::new();
        let mut i = 0;
        while i < chars.len() {
            match state {
                State::Block(depth) => {
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        state = if depth == 1 { State::Normal } else { State::Block(depth - 1) };
                        i += 2;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::Block(depth + 1);
                        i += 2;
                    } else {
                        comment.push(chars[i]);
                        i += 1;
                    }
                }
                State::Str => {
                    if chars[i] == '\\' {
                        i += 2;
                    } else {
                        if chars[i] == '"' {
                            state = State::Normal;
                            code.push('"');
                        }
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    let closes = chars[i] == '"'
                        && (i + hashes < chars.len() || hashes == 0)
                        && chars[i + 1..].iter().take(hashes).all(|&c| c == '#')
                        && chars[i + 1..].iter().take(hashes).count() == hashes;
                    if closes {
                        state = State::Normal;
                        i += 1 + hashes;
                    } else {
                        i += 1;
                    }
                }
                State::Normal => {
                    let c = chars[i];
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        comment.push_str(&raw[char_byte_index(raw, i + 2)..]);
                        i = chars.len();
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::Block(1);
                        i += 2;
                    } else if c == '"' {
                        state = State::Str;
                        code.push('"');
                        i += 1;
                    } else if c == 'r'
                        && matches!(chars.get(i + 1), Some(&'"') | Some(&'#'))
                        && !prev_is_ident(&chars, i)
                    {
                        // r"..." / r#"..."# raw string: count the hashes.
                        let mut hashes = 0;
                        let mut j = i + 1;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            state = State::RawStr(hashes);
                            code.push('r');
                            i = j + 1;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        // Distinguish char literals from lifetimes.
                        if chars.get(i + 1) == Some(&'\\') {
                            // Escaped char literal: skip to the closing
                            // quote.
                            let mut j = i + 2;
                            while j < chars.len() && chars[j] != '\'' {
                                j += 1;
                            }
                            code.push('\'');
                            i = j + 1;
                        } else if chars.get(i + 2) == Some(&'\'') {
                            code.push('\'');
                            i += 3;
                        } else {
                            // A lifetime — plain code.
                            code.push(c);
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        lines.push(Line { code, comment });
    }
    lines
}

fn char_byte_index(s: &str, char_idx: usize) -> usize {
    s.char_indices().nth(char_idx).map(|(b, _)| b).unwrap_or(s.len())
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Does `code` contain `word` with identifier boundaries on both sides?
fn has_word(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let right_ok = end == bytes.len() || !is_ident_byte(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Is the pragma `lint: allow(<rule>)` present on line `i` or in the
/// contiguous comment/attribute block directly above it?
fn pragma_allows(lines: &[Line], i: usize, rule: &str) -> bool {
    let needle = format!("lint: allow({rule})");
    if lines[i].comment.contains(&needle) {
        return true;
    }
    let mut k = i;
    while k > 0 {
        k -= 1;
        let l = &lines[k];
        let code = l.code.trim();
        if code.is_empty() && l.comment.is_empty() {
            break; // blank line ends the block
        }
        // Walk up through comment lines and attributes only.
        if !code.is_empty() && !code.starts_with('#') {
            break;
        }
        if l.comment.contains(&needle) {
            return true;
        }
    }
    false
}

/// Is there a `SAFETY:`/`# Safety` comment adjacent to line `i` (same
/// line, or in the contiguous comment/attribute block above)?
fn has_safety_comment(lines: &[Line], i: usize) -> bool {
    let is_safety = |c: &str| c.contains("SAFETY") || c.contains("# Safety");
    if is_safety(&lines[i].comment) {
        return true;
    }
    let mut k = i;
    while k > 0 {
        k -= 1;
        let l = &lines[k];
        let code = l.code.trim();
        if code.is_empty() && l.comment.is_empty() {
            return false; // blank line ends adjacency
        }
        if !code.is_empty() && !code.starts_with('#') {
            // A code line above: still accept its trailing comment (the
            // unsafe item may sit inside a multi-line signature).
            return is_safety(&l.comment);
        }
        if is_safety(&l.comment) {
            return true;
        }
    }
    false
}

/// Is any justification comment mentioning "Relaxed" within the window
/// above (or on) line `i`?
fn has_relaxed_comment(lines: &[Line], i: usize) -> bool {
    let lo = i.saturating_sub(RELAXED_COMMENT_WINDOW);
    lines[lo..=i].iter().any(|l| l.comment.to_ascii_lowercase().contains("relaxed"))
}

/// Is an `INVARIANT` justification comment within the window above (or
/// on) line `i`? Reuses the relaxed-rule window: close enough to stay
/// adjacent, wide enough for a comment above a multi-line call chain.
fn has_invariant_comment(lines: &[Line], i: usize) -> bool {
    let lo = i.saturating_sub(RELAXED_COMMENT_WINDOW);
    lines[lo..=i].iter().any(|l| l.comment.contains("INVARIANT"))
}

/// Is a `HOTPATH` justification comment within the window above (or
/// on) line `i`? Same window as the relaxed/invariant rules.
fn has_hotpath_comment(lines: &[Line], i: usize) -> bool {
    let lo = i.saturating_sub(RELAXED_COMMENT_WINDOW);
    lines[lo..=i].iter().any(|l| l.comment.contains("HOTPATH"))
}

/// The allocating idioms the hot-path rule watches for. Matched against
/// the lexed code stream, so occurrences in comments and string
/// literals never fire.
fn allocating_idiom(code: &str) -> Option<&'static str> {
    ["Vec::new(", "vec![", ".collect("].into_iter().find(|needle| code.contains(needle))
}

/// Does the unwrap rule apply to this file? Library sources only:
/// `crates/*/src`, excluding binary targets (`src/bin`, `main.rs`) and
/// test/bench trees — bins and tests may `expect` with context, and the
/// rule's test-module cutoff handles inline `#[cfg(test)]` modules.
fn unwrap_scoped(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    p.starts_with("crates/")
        && p.contains("/src/")
        && !p.contains("/bin/")
        && !p.contains("/tests/")
        && !p.contains("/benches/")
        && !p.ends_with("/main.rs")
}

/// Does the facade-bypass rule apply to this file? Only the scheduler
/// shim's sources are required to route through `crate::sync`; its
/// `sync.rs` facade is where the `std` names are allowed to live.
fn facade_scoped(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    p.contains("vendor/rayon/src/") && !p.ends_with("/sync.rs")
}

fn check_source(path: &Path, source: &str) -> Vec<Violation> {
    let lines = lex(source);
    let mut out = Vec::new();
    let mut push = |i: usize, rule: &'static str, message: &str| {
        out.push(Violation {
            file: path.to_path_buf(),
            line: i + 1,
            rule,
            message: message.to_string(),
        });
    };
    let facade_applies = facade_scoped(path);
    let unwrap_applies = unwrap_scoped(path);
    let hotpath_applies = lines.iter().any(|l| l.comment.contains(HOTPATH_MARKER));
    // Inline test modules are exempt from the unwrap rule: everything
    // from the first `#[cfg(test)]` line down is test code (the
    // workspace convention keeps test modules at the end of the file).
    let test_start = lines
        .iter()
        .position(|l| {
            let compact: String = l.code.chars().filter(|c| !c.is_whitespace()).collect();
            compact.contains("#[cfg(test)]")
        })
        .unwrap_or(lines.len());
    for i in 0..lines.len() {
        let code = lines[i].code.as_str();
        let compact: String = code.chars().filter(|c| !c.is_whitespace()).collect();

        if compact.contains("#![allow(") && compact.contains("unsafe_code") {
            if !pragma_allows(&lines, i, RULE_FILE_ALLOW) {
                push(
                    i,
                    RULE_FILE_ALLOW,
                    "file-level #![allow(unsafe_code)]; audit each unsafe item with a \
                     per-item #[allow(unsafe_code)] instead",
                );
            }
            continue;
        }

        if code.contains("static mut ") && !pragma_allows(&lines, i, RULE_STATIC_MUT) {
            push(
                i,
                RULE_STATIC_MUT,
                "`static mut` is unsynchronized shared state; use an atomic, a lock, \
                 or interior mutability",
            );
        }

        if has_word(code, "unsafe")
            && !has_safety_comment(&lines, i)
            && !pragma_allows(&lines, i, RULE_UNSAFE)
        {
            push(
                i,
                RULE_UNSAFE,
                "unsafe without an adjacent SAFETY comment explaining why it is sound",
            );
        }

        if facade_applies
            && (code.contains("std::sync") || code.contains("std::thread"))
            && !pragma_allows(&lines, i, RULE_FACADE)
        {
            push(
                i,
                RULE_FACADE,
                "direct std::sync/std::thread use bypasses the crate::sync facade \
                 (and with it the model checker)",
            );
        }

        if code.contains("::Relaxed")
            && !has_relaxed_comment(&lines, i)
            && !pragma_allows(&lines, i, RULE_RELAXED)
        {
            push(
                i,
                RULE_RELAXED,
                "Ordering::Relaxed without a nearby comment justifying why no \
                 ordering is needed",
            );
        }

        if unwrap_applies
            && i < test_start
            && code.contains(".unwrap()")
            && !has_invariant_comment(&lines, i)
            && !pragma_allows(&lines, i, RULE_UNWRAP)
        {
            push(
                i,
                RULE_UNWRAP,
                "bare .unwrap() in library code; return a typed error, use \
                 expect with context, or state the invariant in an \
                 `// INVARIANT:` comment",
            );
        }

        if hotpath_applies && i < test_start {
            if let Some(idiom) = allocating_idiom(code) {
                if !has_hotpath_comment(&lines, i) && !pragma_allows(&lines, i, RULE_HOTPATH) {
                    push(
                        i,
                        RULE_HOTPATH,
                        &format!(
                            "`{idiom}` in a hot-path module; reuse a scratch buffer \
                             (clear + extend / resize), or justify the allocation \
                             with a `// HOTPATH:` comment (warm-up, build phase, \
                             cold fallback)"
                        ),
                    );
                }
            }
        }
    }
    out
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if matches!(name, "target" | ".git" | "node_modules") {
                continue;
            }
            walk(&path, files);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            files.push(path);
        }
    }
}

/// The workspace root: an explicit argument, or two levels above this
/// crate's manifest (crates/pmc-lint -> workspace), or the current dir.
fn workspace_root() -> PathBuf {
    if let Some(arg) = std::env::args().nth(1) {
        return PathBuf::from(arg);
    }
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(root) = p.ancestors().nth(2) {
            if root.join("Cargo.toml").exists() {
                return root.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    for sub in ["crates", "vendor", "src"] {
        walk(&root.join(sub), &mut files);
    }
    if files.is_empty() {
        eprintln!("pmc-lint: no .rs files found under {}", root.display());
        return ExitCode::FAILURE;
    }
    let mut violations = Vec::new();
    for file in &files {
        match std::fs::read_to_string(file) {
            Ok(source) => {
                let rel = file.strip_prefix(&root).unwrap_or(file).to_path_buf();
                violations.extend(check_source(&rel, &source));
            }
            Err(e) => {
                eprintln!("pmc-lint: cannot read {}: {e}", file.display());
                return ExitCode::FAILURE;
            }
        }
    }
    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!("pmc-lint: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        println!(
            "pmc-lint: {} violation(s) in {} files scanned",
            violations.len(),
            files.len()
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(path: &str, src: &str) -> Vec<&'static str> {
        check_source(Path::new(path), src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn unsafe_without_safety_is_flagged() {
        let src = "fn f() {\n    unsafe { g(); }\n}\n";
        assert_eq!(rules("crates/x/src/lib.rs", src), vec![RULE_UNSAFE]);
    }

    #[test]
    fn unsafe_with_adjacent_safety_comment_passes() {
        let src = "fn f() {\n    // SAFETY: g has no preconditions here.\n    unsafe { g(); }\n}\n";
        assert!(rules("crates/x/src/lib.rs", src).is_empty());
        // Attributes between the comment and the unsafe are fine.
        let src = "// SAFETY: audited.\n#[allow(unsafe_code)]\nunsafe fn f() {}\n";
        assert!(rules("crates/x/src/lib.rs", src).is_empty());
        // Doc-comment Safety sections count for unsafe fns.
        let src = "/// # Safety\n/// Caller must uphold X.\nunsafe fn f() {}\n";
        assert!(rules("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn blank_line_breaks_safety_adjacency() {
        let src = "// SAFETY: stale comment.\n\nfn f() {\n    unsafe { g(); }\n}\n";
        assert_eq!(rules("crates/x/src/lib.rs", src), vec![RULE_UNSAFE]);
    }

    #[test]
    fn file_level_allow_unsafe_is_flagged_but_per_item_passes() {
        assert_eq!(
            rules("crates/x/src/lib.rs", "#![allow(unsafe_code)]\n"),
            vec![RULE_FILE_ALLOW]
        );
        // Per-item allow with its own SAFETY comment is the sanctioned
        // form.
        let src = "// SAFETY: audited.\n#[allow(unsafe_code)]\nunsafe fn f() {}\n";
        assert!(rules("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn facade_bypass_is_scoped_to_the_shim() {
        let src = "use std::sync::Mutex;\n";
        assert_eq!(rules("vendor/rayon/src/pool.rs", src), vec![RULE_FACADE]);
        assert!(rules("vendor/rayon/src/sync.rs", src).is_empty(), "the facade itself");
        assert!(rules("crates/pmc-core/src/lib.rs", src).is_empty(), "outside the shim");
        assert!(rules("vendor/rayon/tests/model.rs", src).is_empty(), "tests may observe");
        let src = "std::thread::spawn(|| ());\n";
        assert_eq!(rules("vendor/rayon/src/lib.rs", src), vec![RULE_FACADE]);
    }

    #[test]
    fn static_mut_is_flagged() {
        assert_eq!(
            rules("crates/x/src/lib.rs", "static mut COUNTER: u32 = 0;\n"),
            vec![RULE_STATIC_MUT]
        );
    }

    #[test]
    fn uncommented_relaxed_is_flagged() {
        let src = "fn f(a: &AtomicUsize) {\n    a.load(Ordering::Relaxed);\n}\n";
        assert_eq!(rules("crates/x/src/lib.rs", src), vec![RULE_RELAXED]);
        let src = "fn f(a: &AtomicUsize) {\n    // Relaxed: monotone counter, no ordering.\n    a.load(Ordering::Relaxed);\n}\n";
        assert!(rules("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn relaxed_comment_window_covers_multiline_calls() {
        let src = "// Relaxed: pure admission counter.\nfn f(a: &AtomicUsize) {\n    a.compare_exchange_weak(\n        0,\n        1,\n        Ordering::Relaxed,\n        Ordering::Relaxed,\n    );\n}\n";
        assert!(rules("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn pragma_escapes_one_site() {
        let src = "use std::sync::Mutex; // lint: allow(facade) -- test helper\n";
        assert!(rules("vendor/rayon/src/pool.rs", src).is_empty());
        let src = "// lint: allow(facade) -- test helper block\nuse std::sync::Mutex;\n";
        assert!(rules("vendor/rayon/src/pool.rs", src).is_empty());
        // The pragma names a specific rule; others still fire.
        let src = "// lint: allow(relaxed)\nuse std::sync::Mutex;\n";
        assert_eq!(rules("vendor/rayon/src/pool.rs", src), vec![RULE_FACADE]);
    }

    #[test]
    fn patterns_inside_strings_and_comments_do_not_fire() {
        let src = "fn f() { let s = \"std::sync is banned, unsafe too\"; }\n";
        assert!(rules("vendor/rayon/src/pool.rs", src).is_empty());
        let src = "// mentions std::thread and unsafe in prose only\nfn f() {}\n";
        assert!(rules("vendor/rayon/src/pool.rs", src).is_empty());
        let src = "fn f() { let s = r#\"static mut inside raw string\"#; }\n";
        assert!(rules("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn block_comments_and_lifetimes_lex_correctly() {
        let src = "/* unsafe std::sync\n   static mut */\nfn f<'a>(x: &'a u32) -> &'a u32 { x }\n";
        assert!(rules("vendor/rayon/src/pool.rs", src).is_empty());
        // `unsafe_code` in cfg-attrs is not the word `unsafe`.
        let src = "#[allow(unsafe_code)]\n// SAFETY: covered.\nunsafe fn g() {}\n";
        assert!(rules("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn multiline_string_state_persists() {
        let src = "const S: &str = \"line one\nstd::sync::Mutex on line two\nunsafe too\";\nfn f() {}\n";
        assert!(rules("vendor/rayon/src/pool.rs", src).is_empty());
    }

    #[test]
    fn bare_unwrap_in_library_code_is_flagged() {
        let src = "fn f(v: &[u32]) -> u32 {\n    *v.last().unwrap()\n}\n";
        assert_eq!(rules("crates/x/src/lib.rs", src), vec![RULE_UNWRAP]);
    }

    #[test]
    fn unwrap_with_invariant_comment_passes() {
        let src = "fn f(v: &[u32]) -> u32 {\n    // INVARIANT: callers pass non-empty slices (checked at the API boundary).\n    *v.last().unwrap()\n}\n";
        assert!(rules("crates/x/src/lib.rs", src).is_empty());
        // Same-line trailing comment counts too.
        let src = "fn f(v: &[u32]) -> u32 { *v.last().unwrap() } // INVARIANT: non-empty.\n";
        assert!(rules("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unwrap_rule_is_scoped_to_library_sources() {
        let src = "fn f(v: &[u32]) -> u32 { *v.last().unwrap() }\n";
        assert!(rules("crates/x/src/bin/tool.rs", src).is_empty(), "bin target");
        assert!(rules("crates/x/src/main.rs", src).is_empty(), "bin crate root");
        assert!(rules("crates/x/tests/it.rs", src).is_empty(), "integration test");
        assert!(rules("vendor/rayon/src/pool.rs", src).is_empty(), "vendor shim");
        assert_eq!(rules("crates/x/src/inner/mod.rs", src), vec![RULE_UNWRAP]);
    }

    #[test]
    fn unwrap_in_test_module_is_exempt() {
        let src = "fn f() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert!(rules("crates/x/src/lib.rs", src).is_empty());
        // ...but library code above the test module still fires.
        let src = "fn f(v: &[u32]) -> u32 { *v.last().unwrap() }\n\n#[cfg(test)]\nmod tests {}\n";
        assert_eq!(rules("crates/x/src/lib.rs", src), vec![RULE_UNWRAP]);
    }

    #[test]
    fn unwrap_pragma_escapes_one_site() {
        let src = "fn f(v: &[u32]) -> u32 { *v.last().unwrap() } // lint: allow(unwrap-invariant) -- migration\n";
        assert!(rules("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_strings_and_comments_does_not_fire() {
        let src = "fn f() { let s = \".unwrap() in a string\"; }\n// prose mentioning .unwrap() only\n";
        assert!(rules("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn hotpath_alloc_fires_only_in_marked_modules() {
        let alloc = "fn f() -> Vec<u32> {\n    let v = Vec::new();\n    v\n}\n";
        // Unmarked files allocate freely.
        assert!(rules("crates/x/src/lib.rs", alloc).is_empty());
        let marked = format!("// lint: hotpath-module\n{alloc}");
        assert_eq!(rules("crates/x/src/lib.rs", &marked), vec![RULE_HOTPATH]);
    }

    #[test]
    fn hotpath_alloc_flags_each_allocating_idiom() {
        for snippet in
            ["let v = Vec::new();", "let v = vec![0u32; 8];", "let v: Vec<u32> = it.collect();"]
        {
            let src = format!("// lint: hotpath-module\nfn f() {{\n    {snippet}\n}}\n");
            assert_eq!(rules("crates/x/src/lib.rs", &src), vec![RULE_HOTPATH], "{snippet}");
        }
        // Sizing a buffer once up front is the sanctioned idiom.
        let src = "// lint: hotpath-module\nfn f() { let v: Vec<u32> = Vec::with_capacity(8); }\n";
        assert!(rules("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn hotpath_comment_within_window_justifies_the_allocation() {
        let src = "// lint: hotpath-module\nfn f() {\n    // HOTPATH: warm-up only — sized once, reused thereafter.\n    let v: Vec<u32> = Vec::new();\n    drop(v);\n}\n";
        assert!(rules("crates/x/src/lib.rs", src).is_empty());
        // Same-line trailing justification counts too.
        let src = "// lint: hotpath-module\nfn f() { let v: Vec<u32> = Vec::new(); } // HOTPATH: cold fallback.\n";
        assert!(rules("crates/x/src/lib.rs", src).is_empty());
        // The pragma escape works as for every other rule.
        let src = "// lint: hotpath-module\nfn f() { let v: Vec<u32> = Vec::new(); } // lint: allow(hotpath-alloc)\n";
        assert!(rules("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn hotpath_alloc_exempts_test_modules_and_non_code() {
        let src = "// lint: hotpath-module\nfn f() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let v: Vec<u32> = Vec::new(); drop(v); }\n}\n";
        assert!(rules("crates/x/src/lib.rs", src).is_empty());
        // Idioms inside strings and comments never fire.
        let src = "// lint: hotpath-module\nfn f() { let s = \"Vec::new( vec![ .collect(\"; }\n// prose: Vec::new( is banned here\n";
        assert!(rules("crates/x/src/lib.rs", src).is_empty());
    }
}
