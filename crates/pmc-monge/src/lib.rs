//! Minimum search in (partial) Monge matrices (§4.1.2–4.1.3).
//!
//! The 2-respecting cut matrices are implicit — entries are cut queries
//! — so every algorithm here takes an entry oracle `f(i, j) -> u64` and
//! touches as few entries as the structure allows:
//!
//! * [`smawk_row_minima`]: the classic SMAWK algorithm, `O(rows+cols)`
//!   entry evaluations for totally monotone (submodular-Monge) matrices.
//!   This is the deterministic substitute for Raman–Vishkin's randomized
//!   `O(ℓ)` Monge minimum ([RV94]; see DESIGN.md).
//! * [`dc_row_minima`]: divide-and-conquer row minima,
//!   `O((rows+cols) log rows)` evaluations but parallel across the two
//!   halves — the depth-friendly option the paper attributes to
//!   [AKPS90]-style searching.
//! * [`monge_minimum`]: global minimum of a full Monge matrix.
//! * [`triangle_minimum`]: minimum over `{(i, j) : i < j}` of a partial
//!   Monge matrix (single-path case, §4.1.2): recursive block
//!   decomposition into full Monge rectangles, `O(ℓ log ℓ)` evaluations.
//!
//! Orientation: the algorithms require *submodular* Monge
//! (`M[i][j] + M[i+1][j+1] <= M[i][j+1] + M[i+1][j]`, leftmost row
//! minima non-decreasing). For supermodular (inverse-Monge) inputs pass
//! [`Orient::Supermodular`]; columns are traversed reversed, which flips
//! the orientation. Checkers ([`is_submodular`], [`orientation_of`])
//! support the property tests in `pmc-mincut` that pin down the
//! orientation of every cut-matrix configuration.

use pmc_parallel::meter::{CostKind, Meter};

/// Monge orientation of an implicit matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orient {
    /// `M[i][j] + M[i+1][j+1] <= M[i][j+1] + M[i+1][j]`.
    Submodular,
    /// `M[i][j] + M[i+1][j+1] >= M[i][j+1] + M[i+1][j]`.
    Supermodular,
}

/// A located matrix entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Located {
    pub row: usize,
    pub col: usize,
    pub value: u64,
}

impl Located {
    pub fn min(self, other: Located) -> Located {
        if self.value <= other.value {
            self
        } else {
            other
        }
    }
    pub const MAX: Located = Located { row: usize::MAX, col: usize::MAX, value: u64::MAX };
}

/// SMAWK row minima: for each row the *leftmost* minimum column.
///
/// Requires the matrix to be totally monotone for minima (implied by
/// submodular Monge). `O(rows + cols)` entry evaluations.
/// # Example
///
/// ```
/// use pmc_monge::smawk_row_minima;
/// use pmc_parallel::Meter;
///
/// // M[i][j] = (x_i - y_j)^2 over sorted coordinates is submodular Monge.
/// let xs = [1i64, 4, 9];
/// let ys = [2i64, 3, 8, 10];
/// let minima = smawk_row_minima(3, 4, |i, j| ((xs[i] - ys[j]).pow(2)) as u64, &Meter::disabled());
/// assert_eq!(minima[0].col, 0); // 1 is closest to 2
/// assert_eq!(minima[2].col, 2); // 9 is closest to 8
/// ```
pub fn smawk_row_minima<F>(rows: usize, cols: usize, f: F, meter: &Meter) -> Vec<Located>
where
    F: Fn(usize, usize) -> u64,
{
    let row_idx: Vec<usize> = (0..rows).collect();
    let col_idx: Vec<usize> = (0..cols).collect();
    let mut out = vec![Located::MAX; rows];
    if rows == 0 || cols == 0 {
        return out;
    }
    // Memoize distinct entries: the recursion re-touches boundary
    // columns (a level's reduce re-compares entries its parent's
    // interpolate already paid for), and in the solver every entry is a
    // full cut query — dedup is a real saving, and the meter charges
    // *oracle* evaluations, i.e. distinct entries.
    let memo = std::cell::RefCell::new(std::collections::HashMap::<(u32, u32), u64>::new());
    let eval = |i: usize, j: usize| {
        if let Some(&v) = memo.borrow().get(&(i as u32, j as u32)) {
            return v;
        }
        meter.bump(CostKind::MongeEntry);
        let v = f(i, j);
        memo.borrow_mut().insert((i as u32, j as u32), v);
        v
    };
    smawk_rec(&row_idx, &col_idx, &eval, &mut out);
    out
}

fn smawk_rec<F>(rows: &[usize], cols: &[usize], f: &F, out: &mut [Located])
where
    F: Fn(usize, usize) -> u64,
{
    if rows.is_empty() {
        return;
    }
    if rows.len() <= 2 {
        // One or two rows: scan the last row for its leftmost minimum
        // (|cols| evaluations), then by total monotonicity the first
        // row's minimum sits at or left of that argmin — the exact
        // entry set divide-and-conquer touches, so tiny blocks cost the
        // two engines the same.
        let r = rows[rows.len() - 1];
        let mut best = Located::MAX;
        for &c in cols {
            let v = f(r, c);
            if v < best.value {
                best = Located { row: r, col: c, value: v };
            }
        }
        out[r] = best;
        if rows.len() == 2 {
            let r0 = rows[0];
            let mut first = Located::MAX;
            for &c in cols {
                let v = f(r0, c);
                if v < first.value {
                    first = Located { row: r0, col: c, value: v };
                }
                if c == best.col {
                    break;
                }
            }
            out[r0] = first;
        }
        return;
    }
    // REDUCE: prune columns that cannot host any row minimum, keeping
    // at most |rows| survivors. Only worth the comparisons when there
    // are more columns than rows — with |cols| <= |rows| the stack
    // cannot prune below the existing bound and every comparison is
    // overhead (this is what keeps the square-matrix constant below
    // divide-and-conquer's `log r` factor). Each stack entry caches the
    // value of its column at "its" row (`f(rows[h], stack[h])` for
    // height `h`), computed lazily on first use as the left comparison
    // operand, so a column that survives several comparisons as
    // top-of-stack is evaluated there once instead of once per
    // comparison.
    let reduced: Vec<usize>;
    let cols: &[usize] = if cols.len() > rows.len() {
        let mut stack: Vec<(usize, Option<u64>)> = Vec::with_capacity(rows.len());
        for &c in cols {
            loop {
                let h = stack.len();
                if h == 0 {
                    stack.push((c, None));
                    break;
                }
                let r = rows[h - 1];
                let top_val = match stack[h - 1].1 {
                    Some(v) => v,
                    None => {
                        let v = f(r, stack[h - 1].0);
                        stack[h - 1].1 = Some(v);
                        v
                    }
                };
                // The candidate's value must be recomputed per height:
                // the comparison row changes as the stack pops.
                if top_val > f(r, c) {
                    stack.pop();
                } else if h < rows.len() {
                    stack.push((c, None));
                    break;
                } else {
                    break;
                }
            }
        }
        reduced = stack.into_iter().map(|(c, _)| c).collect();
        &reduced
    } else {
        cols
    };
    // Recurse on odd-indexed rows.
    let odd: Vec<usize> = rows.iter().copied().skip(1).step_by(2).collect();
    smawk_rec(&odd, cols, f, out);
    // INTERPOLATE even-indexed rows between their neighbours' argmins.
    let mut cpos = 0usize;
    for (k, &r) in rows.iter().enumerate().step_by(2) {
        let upper_col = if k + 1 < rows.len() {
            out[rows[k + 1]].col
        } else {
            // INVARIANT: smawk_rec is never entered with empty `cols`
            // (the public entry returns early on `cols == 0`).
            *cols.last().expect("non-empty column set")
        };
        let mut best = Located::MAX;
        let mut j = cpos;
        while j < cols.len() {
            let c = cols[j];
            let v = f(r, c);
            if v < best.value {
                best = Located { row: r, col: c, value: v };
            }
            if c == upper_col {
                break;
            }
            j += 1;
        }
        cpos = j.min(cols.len() - 1);
        out[r] = best;
    }
}

/// Divide-and-conquer row minima (leftmost). Requires total
/// monotonicity; `O((rows+cols) log rows)` evaluations, recursion halves
/// run via `rayon::join`.
pub fn dc_row_minima<F>(rows: usize, cols: usize, f: F, meter: &Meter) -> Vec<Located>
where
    F: Fn(usize, usize) -> u64 + Sync,
{
    let mut out = vec![Located::MAX; rows];
    if rows == 0 || cols == 0 {
        return out;
    }
    let eval = |i: usize, j: usize| {
        meter.bump(CostKind::MongeEntry);
        f(i, j)
    };
    dc_rec_slice(0, rows, 0, cols, &eval, &mut out, 0);
    out
}

/// Recursive worker: solve rows `[rlo, rhi)` against columns
/// `[clo, chi)`, writing into `out[r - offset]`. The middle row's
/// leftmost argmin splits the column range for the parallel halves.
fn dc_rec_slice<F>(
    rlo: usize,
    rhi: usize,
    clo: usize,
    chi: usize,
    f: &F,
    out: &mut [Located],
    offset: usize,
) where
    F: Fn(usize, usize) -> u64 + Sync,
{
    if rlo >= rhi {
        return;
    }
    let mid = (rlo + rhi) / 2;
    let mut best = Located::MAX;
    for j in clo..chi {
        let v = f(mid, j);
        if v < best.value {
            best = Located { row: mid, col: j, value: v };
        }
    }
    out[mid - offset] = best;
    let (left, right) = out.split_at_mut(mid - offset);
    // INVARIANT: `mid < rhi <= offset + out.len()`, so the right half
    // holds at least the `mid` slot itself.
    let (_, right) = right.split_first_mut().expect("right half contains the mid row");
    let bcol = best.col;
    rayon::join(
        || dc_rec_slice(rlo, mid, clo, bcol + 1, f, left, offset),
        || dc_rec_slice(mid + 1, rhi, bcol, chi, f, right, mid + 1),
    );
}

/// Which row-minima engine to use: SMAWK is work-optimal (`O(r + c)`
/// evaluations, sequential span); divide-and-conquer pays a `log r`
/// work factor for a polylogarithmic span — the same trade the paper
/// navigates between [RV94] and [AKPS90].
///
/// Both engines return the **leftmost** argmin per row, bit-for-bit:
/// strategy choice never changes a witness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowMinimaStrategy {
    #[default]
    Smawk,
    DivideConquer,
}

impl RowMinimaStrategy {
    pub fn name(self) -> &'static str {
        match self {
            RowMinimaStrategy::Smawk => "smawk",
            RowMinimaStrategy::DivideConquer => "divide-conquer",
        }
    }
}

/// Former name of [`RowMinimaStrategy`], kept as an alias so existing
/// call sites and params structs keep compiling.
pub type RowMinimaAlgo = RowMinimaStrategy;

/// Global minimum of a full Monge matrix with the given orientation.
///
/// `O(rows + cols)` evaluations via SMAWK.
pub fn monge_minimum<F>(
    rows: usize,
    cols: usize,
    orient: Orient,
    f: F,
    meter: &Meter,
) -> Option<Located>
where
    F: Fn(usize, usize) -> u64 + Sync,
{
    monge_minimum_with(RowMinimaAlgo::Smawk, rows, cols, orient, f, meter)
}

/// [`monge_minimum`] with an explicit row-minima engine.
pub fn monge_minimum_with<F>(
    algo: RowMinimaAlgo,
    rows: usize,
    cols: usize,
    orient: Orient,
    f: F,
    meter: &Meter,
) -> Option<Located>
where
    F: Fn(usize, usize) -> u64 + Sync,
{
    if rows == 0 || cols == 0 {
        return None;
    }
    let run = |g: &(dyn Fn(usize, usize) -> u64 + Sync)| match algo {
        RowMinimaAlgo::Smawk => smawk_row_minima(rows, cols, g, meter),
        RowMinimaAlgo::DivideConquer => dc_row_minima(rows, cols, g, meter),
    };
    let minima = match orient {
        Orient::Submodular => run(&f),
        Orient::Supermodular => {
            // Reverse columns: supermodular becomes submodular.
            let mut m = run(&|i: usize, j: usize| f(i, cols - 1 - j));
            for loc in &mut m {
                if loc.col != usize::MAX {
                    loc.col = cols - 1 - loc.col;
                }
            }
            m
        }
    };
    minima.into_iter().reduce(Located::min)
}

/// Minimum over the strict upper triangle `{(i, j) : i < j}` of a
/// `k x k` partial Monge matrix (Monge off the diagonal, the paper's
/// single-path matrix). Recursive block decomposition: the off-diagonal
/// rectangle `rows [lo,mid) x cols [mid,hi)` is full Monge and is solved
/// by SMAWK; the two triangles recurse in parallel. `O(k log k)`
/// evaluations, `O(log^2 k)`-style span.
pub fn triangle_minimum<F>(k: usize, orient: Orient, f: F, meter: &Meter) -> Option<Located>
where
    F: Fn(usize, usize) -> u64 + Sync,
{
    triangle_minimum_with(RowMinimaAlgo::Smawk, k, orient, f, meter)
}

/// [`triangle_minimum`] with an explicit row-minima engine.
pub fn triangle_minimum_with<F>(
    algo: RowMinimaAlgo,
    k: usize,
    orient: Orient,
    f: F,
    meter: &Meter,
) -> Option<Located>
where
    F: Fn(usize, usize) -> u64 + Sync,
{
    if k < 2 {
        return None;
    }
    triangle_rec(algo, 0, k, orient, &f, meter)
}

fn triangle_rec<F>(
    algo: RowMinimaAlgo,
    lo: usize,
    hi: usize,
    orient: Orient,
    f: &F,
    meter: &Meter,
) -> Option<Located>
where
    F: Fn(usize, usize) -> u64 + Sync,
{
    let len = hi - lo;
    if len < 2 {
        return None;
    }
    if len == 2 {
        meter.bump(CostKind::MongeEntry);
        return Some(Located { row: lo, col: lo + 1, value: f(lo, lo + 1) });
    }
    let mid = (lo + hi) / 2;
    let (block, halves) = rayon::join(
        || {
            monge_minimum_with(algo, mid - lo, hi - mid, orient, |i, j| f(lo + i, mid + j), meter)
                .map(|l| Located { row: lo + l.row, col: mid + l.col, value: l.value })
        },
        || {
            let (a, b) = rayon::join(
                || triangle_rec(algo, lo, mid, orient, f, meter),
                || triangle_rec(algo, mid, hi, orient, f, meter),
            );
            match (a, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, None) => x,
                (None, y) => y,
            }
        },
    );
    match (block, halves) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Exhaustive `O(rows * cols)` minimum — the oracle for tests and the
/// "no structure exploited" ablation baseline.
pub fn brute_minimum<F>(rows: usize, cols: usize, f: F, meter: &Meter) -> Option<Located>
where
    F: Fn(usize, usize) -> u64,
{
    let mut best: Option<Located> = None;
    for i in 0..rows {
        for j in 0..cols {
            meter.bump(CostKind::MongeEntry);
            let v = f(i, j);
            if best.is_none_or(|b| v < b.value) {
                best = Some(Located { row: i, col: j, value: v });
            }
        }
    }
    best
}

/// Exhaustive strict-upper-triangle minimum.
pub fn brute_triangle_minimum<F>(k: usize, f: F, meter: &Meter) -> Option<Located>
where
    F: Fn(usize, usize) -> u64,
{
    let mut best: Option<Located> = None;
    for i in 0..k {
        for j in i + 1..k {
            meter.bump(CostKind::MongeEntry);
            let v = f(i, j);
            if best.is_none_or(|b| v < b.value) {
                best = Some(Located { row: i, col: j, value: v });
            }
        }
    }
    best
}

/// Does the matrix satisfy the submodular Monge inequality everywhere?
pub fn is_submodular<F>(rows: usize, cols: usize, f: F) -> bool
where
    F: Fn(usize, usize) -> u64,
{
    for i in 0..rows.saturating_sub(1) {
        for j in 0..cols.saturating_sub(1) {
            // Use i128 to avoid overflow on u64 sums.
            let a = f(i, j) as i128 + f(i + 1, j + 1) as i128;
            let b = f(i, j + 1) as i128 + f(i + 1, j) as i128;
            if a > b {
                return false;
            }
        }
    }
    true
}

/// Does the matrix satisfy the supermodular (inverse Monge) inequality?
pub fn is_supermodular<F>(rows: usize, cols: usize, f: F) -> bool
where
    F: Fn(usize, usize) -> u64,
{
    for i in 0..rows.saturating_sub(1) {
        for j in 0..cols.saturating_sub(1) {
            let a = f(i, j) as i128 + f(i + 1, j + 1) as i128;
            let b = f(i, j + 1) as i128 + f(i + 1, j) as i128;
            if a < b {
                return false;
            }
        }
    }
    true
}

/// Classify a matrix, if it has a consistent orientation.
pub fn orientation_of<F>(rows: usize, cols: usize, f: F) -> Option<Orient>
where
    F: Fn(usize, usize) -> u64 + Copy,
{
    match (is_submodular(rows, cols, f), is_supermodular(rows, cols, f)) {
        (true, _) => Some(Orient::Submodular),
        (_, true) => Some(Orient::Supermodular),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Random submodular Monge matrix: squared distances between two
    /// sorted coordinate sets (classic construction).
    fn random_monge(rows: usize, cols: usize, rng: &mut StdRng) -> Vec<Vec<u64>> {
        let mut xs: Vec<i64> = (0..rows).map(|_| rng.random_range(0..1000)).collect();
        let mut ys: Vec<i64> = (0..cols).map(|_| rng.random_range(0..1000)).collect();
        xs.sort_unstable();
        ys.sort_unstable();
        (0..rows)
            .map(|i| (0..cols).map(|j| ((xs[i] - ys[j]) * (xs[i] - ys[j])) as u64).collect())
            .collect()
    }

    #[test]
    fn generator_is_submodular() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let m = random_monge(8, 11, &mut rng);
            assert!(is_submodular(8, 11, |i, j| m[i][j]));
        }
    }

    #[test]
    fn smawk_matches_brute_rows() {
        let mut rng = StdRng::seed_from_u64(2);
        for (r, c) in [(1, 1), (1, 7), (7, 1), (5, 5), (13, 29), (31, 8), (64, 64)] {
            let m = random_monge(r, c, &mut rng);
            let got = smawk_row_minima(r, c, |i, j| m[i][j], &Meter::disabled());
            for i in 0..r {
                let brute: u64 = (0..c).map(|j| m[i][j]).min().expect("c >= 1 columns");
                assert_eq!(got[i].value, brute, "({r},{c}) row {i}");
                // Leftmost argmin.
                let leftmost = (0..c).find(|&j| m[i][j] == brute).expect("minimum exists");
                assert_eq!(got[i].col, leftmost, "({r},{c}) row {i} leftmost");
            }
        }
    }

    #[test]
    fn smawk_linear_evaluations() {
        let mut rng = StdRng::seed_from_u64(3);
        let (r, c) = (500, 700);
        let m = random_monge(r, c, &mut rng);
        let meter = Meter::enabled();
        let _ = smawk_row_minima(r, c, |i, j| m[i][j], &meter);
        let evals = meter.get(CostKind::MongeEntry);
        // SMAWK is O(r + c) with a small constant.
        assert!(evals <= 8 * (r + c) as u64, "evals {evals} not linear");
    }

    #[test]
    fn dc_matches_smawk() {
        let mut rng = StdRng::seed_from_u64(4);
        for (r, c) in [(2, 3), (9, 9), (17, 40), (40, 17)] {
            let m = random_monge(r, c, &mut rng);
            let a = smawk_row_minima(r, c, |i, j| m[i][j], &Meter::disabled());
            let b = dc_row_minima(r, c, |i, j| m[i][j], &Meter::disabled());
            for i in 0..r {
                assert_eq!(a[i].value, b[i].value, "({r},{c}) row {i}");
                assert_eq!(a[i].col, b[i].col, "({r},{c}) row {i} leftmost argmin");
            }
        }
    }

    #[test]
    fn monge_minimum_both_orientations() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let m = random_monge(12, 9, &mut rng);
            let expect = brute_minimum(12, 9, |i, j| m[i][j], &Meter::disabled())
                .expect("non-empty matrix has a minimum");
            let got =
                monge_minimum(12, 9, Orient::Submodular, |i, j| m[i][j], &Meter::disabled())
                    .expect("non-empty matrix has a minimum");
            assert_eq!(got.value, expect.value);
            // Supermodular variant: reverse columns of m.
            let got2 = monge_minimum(
                12,
                9,
                Orient::Supermodular,
                |i, j| m[i][8 - j],
                &Meter::disabled(),
            )
            .expect("non-empty matrix has a minimum");
            assert_eq!(got2.value, expect.value);
        }
    }

    #[test]
    fn triangle_minimum_matches_brute() {
        let mut rng = StdRng::seed_from_u64(6);
        for k in [2usize, 3, 4, 7, 16, 33, 64] {
            // Build a symmetric-ish partial Monge matrix from a full
            // Monge one (upper triangle inherits Mongeness).
            let m = random_monge(k, k, &mut rng);
            let expect =
                brute_triangle_minimum(k, |i, j| m[i][j], &Meter::disabled())
                    .expect("k >= 2 triangle has a minimum");
            let got =
                triangle_minimum(k, Orient::Submodular, |i, j| m[i][j], &Meter::disabled())
                    .expect("k >= 2 triangle has a minimum");
            assert_eq!(got.value, expect.value, "k={k}");
            assert!(got.row < got.col, "k={k} returned diagonal-or-lower entry");
        }
    }

    #[test]
    fn triangle_evaluation_count_quasilinear() {
        let mut rng = StdRng::seed_from_u64(7);
        let k = 512;
        let m = random_monge(k, k, &mut rng);
        let meter = Meter::enabled();
        let _ = triangle_minimum(k, Orient::Submodular, |i, j| m[i][j], &meter);
        let evals = meter.get(CostKind::MongeEntry);
        let bound = 16 * (k as u64) * (k as f64).log2() as u64;
        assert!(evals <= bound, "evals {evals} > {bound}");
    }

    #[test]
    fn empty_inputs() {
        let m = Meter::disabled();
        assert!(monge_minimum(0, 5, Orient::Submodular, |_, _| 0, &m).is_none());
        assert!(monge_minimum(5, 0, Orient::Submodular, |_, _| 0, &m).is_none());
        assert!(triangle_minimum(0, Orient::Submodular, |_, _| 0, &m).is_none());
        assert!(triangle_minimum(1, Orient::Submodular, |_, _| 0, &m).is_none());
        assert!(smawk_row_minima(0, 0, |_, _| 0, &m).is_empty());
    }

    #[test]
    fn orientation_checkers() {
        let mut rng = StdRng::seed_from_u64(8);
        let m = random_monge(6, 6, &mut rng);
        assert_eq!(orientation_of(6, 6, |i, j| m[i][j]), Some(Orient::Submodular));
        assert_eq!(orientation_of(6, 6, |i, j| m[i][5 - j]), Some(Orient::Supermodular));
        // A random matrix is almost surely neither.
        let r: Vec<Vec<u64>> =
            (0..6).map(|_| (0..6).map(|_| rng.random_range(0..1000)).collect()).collect();
        // (Could be degenerate by chance with tiny probability; seed fixed.)
        assert_eq!(orientation_of(6, 6, |i, j| r[i][j]), None);
    }

    #[test]
    fn constant_matrix_is_both() {
        assert!(is_submodular(4, 4, |_, _| 7));
        assert!(is_supermodular(4, 4, |_, _| 7));
        let got = monge_minimum(4, 4, Orient::Submodular, |_, _| 7, &Meter::disabled())
            .expect("non-empty matrix has a minimum");
        assert_eq!(got.value, 7);
    }
}
