//! Plain-text graph exchange format.
//!
//! A DIMACS-flavoured line format:
//!
//! ```text
//! p <n> <m>
//! e <u> <v> <w>
//! ...
//! c free-form comment
//! ```
//!
//! Vertices are 0-based. The format is intentionally minimal — it exists
//! so experiment inputs can be checked in and replayed.

use crate::graph::{Graph, GraphBuilder};
use std::fmt::Write as _;

/// Serialization error for [`parse_graph`]. Every malformed input —
/// truncated files, garbage records, negative weights, out-of-range
/// endpoints, self-loops — maps to a typed variant with the failing
/// line attached; the parser never panics on untrusted bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    MissingHeader,
    BadLine { line_no: usize, reason: String },
    EdgeCountMismatch { declared: usize, found: usize },
    /// An edge endpoint is `>= n` — would trip the builder's internal
    /// bounds assertion, so it is rejected here with context instead.
    EndpointOutOfRange { line_no: usize, endpoint: u32, n: usize },
    /// A self-loop `e v v w`. Loops carry no cut weight and the solver
    /// stack assumes loop-free inputs, so the parser rejects them
    /// rather than silently dropping weight.
    SelfLoop { line_no: usize, v: u32 },
    /// A negative edge weight. Weights are unsigned throughout the
    /// workspace (min-cut needs non-negative weights); a leading `-`
    /// gets this dedicated variant instead of a generic parse failure.
    NegativeWeight { line_no: usize },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::MissingHeader => write!(f, "missing 'p <n> <m>' header line"),
            ParseError::BadLine { line_no, reason } => {
                write!(f, "line {line_no}: {reason}")
            }
            ParseError::EdgeCountMismatch { declared, found } => {
                write!(f, "header declared {declared} edges but found {found}")
            }
            ParseError::EndpointOutOfRange { line_no, endpoint, n } => {
                write!(f, "line {line_no}: endpoint {endpoint} out of range for {n} vertices")
            }
            ParseError::SelfLoop { line_no, v } => {
                write!(f, "line {line_no}: self-loop at vertex {v}")
            }
            ParseError::NegativeWeight { line_no } => {
                write!(f, "line {line_no}: negative edge weight")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for pmc_fault::PmcError {
    fn from(e: ParseError) -> Self {
        pmc_fault::PmcError::Parse { message: e.to_string() }
    }
}

/// Render a graph in the text format.
pub fn write_graph(g: &Graph) -> String {
    let mut out = String::with_capacity(16 + g.m() * 12);
    let _ = writeln!(out, "p {} {}", g.n(), g.m());
    for e in g.edges() {
        let _ = writeln!(out, "e {} {} {}", e.u, e.v, e.w);
    }
    out
}

/// Parse a graph from the text format.
pub fn parse_graph(text: &str) -> Result<Graph, ParseError> {
    let mut builder: Option<GraphBuilder> = None;
    let mut declared_n = 0usize;
    let mut declared_m = 0usize;
    let mut found_m = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut it = line.split_ascii_whitespace();
        match it.next() {
            Some("p") => {
                if builder.is_some() {
                    return Err(ParseError::BadLine {
                        line_no,
                        reason: "duplicate 'p' header".into(),
                    });
                }
                let n: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError::BadLine { line_no, reason: "bad n".into() })?;
                declared_m = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError::BadLine { line_no, reason: "bad m".into() })?;
                declared_n = n;
                builder = Some(GraphBuilder::new(n));
            }
            Some("e") => {
                let b = builder.as_mut().ok_or(ParseError::MissingHeader)?;
                let u: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError::BadLine { line_no, reason: "bad u".into() })?;
                let v: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError::BadLine { line_no, reason: "bad v".into() })?;
                let w_text = it
                    .next()
                    .ok_or_else(|| ParseError::BadLine { line_no, reason: "missing w".into() })?;
                if w_text.starts_with('-') {
                    return Err(ParseError::NegativeWeight { line_no });
                }
                let w: u64 = w_text
                    .parse()
                    .map_err(|_| ParseError::BadLine { line_no, reason: "bad w".into() })?;
                // Validate before the builder sees the edge: its
                // internal `add_edge` asserts on out-of-range
                // endpoints, and untrusted input must never reach an
                // assertion.
                for endpoint in [u, v] {
                    if endpoint as usize >= declared_n {
                        return Err(ParseError::EndpointOutOfRange {
                            line_no,
                            endpoint,
                            n: declared_n,
                        });
                    }
                }
                if u == v {
                    return Err(ParseError::SelfLoop { line_no, v: u });
                }
                b.add_edge(u, v, w);
                found_m += 1;
            }
            Some(other) => {
                return Err(ParseError::BadLine {
                    line_no,
                    reason: format!("unknown record '{other}'"),
                })
            }
            None => {}
        }
    }
    let b = builder.ok_or(ParseError::MissingHeader)?;
    if declared_m != found_m {
        return Err(ParseError::EdgeCountMismatch { declared: declared_m, found: found_m });
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::gnm_connected(12, 20, 9, &mut rng);
        let text = write_graph(&g);
        let g2 = parse_graph(&text).expect("round-tripped text parses");
        assert_eq!(g.n(), g2.n());
        assert_eq!(g.m(), g2.m());
        assert_eq!(g.total_weight(), g2.total_weight());
        assert_eq!(g.edges(), g2.edges());
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "c hello\n\np 3 2\ne 0 1 4\nc mid comment\ne 1 2 6\n";
        let g = parse_graph(text).expect("comments and blanks are skippable");
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
        assert_eq!(g.total_weight(), 10);
    }

    #[test]
    fn missing_header_rejected() {
        assert!(matches!(parse_graph("e 0 1 2\n"), Err(ParseError::MissingHeader)));
    }

    #[test]
    fn count_mismatch_rejected() {
        let err = parse_graph("p 3 5\ne 0 1 2\n").unwrap_err();
        assert!(matches!(err, ParseError::EdgeCountMismatch { declared: 5, found: 1 }));
    }

    #[test]
    fn bad_line_reported_with_number() {
        let err = parse_graph("p 3 1\ne 0 x 2\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine { line_no: 2, .. }));
    }

    #[test]
    fn out_of_range_endpoint_rejected_not_panicking() {
        let err = parse_graph("p 3 1\ne 0 7 2\n").unwrap_err();
        assert_eq!(err, ParseError::EndpointOutOfRange { line_no: 2, endpoint: 7, n: 3 });
        // Both endpoint positions are covered.
        let err = parse_graph("p 3 1\ne 9 1 2\n").unwrap_err();
        assert_eq!(err, ParseError::EndpointOutOfRange { line_no: 2, endpoint: 9, n: 3 });
    }

    #[test]
    fn self_loops_rejected() {
        let err = parse_graph("p 3 2\ne 0 1 2\ne 2 2 5\n").unwrap_err();
        assert_eq!(err, ParseError::SelfLoop { line_no: 3, v: 2 });
    }

    #[test]
    fn negative_weight_rejected() {
        let err = parse_graph("p 3 1\ne 0 1 -4\n").unwrap_err();
        assert_eq!(err, ParseError::NegativeWeight { line_no: 2 });
    }

    #[test]
    fn duplicate_header_rejected() {
        let err = parse_graph("p 3 1\np 4 1\ne 0 1 2\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine { line_no: 2, .. }));
    }

    /// Corrupt fixtures: truncated and garbage inputs must all come
    /// back as typed errors, never panics. (The panic-freedom claim is
    /// exactly what `catch_unwind`-free test execution asserts — a
    /// panic here would fail the test run.)
    #[test]
    fn corrupt_fixtures_return_typed_errors() {
        let fixtures: &[&str] = &[
            "",                                 // empty file
            "p",                                // truncated header
            "p 3",                              // header missing m
            "p 3 2\ne 0 1 4\n",                 // truncated edge list
            "p 3 1\ne 0 1\n",                   // truncated edge record
            "p 3 1\ne 0 1 4\ne 1 2 5\n",        // extra edges
            "p x y\n",                          // garbage header
            "q 3 1\n",                          // unknown record
            "p 3 1\nexplode\n",                 // garbage record
            "p 3 1\ne 0 1 99999999999999999999999\n", // weight overflow
            "p 3 1\ne 0 1 -0\n",                // negative zero weight
            "\u{0}\u{1}\u{2}",                  // binary garbage
        ];
        for (i, text) in fixtures.iter().enumerate() {
            let result = parse_graph(text);
            assert!(result.is_err(), "fixture {i} must be rejected: {text:?}");
        }
    }

    #[test]
    fn parse_error_lifts_into_pmc_error() {
        let err = parse_graph("p 3 1\ne 0 1 -4\n").unwrap_err();
        let lifted: pmc_fault::PmcError = err.into();
        assert!(matches!(lifted, pmc_fault::PmcError::Parse { .. }));
        assert!(lifted.to_string().contains("negative"));
    }
}
