//! Plain-text graph exchange format.
//!
//! A DIMACS-flavoured line format:
//!
//! ```text
//! p <n> <m>
//! e <u> <v> <w>
//! ...
//! c free-form comment
//! ```
//!
//! Vertices are 0-based. The format is intentionally minimal — it exists
//! so experiment inputs can be checked in and replayed.

use crate::graph::{Graph, GraphBuilder};
use std::fmt::Write as _;

/// Serialization error for [`parse_graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    MissingHeader,
    BadLine { line_no: usize, reason: String },
    EdgeCountMismatch { declared: usize, found: usize },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::MissingHeader => write!(f, "missing 'p <n> <m>' header line"),
            ParseError::BadLine { line_no, reason } => {
                write!(f, "line {line_no}: {reason}")
            }
            ParseError::EdgeCountMismatch { declared, found } => {
                write!(f, "header declared {declared} edges but found {found}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Render a graph in the text format.
pub fn write_graph(g: &Graph) -> String {
    let mut out = String::with_capacity(16 + g.m() * 12);
    let _ = writeln!(out, "p {} {}", g.n(), g.m());
    for e in g.edges() {
        let _ = writeln!(out, "e {} {} {}", e.u, e.v, e.w);
    }
    out
}

/// Parse a graph from the text format.
pub fn parse_graph(text: &str) -> Result<Graph, ParseError> {
    let mut builder: Option<GraphBuilder> = None;
    let mut declared_m = 0usize;
    let mut found_m = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut it = line.split_ascii_whitespace();
        match it.next() {
            Some("p") => {
                let n: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError::BadLine { line_no, reason: "bad n".into() })?;
                declared_m = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError::BadLine { line_no, reason: "bad m".into() })?;
                builder = Some(GraphBuilder::new(n));
            }
            Some("e") => {
                let b = builder.as_mut().ok_or(ParseError::MissingHeader)?;
                let u: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError::BadLine { line_no, reason: "bad u".into() })?;
                let v: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError::BadLine { line_no, reason: "bad v".into() })?;
                let w: u64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError::BadLine { line_no, reason: "bad w".into() })?;
                b.add_edge(u, v, w);
                found_m += 1;
            }
            Some(other) => {
                return Err(ParseError::BadLine {
                    line_no,
                    reason: format!("unknown record '{other}'"),
                })
            }
            None => {}
        }
    }
    let b = builder.ok_or(ParseError::MissingHeader)?;
    if declared_m != found_m {
        return Err(ParseError::EdgeCountMismatch { declared: declared_m, found: found_m });
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::gnm_connected(12, 20, 9, &mut rng);
        let text = write_graph(&g);
        let g2 = parse_graph(&text).unwrap();
        assert_eq!(g.n(), g2.n());
        assert_eq!(g.m(), g2.m());
        assert_eq!(g.total_weight(), g2.total_weight());
        assert_eq!(g.edges(), g2.edges());
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "c hello\n\np 3 2\ne 0 1 4\nc mid comment\ne 1 2 6\n";
        let g = parse_graph(text).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
        assert_eq!(g.total_weight(), 10);
    }

    #[test]
    fn missing_header_rejected() {
        assert!(matches!(parse_graph("e 0 1 2\n"), Err(ParseError::MissingHeader)));
    }

    #[test]
    fn count_mismatch_rejected() {
        let err = parse_graph("p 3 5\ne 0 1 2\n").unwrap_err();
        assert!(matches!(err, ParseError::EdgeCountMismatch { declared: 5, found: 1 }));
    }

    #[test]
    fn bad_line_reported_with_number() {
        let err = parse_graph("p 3 1\ne 0 x 2\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine { line_no: 2, .. }));
    }
}
