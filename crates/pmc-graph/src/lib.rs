//! Weighted undirected graphs and sequential min-cut baselines.
//!
//! This crate is the graph substrate for the parallel minimum-cut
//! reproduction of López-Martínez, Mukhopadhyay and Nanongkai
//! (SPAA 2021). It provides:
//!
//! * [`Graph`]: an immutable weighted undirected graph stored both as an
//!   edge list (what the cut-query structures consume) and as a CSR
//!   adjacency (what traversals consume),
//! * [`generators`]: deterministic, seedable workload generators used by
//!   the test-suite and the experiment harness (random multigraphs,
//!   planted-cut communities, grids, hypercubes, cliques, ...),
//! * [`stoer_wagner`]: the classic deterministic `O(n^3)` global
//!   minimum-cut algorithm, used as the correctness oracle,
//! * [`karger_stein`]: randomized recursive contraction, the classic
//!   Monte-Carlo baseline occupying the "old world" row of comparisons,
//! * [`matula`]: Matula's sequential `(2+ε)`-approximation ([Mat93],
//!   the paper's §1 reference point for approximation),
//! * [`io`]: a small DIMACS-like text format for graph exchange.
//!
//! All cut values are `u64`; the library assumes the total weight of the
//! graph fits in `u64` (checked by [`GraphBuilder::build`]).

pub mod generators;
pub mod graph;
pub mod io;
pub mod karger_stein;
pub mod matula;
pub mod stoer_wagner;

pub use graph::{cut_of_partition, Edge, Graph, GraphBuilder, VertexId};
pub use karger_stein::karger_stein_mincut;
pub use matula::matula_approx;
pub use stoer_wagner::stoer_wagner_mincut;

/// Convenience result bundle for algorithms that report a cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutResult {
    /// Total weight of edges crossing the cut.
    pub value: u64,
    /// One side of the vertex partition (the side not containing vertex
    /// 0 whenever the algorithm can normalize it; not all can).
    pub side: Vec<VertexId>,
}

impl CutResult {
    /// A "no cut found" placeholder with infinite value.
    pub fn infinite() -> Self {
        CutResult { value: u64::MAX, side: Vec::new() }
    }

    /// Keep the smaller of two cuts.
    pub fn min(self, other: CutResult) -> CutResult {
        if self.value <= other.value {
            self
        } else {
            other
        }
    }
}
