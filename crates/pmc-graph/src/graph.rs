//! Core graph representation.
//!
//! [`Graph`] is immutable after construction: the min-cut pipeline never
//! mutates its input, it derives sampled/sparsified copies instead. The
//! representation keeps the original edge list (cut queries are
//! edge-centric) plus a CSR adjacency (traversals are vertex-centric).

use serde::{Deserialize, Serialize};

/// Vertex identifier. Graphs in this workspace are bounded by `u32`
/// vertices; indices are widened to `usize` at use sites.
pub type VertexId = u32;

/// A weighted undirected edge. Parallel edges are allowed (the paper
/// switches freely between weighted graphs and unweighted multigraphs);
/// self-loops are not (they never cross a cut).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    pub u: VertexId,
    pub v: VertexId,
    pub w: u64,
}

impl Edge {
    pub fn new(u: VertexId, v: VertexId, w: u64) -> Self {
        Edge { u, v, w }
    }

    /// The endpoint different from `x`. Panics if `x` is not an endpoint.
    pub fn other(&self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else {
            debug_assert_eq!(x, self.v);
            self.u
        }
    }
}

/// Immutable weighted undirected graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
    /// CSR offsets: `adj[adj_offsets[v]..adj_offsets[v+1]]` are the
    /// incident half-edges of `v`.
    adj_offsets: Vec<u32>,
    /// Half-edges: `(neighbor, edge index)`.
    adj: Vec<(VertexId, u32)>,
    total_weight: u64,
}

impl Graph {
    /// Build a graph from an edge list. Self-loops are dropped;
    /// zero-weight edges are dropped; parallel edges are kept.
    ///
    /// Panics if an endpoint is out of range or the total weight
    /// overflows `u64`.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (VertexId, VertexId, u64)>) -> Self {
        let mut b = GraphBuilder::new(n);
        for (u, v, w) in edges {
            b.add_edge(u, v, w);
        }
        b.build()
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of (weighted) edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Sum of all edge weights.
    #[inline]
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// The edge list.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edge by index.
    #[inline]
    pub fn edge(&self, i: usize) -> Edge {
        self.edges[i]
    }

    /// Incident half-edges of `v` as `(neighbor, edge index)` pairs.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[(VertexId, u32)] {
        let lo = self.adj_offsets[v as usize] as usize;
        let hi = self.adj_offsets[v as usize + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Unweighted degree (number of incident edges, counting parallels).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }

    /// Weighted degree of `v`: the value of the singleton cut `{v}`.
    pub fn weighted_degree(&self, v: VertexId) -> u64 {
        self.neighbors(v).iter().map(|&(_, e)| self.edges[e as usize].w).sum()
    }

    /// Minimum weighted degree: a cheap upper bound on the min-cut.
    pub fn min_weighted_degree(&self) -> u64 {
        (0..self.n as VertexId).map(|v| self.weighted_degree(v)).min().unwrap_or(0)
    }

    /// Vertex of minimum weighted degree together with its degree.
    pub fn min_weighted_degree_vertex(&self) -> (VertexId, u64) {
        (0..self.n as VertexId)
            .map(|v| (v, self.weighted_degree(v)))
            .min_by_key(|&(_, d)| d)
            .unwrap_or((0, 0))
    }

    /// Connected components as a label array (labels are component
    /// representatives, not necessarily consecutive).
    pub fn component_labels(&self) -> Vec<VertexId> {
        let mut label = vec![u32::MAX; self.n];
        let mut stack = Vec::new();
        for s in 0..self.n as VertexId {
            if label[s as usize] != u32::MAX {
                continue;
            }
            label[s as usize] = s;
            stack.push(s);
            while let Some(v) = stack.pop() {
                for &(u, _) in self.neighbors(v) {
                    if label[u as usize] == u32::MAX {
                        label[u as usize] = s;
                        stack.push(u);
                    }
                }
            }
        }
        label
    }

    /// Whether the graph is connected (the empty graph is connected).
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let labels = self.component_labels();
        labels.iter().all(|&l| l == labels[0])
    }

    /// Number of connected components.
    pub fn num_components(&self) -> usize {
        let labels = self.component_labels();
        let mut ls: Vec<_> = labels.to_vec();
        ls.sort_unstable();
        ls.dedup();
        ls.len()
    }

    /// Merge parallel edges, summing weights. The result is a simple
    /// weighted graph with the same cut structure, edges sorted by
    /// normalized endpoint pair.
    ///
    /// Sort-and-merge over packed `(min << 32) | max` keys: two flat
    /// buffer passes instead of a hash map, so the merge is a sort of
    /// `m` machine words plus one linear scan.
    pub fn coalesced(&self) -> Graph {
        let mut keyed: Vec<(u64, u64)> = self
            .edges
            .iter()
            .map(|e| {
                let (a, b) = if e.u < e.v { (e.u, e.v) } else { (e.v, e.u) };
                (((a as u64) << 32) | b as u64, e.w)
            })
            .collect();
        keyed.sort_unstable_by_key(|&(k, _)| k);
        let mut list: Vec<(VertexId, VertexId, u64)> = Vec::with_capacity(keyed.len());
        for (k, w) in keyed {
            match list.last_mut() {
                Some(last) if (((last.0 as u64) << 32) | last.1 as u64) == k => last.2 += w,
                _ => list.push(((k >> 32) as VertexId, k as VertexId, w)),
            }
        }
        Graph::from_edges(self.n, list)
    }
}

/// Incremental builder for [`Graph`].
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    pub fn new(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "vertex count exceeds u32 range");
        GraphBuilder { n, edges: Vec::new() }
    }

    /// Add an undirected edge. Self-loops and zero weights are ignored.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: u64) -> &mut Self {
        assert!((u as usize) < self.n && (v as usize) < self.n, "endpoint out of range");
        if u != v && w > 0 {
            self.edges.push(Edge::new(u, v, w));
        }
        self
    }

    pub fn reserve(&mut self, additional: usize) {
        self.edges.reserve(additional);
    }

    pub fn build(self) -> Graph {
        let n = self.n;
        let edges = self.edges;
        let mut total: u64 = 0;
        let mut deg = vec![0u32; n + 1];
        for e in &edges {
            total = total.checked_add(e.w).expect("total graph weight overflows u64");
            deg[e.u as usize + 1] += 1;
            deg[e.v as usize + 1] += 1;
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let adj_offsets = deg.clone();
        let mut cursor = deg;
        let mut adj = vec![(0u32, 0u32); edges.len() * 2];
        for (i, e) in edges.iter().enumerate() {
            adj[cursor[e.u as usize] as usize] = (e.v, i as u32);
            cursor[e.u as usize] += 1;
            adj[cursor[e.v as usize] as usize] = (e.u, i as u32);
            cursor[e.v as usize] += 1;
        }
        Graph { n, edges, adj_offsets, adj, total_weight: total }
    }
}

/// Value of the cut induced by a boolean vertex partition.
///
/// `side[v]` says which side vertex `v` is on. Returns the total weight
/// of edges with endpoints on different sides. Panics if `side.len()`
/// differs from `g.n()`.
pub fn cut_of_partition(g: &Graph, side: &[bool]) -> u64 {
    assert_eq!(side.len(), g.n());
    g.edges()
        .iter()
        .filter(|e| side[e.u as usize] != side[e.v as usize])
        .map(|e| e.w)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, [(0, 1, 5), (1, 2, 7), (0, 2, 11)])
    }

    #[test]
    fn builds_csr() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.total_weight(), 23);
        assert_eq!(g.degree(1), 2);
        let mut nbrs: Vec<_> = g.neighbors(0).iter().map(|&(v, _)| v).collect();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![1, 2]);
    }

    #[test]
    fn drops_self_loops_and_zero_weights() {
        let g = Graph::from_edges(3, [(0, 0, 5), (0, 1, 0), (1, 2, 3)]);
        assert_eq!(g.m(), 1);
        assert_eq!(g.total_weight(), 3);
    }

    #[test]
    fn weighted_degrees() {
        let g = triangle();
        assert_eq!(g.weighted_degree(0), 16);
        assert_eq!(g.weighted_degree(1), 12);
        assert_eq!(g.weighted_degree(2), 18);
        assert_eq!(g.min_weighted_degree(), 12);
        assert_eq!(g.min_weighted_degree_vertex(), (1, 12));
    }

    #[test]
    fn connectivity() {
        let g = triangle();
        assert!(g.is_connected());
        let g2 = Graph::from_edges(4, [(0, 1, 1), (2, 3, 1)]);
        assert!(!g2.is_connected());
        assert_eq!(g2.num_components(), 2);
        let empty = Graph::from_edges(0, []);
        assert!(empty.is_connected());
    }

    #[test]
    fn partition_cut_value() {
        let g = triangle();
        assert_eq!(cut_of_partition(&g, &[true, false, false]), 16);
        assert_eq!(cut_of_partition(&g, &[true, true, false]), 18);
        assert_eq!(cut_of_partition(&g, &[true, true, true]), 0);
    }

    #[test]
    fn coalesce_merges_parallels() {
        let g = Graph::from_edges(3, [(0, 1, 2), (1, 0, 3), (1, 2, 4)]);
        let c = g.coalesced();
        assert_eq!(c.m(), 2);
        assert_eq!(c.total_weight(), 9);
        let w01: u64 = c
            .edges()
            .iter()
            .filter(|e| (e.u.min(e.v), e.u.max(e.v)) == (0, 1))
            .map(|e| e.w)
            .sum();
        assert_eq!(w01, 5);
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(3, 7, 1);
        assert_eq!(e.other(3), 7);
        assert_eq!(e.other(7), 3);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range() {
        Graph::from_edges(2, [(0, 5, 1)]);
    }
}
