//! Karger–Stein randomized recursive contraction.
//!
//! The classic `O(n^2 log^3 n)` Monte-Carlo minimum-cut algorithm. It
//! predates the tree-packing line of work the paper builds on and plays
//! the role of the "pre-Karger'00" baseline in the comparison
//! experiments. Contractions operate on a dense weight matrix; edges
//! are picked with probability proportional to weight.

use crate::graph::{Graph, VertexId};
use crate::CutResult;
use rand::Rng;

struct Contracted {
    /// Dense symmetric weight matrix over active super-vertices.
    w: Vec<Vec<u64>>,
    /// Original vertices merged into each super-vertex.
    merged: Vec<Vec<VertexId>>,
    /// Active super-vertex indices.
    active: Vec<usize>,
    /// Total remaining weight (sum over active unordered pairs).
    total: u64,
}

impl Contracted {
    fn from_graph(g: &Graph) -> Self {
        let n = g.n();
        let mut w = vec![vec![0u64; n]; n];
        for e in g.edges() {
            w[e.u as usize][e.v as usize] += e.w;
            w[e.v as usize][e.u as usize] += e.w;
        }
        Contracted {
            w,
            merged: (0..n as VertexId).map(|v| vec![v]).collect(),
            active: (0..n).collect(),
            total: g.total_weight(),
        }
    }

    fn clone_state(&self) -> Self {
        Contracted {
            w: self.w.clone(),
            merged: self.merged.clone(),
            active: self.active.clone(),
            total: self.total,
        }
    }

    fn k(&self) -> usize {
        self.active.len()
    }

    /// Contract a weight-proportional random edge. No-op (returns false)
    /// if no weight remains (disconnected remainder).
    fn contract_random(&mut self, rng: &mut impl Rng) -> bool {
        if self.total == 0 {
            return false;
        }
        let mut target = rng.random_range(0..self.total);
        let (mut a, mut b) = (usize::MAX, usize::MAX);
        'outer: for (i, &u) in self.active.iter().enumerate() {
            for &v in &self.active[i + 1..] {
                let wt = self.w[u][v];
                if target < wt {
                    a = u;
                    b = v;
                    break 'outer;
                }
                target -= wt;
            }
        }
        debug_assert!(a != usize::MAX);
        self.contract_pair(a, b);
        true
    }

    /// Merge super-vertex `b` into `a`.
    fn contract_pair(&mut self, a: usize, b: usize) {
        self.total -= self.w[a][b];
        self.w[a][b] = 0;
        self.w[b][a] = 0;
        let bm = std::mem::take(&mut self.merged[b]);
        self.merged[a].extend(bm);
        let others: Vec<usize> =
            self.active.iter().copied().filter(|&v| v != a && v != b).collect();
        for v in others {
            self.w[a][v] += self.w[b][v];
            self.w[v][a] = self.w[a][v];
            self.w[b][v] = 0;
            self.w[v][b] = 0;
        }
        self.active.retain(|&v| v != b);
    }

    /// Contract until `t` super-vertices remain.
    fn contract_to(&mut self, t: usize, rng: &mut impl Rng) {
        while self.k() > t {
            if !self.contract_random(rng) {
                // Disconnected residue: any two non-adjacent supernodes
                // witness a zero cut; merge arbitrarily.
                let a = self.active[0];
                let b = self.active[1];
                self.contract_pair(a, b);
            }
        }
    }

    /// Cut value when exactly 2 super-vertices remain.
    fn final_cut(&self) -> CutResult {
        debug_assert_eq!(self.k(), 2);
        let a = self.active[0];
        let b = self.active[1];
        let mut side = self.merged[a].clone();
        side.sort_unstable();
        CutResult { value: self.w[a][b], side }
    }
}

fn recurse(state: &mut Contracted, rng: &mut impl Rng) -> CutResult {
    let k = state.k();
    if k <= 6 {
        state.contract_to(2, rng);
        return state.final_cut();
    }
    // t = ceil(1 + k / sqrt(2))
    let t = (1.0 + k as f64 / std::f64::consts::SQRT_2).ceil() as usize;
    let t = t.min(k - 1).max(2);
    state.contract_to(t, rng);
    let mut copy = state.clone_state();
    let c1 = recurse(state, rng);
    let c2 = recurse(&mut copy, rng);
    c1.min(c2)
}

/// Randomized minimum cut via recursive contraction.
///
/// A single invocation succeeds with probability `Ω(1/log n)`; `trials`
/// independent repetitions are taken and the best cut returned. With
/// `trials = Θ(log^2 n)` the result is correct w.h.p.
pub fn karger_stein_mincut(g: &Graph, trials: usize, rng: &mut impl Rng) -> CutResult {
    if g.n() < 2 {
        return CutResult::infinite();
    }
    if !g.is_connected() {
        let labels = g.component_labels();
        let side = (0..g.n() as VertexId).filter(|&v| labels[v as usize] == labels[0]).collect();
        return CutResult { value: 0, side };
    }
    let mut best = CutResult::infinite();
    for _ in 0..trials.max(1) {
        let mut state = Contracted::from_graph(g);
        let c = recurse(&mut state, rng);
        best = best.min(c);
    }
    best
}

/// Default number of trials for w.h.p. correctness.
pub fn default_trials(n: usize) -> usize {
    let ln = (n.max(2) as f64).ln();
    (ln * ln).ceil() as usize + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::cut_of_partition;
    use crate::stoer_wagner::stoer_wagner_mincut;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn agrees_with_stoer_wagner_on_structured() {
        let mut rng = StdRng::seed_from_u64(11);
        for g in [
            generators::dumbbell(5, 8, 2),
            generators::ring_of_cliques(4, 3, 6, 1),
            generators::grid(4, 4, 3),
            generators::complete(8, 2),
        ] {
            let sw = stoer_wagner_mincut(&g);
            let ks = karger_stein_mincut(&g, default_trials(g.n()), &mut rng);
            assert_eq!(ks.value, sw.value);
        }
    }

    #[test]
    fn agrees_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(12);
        for n in [6, 10, 15, 22] {
            let g = generators::gnm_connected(n, 3 * n, 9, &mut rng);
            let sw = stoer_wagner_mincut(&g);
            let ks = karger_stein_mincut(&g, default_trials(n) * 2, &mut rng);
            assert_eq!(ks.value, sw.value, "n={n}");
        }
    }

    #[test]
    fn reported_side_realizes_value() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = generators::gnm_connected(12, 30, 5, &mut rng);
        let ks = karger_stein_mincut(&g, default_trials(12), &mut rng);
        let mut side = vec![false; g.n()];
        for &v in &ks.side {
            side[v as usize] = true;
        }
        assert_eq!(cut_of_partition(&g, &side), ks.value);
    }

    #[test]
    fn never_below_true_minimum() {
        // Any output is a real cut, hence an upper bound that can never
        // undershoot the true minimum even with one trial.
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..10 {
            let g = generators::gnm_connected(10, 20, 4, &mut rng);
            let sw = stoer_wagner_mincut(&g);
            let ks = karger_stein_mincut(&g, 1, &mut rng);
            assert!(ks.value >= sw.value);
        }
    }

    #[test]
    fn disconnected_zero_cut() {
        let g = Graph::from_edges(5, [(0, 1, 2), (1, 2, 2), (3, 4, 2)]);
        let mut rng = StdRng::seed_from_u64(15);
        let ks = karger_stein_mincut(&g, 3, &mut rng);
        assert_eq!(ks.value, 0);
    }
}
