//! Matula's `(2+ε)`-approximation of the minimum cut ([Mat93]).
//!
//! The sequential approximation the paper contrasts with in §1 ("a
//! linear-time (2+ε)-approximation algorithm was known in the
//! sequential setting"). The weighted variant implemented here follows
//! the classic structure: maintain an upper bound `β` (minimum weighted
//! degree of the current contraction), pick the threshold
//! `k = ⌊β/(2+ε)⌋ + 1`, run one maximum-adjacency scan and contract
//! every pair that is `k`-connected; repeat until one vertex remains.
//!
//! Correctness of the band `λ ≤ β ≤ (2+ε)λ`:
//!
//! * `β ≥ λ` always — every bound is a vertex degree of a contraction
//!   of `G`, i.e. a genuine cut value;
//! * if `λ < k` the contractions are min-cut-preserving (both endpoints
//!   sit on the same side of every cut below `k`), so the scan keeps
//!   making progress towards `λ`;
//! * if `λ ≥ k` then `β ≤ (2+ε)λ` already holds and later (possibly
//!   cut-destroying) contractions cannot invalidate the claim.
//!
//! When a scan produces no `k`-connected pair, the final two vertices
//! of the maximum-adjacency order are contracted instead (the
//! Stoer–Wagner phase step, whose phase cut is the degree bound already
//! taken), guaranteeing at most `n - 1` rounds.

use crate::graph::{Graph, GraphBuilder};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Matula-style `(2+ε)`-approximation; returns a value in
/// `[λ, (2+ε)λ]`. Requires a connected graph with at least 2 vertices.
/// # Example
///
/// ```
/// use pmc_graph::{generators, matula_approx};
///
/// let g = generators::dumbbell(8, 10, 4); // min cut 4 (the bridge)
/// let approx = matula_approx(&g, 0.25);
/// assert!(approx >= 4 && approx as f64 <= 2.25 * 4.0);
/// ```
pub fn matula_approx(g: &Graph, eps: f64) -> u64 {
    assert!(eps > 0.0, "eps must be positive");
    assert!(g.n() >= 2, "need at least two vertices");
    assert!(g.is_connected(), "matula_approx requires a connected graph");
    let mut h = g.coalesced();
    let mut bound = u64::MAX;
    while h.n() >= 2 {
        bound = bound.min(h.min_weighted_degree());
        if bound == 0 {
            return 0;
        }
        let k = (bound as f64 / (2.0 + eps)).floor() as u64 + 1;
        h = contract_round(&h, k);
    }
    bound
}

/// One maximum-adjacency scan over `h`: contract every pair observed to
/// be `k`-connected, or the final phase pair if none.
fn contract_round(h: &Graph, k: u64) -> Graph {
    let n = h.n();
    let mut r = vec![0u64; n];
    let mut scanned = vec![false; n];
    let mut heap: BinaryHeap<(u64, Reverse<u32>)> = BinaryHeap::with_capacity(n);
    heap.push((0, Reverse(0)));
    // Union labels for this round's contraction.
    let mut label: Vec<u32> = (0..n as u32).collect();
    fn find(label: &mut [u32], mut x: u32) -> u32 {
        while label[x as usize] != x {
            let p = label[x as usize];
            label[x as usize] = label[p as usize];
            x = p;
        }
        x
    }
    let mut merges = 0usize;
    let mut order: Vec<u32> = Vec::with_capacity(n);
    while let Some((key, Reverse(u))) = heap.pop() {
        if scanned[u as usize] || key != r[u as usize] {
            continue;
        }
        scanned[u as usize] = true;
        order.push(u);
        for &(v, ei) in h.neighbors(u) {
            if scanned[v as usize] {
                continue;
            }
            if r[v as usize] >= k {
                // u and v are k-connected: safe to contract when λ < k.
                let (ru, rv) = (find(&mut label, u), find(&mut label, v));
                if ru != rv {
                    label[rv as usize] = ru;
                    merges += 1;
                }
            }
            r[v as usize] += h.edge(ei as usize).w;
            heap.push((r[v as usize], Reverse(v)));
        }
    }
    debug_assert_eq!(order.len(), n, "scan must reach every vertex of a connected graph");
    if merges == 0 {
        // Stoer–Wagner phase fallback: contract the last two vertices of
        // the MA order.
        let last = order[n - 1];
        let prev = order[n - 2];
        let (rl, rp) = (find(&mut label, last), find(&mut label, prev));
        if rl != rp {
            label[rl as usize] = rp;
        }
    }
    // Rebuild the contracted graph with compacted labels.
    let mut remap = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        let root = find(&mut label, v);
        if remap[root as usize] == u32::MAX {
            remap[root as usize] = next;
            next += 1;
        }
    }
    let mut b = GraphBuilder::new(next as usize);
    for e in h.edges() {
        let (ru, rv) = (find(&mut label, e.u), find(&mut label, e.v));
        let (cu, cv) = (remap[ru as usize], remap[rv as usize]);
        if cu != cv {
            b.add_edge(cu, cv, e.w);
        }
    }
    b.build().coalesced()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::stoer_wagner::stoer_wagner_mincut;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_band(g: &Graph, eps: f64, label: &str) {
        let lambda = stoer_wagner_mincut(g).value;
        let approx = matula_approx(g, eps);
        assert!(approx >= lambda, "{label}: approx {approx} below λ {lambda}");
        let cap = ((2.0 + eps) * lambda as f64).ceil() as u64;
        assert!(approx <= cap, "{label}: approx {approx} above (2+ε)λ = {cap}");
    }

    #[test]
    fn structured_graphs_in_band() {
        for eps in [0.1, 0.5, 1.0] {
            check_band(&generators::dumbbell(6, 8, 3), eps, "dumbbell");
            check_band(&generators::ring_of_cliques(4, 4, 6, 2), eps, "ring");
            check_band(&generators::grid(5, 5, 3), eps, "grid");
            check_band(&generators::complete(10, 2), eps, "complete");
            check_band(&generators::cycle(17, 4), eps, "cycle");
        }
    }

    #[test]
    fn random_graphs_in_band() {
        let mut rng = StdRng::seed_from_u64(91);
        for trial in 0..15 {
            let n = 8 + trial;
            let g = generators::gnm_connected(n, 3 * n, 9, &mut rng);
            check_band(&g, 0.25, &format!("trial {trial}"));
        }
    }

    #[test]
    fn weighted_graphs_in_band() {
        let mut rng = StdRng::seed_from_u64(92);
        for trial in 0..8 {
            let g = generators::gnm_connected(15, 50, 5000, &mut rng);
            check_band(&g, 0.5, &format!("weighted {trial}"));
        }
    }

    #[test]
    fn often_much_better_than_guarantee() {
        // On bridge-dominated graphs the min degree of a late
        // contraction equals λ exactly.
        let g = generators::dumbbell(8, 10, 4);
        assert_eq!(matula_approx(&g, 0.1), 4);
    }

    #[test]
    fn two_vertices() {
        let g = Graph::from_edges(2, [(0, 1, 42)]);
        assert_eq!(matula_approx(&g, 0.3), 42);
    }

    #[test]
    #[should_panic]
    fn disconnected_rejected() {
        let g = Graph::from_edges(4, [(0, 1, 1), (2, 3, 1)]);
        matula_approx(&g, 0.3);
    }
}
