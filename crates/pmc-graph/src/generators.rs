//! Deterministic, seedable workload generators.
//!
//! Every generator takes an explicit `&mut impl Rng` so tests and
//! benchmarks are reproducible. The families mirror the workloads the
//! paper's analysis distinguishes: *non-sparse* random graphs
//! (`m = n^{1+Ω(1)}`, the regime where the algorithm is work-optimal),
//! sparse graphs (where [AB21] wins), and structured graphs with known
//! minimum cuts for correctness checks.

use crate::graph::{Graph, GraphBuilder, VertexId};
use rand::Rng;

/// Random multigraph with exactly `m` edges drawn uniformly from all
/// unordered vertex pairs (parallel edges allowed, self-loops resampled)
/// and weights uniform in `1..=max_w`.
pub fn gnm_multi(n: usize, m: usize, max_w: u64, rng: &mut impl Rng) -> Graph {
    assert!(n >= 2, "gnm_multi needs at least two vertices");
    let mut b = GraphBuilder::new(n);
    b.reserve(m);
    for _ in 0..m {
        let u = rng.random_range(0..n as VertexId);
        let mut v = rng.random_range(0..n as VertexId);
        while v == u {
            v = rng.random_range(0..n as VertexId);
        }
        b.add_edge(u, v, rng.random_range(1..=max_w));
    }
    b.build()
}

/// Random *connected* weighted multigraph: a random spanning tree plus
/// `extra` uniform random edges. This is the standard workload of the
/// scaling experiments (connectivity is required by min-cut > 0).
pub fn gnm_connected(n: usize, extra: usize, max_w: u64, rng: &mut impl Rng) -> Graph {
    assert!(n >= 2);
    let mut b = GraphBuilder::new(n);
    b.reserve(n - 1 + extra);
    // Random attachment tree: vertex i attaches to a uniform earlier vertex.
    for i in 1..n as VertexId {
        let p = rng.random_range(0..i);
        b.add_edge(i, p, rng.random_range(1..=max_w));
    }
    for _ in 0..extra {
        let u = rng.random_range(0..n as VertexId);
        let mut v = rng.random_range(0..n as VertexId);
        while v == u {
            v = rng.random_range(0..n as VertexId);
        }
        b.add_edge(u, v, rng.random_range(1..=max_w));
    }
    b.build()
}

/// Two dense random communities of `n/2` vertices each, internally wired
/// with `inner_edges` random edges of weight in `1..=max_w_in` per side,
/// joined by exactly `bridge_edges` cross edges of weight `bridge_w`.
///
/// When the communities are sufficiently dense the minimum cut is the
/// planted bridge, of value `bridge_edges * bridge_w`; callers verify
/// against [`crate::stoer_wagner_mincut`] in tests.
pub fn planted_bisection(
    n: usize,
    inner_edges: usize,
    bridge_edges: usize,
    max_w_in: u64,
    bridge_w: u64,
    rng: &mut impl Rng,
) -> Graph {
    assert!(n >= 4, "need at least two vertices per side");
    let half = n / 2;
    let mut b = GraphBuilder::new(n);
    for (lo, hi) in [(0usize, half), (half, n)] {
        let size = hi - lo;
        // Spanning path to guarantee internal connectivity.
        for i in lo + 1..hi {
            b.add_edge((i - 1) as VertexId, i as VertexId, max_w_in);
        }
        for _ in 0..inner_edges.saturating_sub(size - 1) {
            let u = rng.random_range(lo..hi) as VertexId;
            let mut v = rng.random_range(lo..hi) as VertexId;
            while v == u {
                v = rng.random_range(lo..hi) as VertexId;
            }
            b.add_edge(u, v, rng.random_range(1..=max_w_in));
        }
    }
    for _ in 0..bridge_edges {
        let u = rng.random_range(0..half) as VertexId;
        let v = rng.random_range(half..n) as VertexId;
        b.add_edge(u, v, bridge_w);
    }
    b.build()
}

/// Two complete graphs (cliques) of size `s` with uniform internal edge
/// weight `w_in`, connected by a single bridge of weight `w_bridge`.
/// Minimum cut is exactly `w_bridge` whenever `w_bridge < w_in * (s-1)`.
pub fn dumbbell(s: usize, w_in: u64, w_bridge: u64) -> Graph {
    assert!(s >= 2);
    let n = 2 * s;
    let mut b = GraphBuilder::new(n);
    for base in [0, s] {
        for i in 0..s {
            for j in i + 1..s {
                b.add_edge((base + i) as VertexId, (base + j) as VertexId, w_in);
            }
        }
    }
    b.add_edge(0, s as VertexId, w_bridge);
    b.build()
}

/// `k` cliques of size `s` arranged in a ring, adjacent cliques joined by
/// one edge of weight `w_bridge`. Minimum cut is `2 * w_bridge` (cut two
/// ring bridges) whenever that is below the clique connectivity.
pub fn ring_of_cliques(k: usize, s: usize, w_in: u64, w_bridge: u64) -> Graph {
    assert!(k >= 3 && s >= 2);
    let n = k * s;
    let mut b = GraphBuilder::new(n);
    for c in 0..k {
        let base = c * s;
        for i in 0..s {
            for j in i + 1..s {
                b.add_edge((base + i) as VertexId, (base + j) as VertexId, w_in);
            }
        }
        let next = ((c + 1) % k) * s;
        b.add_edge(base as VertexId, next as VertexId, w_bridge);
    }
    b.build()
}

/// `rows x cols` grid with uniform edge weight `w`. For
/// `rows, cols >= 2` the minimum cut isolates a corner: value `2w`.
pub fn grid(rows: usize, cols: usize, w: u64) -> Graph {
    assert!(rows >= 1 && cols >= 1);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c), w);
            }
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1), w);
            }
        }
    }
    b.build()
}

/// `d`-dimensional hypercube (2^d vertices) with uniform weight `w`.
/// Minimum cut isolates a vertex: value `d * w`.
pub fn hypercube(d: usize, w: u64) -> Graph {
    assert!((1..30).contains(&d));
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if v < u {
                b.add_edge(v as VertexId, u as VertexId, w);
            }
        }
    }
    b.build()
}

/// Complete graph on `n` vertices, uniform weight `w`.
/// Minimum cut isolates any vertex: value `(n-1) * w`.
pub fn complete(n: usize, w: u64) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in i + 1..n {
            b.add_edge(i as VertexId, j as VertexId, w);
        }
    }
    b.build()
}

/// Simple cycle on `n` vertices; minimum cut is `2 * w` for `n >= 3`.
pub fn cycle(n: usize, w: u64) -> Graph {
    assert!(n >= 3);
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i as VertexId, ((i + 1) % n) as VertexId, w);
    }
    b.build()
}

/// Path on `n` vertices; minimum cut is the lightest edge.
pub fn path(n: usize, w: u64) -> Graph {
    assert!(n >= 2);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge((i - 1) as VertexId, i as VertexId, w);
    }
    b.build()
}

/// Star with `n-1` leaves; minimum cut is the lightest spoke.
pub fn star(n: usize, w: u64) -> Graph {
    assert!(n >= 2);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(0, i as VertexId, w);
    }
    b.build()
}

/// A weighted graph whose minimum cut is large (useful for exercising
/// the sampling hierarchy, which only activates for min-cut `≫ log n`):
/// a cycle with heavy edges plus random chords.
pub fn heavy_cycle_with_chords(
    n: usize,
    chords: usize,
    cycle_w: u64,
    max_chord_w: u64,
    rng: &mut impl Rng,
) -> Graph {
    assert!(n >= 3);
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i as VertexId, ((i + 1) % n) as VertexId, cycle_w);
    }
    for _ in 0..chords {
        let u = rng.random_range(0..n as VertexId);
        let mut v = rng.random_range(0..n as VertexId);
        while v == u {
            v = rng.random_range(0..n as VertexId);
        }
        b.add_edge(u, v, rng.random_range(1..=max_chord_w));
    }
    b.build()
}

/// The "fishbone" workload: a spine `v_0 → v_1 → … → v_levels` where
/// every spine vertex also hangs a comb path *longer* than the
/// remaining spine, so each spine edge is a light edge whose lower
/// endpoint heads a fresh heavy chain. A heavy chord `(v_0, v_levels)`
/// of weight `chord_w` covers the whole spine, making every spine
/// edge's interesting path span all the others.
///
/// This is the adversarial input for heavy-path interest descent: an
/// arm crosses `Θ(levels)` heavy chains and each crossing pays a
/// binary search, i.e. `Θ(levels²)` cut queries per edge, while
/// centroid descent stays `O(levels)` — the gap the complexity
/// regression suite meters. `n = 3·2^levels − 2`.
///
/// Returns the graph, the parent array of the intended spanning tree
/// (rooted at `v_0 = 0`), and the spine vertex ids.
pub fn fishbone(levels: usize, chord_w: u64) -> (Graph, Vec<VertexId>, Vec<VertexId>) {
    assert!(levels >= 1);
    // Subtree sizes below each spine vertex, bottom-up:
    // sz(levels) = 1 and sz(i) = 2·sz(i+1) + 2, so the comb at v_i
    // (length sz(i+1) + 1) strictly outweighs the remaining spine.
    let mut sz = vec![1u32; levels + 1];
    for i in (0..levels).rev() {
        sz[i] = 2 * sz[i + 1] + 2;
    }
    let n = sz[0] as usize;
    let spine: Vec<VertexId> = (0..=levels as VertexId).collect();
    let mut parent: Vec<VertexId> = vec![0; n];
    for (i, p) in parent.iter_mut().enumerate().take(levels + 1).skip(1) {
        *p = (i - 1) as VertexId;
    }
    let mut next = levels + 1;
    let mut b = GraphBuilder::new(n);
    for i in 0..levels {
        // Comb hanging off v_i: a path of sz(i+1) + 1 vertices.
        let mut prev = i as VertexId;
        for _ in 0..sz[i + 1] + 1 {
            parent[next] = prev;
            prev = next as VertexId;
            next += 1;
        }
    }
    assert_eq!(next, n);
    for (v, &p) in parent.iter().enumerate().skip(1) {
        b.add_edge(p, v as VertexId, 1);
    }
    b.add_edge(0, levels as VertexId, chord_w);
    (b.build(), parent, spine)
}

/// Dense random graph in the `m = n^{1+alpha}` regime the paper calls
/// non-sparse: `m = ceil(n^(1+alpha))` random edges over a random
/// spanning tree.
pub fn non_sparse(n: usize, alpha: f64, max_w: u64, rng: &mut impl Rng) -> Graph {
    let m = (n as f64).powf(1.0 + alpha).ceil() as usize;
    gnm_connected(n, m.saturating_sub(n - 1), max_w, rng)
}

/// Power-law community graph: `communities` contiguous vertex blocks,
/// each grown by preferential attachment (every new vertex adds `k`
/// edges whose targets are drawn degree-proportionally from its block),
/// then consecutive blocks joined into a ring by single bridge edges.
///
/// Degree-proportional sampling uses the classic endpoint-list trick —
/// every edge pushes both endpoints onto a list and targets are drawn
/// uniformly from it — so hubs emerge with a heavy-tailed degree
/// profile. With `k ≈ n^alpha` per vertex this sits in the paper's
/// non-sparse regime (`m = Θ(k·n)`) while looking nothing like a
/// uniform G(n, m): cuts around hubs are expensive, cuts along the
/// ring bridges are cheap, which exercises the solver's interest
/// search far from the uniform workloads. Connected by construction
/// (attachment within blocks, bridges across).
pub fn power_law_community(
    n: usize,
    communities: usize,
    k: usize,
    max_w: u64,
    rng: &mut impl Rng,
) -> Graph {
    assert!(n >= 2 && k >= 1);
    // Each block needs at least 2 vertices for attachment to make sense.
    let communities = communities.clamp(1, n / 2);
    let mut b = GraphBuilder::new(n);
    b.reserve(n * k + communities);
    let base = n / communities;
    let start = |c: usize| if c == communities { n } else { c * base };
    let mut endpoints: Vec<VertexId> = Vec::new();
    for c in 0..communities {
        let (lo, hi) = (start(c), start(c + 1));
        endpoints.clear();
        endpoints.push(lo as VertexId);
        for v in lo + 1..hi {
            // Targets are earlier block vertices only, so no self-loops.
            for _ in 0..k {
                let t = endpoints[rng.random_range(0..endpoints.len())];
                b.add_edge(v as VertexId, t, rng.random_range(1..=max_w));
                endpoints.push(t);
                endpoints.push(v as VertexId);
            }
        }
    }
    if communities > 1 {
        for c in 0..communities {
            let u = start(c) as VertexId;
            let v = start((c + 1) % communities) as VertexId;
            b.add_edge(u, v, rng.random_range(1..=max_w));
        }
    }
    b.build()
}

/// Near-clique: the complete graph on `n` vertices with every non-path
/// edge independently *dropped* with probability `drop`, weights
/// uniform in `1..=max_w`. The Hamiltonian path `0–1–…–(n-1)` is always
/// kept, so the graph is connected for every `drop < 1`.
///
/// This is the extreme end of the paper's `m ≥ n^{1+ε}` regime
/// (`m = Θ(n²)`), where the work-optimality claim bites hardest: the
/// dense-graph benches use it to stress the 2-D range tree with the
/// fullest grids a given `n` can produce.
pub fn near_clique(n: usize, drop: f64, max_w: u64, rng: &mut impl Rng) -> Graph {
    assert!(n >= 2);
    assert!((0.0..1.0).contains(&drop), "drop must be in [0, 1)");
    let mut b = GraphBuilder::new(n);
    b.reserve(n * (n - 1) / 2);
    for u in 0..n {
        for v in u + 1..n {
            let backbone = v == u + 1;
            if !backbone && rng.random::<f64>() < drop {
                continue;
            }
            b.add_edge(u as VertexId, v as VertexId, rng.random_range(1..=max_w));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fishbone_structure() {
        let levels = 6;
        let (g, parent, spine) = fishbone(levels, 8);
        let n = 3 * (1 << levels) - 2;
        assert_eq!(g.n(), n);
        assert_eq!(g.m(), n); // n-1 tree edges + the chord
        assert_eq!(spine.len(), levels + 1);
        // Subtree sizes from the parent array (children have larger
        // ids, so one reverse sweep suffices).
        let mut size = vec![1u32; n];
        for v in (1..n).rev() {
            let s = size[v];
            size[parent[v] as usize] += s;
        }
        // Each comb outweighs the remaining spine: the spine edge is
        // light at every step, which is what makes heavy-path descent
        // cross a fresh chain per level.
        for i in 0..levels {
            let comb_head = g
                .edges()
                .iter()
                .filter(|e| e.u == i as VertexId && e.v > levels as VertexId)
                .map(|e| e.v)
                .next()
                .expect("comb head");
            assert!(
                size[comb_head as usize] > size[i + 1],
                "comb at spine {i} must be the heavy child"
            );
        }
    }

    #[test]
    fn gnm_multi_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gnm_multi(10, 40, 5, &mut rng);
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 40);
        assert!(g.edges().iter().all(|e| e.u != e.v && e.w >= 1 && e.w <= 5));
    }

    #[test]
    fn gnm_connected_is_connected() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [2, 3, 10, 57] {
            let g = gnm_connected(n, 5, 9, &mut rng);
            assert!(g.is_connected(), "n={n}");
            assert_eq!(g.m(), n - 1 + 5);
        }
    }

    #[test]
    fn dumbbell_structure() {
        let g = dumbbell(4, 10, 3);
        assert_eq!(g.n(), 8);
        // 2 * C(4,2) internal + 1 bridge
        assert_eq!(g.m(), 13);
        assert!(g.is_connected());
    }

    #[test]
    fn ring_of_cliques_structure() {
        let g = ring_of_cliques(3, 3, 4, 1);
        assert_eq!(g.n(), 9);
        assert_eq!(g.m(), 3 * 3 + 3);
        assert!(g.is_connected());
    }

    #[test]
    fn grid_and_hypercube_counts() {
        let g = grid(3, 4, 2);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4);
        let h = hypercube(3, 1);
        assert_eq!(h.n(), 8);
        assert_eq!(h.m(), 12);
    }

    #[test]
    fn classic_families() {
        assert_eq!(complete(5, 2).m(), 10);
        assert_eq!(cycle(6, 1).m(), 6);
        assert_eq!(path(6, 1).m(), 5);
        assert_eq!(star(6, 1).m(), 5);
    }

    #[test]
    fn planted_bisection_connected() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = planted_bisection(20, 40, 3, 10, 2, &mut rng);
        assert!(g.is_connected());
        // Exactly 3 bridge edges of weight 2 cross the planted partition.
        let side: Vec<bool> = (0..20).map(|v| v < 10).collect();
        assert_eq!(crate::cut_of_partition(&g, &side), 6);
    }

    #[test]
    fn non_sparse_size() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = non_sparse(64, 0.5, 3, &mut rng);
        assert!(g.m() >= 512, "m={} should be >= n^1.5", g.m());
        assert!(g.is_connected());
    }
}
