//! Stoer–Wagner deterministic global minimum cut.
//!
//! The `O(n^3)` maximum-adjacency-search formulation over a dense
//! weight matrix. It is the correctness oracle for every randomized
//! algorithm in the workspace, and the "sequential exact" row of the
//! comparison experiments on small graphs.

use crate::graph::{Graph, VertexId};
use crate::CutResult;

/// Exact global minimum cut of a weighted undirected graph.
///
/// Returns the cut value and one side of the optimal partition. If the
/// graph is disconnected the minimum cut is 0 and the returned side is
/// one connected component. Graphs with fewer than 2 vertices have no
/// cut; `CutResult::infinite()` is returned.
/// # Example
///
/// ```
/// use pmc_graph::{Graph, stoer_wagner_mincut};
///
/// let g = Graph::from_edges(3, [(0, 1, 5), (1, 2, 7), (0, 2, 11)]);
/// let cut = stoer_wagner_mincut(&g);
/// assert_eq!(cut.value, 12); // isolate vertex 1
/// ```
pub fn stoer_wagner_mincut(g: &Graph) -> CutResult {
    let n = g.n();
    if n < 2 {
        return CutResult::infinite();
    }
    if !g.is_connected() {
        let labels = g.component_labels();
        let side = (0..n as VertexId).filter(|&v| labels[v as usize] == labels[0]).collect();
        return CutResult { value: 0, side };
    }

    // Dense weight matrix with coalesced parallel edges.
    let mut w = vec![vec![0u64; n]; n];
    for e in g.edges() {
        w[e.u as usize][e.v as usize] += e.w;
        w[e.v as usize][e.u as usize] += e.w;
    }

    // merged[v] = original vertices currently contracted into v.
    let mut merged: Vec<Vec<VertexId>> = (0..n as VertexId).map(|v| vec![v]).collect();
    let mut active: Vec<usize> = (0..n).collect();

    let mut best = CutResult::infinite();

    while active.len() > 1 {
        // Maximum adjacency search over the active vertices.
        let k = active.len();
        let mut in_a = vec![false; n];
        let mut key = vec![0u64; n];
        let start = active[0];
        in_a[start] = true;
        for &v in &active {
            key[v] = w[start][v];
        }
        let mut prev = start;
        let mut last = start;
        for _ in 1..k {
            let mut sel = usize::MAX;
            let mut sel_key = 0u64;
            for &v in &active {
                if !in_a[v] && (sel == usize::MAX || key[v] > sel_key) {
                    sel = v;
                    sel_key = key[v];
                }
            }
            in_a[sel] = true;
            prev = last;
            last = sel;
            for &v in &active {
                if !in_a[v] {
                    key[v] += w[sel][v];
                }
            }
        }

        // Cut-of-the-phase: `last` versus the rest.
        let phase_cut = key[last];
        if phase_cut < best.value {
            best = CutResult { value: phase_cut, side: merged[last].clone() };
        }

        // Contract `last` into `prev`.
        let last_merged = std::mem::take(&mut merged[last]);
        merged[prev].extend(last_merged);
        for &v in &active {
            if v != prev && v != last {
                w[prev][v] += w[last][v];
                w[v][prev] = w[prev][v];
            }
        }
        active.retain(|&v| v != last);
    }

    best.side.sort_unstable();
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::cut_of_partition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_side_matches_value(g: &Graph, cut: &CutResult) {
        let mut side = vec![false; g.n()];
        for &v in &cut.side {
            side[v as usize] = true;
        }
        assert!(cut.side.len() < g.n() && !cut.side.is_empty(), "side must be a proper subset");
        assert_eq!(cut_of_partition(g, &side), cut.value, "reported side must realize the value");
    }

    #[test]
    fn two_vertices() {
        let g = Graph::from_edges(2, [(0, 1, 7)]);
        let c = stoer_wagner_mincut(&g);
        assert_eq!(c.value, 7);
        check_side_matches_value(&g, &c);
    }

    #[test]
    fn triangle_min_degree() {
        let g = Graph::from_edges(3, [(0, 1, 5), (1, 2, 7), (0, 2, 11)]);
        let c = stoer_wagner_mincut(&g);
        assert_eq!(c.value, 12); // isolate vertex 1
        check_side_matches_value(&g, &c);
    }

    #[test]
    fn dumbbell_bridge() {
        let g = generators::dumbbell(5, 10, 3);
        let c = stoer_wagner_mincut(&g);
        assert_eq!(c.value, 3);
        assert_eq!(c.side.len(), 5);
        check_side_matches_value(&g, &c);
    }

    #[test]
    fn ring_of_cliques_two_bridges() {
        let g = generators::ring_of_cliques(4, 4, 10, 1);
        let c = stoer_wagner_mincut(&g);
        assert_eq!(c.value, 2);
        check_side_matches_value(&g, &c);
    }

    #[test]
    fn grid_corner() {
        let g = generators::grid(4, 5, 3);
        let c = stoer_wagner_mincut(&g);
        assert_eq!(c.value, 6);
        check_side_matches_value(&g, &c);
    }

    #[test]
    fn hypercube_vertex_isolation() {
        let g = generators::hypercube(4, 2);
        let c = stoer_wagner_mincut(&g);
        assert_eq!(c.value, 8);
        check_side_matches_value(&g, &c);
    }

    #[test]
    fn complete_graph() {
        let g = generators::complete(6, 3);
        let c = stoer_wagner_mincut(&g);
        assert_eq!(c.value, 15);
        check_side_matches_value(&g, &c);
    }

    #[test]
    fn disconnected_graph_zero() {
        let g = Graph::from_edges(4, [(0, 1, 2), (2, 3, 2)]);
        let c = stoer_wagner_mincut(&g);
        assert_eq!(c.value, 0);
        check_side_matches_value(&g, &c);
    }

    #[test]
    fn path_lightest_edge() {
        let g = Graph::from_edges(4, [(0, 1, 9), (1, 2, 2), (2, 3, 8)]);
        let c = stoer_wagner_mincut(&g);
        assert_eq!(c.value, 2);
        check_side_matches_value(&g, &c);
    }

    #[test]
    fn parallel_edges_coalesce() {
        let g = Graph::from_edges(3, [(0, 1, 1), (0, 1, 1), (1, 2, 3), (0, 2, 3)]);
        let c = stoer_wagner_mincut(&g);
        assert_eq!(c.value, 5); // isolate 0 or 1: 2+3
        check_side_matches_value(&g, &c);
    }

    #[test]
    fn random_graphs_side_consistency() {
        let mut rng = StdRng::seed_from_u64(99);
        for n in [5, 9, 16, 25] {
            let g = generators::gnm_connected(n, 2 * n, 7, &mut rng);
            let c = stoer_wagner_mincut(&g);
            check_side_matches_value(&g, &c);
            assert!(c.value <= g.min_weighted_degree());
        }
    }

    #[test]
    fn brute_force_agreement_small() {
        // Exhaustive over all 2^(n-1)-1 partitions for tiny graphs.
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..20 {
            let n = 4 + (trial % 4);
            let g = generators::gnm_connected(n, n, 6, &mut rng);
            let c = stoer_wagner_mincut(&g);
            let mut best = u64::MAX;
            for mask in 1..(1u32 << (n - 1)) {
                let side: Vec<bool> = (0..n).map(|v| v > 0 && (mask >> (v - 1)) & 1 == 1).collect();
                best = best.min(cut_of_partition(&g, &side));
            }
            assert_eq!(c.value, best, "trial {trial}");
        }
    }
}
