//! Lemma 4.25: the two-level `n^ε`-degree range tree on the grid.
//!
//! First level: a complete d-ary tree over the points sorted by `x`.
//! Second level: for every node of every level, the points below it
//! sorted by `y` with prefix-summed weights (the paper's auxiliary
//! arrays `A_aux(u)`; interval sums over them play the role of the
//! auxiliary trees `T_aux(u)` — binary search never exceeds the lemma's
//! `O(n^ε/ε)` aux-query cost for admissible `ε`, see DESIGN.md).
//!
//! A rectangle query `[x1,x2] x [y1,y2]` finds the canonical cover of
//! the x-interval — `O(d)` nodes per level, `O(1/ε)` levels — and sums
//! one y-interval per covered node: `O(n^ε/ε)` node visits, each with a
//! logarithmic-cost aux lookup, matching the query profile the
//! ε-crossover experiment (E-4.26) sweeps.

// lint: hotpath-module
use crate::{degree_for_eps, Point2};
use pmc_parallel::meter::{CostKind, Meter};
use pmc_parallel::scratch::with_scratch;
use pmc_parallel::sort::radix_sort_by_key;
use rayon::prelude::*;

/// Static 2-D range-sum structure over weighted grid points.
///
/// Every level stores the x-sorted points re-sorted by `(node, y)` plus
/// chunk-local prefix weights. All levels are concatenated into flat
/// CSR-style arenas — `ys` and `prefix` hold exactly `len()` entries
/// per level (level `k` occupies `[k*len(), (k+1)*len())`), while the
/// variable-width per-node totals carry an explicit offsets vector —
/// so a query's level walk stays inside three contiguous buffers
/// instead of hopping across per-level allocations.
#[derive(Debug, Clone)]
pub struct RangeTree2D {
    degree: usize,
    /// Points sorted by x (leaf order); `xs[i]` is the x of leaf `i`.
    xs: Vec<u32>,
    /// Leaf width of one node at each level (`degree^level`).
    widths: Vec<usize>,
    /// Per-level y-keys sorted within each node chunk, levels
    /// concatenated (each level is `len()` entries).
    ys: Vec<u32>,
    /// Prefix weights *within each node chunk*: at level `k`,
    /// `prefix[k*len() + i]` = sum of weights of that chunk's points
    /// before in-chunk index `i`; the chunk's total sits at its last
    /// slot + weight (handled in query).
    prefix: Vec<u64>,
    /// Total weight per node (needed because prefix is chunk-local);
    /// level `k` occupies
    /// `node_total[node_total_offsets[k]..node_total_offsets[k + 1]]`.
    node_total: Vec<u64>,
    node_total_offsets: Vec<usize>,
}

impl RangeTree2D {
    /// Build with degree `max(2, ceil(universe^eps))`.
    pub fn build(points: Vec<Point2>, universe: usize, eps: f64, meter: &Meter) -> Self {
        Self::with_degree(points, degree_for_eps(universe, eps), meter)
    }

    /// Build with an explicit branching factor (`degree >= 2`).
    pub fn with_degree(mut points: Vec<Point2>, degree: usize, meter: &Meter) -> Self {
        assert!(degree >= 2);
        let m = points.len();
        meter.add(CostKind::RangeNode, m as u64);
        // Leaf order: sort by x (ties by y, harmless).
        radix_sort_by_key(&mut points, |p| ((p.x as u64) << 32) | p.y as u64);
        // HOTPATH: warmup — one-time construction, not on the query path.
        let xs: Vec<u32> = points.iter().map(|p| p.x).collect();

        // Points tagged with their leaf index so node membership survives
        // the per-level y-resorts (duplicate x values make the x key
        // ambiguous on its own).
        // HOTPATH: warmup — build-time arenas, allocated once per tree.
        let mut indexed: Vec<(u32, Point2)> =
            points.into_iter().enumerate().map(|(i, p)| (i as u32, p)).collect();
        let mut width = 1usize;
        let mut widths = Vec::new();
        let mut ys = Vec::new();
        let mut prefix = Vec::new();
        // HOTPATH: warmup — build-time arenas, allocated once per tree.
        let mut node_total = Vec::new();
        let mut node_total_offsets = vec![0usize];
        loop {
            let num_nodes = m.div_ceil(width).max(1);
            // Sort by (node index, y); one radix pass per level, the
            // parallel analogue of the paper's per-level merges.
            let wl = width as u64;
            radix_sort_by_key(&mut indexed, |&(i, p)| ((i as u64 / wl) << 32) | p.y as u64);
            ys.extend(indexed.iter().map(|&(_, p)| p.y));
            // Chunk-local prefix sums and per-node totals, in parallel
            // over nodes (chunks are disjoint).
            // HOTPATH: warmup — build-time fan-out, once per level.
            let prefix_chunks: Vec<(Vec<u64>, u64)> = (0..num_nodes)
                .into_par_iter()
                .map(|nd| {
                    let lo = nd * width;
                    let hi = ((nd + 1) * width).min(m);
                    let mut pre = Vec::with_capacity(hi - lo);
                    let mut acc = 0u64;
                    for item in &indexed[lo..hi] {
                        pre.push(acc);
                        acc += item.1.w;
                    }
                    (pre, acc)
                })
                .collect(); // HOTPATH: warmup — build-time fan-out.
            for (pre, total) in prefix_chunks {
                prefix.extend(pre);
                node_total.push(total);
            }
            node_total_offsets.push(node_total.len());
            meter.add(CostKind::RangeNode, m as u64);
            widths.push(width);
            if num_nodes == 1 {
                break;
            }
            width *= degree;
        }
        RangeTree2D { degree, xs, widths, ys, prefix, node_total, node_total_offsets }
    }

    pub fn len(&self) -> usize {
        self.xs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    pub fn degree(&self) -> usize {
        self.degree
    }

    pub fn height(&self) -> usize {
        self.widths.len()
    }

    pub fn total(&self) -> u64 {
        // The top level has exactly one node; its total is the last
        // entry of the flat per-node-total arena.
        self.node_total.last().copied().unwrap_or(0)
    }

    /// Below this many rectangles the per-rect loop beats the fused
    /// sweep (no cover materialization, no sort) and stays allocation
    /// free — `weight_to_outside` submits at most 2 rects this way.
    const FUSED_CUTOFF: usize = 16;

    /// Total weight over a batch of rectangles `(x1, x2, y1, y2)` —
    /// the slice-submission form of [`RangeTree2D::sum_rect`]. Callers
    /// that decompose one logical query into several rectangles (the
    /// complement slabs of a nested cut query, for instance) submit the
    /// whole batch in one call instead of probing rectangle by
    /// rectangle.
    ///
    /// Small batches run the per-rect loop; larger ones go through the
    /// fused single-sweep kernel ([`RangeTree2D::sum_rects_tagged`])
    /// with a pooled workspace. Both paths visit the identical multiset
    /// of `(level, node)` aux chunks and add `u64` partial sums, so the
    /// result and the meter totals are bit-identical either way.
    pub fn sum_rects(&self, rects: &[(u32, u32, u32, u32)], meter: &Meter) -> u64 {
        if rects.len() < Self::FUSED_CUTOFF {
            return rects.iter().map(|&(x1, x2, y1, y2)| self.sum_rect(x1, x2, y1, y2, meter)).sum();
        }
        with_scratch(|s| {
            s.rects.clear();
            s.rects.extend(
                rects.iter().enumerate().map(|(i, &(x1, x2, y1, y2))| (x1, x2, y1, y2, i as u32)),
            );
            s.acc.clear();
            s.acc.resize(rects.len(), 0);
            self.sum_rects_tagged(&s.rects, &mut s.acc, &mut s.cover, meter);
            s.acc.iter().sum()
        })
    }

    /// Fused batch kernel: answer every tagged rectangle
    /// `(x1, x2, y1, y2, tag)` in **one cache-blocked sweep** over the
    /// flat arena, accumulating each rectangle's sum into `out[tag]`
    /// (slots are `+=`ed, callers zero them first).
    ///
    /// Instead of walking the canonical cover rect by rect (which
    /// revisits levels in an arena-hostile order when rects are
    /// unsorted), every rect is first *decomposed* into its cover items
    /// — one `(level, node)` visit plus the rect's y-window and tag —
    /// then all items are sorted by packed `(level, node)` key and
    /// answered in a single pass. Consecutive items hit the same or
    /// adjacent node chunks of `ys`/`prefix`, so the sweep streams the
    /// arena front to back once per level instead of hopscotching.
    ///
    /// Bit-identity: the cover of a rect is the same set of aux lookups
    /// `sum_rect` performs, each lookup is a pure function of
    /// `(level, node, y1, y2)`, and per-tag accumulation is `u64`
    /// addition (associative and commutative), so any answer order
    /// yields the identical sums and the identical meter charge.
    /// Allocation: everything lives in the caller's buffers; warm
    /// buffers make the kernel allocation free.
    pub fn sum_rects_tagged(
        &self,
        rects: &[(u32, u32, u32, u32, u32)],
        out: &mut [u64],
        cover: &mut Vec<(u64, u64, u32)>,
        meter: &Meter,
    ) {
        cover.clear();
        for &(x1, x2, y1, y2, tag) in rects {
            if x1 > x2 || y1 > y2 || self.xs.is_empty() {
                continue;
            }
            let lo = self.xs.partition_point(|&x| x < x1);
            let hi = self.xs.partition_point(|&x| x <= x2);
            let ywin = ((y1 as u64) << 32) | y2 as u64;
            self.for_each_cover(lo, hi, |lvl, node| {
                cover.push((((lvl as u64) << 48) | node as u64, ywin, tag));
            });
        }
        // In-place unstable sort: no allocation, and deterministic here
        // because full tuples compare (ties broken by y-window and tag).
        cover.sort_unstable();
        for &(key, ywin, tag) in cover.iter() {
            let lvl = (key >> 48) as usize;
            let node = (key & ((1u64 << 48) - 1)) as usize;
            out[tag as usize] +=
                self.aux_sum(lvl, node, (ywin >> 32) as u32, ywin as u32, meter);
        }
    }

    /// Total weight of points in `[x1, x2] x [y1, y2]` (inclusive).
    pub fn sum_rect(&self, x1: u32, x2: u32, y1: u32, y2: u32, meter: &Meter) -> u64 {
        if x1 > x2 || y1 > y2 || self.xs.is_empty() {
            return 0;
        }
        let lo = self.xs.partition_point(|&x| x < x1);
        let hi = self.xs.partition_point(|&x| x <= x2);
        self.sum_leaf_range(lo, hi, y1, y2, meter)
    }

    /// Sum over leaves `[lo, hi)` with y in `[y1, y2]`: canonical cover
    /// of the leaf interval, one aux interval-sum per covered node.
    ///
    /// Bottom-up peeling: entering level `l`, both ends are aligned to
    /// that level's node width; peel nodes off each end until both ends
    /// align to the next level's width. At most `degree - 1` nodes per
    /// end per level, i.e. the lemma's `O(n^ε)` nodes per level.
    fn sum_leaf_range(&self, lo: usize, hi: usize, y1: u32, y2: u32, meter: &Meter) -> u64 {
        let mut sum = 0u64;
        self.for_each_cover(lo, hi, |lvl, node| sum += self.aux_sum(lvl, node, y1, y2, meter));
        sum
    }

    /// Visit the canonical cover of leaves `[lo, hi)` as
    /// `(level, node)` pairs — the shared walk behind both the per-rect
    /// and the fused batch query paths.
    fn for_each_cover(&self, mut lo: usize, mut hi: usize, mut visit: impl FnMut(usize, usize)) {
        if lo >= hi {
            return;
        }
        for lvl in 0..self.widths.len() {
            if lo >= hi {
                break;
            }
            let width = self.widths[lvl];
            let next = width * self.degree;
            debug_assert!(lo.is_multiple_of(width) && hi.is_multiple_of(width));
            while !lo.is_multiple_of(next) && lo < hi {
                visit(lvl, lo / width);
                lo += width;
            }
            while !hi.is_multiple_of(next) && lo < hi {
                visit(lvl, hi / width - 1);
                hi -= width;
            }
        }
        debug_assert!(lo >= hi, "cover incomplete: [{lo},{hi})");
    }

    /// Interval sum `y in [y1, y2]` inside one node's y-sorted chunk.
    fn aux_sum(&self, lvl: usize, node: usize, y1: u32, y2: u32, meter: &Meter) -> u64 {
        let m = self.xs.len();
        let base = lvl * m; // level `lvl` starts here in `ys`/`prefix`
        let lo = node * self.widths[lvl];
        let hi = ((node + 1) * self.widths[lvl]).min(m);
        let ys = &self.ys[base + lo..base + hi];
        meter.add(CostKind::RangeNode, (usize::BITS - ys.len().leading_zeros()) as u64 + 1);
        let a = ys.partition_point(|&y| y < y1);
        let b = ys.partition_point(|&y| y <= y2);
        if a >= b {
            return 0;
        }
        let upper = if lo + b == hi {
            self.node_total[self.node_total_offsets[lvl] + node]
        } else {
            self.prefix[base + lo + b]
        };
        upper - self.prefix[base + lo + a]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute(points: &[Point2], x1: u32, x2: u32, y1: u32, y2: u32) -> u64 {
        points
            .iter()
            .filter(|p| p.x >= x1 && p.x <= x2 && p.y >= y1 && p.y <= y2)
            .map(|p| p.w)
            .sum()
    }

    #[test]
    fn sum_rects_matches_individual_sums() {
        let mut rng = StdRng::seed_from_u64(77);
        let pts: Vec<Point2> = (0..200)
            .map(|_| Point2 { x: rng.random_range(0..40), y: rng.random_range(0..40), w: rng.random_range(1..9) })
            .collect();
        let t = RangeTree2D::build(pts.clone(), 40, 0.4, &Meter::disabled());
        let m = Meter::disabled();
        let rects = [(0u32, 10u32, 5u32, 39u32), (11, 39, 0, 4), (3, 3, 3, 3)];
        let batched = t.sum_rects(&rects, &m);
        let singles: u64 =
            rects.iter().map(|&(x1, x2, y1, y2)| t.sum_rect(x1, x2, y1, y2, &m)).sum();
        assert_eq!(batched, singles);
        assert_eq!(t.sum_rects(&[], &m), 0);
    }

    #[test]
    fn fused_batch_is_bit_identical_to_per_rect_including_meter() {
        let mut rng = StdRng::seed_from_u64(99);
        let pts: Vec<Point2> = (0..600)
            .map(|_| Point2 {
                x: rng.random_range(0..96),
                y: rng.random_range(0..96),
                w: rng.random_range(1..32),
            })
            .collect();
        for degree in [2usize, 4, 17] {
            let t = RangeTree2D::with_degree(pts.clone(), degree, &Meter::disabled());
            // Well over FUSED_CUTOFF, with inverted/empty rects mixed in.
            let rects: Vec<(u32, u32, u32, u32)> = (0..200)
                .map(|i| {
                    let a = rng.random_range(0..100u32);
                    let b = rng.random_range(0..100u32);
                    let c = rng.random_range(0..100u32);
                    let d = rng.random_range(0..100u32);
                    if i % 7 == 0 {
                        (b.max(a) + 1, a.min(b), c, d) // inverted x: empty
                    } else {
                        (a.min(b), a.max(b), c.min(d), c.max(d))
                    }
                })
                .collect();
            let (mf, mp) = (Meter::enabled(), Meter::enabled());
            let fused = t.sum_rects(&rects, &mf);
            let per_rect: u64 =
                rects.iter().map(|&(x1, x2, y1, y2)| t.sum_rect(x1, x2, y1, y2, &mp)).sum();
            assert_eq!(fused, per_rect, "degree={degree}");
            assert_eq!(
                mf.get(CostKind::RangeNode),
                mp.get(CostKind::RangeNode),
                "degree={degree}: fused sweep must charge the identical node visits"
            );
        }
    }

    #[test]
    fn sum_rects_tagged_accumulates_per_tag_on_reused_buffers() {
        let mut rng = StdRng::seed_from_u64(4);
        let pts: Vec<Point2> = (0..300)
            .map(|_| Point2 {
                x: rng.random_range(0..50),
                y: rng.random_range(0..50),
                w: rng.random_range(1..10),
            })
            .collect();
        let m = Meter::disabled();
        let t = RangeTree2D::with_degree(pts, 3, &m);
        let mut cover = Vec::new();
        for round in 0..4usize {
            let k = [40, 3, 90, 1][round];
            // Two rects share each tag to exercise `+=` accumulation.
            let rects: Vec<(u32, u32, u32, u32, u32)> = (0..k)
                .flat_map(|tag| {
                    let a = rng.random_range(0..25u32);
                    let b = rng.random_range(25..50u32);
                    [(a, b, 0, 24, tag as u32), (a, b, 25, 49, tag as u32)]
                })
                .collect();
            let mut out = vec![0u64; k];
            t.sum_rects_tagged(&rects, &mut out, &mut cover, &m);
            for (tag, &got) in out.iter().enumerate() {
                let expect: u64 = rects
                    .iter()
                    .filter(|r| r.4 as usize == tag)
                    .map(|&(x1, x2, y1, y2, _)| t.sum_rect(x1, x2, y1, y2, &m))
                    .sum();
                assert_eq!(got, expect, "round={round} tag={tag}");
            }
        }
    }

    #[test]
    fn small_fixed() {
        let pts = vec![
            Point2 { x: 0, y: 0, w: 1 },
            Point2 { x: 1, y: 2, w: 2 },
            Point2 { x: 2, y: 1, w: 4 },
            Point2 { x: 2, y: 1, w: 8 },
            Point2 { x: 3, y: 3, w: 16 },
        ];
        let m = Meter::disabled();
        let t = RangeTree2D::with_degree(pts.clone(), 2, &m);
        assert_eq!(t.total(), 31);
        assert_eq!(t.sum_rect(0, 3, 0, 3, &m), 31);
        assert_eq!(t.sum_rect(2, 2, 1, 1, &m), 12);
        assert_eq!(t.sum_rect(1, 2, 0, 2, &m), 14);
        assert_eq!(t.sum_rect(4, 9, 0, 9, &m), 0);
        assert_eq!(t.sum_rect(3, 1, 0, 9, &m), 0);
    }

    #[test]
    fn empty_and_single() {
        let m = Meter::disabled();
        let t = RangeTree2D::with_degree(vec![], 3, &m);
        assert_eq!(t.total(), 0);
        assert_eq!(t.sum_rect(0, 100, 0, 100, &m), 0);
        let t1 = RangeTree2D::with_degree(vec![Point2 { x: 5, y: 7, w: 3 }], 3, &m);
        assert_eq!(t1.sum_rect(5, 5, 7, 7, &m), 3);
        assert_eq!(t1.sum_rect(5, 5, 8, 9, &m), 0);
    }

    #[test]
    fn random_vs_bruteforce_across_degrees() {
        let mut rng = StdRng::seed_from_u64(41);
        let points: Vec<Point2> = (0..800)
            .map(|_| Point2 {
                x: rng.random_range(0..64),
                y: rng.random_range(0..64),
                w: rng.random_range(1..16),
            })
            .collect();
        let m = Meter::disabled();
        for degree in [2usize, 3, 5, 8, 64, 1024] {
            let t = RangeTree2D::with_degree(points.clone(), degree, &m);
            assert_eq!(t.total(), points.iter().map(|p| p.w).sum::<u64>());
            for _ in 0..400 {
                let a = rng.random_range(0..70u32);
                let b = rng.random_range(0..70u32);
                let c = rng.random_range(0..70u32);
                let d = rng.random_range(0..70u32);
                let (x1, x2) = (a.min(b), a.max(b));
                let (y1, y2) = (c.min(d), c.max(d));
                assert_eq!(
                    t.sum_rect(x1, x2, y1, y2, &m),
                    brute(&points, x1, x2, y1, y2),
                    "degree={degree} rect=[{x1},{x2}]x[{y1},{y2}]"
                );
            }
        }
    }

    #[test]
    fn eps_parameterization() {
        let mut rng = StdRng::seed_from_u64(42);
        let points: Vec<Point2> = (0..2048)
            .map(|_| Point2 {
                x: rng.random_range(0..2048),
                y: rng.random_range(0..2048),
                w: 1,
            })
            .collect();
        let m = Meter::disabled();
        let flat = RangeTree2D::build(points.clone(), 2048, 0.9, &m);
        let tall = RangeTree2D::build(points.clone(), 2048, 1.0 / 11.0, &m);
        assert!(flat.height() < tall.height());
        for _ in 0..100 {
            let a = rng.random_range(0..2100u32);
            let b = rng.random_range(0..2100u32);
            let c = rng.random_range(0..2100u32);
            let d = rng.random_range(0..2100u32);
            let (x1, x2) = (a.min(b), a.max(b));
            let (y1, y2) = (c.min(d), c.max(d));
            assert_eq!(flat.sum_rect(x1, x2, y1, y2, &m), tall.sum_rect(x1, x2, y1, y2, &m));
        }
    }

    #[test]
    fn duplicate_coordinates_sum() {
        let pts: Vec<Point2> = (0..100).map(|i| Point2 { x: 7, y: 9, w: i % 3 + 1 }).collect();
        let total: u64 = pts.iter().map(|p| p.w).sum();
        let m = Meter::disabled();
        let t = RangeTree2D::with_degree(pts, 4, &m);
        assert_eq!(t.sum_rect(7, 7, 9, 9, &m), total);
        assert_eq!(t.sum_rect(0, 6, 0, 100, &m), 0);
    }

    #[test]
    fn stripe_queries() {
        // Full x-range, partial y-range (the cut-query shape).
        let mut rng = StdRng::seed_from_u64(43);
        let points: Vec<Point2> = (0..500)
            .map(|i| Point2 { x: i as u32, y: rng.random_range(0..32), w: 1 })
            .collect();
        let m = Meter::disabled();
        let t = RangeTree2D::with_degree(points.clone(), 4, &m);
        for y in 0..32u32 {
            assert_eq!(t.sum_rect(0, 499, y, y, &m), brute(&points, 0, 499, y, y));
        }
    }
}
