//! Parallel orthogonal range-sum structures (§4.3 and Appendix A).
//!
//! The cut-query structure of Lemma A.1 reduces `cut(e, f)` to at most
//! two rectangle-sum queries over `m` weighted points in the
//! `[n] x [n]` grid. The paper's data structures are complete trees of
//! degree `n^ε`:
//!
//! * [`WeightTree1D`] — Lemma 4.24: `O(m/ε)` work, `O(log n)` depth to
//!   build; interval sums with `O(n^ε/ε)` work.
//! * [`RangeTree2D`] — Lemma 4.25: the two-level construction (x-tree
//!   with y-sorted auxiliary arrays per node). Auxiliary interval sums
//!   use prefix arrays + binary search, which never exceeds the lemma's
//!   `O(n^ε/ε)` aux-query bound for `ε ≥ 1/log n` (see DESIGN.md).
//! * [`PrefixSumIndex`] — the sorted-array + prefix-sum baseline used as
//!   the 1-D oracle and in ablation benches.
//!
//! The `ε` parameter trades query fan-out against tree height exactly as
//! in Theorem 4.26; [`degree_for_eps`] maps `ε` to the branching factor.

pub mod prefix;
pub mod tree1d;
pub mod tree2d;

pub use prefix::PrefixSumIndex;
pub use tree1d::WeightTree1D;
pub use tree2d::RangeTree2D;

/// A weighted point on the line (for 1-D) — `x` is the coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Point1 {
    pub x: u32,
    pub w: u64,
}

/// A weighted point in the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Point2 {
    pub x: u32,
    pub y: u32,
    pub w: u64,
}

/// Branching factor `max(2, ceil(universe^eps))` for a given `ε`, the
/// paper's `n^ε` degree (footnote 9: `ε > 1/log n` so the degree is at
/// least 2).
pub fn degree_for_eps(universe: usize, eps: f64) -> usize {
    if universe <= 2 {
        return 2;
    }
    let d = (universe as f64).powf(eps).ceil() as usize;
    d.clamp(2, universe.max(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_bounds() {
        assert_eq!(degree_for_eps(0, 0.5), 2);
        assert_eq!(degree_for_eps(1024, 0.0), 2);
        assert_eq!(degree_for_eps(1024, 1.0), 1024);
        // eps = 0.5 on 1024 -> 32
        assert_eq!(degree_for_eps(1024, 0.5), 32);
        // eps = 1/log2(n) -> degree 2
        let eps = 1.0 / (1024f64).log2();
        assert_eq!(degree_for_eps(1024, eps), 2);
    }
}
