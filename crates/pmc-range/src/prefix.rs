//! Sorted-array + prefix-sum interval sums: the 1-D oracle.
//!
//! `O(m log m)` build (dominated by the sort; the parallel radix sort
//! makes it `O(m)` per byte), `O(log m)` query. Used to validate
//! [`crate::WeightTree1D`] and as the simplest ablation point.

use crate::Point1;
use pmc_parallel::meter::{CostKind, Meter};
use pmc_parallel::scan::exclusive_scan;
use pmc_parallel::sort::radix_sort_by_key;

/// Immutable 1-D weighted point set supporting interval sums.
#[derive(Debug, Clone)]
pub struct PrefixSumIndex {
    /// Point coordinates, ascending.
    xs: Vec<u32>,
    /// `prefix[i]` = total weight of the first `i` points.
    prefix: Vec<u64>,
}

impl PrefixSumIndex {
    pub fn build(mut points: Vec<Point1>, meter: &Meter) -> Self {
        meter.add(CostKind::RangeNode, points.len() as u64);
        radix_sort_by_key(&mut points, |p| p.x as u64);
        let xs: Vec<u32> = points.iter().map(|p| p.x).collect();
        let ws: Vec<u64> = points.iter().map(|p| p.w).collect();
        let prefix = exclusive_scan(&ws);
        PrefixSumIndex { xs, prefix }
    }

    /// Total weight of points with coordinate in `[x1, x2]` (inclusive).
    pub fn sum(&self, x1: u32, x2: u32, meter: &Meter) -> u64 {
        if x1 > x2 {
            return 0;
        }
        meter.add(CostKind::RangeNode, (usize::BITS - self.xs.len().leading_zeros()) as u64);
        let lo = self.xs.partition_point(|&x| x < x1);
        let hi = self.xs.partition_point(|&x| x <= x2);
        self.prefix[hi] - self.prefix[lo]
    }

    /// Total weight of all points.
    pub fn total(&self) -> u64 {
        *self.prefix.last().unwrap_or(&0)
    }

    pub fn len(&self) -> usize {
        self.xs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(u32, u64)]) -> Vec<Point1> {
        v.iter().map(|&(x, w)| Point1 { x, w }).collect()
    }

    #[test]
    fn basic_sums() {
        let idx = PrefixSumIndex::build(pts(&[(5, 10), (1, 1), (3, 7), (5, 2)]), &Meter::disabled());
        assert_eq!(idx.total(), 20);
        assert_eq!(idx.sum(0, 10, &Meter::disabled()), 20);
        assert_eq!(idx.sum(1, 1, &Meter::disabled()), 1);
        assert_eq!(idx.sum(2, 4, &Meter::disabled()), 7);
        assert_eq!(idx.sum(5, 5, &Meter::disabled()), 12); // duplicates sum
        assert_eq!(idx.sum(6, 9, &Meter::disabled()), 0);
        assert_eq!(idx.sum(4, 2, &Meter::disabled()), 0); // inverted
    }

    #[test]
    fn empty() {
        let idx = PrefixSumIndex::build(vec![], &Meter::disabled());
        assert_eq!(idx.total(), 0);
        assert_eq!(idx.sum(0, u32::MAX, &Meter::disabled()), 0);
        assert!(idx.is_empty());
    }

    #[test]
    fn random_vs_bruteforce() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let points: Vec<Point1> = (0..500)
            .map(|_| Point1 { x: rng.random_range(0..100), w: rng.random_range(1..10) })
            .collect();
        let idx = PrefixSumIndex::build(points.clone(), &Meter::disabled());
        for _ in 0..200 {
            let a = rng.random_range(0..110u32);
            let b = rng.random_range(0..110u32);
            let (x1, x2) = (a.min(b), a.max(b));
            let expect: u64 =
                points.iter().filter(|p| p.x >= x1 && p.x <= x2).map(|p| p.w).sum();
            assert_eq!(idx.sum(x1, x2, &Meter::disabled()), expect);
        }
    }
}
