//! Lemma 4.24: the complete `n^ε`-degree weight tree on the line.
//!
//! Leaves hold the points sorted by coordinate; each internal node
//! stores the total weight `W(u)` of its subtree. A query converts the
//! coordinate interval into a leaf index interval (binary search over
//! the sorted leaves) and then sums a canonical cover: at most `2d`
//! nodes per level over `O(1/ε)` levels, i.e. `O(n^ε/ε)` work per
//! query, matching the lemma.

use crate::{degree_for_eps, Point1};
use pmc_parallel::meter::{CostKind, Meter};
use pmc_parallel::sort::radix_sort_by_key;
use rayon::prelude::*;

/// Complete d-ary weight tree over sorted 1-D points.
///
/// All levels live in one contiguous node arena (CSR-style: a flat
/// `Vec` plus per-level offsets) rather than one allocation per level,
/// so the bottom-up prefix walk touches a single cache-friendly
/// buffer.
#[derive(Debug, Clone)]
pub struct WeightTree1D {
    degree: usize,
    /// Sorted point coordinates (leaf keys).
    xs: Vec<u32>,
    /// Node weights of every level, leaves first: level `k` occupies
    /// `nodes[level_offsets[k]..level_offsets[k + 1]]`, and
    /// `level(k+1)[i]` = sum of the up-to-`d` children
    /// `level(k)[i*d .. (i+1)*d]`.
    nodes: Vec<u64>,
    /// `height() + 1` entries; the last is `nodes.len()`.
    level_offsets: Vec<usize>,
}

impl WeightTree1D {
    /// Build with degree `max(2, ceil(universe^eps))`.
    pub fn build(points: Vec<Point1>, universe: usize, eps: f64, meter: &Meter) -> Self {
        Self::with_degree(points, degree_for_eps(universe, eps), meter)
    }

    /// Build with an explicit branching factor (`degree >= 2`).
    pub fn with_degree(mut points: Vec<Point1>, degree: usize, meter: &Meter) -> Self {
        assert!(degree >= 2);
        radix_sort_by_key(&mut points, |p| p.x as u64);
        let xs: Vec<u32> = points.iter().map(|p| p.x).collect();
        // Level widths are known up front, so the whole arena is
        // allocated once and filled level by level in place.
        let mut widths = vec![points.len()];
        let mut width = points.len();
        while width > 1 {
            width = width.div_ceil(degree);
            widths.push(width);
        }
        let mut level_offsets = Vec::with_capacity(widths.len() + 1);
        let mut acc = 0usize;
        level_offsets.push(0);
        for &w in &widths {
            acc += w;
            level_offsets.push(acc);
        }
        let mut nodes = vec![0u64; acc];
        for (slot, p) in nodes.iter_mut().zip(&points) {
            *slot = p.w;
        }
        meter.add(CostKind::RangeNode, points.len() as u64);
        for k in 0..widths.len() - 1 {
            // The split keeps the borrow checker honest: `prev` is the
            // completed level `k`, `next` the uninitialized level `k+1`.
            let (done, rest) = nodes.split_at_mut(level_offsets[k + 1]);
            let prev = &done[level_offsets[k]..];
            let next = &mut rest[..widths[k + 1]];
            next.par_iter_mut().enumerate().for_each(|(i, slot)| {
                let lo = i * degree;
                let hi = (lo + degree).min(prev.len());
                *slot = prev[lo..hi].iter().sum();
            });
            meter.add(CostKind::RangeNode, widths[k + 1] as u64);
        }
        WeightTree1D { degree, xs, nodes, level_offsets }
    }

    /// The nodes of one level as a slice of the arena.
    #[inline]
    fn level(&self, k: usize) -> &[u64] {
        &self.nodes[self.level_offsets[k]..self.level_offsets[k + 1]]
    }

    pub fn len(&self) -> usize {
        self.xs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of levels (`O(log n / log degree) = O(1/ε)`).
    pub fn height(&self) -> usize {
        self.level_offsets.len() - 1
    }

    pub fn total(&self) -> u64 {
        self.level(self.height() - 1).first().copied().unwrap_or(0)
    }

    /// Sum of weights of points with coordinate in `[x1, x2]`.
    pub fn sum(&self, x1: u32, x2: u32, meter: &Meter) -> u64 {
        if x1 > x2 || self.xs.is_empty() {
            return 0;
        }
        let lo = self.xs.partition_point(|&x| x < x1);
        let hi = self.xs.partition_point(|&x| x <= x2);
        self.sum_leaf_range(lo, hi, meter)
    }

    /// Sum over the leaf index interval `[lo, hi)`.
    pub fn sum_leaf_range(&self, lo: usize, hi: usize, meter: &Meter) -> u64 {
        if lo >= hi {
            return 0;
        }
        // prefix(hi) - prefix(lo), each in O(degree) per level.
        self.prefix(hi, meter) - self.prefix(lo, meter)
    }

    /// Sum of the first `k` leaves: descend from the root, adding the
    /// complete children to the left of the partial child at each level.
    fn prefix(&self, k: usize, meter: &Meter) -> u64 {
        if k == 0 {
            return 0;
        }
        if k >= self.xs.len() {
            return self.total();
        }
        let mut sum = 0u64;
        let mut node = 0usize; // index at the current level
        for level in (1..self.height()).rev() {
            // Children of `node` live at level-1, indices node*d ..
            let children = self.level(level - 1);
            let child_base = node * self.degree;
            // Width (leaf count) of one child at this level.
            let child_width = self.degree.pow((level - 1) as u32);
            let full = (k - node_leaf_start(node, level, self.degree)) / child_width;
            let lo = child_base;
            let hi = (child_base + full).min(children.len());
            meter.add(CostKind::RangeNode, (hi - lo) as u64 + 1);
            sum += children[lo..hi].iter().sum::<u64>();
            node = child_base + full;
        }
        sum
    }
}

/// First leaf index covered by `node` at `level` in a complete d-ary
/// layout.
fn node_leaf_start(node: usize, level: usize, degree: usize) -> usize {
    node * degree.pow(level as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PrefixSumIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn pts(v: &[(u32, u64)]) -> Vec<Point1> {
        v.iter().map(|&(x, w)| Point1 { x, w }).collect()
    }

    #[test]
    fn small_fixed() {
        let t = WeightTree1D::with_degree(
            pts(&[(1, 1), (3, 7), (5, 10), (5, 2), (9, 4)]),
            2,
            &Meter::disabled(),
        );
        let m = Meter::disabled();
        assert_eq!(t.total(), 24);
        assert_eq!(t.sum(0, 9, &m), 24);
        assert_eq!(t.sum(3, 5, &m), 19);
        assert_eq!(t.sum(5, 5, &m), 12);
        assert_eq!(t.sum(6, 8, &m), 0);
        assert_eq!(t.sum(9, 3, &m), 0);
    }

    #[test]
    fn empty_and_single() {
        let m = Meter::disabled();
        let t = WeightTree1D::with_degree(vec![], 4, &m);
        assert_eq!(t.total(), 0);
        assert_eq!(t.sum(0, 100, &m), 0);
        let t1 = WeightTree1D::with_degree(pts(&[(7, 9)]), 4, &m);
        assert_eq!(t1.sum(7, 7, &m), 9);
        assert_eq!(t1.sum(0, 6, &m), 0);
        assert_eq!(t1.sum(8, 20, &m), 0);
    }

    #[test]
    fn matches_oracle_across_degrees() {
        let mut rng = StdRng::seed_from_u64(31);
        let points: Vec<Point1> = (0..1000)
            .map(|_| Point1 { x: rng.random_range(0..256), w: rng.random_range(1..8) })
            .collect();
        let m = Meter::disabled();
        let oracle = PrefixSumIndex::build(points.clone(), &m);
        for degree in [2usize, 3, 4, 16, 64, 1000] {
            let t = WeightTree1D::with_degree(points.clone(), degree, &m);
            for _ in 0..300 {
                let a = rng.random_range(0..260u32);
                let b = rng.random_range(0..260u32);
                let (x1, x2) = (a.min(b), a.max(b));
                assert_eq!(
                    t.sum(x1, x2, &m),
                    oracle.sum(x1, x2, &m),
                    "degree={degree} [{x1},{x2}]"
                );
            }
        }
    }

    #[test]
    fn eps_controls_height() {
        let mut rng = StdRng::seed_from_u64(32);
        let points: Vec<Point1> = (0..4096)
            .map(|_| Point1 { x: rng.random_range(0..4096), w: 1 })
            .collect();
        let m = Meter::disabled();
        let flat = WeightTree1D::build(points.clone(), 4096, 1.0, &m);
        let tall = WeightTree1D::build(points.clone(), 4096, 1.0 / 12.0, &m);
        assert!(flat.height() <= 2, "eps=1 is a root over leaves");
        assert!(tall.height() >= 10, "eps=1/log n is a binary tree");
        // Both answer identically.
        for _ in 0..100 {
            let a = rng.random_range(0..4200u32);
            let b = rng.random_range(0..4200u32);
            let (x1, x2) = (a.min(b), a.max(b));
            assert_eq!(flat.sum(x1, x2, &m), tall.sum(x1, x2, &m));
        }
    }

    #[test]
    fn query_work_scales_with_degree() {
        // Lemma 4.24: query work is O(degree * height).
        let points: Vec<Point1> = (0..10_000u32).map(|i| Point1 { x: i, w: 1 }).collect();
        let t = WeightTree1D::with_degree(points, 10, &Meter::disabled());
        let meter = Meter::enabled();
        let _ = t.sum(123, 9876, &meter);
        let visited = meter.get(CostKind::RangeNode);
        let bound = (2 * t.degree() * t.height() + 2) as u64;
        assert!(visited <= bound, "visited {visited} > bound {bound}");
    }

    #[test]
    fn prefix_boundaries() {
        let points: Vec<Point1> = (0..100u32).map(|i| Point1 { x: i, w: (i + 1) as u64 }).collect();
        let t = WeightTree1D::with_degree(points, 3, &Meter::disabled());
        let m = Meter::disabled();
        // Sum 0..=k for every k matches closed form.
        for k in 0..100u32 {
            let expect: u64 = ((k as u64 + 1) * (k as u64 + 2)) / 2;
            assert_eq!(t.sum(0, k, &m), expect, "k={k}");
        }
    }
}
