//! Graph sparsification (§2.4 and §3 of the paper).
//!
//! * [`binomial`]: binomial random variates with the cost profile the
//!   paper needs — `O(min(np, cap) + 1)` expected work per sample via
//!   inverse-transform walking ([KS88], [Fis79]), with a normal
//!   approximation above the f64-underflow regime (documented
//!   substitution, see DESIGN.md);
//! * [`skeleton`]: Karger skeletons (Theorem 2.4) with the weight cap of
//!   Observation 4.22;
//! * [`certificate`]: sparse k-connectivity certificates via repeated
//!   spanning forests (Theorem 2.6, Nagamochi–Ibaraki);
//! * [`scan_certificate`]: the sequential maximum-adjacency-scan
//!   certificate ([NI92a]), the oracle/baseline for the parallel one;
//! * [`hierarchy`]: the sampled/truncated/exclusive hierarchies of
//!   Definitions 3.3/3.9/3.16 (Algorithm 3.14) and the certificate
//!   hierarchy of Algorithm 3.17.

pub mod binomial;
pub mod certificate;
pub mod hierarchy;
pub mod scan_certificate;
pub mod skeleton;

pub use binomial::{binomial, binomial_capped};
pub use certificate::k_certificate;
pub use scan_certificate::scan_certificate;
pub use hierarchy::{CertificateHierarchy, ExclusiveHierarchy, HierarchyParams};
pub use skeleton::{skeleton, skeleton_probability};
