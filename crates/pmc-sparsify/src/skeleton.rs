//! Karger skeletons (Theorem 2.4) with capped weights (Observation 4.22).
//!
//! A skeleton of a weighted graph samples each unweighted copy of each
//! edge independently with probability `p`; the resulting weight of edge
//! `e` is `B(w(e), p)`. Observation 4.22 lets the sampler stop at a cap
//! of `O(log n / ε²)` because heavier skeleton edges can never cross the
//! skeleton's (small) minimum cut — this is what makes the whole phase
//! `O(m log n)` work instead of `O(W)`.
//!
//! Sampling is parallel over edges with per-edge deterministic RNG
//! streams, so results are reproducible regardless of thread schedule.

use crate::binomial::binomial_capped;
use pmc_graph::{Graph, GraphBuilder};
use pmc_parallel::meter::{CostKind, Meter};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Theorem 2.4's sampling probability `p = c · ln n / (ε² λ̃)`, clamped
/// to `(0, 1]`. `lambda_hint` is the (under)estimate of the min-cut.
pub fn skeleton_probability(n: usize, eps: f64, lambda_hint: u64, c: f64) -> f64 {
    assert!(eps > 0.0 && lambda_hint > 0);
    let p = c * (n.max(2) as f64).ln() / (eps * eps * lambda_hint as f64);
    p.min(1.0)
}

/// Build a skeleton: edge `e` receives weight `min(B(w(e), p), cap)`.
///
/// Pass `cap = u64::MAX` for the uncapped Theorem 2.4 skeleton; the
/// exact pipeline passes the Observation 4.22 cap. Zero-weight sampled
/// edges are dropped. Deterministic in `seed`.
pub fn skeleton(g: &Graph, p: f64, cap: u64, seed: u64, meter: &Meter) -> Graph {
    assert!((0.0..=1.0).contains(&p));
    meter.add(CostKind::Sample, g.m() as u64);
    if p >= 1.0 {
        // Identity sampling; still apply the cap.
        let mut b = GraphBuilder::new(g.n());
        for e in g.edges() {
            b.add_edge(e.u, e.v, e.w.min(cap));
        }
        return b.build();
    }
    let sampled: Vec<(u32, u32, u64)> = g
        .edges()
        .par_iter()
        .enumerate()
        .map(|(i, e)| {
            // Independent deterministic stream per edge.
            let mut rng = StdRng::seed_from_u64(
                seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            (e.u, e.v, binomial_capped(e.w, p, cap, &mut rng))
        })
        .collect();
    let mut b = GraphBuilder::new(g.n());
    for (u, v, w) in sampled {
        b.add_edge(u, v, w);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmc_graph::generators;
    use pmc_graph::stoer_wagner_mincut;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probability_formula() {
        let p = skeleton_probability(1000, 1.0, 1000, 3.0);
        assert!((p - 3.0 * (1000f64).ln() / 1000.0).abs() < 1e-12);
        assert_eq!(skeleton_probability(1000, 1.0, 1, 100.0), 1.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::gnm_connected(50, 200, 1000, &mut rng);
        let a = skeleton(&g, 0.01, u64::MAX, 42, &Meter::disabled());
        let b = skeleton(&g, 0.01, u64::MAX, 42, &Meter::disabled());
        let c = skeleton(&g, 0.01, u64::MAX, 43, &Meter::disabled());
        assert_eq!(a.edges(), b.edges());
        assert_ne!(a.total_weight(), c.total_weight());
    }

    #[test]
    fn identity_when_p_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::gnm_connected(20, 40, 9, &mut rng);
        let s = skeleton(&g, 1.0, u64::MAX, 7, &Meter::disabled());
        assert_eq!(s.total_weight(), g.total_weight());
        let capped = skeleton(&g, 1.0, 3, 7, &Meter::disabled());
        assert!(capped.edges().iter().all(|e| e.w <= 3));
    }

    #[test]
    fn expected_weight_scales_with_p() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::gnm_connected(30, 100, 10_000, &mut rng);
        let p = 0.01;
        let s = skeleton(&g, p, u64::MAX, 99, &Meter::disabled());
        let expect = g.total_weight() as f64 * p;
        let got = s.total_weight() as f64;
        assert!(
            (got / expect - 1.0).abs() < 0.1,
            "total {got} vs expected {expect}"
        );
    }

    #[test]
    fn cap_binds() {
        let g = Graph::from_edges(2, [(0, 1, 1_000_000)]);
        let s = skeleton(&g, 0.5, 10, 5, &Meter::disabled());
        assert_eq!(s.m(), 1);
        assert_eq!(s.edge(0).w, 10);
    }

    #[test]
    fn skeleton_min_cut_concentrates() {
        // Theorem 2.4 experimentally: sample a graph with known min-cut
        // lambda at p = c log n / lambda; skeleton min-cut close to p*lambda.
        // dumbbell(12, 2000, 10_000): bridge 10_000 < vertex isolation
        // 11 * 2000, so lambda = 10_000.
        let g = generators::dumbbell(12, 2000, 10_000);
        let lambda = 10_000u64;
        let p = skeleton_probability(g.n(), 1.0, lambda, 12.0);
        let expected = p * lambda as f64;
        let mut ok = 0;
        for seed in 0..5 {
            let s = skeleton(&g, p, u64::MAX, seed, &Meter::disabled());
            let cut = stoer_wagner_mincut(&s).value as f64;
            if (cut / expected - 1.0).abs() < 0.5 {
                ok += 1;
            }
        }
        assert!(ok >= 4, "skeleton min-cut concentrated in only {ok}/5 runs");
    }

    use pmc_graph::Graph;
}
