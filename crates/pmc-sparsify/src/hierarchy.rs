//! The sampling hierarchies of §3 (Algorithms 3.14 and 3.17).
//!
//! * **Sampled hierarchy** (Def. 3.3): `G_0 = G` as a multigraph;
//!   `G_{i+1}` keeps each copy of `G_i` with probability 1/2.
//! * **Critical layer** (Def. 3.8): `t_e` is the last layer where edge
//!   `e` still has `~crit` expected copies; sampling *starts* there
//!   (`X_{t_e} ~ B(w(e), 2^{-t_e})`) and proceeds by halving, which is
//!   distributionally identical to per-copy coin flips but costs
//!   `O(log n)` per edge.
//! * **Truncated hierarchy** (Def. 3.9): layers below `t_e` reuse the
//!   critical layer's copies — so the *exclusive* hierarchy (Def. 3.16,
//!   `Ĝ_i = G^trunc_i \ G^trunc_{i+1}`) is simply `X_i - X_{i+1}`
//!   copies at each layer `i >= t_e` and nothing below.
//! * **Certificate hierarchy** (Alg. 3.17): per layer, up to
//!   `forest_factor · log n` spanning forests with a global per-edge
//!   participation budget of `budget_factor · log n`; `∪_{j>=i} H_j` is
//!   a `forest_factor · log n`-cut certificate of `G^trunc_i`
//!   (Claim 3.18).

use crate::binomial::binomial;
use pmc_graph::{Graph, GraphBuilder};
use pmc_parallel::meter::{CostKind, Meter};
use pmc_parallel::spanning_forest::spanning_forest_of_pairs;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Constants of §3, expressed as multiples of `log2 n` so that small
/// test graphs exercise the same code paths as paper-scale inputs.
#[derive(Debug, Clone, Copy)]
pub struct HierarchyParams {
    /// Copies targeted at the critical layer (paper: 500).
    pub crit_factor: f64,
    /// Per-edge spanning-forest participation budget (paper: 400).
    pub budget_factor: f64,
    /// Spanning forests per layer (paper: 200).
    pub forest_factor: f64,
    /// RNG seed for the whole hierarchy.
    pub seed: u64,
}

impl HierarchyParams {
    /// The constants as printed in the paper. Only meaningful for
    /// min-cuts well above `500 log n`.
    pub fn paper(seed: u64) -> Self {
        HierarchyParams { crit_factor: 500.0, budget_factor: 400.0, forest_factor: 200.0, seed }
    }

    /// Smaller constants with the same ratios, keeping the w.h.p.
    /// machinery exercisable at laptop scale (the BLS'20 approach).
    pub fn practical(seed: u64) -> Self {
        HierarchyParams { crit_factor: 25.0, budget_factor: 20.0, forest_factor: 10.0, seed }
    }

    /// `crit_factor * log2 n`, at least 4.
    pub fn crit_copies(&self, n: usize) -> u64 {
        ((self.crit_factor * (n.max(2) as f64).log2()).ceil() as u64).max(4)
    }

    /// `budget_factor * log2 n`, at least 4.
    pub fn budget(&self, n: usize) -> u64 {
        ((self.budget_factor * (n.max(2) as f64).log2()).ceil() as u64).max(4)
    }

    /// `forest_factor * log2 n`, at least 2.
    pub fn forests_per_layer(&self, n: usize) -> u64 {
        ((self.forest_factor * (n.max(2) as f64).log2()).ceil() as u64).max(2)
    }
}

/// The exclusive hierarchy `{Ĝ_i}` of Definition 3.16.
#[derive(Debug, Clone)]
pub struct ExclusiveHierarchy {
    /// `levels[i]` lists `(edge index, copies)` of `Ĝ_i`.
    pub levels: Vec<Vec<(u32, u64)>>,
    /// Critical layer `t_e` per edge.
    pub critical: Vec<u32>,
}

impl ExclusiveHierarchy {
    /// Algorithm 3.14. Deterministic in `params.seed`.
    pub fn build(g: &Graph, params: &HierarchyParams, meter: &Meter) -> Self {
        let crit = params.crit_copies(g.n());
        meter.add(CostKind::Sample, g.m() as u64);
        // Per-edge sampling chains, parallel and individually seeded.
        let chains: Vec<(u32, Vec<(u32, u64)>)> = g
            .edges()
            .par_iter()
            .enumerate()
            .map(|(idx, e)| {
                let mut rng = StdRng::seed_from_u64(
                    params.seed ^ (idx as u64).wrapping_mul(0xD134_2543_DE82_EF95),
                );
                let t_e = critical_layer(e.w, crit);
                // X_{t_e} ~ B(w, 2^{-t_e}); halve upward until extinct.
                let mut copies = if t_e == 0 {
                    e.w
                } else {
                    binomial(e.w, 0.5f64.powi(t_e as i32), &mut rng)
                };
                let mut out = Vec::new();
                let mut level = t_e;
                while copies > 0 {
                    let next = binomial(copies, 0.5, &mut rng);
                    let exclusive = copies - next;
                    if exclusive > 0 {
                        out.push((level, exclusive));
                    }
                    copies = next;
                    level += 1;
                }
                (t_e, out)
            })
            .collect();
        let num_levels =
            chains.iter().flat_map(|(_, c)| c.iter().map(|&(l, _)| l as usize + 1)).max().unwrap_or(1);
        let mut levels: Vec<Vec<(u32, u64)>> = vec![Vec::new(); num_levels];
        let mut critical = Vec::with_capacity(g.m());
        for (idx, (t_e, chain)) in chains.into_iter().enumerate() {
            critical.push(t_e);
            for (level, copies) in chain {
                levels[level as usize].push((idx as u32, copies));
            }
        }
        ExclusiveHierarchy { levels, critical }
    }

    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Copies of edge `e` in the truncated layer `G^trunc_i`: the sum of
    /// exclusive copies at layers `>= max(i, t_e)`.
    pub fn truncated_copies(&self, edge: u32, level: usize) -> u64 {
        let from = (self.critical[edge as usize] as usize).max(level);
        self.levels[from..]
            .iter()
            .flat_map(|l| l.iter())
            .filter(|&&(e, _)| e == edge)
            .map(|&(_, c)| c)
            .sum()
    }

    /// Materialize `G^trunc_i` as a weighted graph (copies = weights).
    pub fn truncated_graph(&self, g: &Graph, level: usize) -> Graph {
        let mut weight = vec![0u64; g.m()];
        for l in self.levels[level.min(self.levels.len())..].iter() {
            for &(e, c) in l {
                weight[e as usize] += c;
            }
        }
        // Layers below an edge's critical layer reuse the critical
        // copies, which the sum above already includes (it sums all
        // layers >= level >= nothing-below-t_e exists).
        let mut b = GraphBuilder::new(g.n());
        for (i, &w) in weight.iter().enumerate() {
            if w > 0 {
                let e = g.edge(i);
                b.add_edge(e.u, e.v, w);
            }
        }
        b.build()
    }
}

/// Largest `t` with `w / 2^t >= crit` (0 when `w < crit`), i.e.
/// `floor(log2(w / crit))`.
fn critical_layer(w: u64, crit: u64) -> u32 {
    if w < crit.max(1) {
        return 0;
    }
    63 - (w / crit.max(1)).leading_zeros()
}

/// The certificate hierarchy `{H_i}` of Algorithm 3.17.
#[derive(Debug, Clone)]
pub struct CertificateHierarchy {
    /// `levels[i]` lists `(edge index, multiplicity)` of `H_i`.
    pub levels: Vec<Vec<(u32, u64)>>,
}

impl CertificateHierarchy {
    pub fn build(
        g: &Graph,
        hierarchy: &ExclusiveHierarchy,
        params: &HierarchyParams,
        meter: &Meter,
    ) -> Self {
        let n = g.n();
        let mut budget = vec![params.budget(n); g.m()];
        let max_forests = params.forests_per_layer(n);
        let mut levels: Vec<Vec<(u32, u64)>> = vec![Vec::new(); hierarchy.num_levels()];
        for i in (0..hierarchy.num_levels()).rev() {
            // Alive edges of Ĝ_i with copies and positive budget.
            let mut alive: Vec<(u32, u64)> = hierarchy.levels[i]
                .iter()
                .filter(|&&(e, _)| budget[e as usize] > 0)
                .copied()
                .collect();
            let mut mult: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
            let mut rounds = 0u64;
            while rounds < max_forests && !alive.is_empty() {
                let edges = g.edges();
                let forest = spanning_forest_of_pairs(
                    n,
                    alive.len(),
                    |j| {
                        let e = edges[alive[j].0 as usize];
                        (e.u, e.v)
                    },
                    meter,
                );
                // Every alive edge pays one budget unit (Alg 3.17 line 8).
                for &(e, _) in &alive {
                    budget[e as usize] -= 1;
                }
                for &fj in &forest {
                    let slot = &mut alive[fj as usize];
                    slot.1 -= 1;
                    *mult.entry(slot.0).or_insert(0) += 1;
                }
                alive.retain(|&(e, c)| c > 0 && budget[e as usize] > 0);
                rounds += 1;
            }
            let mut level: Vec<(u32, u64)> = mult.into_iter().collect();
            level.sort_unstable();
            levels[i] = level;
        }
        CertificateHierarchy { levels }
    }

    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// `∪_{j >= i} H_j` as a weighted graph (Claim 3.18's certificate
    /// for `G^trunc_i`).
    pub fn union_graph(&self, g: &Graph, level: usize) -> Graph {
        let mut weight = vec![0u64; g.m()];
        for l in self.levels[level.min(self.levels.len())..].iter() {
            for &(e, c) in l {
                weight[e as usize] += c;
            }
        }
        let mut b = GraphBuilder::new(g.n());
        for (i, &w) in weight.iter().enumerate() {
            if w > 0 {
                let e = g.edge(i);
                b.add_edge(e.u, e.v, w);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmc_graph::{generators, stoer_wagner_mincut};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn critical_layer_values() {
        assert_eq!(critical_layer(10, 100), 0);
        assert_eq!(critical_layer(100, 100), 0);
        assert_eq!(critical_layer(200, 100), 1);
        assert_eq!(critical_layer(399, 100), 1);
        assert_eq!(critical_layer(400, 100), 2);
        assert_eq!(critical_layer(1 << 30, 1), 30);
    }

    #[test]
    fn light_edges_fully_present_at_level_zero() {
        // Weights below the critical threshold: t_e = 0 and the exclusive
        // hierarchy partitions exactly w copies.
        let mut rng = StdRng::seed_from_u64(21);
        let g = generators::gnm_connected(20, 40, 8, &mut rng);
        let params = HierarchyParams::practical(5);
        assert!(g.edges().iter().all(|e| e.w < params.crit_copies(g.n())));
        let h = ExclusiveHierarchy::build(&g, &params, &Meter::disabled());
        let trunc0 = h.truncated_graph(&g, 0);
        assert_eq!(trunc0.total_weight(), g.total_weight());
        assert_eq!(trunc0.m(), g.m());
        // Per-edge conservation.
        for (i, e) in g.edges().iter().enumerate() {
            assert_eq!(h.truncated_copies(i as u32, 0), e.w, "edge {i}");
        }
    }

    #[test]
    fn heavy_edge_concentrates_at_critical_layer() {
        // Claim 3.10: copies at the critical layer within [0.8, 1.2] of
        // the target (the paper's [400,600]/500 band) w.h.p.
        let g = Graph::from_edges(2, [(0, 1, 1 << 22)]);
        // Large crit target so the relative fluctuation (~1/sqrt(crit))
        // stays within the band, as in the paper's 500 log n regime.
        let params = HierarchyParams {
            crit_factor: 400.0,
            ..HierarchyParams::practical(77)
        };
        let crit = params.crit_copies(2);
        let h = ExclusiveHierarchy::build(&g, &params, &Meter::disabled());
        let t_e = h.critical[0] as usize;
        let at_crit = h.truncated_copies(0, t_e);
        let target = (1u64 << 22) as f64 / 2f64.powi(t_e as i32);
        assert!(target >= crit as f64 && target < 2.0 * crit as f64);
        assert!(
            (at_crit as f64 / target - 1.0).abs() < 0.3,
            "copies {at_crit} vs target {target}"
        );
    }

    #[test]
    fn truncated_layers_nest() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = generators::heavy_cycle_with_chords(12, 20, 5000, 100, &mut rng);
        let params = HierarchyParams::practical(9);
        let h = ExclusiveHierarchy::build(&g, &params, &Meter::disabled());
        for i in 1..h.num_levels() {
            let hi = h.truncated_graph(&g, i);
            let lo = h.truncated_graph(&g, i - 1);
            assert!(hi.total_weight() <= lo.total_weight(), "level {i}");
        }
    }

    #[test]
    fn exclusive_levels_halve_in_expectation() {
        let g = Graph::from_edges(2, [(0, 1, 1 << 20)]);
        let params = HierarchyParams::practical(31);
        let h = ExclusiveHierarchy::build(&g, &params, &Meter::disabled());
        let t = h.critical[0] as usize;
        // Total copies from the critical layer upward ~ w / 2^t.
        let total = h.truncated_copies(0, t);
        let expect = (1u64 << 20) as f64 / 2f64.powi(t as i32);
        assert!((total as f64 / expect - 1.0).abs() < 0.3);
    }

    #[test]
    fn certificate_hierarchy_preserves_small_mincut() {
        // For a light graph everything lives at level 0 and the union
        // certificate must preserve the (small) min-cut exactly.
        let mut rng = StdRng::seed_from_u64(25);
        let g = generators::gnm_connected(24, 80, 3, &mut rng);
        let params = HierarchyParams::practical(13);
        let h = ExclusiveHierarchy::build(&g, &params, &Meter::disabled());
        let certs = CertificateHierarchy::build(&g, &h, &params, &Meter::disabled());
        let union0 = certs.union_graph(&g, 0);
        let lambda = stoer_wagner_mincut(&g).value;
        assert!(lambda < params.forests_per_layer(g.n()));
        assert_eq!(stoer_wagner_mincut(&union0).value, lambda);
    }

    #[test]
    fn certificate_respects_budget_size() {
        let mut rng = StdRng::seed_from_u64(26);
        let g = generators::gnm_connected(30, 200, 2000, &mut rng);
        let params = HierarchyParams::practical(17);
        let h = ExclusiveHierarchy::build(&g, &params, &Meter::disabled());
        let certs = CertificateHierarchy::build(&g, &h, &params, &Meter::disabled());
        // H_i has at most forests_per_layer * (n-1) edges (multiplicity
        // counts), and each edge's total multiplicity across all layers
        // is bounded by its budget.
        let mut per_edge = vec![0u64; g.m()];
        for (i, level) in certs.levels.iter().enumerate() {
            let level_total: u64 = level.iter().map(|&(_, c)| c).sum();
            assert!(
                level_total <= params.forests_per_layer(g.n()) * (g.n() as u64 - 1),
                "layer {i} too heavy"
            );
            for &(e, c) in level {
                per_edge[e as usize] += c;
            }
        }
        for (i, &c) in per_edge.iter().enumerate() {
            assert!(c <= params.budget(g.n()), "edge {i} exceeded budget");
        }
    }

    #[test]
    fn hierarchy_deterministic_in_seed() {
        let mut rng = StdRng::seed_from_u64(27);
        let g = generators::heavy_cycle_with_chords(10, 10, 3000, 50, &mut rng);
        let params = HierarchyParams::practical(42);
        let a = ExclusiveHierarchy::build(&g, &params, &Meter::disabled());
        let b = ExclusiveHierarchy::build(&g, &params, &Meter::disabled());
        assert_eq!(a.levels, b.levels);
    }

    use pmc_graph::Graph;
}
