//! Binomial random variates.
//!
//! The skeleton constructions draw `B(w(e), p)` per edge. The paper
//! cites [KS88]/[Fis79]: inverse-transform sampling walks the CDF from
//! zero, costing `O(np + 1)` expected steps, and Observation 4.22 caps
//! the walk at the maximum useful value, giving `O(log n)` work per
//! edge regardless of weight.
//!
//! Implementation regimes (all deterministic given the `Rng`):
//!
//! * `n <= 64`: exact Bernoulli counting (bit tricks for `p = 1/2`);
//! * `mean <= WALK_LIMIT`: inverse-transform CDF walk, exact up to f64
//!   rounding, truncated at `cap`;
//! * otherwise: normal approximation `N(np, np(1-p))`, rounded and
//!   clamped — above this mean the exact pmf underflows f64 anyway and
//!   only concentration matters to the algorithms (DESIGN.md records
//!   this substitution).

use rand::Rng;

/// Above this expected value the CDF walk switches to the normal
/// approximation (`exp(-700)` underflows f64; stay well below).
const WALK_LIMIT: f64 = 400.0;

/// Draw `X ~ B(n, p)`.
pub fn binomial(n: u64, p: f64, rng: &mut impl Rng) -> u64 {
    binomial_capped(n, p, n, rng)
}

/// Draw `min(X, cap)` for `X ~ B(n, p)` without ever spending more than
/// `O(cap)` work (Observation 4.22's capped sampler).
pub fn binomial_capped(n: u64, p: f64, cap: u64, rng: &mut impl Rng) -> u64 {
    if n == 0 || p <= 0.0 || cap == 0 {
        return 0;
    }
    if p >= 1.0 {
        return n.min(cap);
    }
    if n <= 64 {
        return exact_small(n, p, rng).min(cap);
    }
    let mean = n as f64 * p;
    if mean <= WALK_LIMIT {
        walk(n, p, cap, rng)
    } else {
        normal_approx(n, p, rng).min(cap)
    }
}

/// Exact Bernoulli counting for small `n`.
fn exact_small(n: u64, p: f64, rng: &mut impl Rng) -> u64 {
    if (p - 0.5).abs() < f64::EPSILON {
        // B(n, 1/2) = popcount of n random bits.
        let bits: u64 = rng.random();
        let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        return (bits & mask).count_ones() as u64;
    }
    (0..n).filter(|_| rng.random::<f64>() < p).count() as u64
}

/// Inverse-transform CDF walk, truncated at `cap`.
///
/// If the pmf underflows (all mass far above `cap`) the walk reaches
/// `cap` and returns it — exactly the capped semantics.
fn walk(n: u64, p: f64, cap: u64, rng: &mut impl Rng) -> u64 {
    let u: f64 = rng.random();
    let odds = p / (1.0 - p);
    // pmf(0) = (1-p)^n, computed in log space for small p.
    let mut pmf = (n as f64 * (-p).ln_1p()).exp();
    let mut cdf = pmf;
    let mut k = 0u64;
    while cdf < u && k < cap {
        pmf *= ((n - k) as f64 / (k + 1) as f64) * odds;
        cdf += pmf;
        k += 1;
    }
    k
}

/// Normal approximation for large means, clamped to `[0, n]`.
fn normal_approx(n: u64, p: f64, rng: &mut impl Rng) -> u64 {
    let mean = n as f64 * p;
    let sd = (n as f64 * p * (1.0 - p)).sqrt();
    let z = standard_normal(rng);
    let x = (mean + z * sd).round();
    if x <= 0.0 {
        0
    } else if x >= n as f64 {
        n
    } else {
        x as u64
    }
}

/// Standard normal via Box–Muller.
fn standard_normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.random();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stats(samples: &[u64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<u64>() as f64 / n;
        let var =
            samples.iter().map(|&x| (x as f64 - mean) * (x as f64 - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn degenerate_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(binomial(0, 0.5, &mut rng), 0);
        assert_eq!(binomial(100, 0.0, &mut rng), 0);
        assert_eq!(binomial(100, 1.0, &mut rng), 100);
        assert_eq!(binomial_capped(100, 1.0, 7, &mut rng), 7);
        assert_eq!(binomial_capped(100, 0.5, 0, &mut rng), 0);
    }

    #[test]
    fn small_n_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<u64> = (0..20_000).map(|_| binomial(40, 0.3, &mut rng)).collect();
        let (mean, var) = stats(&samples);
        assert!((mean - 12.0).abs() < 0.3, "mean {mean}");
        assert!((var - 8.4).abs() < 0.6, "var {var}");
    }

    #[test]
    fn half_probability_bit_path() {
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<u64> = (0..20_000).map(|_| binomial(64, 0.5, &mut rng)).collect();
        let (mean, var) = stats(&samples);
        assert!((mean - 32.0).abs() < 0.3, "mean {mean}");
        assert!((var - 16.0).abs() < 1.0, "var {var}");
        assert!(samples.iter().all(|&x| x <= 64));
    }

    #[test]
    fn walk_regime_moments() {
        // n large, p small: mean 50 -> CDF walk.
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<u64> =
            (0..20_000).map(|_| binomial(1_000_000, 5e-5, &mut rng)).collect();
        let (mean, var) = stats(&samples);
        assert!((mean - 50.0).abs() < 0.5, "mean {mean}");
        assert!((var - 50.0).abs() < 3.0, "var {var}");
    }

    #[test]
    fn normal_regime_moments() {
        // mean 5000: normal approximation.
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<u64> =
            (0..20_000).map(|_| binomial(10_000_000, 5e-4, &mut rng)).collect();
        let (mean, var) = stats(&samples);
        assert!((mean - 5000.0).abs() < 5.0, "mean {mean}");
        assert!((var / 5000.0 - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn cap_truncates() {
        let mut rng = StdRng::seed_from_u64(6);
        // Mass far above the cap: always returns cap.
        for _ in 0..100 {
            assert_eq!(binomial_capped(1_000_000, 0.5, 10, &mut rng), 10);
        }
        // Mass far below the cap: cap never binds.
        let samples: Vec<u64> =
            (0..5000).map(|_| binomial_capped(1_000_000, 1e-5, 1000, &mut rng)).collect();
        let (mean, _) = stats(&samples);
        assert!((mean - 10.0).abs() < 0.5, "mean {mean}");
        assert!(samples.iter().all(|&x| x < 100));
    }

    #[test]
    fn capped_work_is_bounded() {
        // The capped sampler must return instantly even for astronomical
        // means — this is Observation 4.22's entire point. If this test
        // hangs, the walk is not truncating.
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = binomial_capped(u64::MAX / 2, 0.9, 50, &mut rng);
            assert_eq!(x, 50);
        }
    }

    #[test]
    fn halving_chain_conserves_expectation() {
        // X_{i+1} ~ B(X_i, 1/2): after k halvings the mean is w / 2^k.
        let mut rng = StdRng::seed_from_u64(8);
        let w = 1u64 << 20;
        let mut totals = [0u64; 10];
        let reps = 200;
        for _ in 0..reps {
            let mut x = w;
            for total in totals.iter_mut() {
                x = binomial(x, 0.5, &mut rng);
                *total += x;
            }
        }
        for (level, &tot) in totals.iter().enumerate() {
            let expect = (w >> (level + 1)) as f64;
            let got = tot as f64 / reps as f64;
            assert!(
                (got / expect - 1.0).abs() < 0.05,
                "level {level}: got {got}, expect {expect}"
            );
        }
    }
}
