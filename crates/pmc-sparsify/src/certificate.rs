//! Sparse k-connectivity certificates (Theorem 2.6).
//!
//! Nagamochi–Ibaraki via repeated spanning forests: `H_k = F_1 ∪ ... ∪
//! F_k` where `F_i` is a spanning forest of the graph minus the earlier
//! forests. For weighted graphs an edge of weight `w` behaves as `w`
//! parallel copies; a forest consumes one copy, so the certificate
//! weight of an edge is the number of forests that picked it
//! (at most `min(w, k)`).
//!
//! Guarantees (Definition 2.5, both property-tested):
//! * total certificate weight `<= k * n`;
//! * every cut of value `<= k` in `G` keeps its exact value; every cut
//!   keeps value `>= min(k, original)`.

use pmc_graph::{Graph, GraphBuilder};
use pmc_parallel::meter::Meter;
use pmc_parallel::spanning_forest::spanning_forest_of_pairs;

/// Sparse k-connectivity certificate of a weighted graph.
/// # Example
///
/// ```
/// use pmc_graph::generators;
/// use pmc_parallel::Meter;
/// use pmc_sparsify::k_certificate;
///
/// let g = generators::complete(20, 1);           // m = 190
/// let h = k_certificate(&g, 3, &Meter::disabled());
/// assert!(h.total_weight() <= 3 * 20);           // Definition 2.5 size bound
/// assert!(h.is_connected());
/// ```
pub fn k_certificate(g: &Graph, k: u64, meter: &Meter) -> Graph {
    let n = g.n();
    // Remaining copies per edge; certificate multiplicity per edge.
    let mut remaining: Vec<u64> = g.edges().iter().map(|e| e.w).collect();
    let mut taken: Vec<u64> = vec![0; g.m()];
    // Active edge list (indices); shrinks as copies run out.
    let mut active: Vec<u32> = (0..g.m() as u32).collect();
    for _round in 0..k {
        if active.is_empty() {
            break;
        }
        let edges = g.edges();
        let act = &active;
        let forest = spanning_forest_of_pairs(
            n,
            act.len(),
            |i| {
                let e = edges[act[i] as usize];
                (e.u, e.v)
            },
            meter,
        );
        if forest.is_empty() {
            break;
        }
        for &fi in &forest {
            let ei = active[fi as usize] as usize;
            remaining[ei] -= 1;
            taken[ei] += 1;
        }
        active.retain(|&ei| remaining[ei as usize] > 0);
    }
    let mut b = GraphBuilder::new(n);
    for (i, &t) in taken.iter().enumerate() {
        if t > 0 {
            let e = g.edge(i);
            b.add_edge(e.u, e.v, t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmc_graph::graph::cut_of_partition;
    use pmc_graph::{generators, stoer_wagner_mincut};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Check Definition 2.5 exhaustively on a small graph.
    fn check_cut_preservation(g: &Graph, k: u64) {
        let h = k_certificate(g, k, &Meter::disabled());
        assert!(h.total_weight() <= k * g.n() as u64, "size bound violated");
        let n = g.n();
        assert!(n <= 16, "exhaustive check only for tiny graphs");
        for mask in 1..(1u32 << (n - 1)) {
            let side: Vec<bool> =
                (0..n).map(|v| v > 0 && (mask >> (v - 1)) & 1 == 1).collect();
            let cg = cut_of_partition(g, &side);
            let ch = cut_of_partition(&h, &side);
            assert!(ch <= cg, "certificate increased a cut");
            if cg <= k {
                assert_eq!(ch, cg, "cut of value {cg} <= k={k} not preserved");
            } else {
                assert!(ch >= k, "cut above k fell below k: {ch} < {k}");
            }
        }
    }

    #[test]
    fn preserves_small_cuts_exhaustive() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..10 {
            let g = generators::gnm_connected(8, 12 + trial, 4, &mut rng);
            for k in [1, 2, 3, 5, 10] {
                check_cut_preservation(&g, k);
            }
        }
    }

    #[test]
    fn preserves_min_cut_when_below_k() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..5 {
            let g = generators::gnm_connected(40, 120, 5, &mut rng);
            let lambda = stoer_wagner_mincut(&g).value;
            let h = k_certificate(&g, lambda + 1, &Meter::disabled());
            assert_eq!(stoer_wagner_mincut(&h).value, lambda);
        }
    }

    #[test]
    fn weight_bound() {
        let g = generators::complete(30, 4);
        for k in [1u64, 3, 7, 20] {
            let h = k_certificate(&g, k, &Meter::disabled());
            assert!(h.total_weight() <= k * 30);
        }
    }

    #[test]
    fn heavy_edges_truncated() {
        let g = Graph::from_edges(3, [(0, 1, 1000), (1, 2, 1000), (0, 2, 1000)]);
        let h = k_certificate(&g, 5, &Meter::disabled());
        assert!(h.edges().iter().all(|e| e.w <= 5));
        // Connectivity retained.
        assert!(h.is_connected());
    }

    #[test]
    fn k_zero_empty() {
        let g = generators::cycle(5, 2);
        let h = k_certificate(&g, 0, &Meter::disabled());
        assert_eq!(h.m(), 0);
    }

    #[test]
    fn disconnected_graph() {
        let g = Graph::from_edges(6, [(0, 1, 3), (1, 2, 3), (3, 4, 3), (4, 5, 3)]);
        let h = k_certificate(&g, 2, &Meter::disabled());
        assert_eq!(h.num_components(), g.num_components());
    }

    #[test]
    fn certificate_of_certificate_stable() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = generators::gnm_connected(20, 60, 3, &mut rng);
        let h1 = k_certificate(&g, 4, &Meter::disabled());
        let h2 = k_certificate(&h1, 4, &Meter::disabled());
        // Same min-cut as long as it is below k.
        let l1 = stoer_wagner_mincut(&h1).value.min(4);
        let l2 = stoer_wagner_mincut(&h2).value.min(4);
        assert_eq!(l1, l2);
    }

    use pmc_graph::Graph;
}
