//! Nagamochi–Ibaraki scan-based certificates ([NI92a]/[NI92b]).
//!
//! The *other* certificate algorithm the paper cites: a single
//! maximum-adjacency scan assigns every edge a forest index, and the
//! k-certificate keeps the weight that falls into forests `1..=k`.
//! Sequential `O(m log n)`; produces the same guarantees as the
//! forest-peeling construction of [`crate::certificate`] (Definition
//! 2.5) and serves as its cross-check oracle and as the sequential
//! baseline in ablations.
//!
//! Weighted formulation (the BLS'20 one): scanning vertex `u`, an edge
//! `(u, v, w)` occupies the forest interval `(r(v), r(v) + w]`; its
//! certificate weight is the part of that interval at or below `k`,
//! i.e. `min(w, k - r(v))` clamped at zero; then `r(v) += w`.

use pmc_graph::{Graph, GraphBuilder};
use pmc_parallel::meter::{CostKind, Meter};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sparse k-connectivity certificate via one maximum-adjacency scan.
pub fn scan_certificate(g: &Graph, k: u64, meter: &Meter) -> Graph {
    let n = g.n();
    meter.add(CostKind::ForestEdge, g.m() as u64);
    let mut r = vec![0u64; n]; // accumulated adjacency weight
    let mut scanned = vec![false; n];
    // Max-heap over (r(v), v) with lazy entries.
    let mut heap: BinaryHeap<(u64, Reverse<u32>)> = BinaryHeap::with_capacity(n);
    for v in 0..n as u32 {
        heap.push((0, Reverse(v)));
    }
    let mut b = GraphBuilder::new(n);
    let mut processed = 0usize;
    while processed < n {
        let Some((key, Reverse(u))) = heap.pop() else { break };
        if scanned[u as usize] || key != r[u as usize] {
            continue; // stale entry
        }
        scanned[u as usize] = true;
        processed += 1;
        for &(v, ei) in g.neighbors(u) {
            if scanned[v as usize] {
                continue;
            }
            let w = g.edge(ei as usize).w;
            let below = k.saturating_sub(r[v as usize]).min(w);
            if below > 0 {
                b.add_edge(u, v, below);
            }
            r[v as usize] += w;
            heap.push((r[v as usize], Reverse(v)));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::k_certificate;
    use pmc_graph::graph::cut_of_partition;
    use pmc_graph::{generators, stoer_wagner_mincut};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_cut_preservation(g: &Graph, k: u64) {
        let h = scan_certificate(g, k, &Meter::disabled());
        assert!(h.total_weight() <= k * g.n() as u64, "size bound violated");
        let n = g.n();
        assert!(n <= 16);
        for mask in 1..(1u32 << (n - 1)) {
            let side: Vec<bool> =
                (0..n).map(|v| v > 0 && (mask >> (v - 1)) & 1 == 1).collect();
            let cg = cut_of_partition(g, &side);
            let ch = cut_of_partition(&h, &side);
            assert!(ch <= cg, "certificate increased a cut");
            if cg <= k {
                assert_eq!(ch, cg, "cut {cg} <= k={k} not preserved");
            } else {
                assert!(ch >= k, "cut above k fell below k: {ch} < {k}");
            }
        }
    }

    #[test]
    fn preserves_small_cuts_exhaustive() {
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..10 {
            let g = generators::gnm_connected(8, 10 + trial, 4, &mut rng);
            for k in [1, 2, 3, 5, 9] {
                check_cut_preservation(&g, k);
            }
        }
    }

    #[test]
    fn agrees_with_forest_certificate_on_mincut() {
        let mut rng = StdRng::seed_from_u64(32);
        for _ in 0..6 {
            let g = generators::gnm_connected(30, 100, 5, &mut rng);
            let lambda = stoer_wagner_mincut(&g).value;
            let k = lambda + 2;
            let scan = scan_certificate(&g, k, &Meter::disabled());
            let forest = k_certificate(&g, k, &Meter::disabled());
            assert_eq!(
                stoer_wagner_mincut(&scan).value,
                lambda,
                "scan certificate lost the min cut"
            );
            assert_eq!(
                stoer_wagner_mincut(&forest).value,
                lambda,
                "forest certificate lost the min cut"
            );
        }
    }

    #[test]
    fn weight_never_exceeds_original() {
        let mut rng = StdRng::seed_from_u64(33);
        let g = generators::gnm_connected(20, 80, 100, &mut rng);
        for k in [1u64, 5, 50, 1000] {
            let h = scan_certificate(&g, k, &Meter::disabled());
            assert!(h.total_weight() <= g.total_weight());
            assert!(h.total_weight() <= k * g.n() as u64);
        }
    }

    #[test]
    fn large_k_keeps_everything_connected() {
        let g = generators::ring_of_cliques(3, 4, 10, 2);
        let h = scan_certificate(&g, 10_000, &Meter::disabled());
        assert!(h.is_connected());
        assert_eq!(h.total_weight(), g.total_weight());
    }

    #[test]
    fn k_zero_empty() {
        let g = generators::cycle(6, 3);
        let h = scan_certificate(&g, 0, &Meter::disabled());
        assert_eq!(h.m(), 0);
    }

    #[test]
    fn disconnected_input() {
        let g = Graph::from_edges(6, [(0, 1, 3), (1, 2, 3), (3, 4, 3)]);
        let h = scan_certificate(&g, 2, &Meter::disabled());
        assert_eq!(h.num_components(), g.num_components());
    }

    #[test]
    fn heavy_parallel_edges() {
        let g = Graph::from_edges(2, [(0, 1, 500), (0, 1, 500)]);
        let h = scan_certificate(&g, 100, &Meter::disabled());
        assert!(h.total_weight() >= 100, "connectivity up to k retained");
        assert!(h.total_weight() <= 200);
    }

    use pmc_graph::Graph;
}
