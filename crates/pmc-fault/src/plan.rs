//! Seeded, record/replayable fault plans.
//!
//! A [`FaultPlan`] is a list of [`FaultOp`]s: *at the `hit`-th
//! execution of probe point `point`, perform `action`*. Plans encode to
//! a single fixture string (the `fp1;…` format below) and parse back
//! bit-identically, so every failing plan the chaos suite finds can be
//! checked in and replayed — the same mechanism the concurrency model
//! checker uses for failing schedules (`v1:…` strings, DESIGN.md §11).
//!
//! ```text
//! fp1;seed=42;engine:graph_build@1=panic;rayon:steal@3=delay:2;engine:phase@1=exhaust
//! ```
//!
//! * `fp1` — format version tag.
//! * `seed=N` — the seed the plan was generated from (carried for
//!   provenance; replay uses the ops, not the seed).
//! * `<point>@<hit>=<action>` — one op. Actions: `panic`,
//!   `delay:<ms>`, `exhaust`.
//!
//! [`FaultPlan::generate`] derives a small random plan from a seed with
//! an inline splitmix64 (this crate is dependency-free), so a sweep
//! over seeds is a sweep over distinct plans.

use crate::error::PmcError;
use std::fmt::Write as _;

/// What an armed probe does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Raise an [`crate::InjectedPanic`]. Only honoured by probes
    /// declared panic-safe ([`crate::point_panicking`]); plain
    /// [`crate::point`] probes ignore panic ops so arbitrary plans can
    /// never unwind through non-unwind-safe scheduler regions.
    Panic,
    /// Sleep this many milliseconds (bounded by
    /// [`FaultAction::MAX_DELAY_MS`] at parse/generate time so no plan
    /// can encode a hang).
    Delay(u64),
    /// Exhaust the [`crate::Deadline`] registered with the active
    /// [`crate::FaultScope`], forcing the cooperative-cancellation
    /// path. No-op when no deadline is registered.
    Exhaust,
}

impl FaultAction {
    /// Upper bound on a single injected delay: long enough to shuffle
    /// schedules, short enough that a full 500-plan sweep stays cheap
    /// and no plan can encode a hang.
    pub const MAX_DELAY_MS: u64 = 5;
}

/// One armed fault: fire `action` at the `hit`-th execution of `point`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultOp {
    /// Probe-point name (e.g. `engine:tree_build`, `rayon:steal`).
    pub point: String,
    /// 1-based execution count at which the op fires (each op fires at
    /// most once).
    pub hit: u32,
    pub action: FaultAction,
}

/// A deterministic, replayable set of faults.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Provenance seed (0 for hand-written plans).
    pub seed: u64,
    pub ops: Vec<FaultOp>,
}

/// splitmix64 — the workspace's stock dependency-free mixer.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan with no ops (useful as the "control" arm of a sweep).
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// Derive a small plan from `seed` over the given probe points:
    /// 1–3 ops, each picking a point, a hit count in `1..=4`, and an
    /// action (panic / bounded delay / exhaust). Distinct seeds give
    /// distinct plans with overwhelming probability.
    pub fn generate(seed: u64, points: &[&str]) -> FaultPlan {
        let mut plan = FaultPlan { seed, ops: Vec::new() };
        if points.is_empty() {
            return plan;
        }
        let mut s = seed ^ 0xDEAD_BEEF_CAFE_F00D;
        let num_ops = 1 + (splitmix64(&mut s) % 3) as usize;
        for _ in 0..num_ops {
            let point = points[(splitmix64(&mut s) % points.len() as u64) as usize].to_string();
            let hit = 1 + (splitmix64(&mut s) % 4) as u32;
            let action = match splitmix64(&mut s) % 4 {
                0 => FaultAction::Panic,
                1 => FaultAction::Exhaust,
                _ => FaultAction::Delay(splitmix64(&mut s) % (FaultAction::MAX_DELAY_MS + 1)),
            };
            plan.ops.push(FaultOp { point, hit, action });
        }
        plan
    }

    /// Restrict to delay/exhaust actions only (rewrites `panic` ops to
    /// 1 ms delays) — the "solver must stay exact" control arm.
    pub fn without_panics(mut self) -> FaultPlan {
        for op in &mut self.ops {
            if op.action == FaultAction::Panic {
                op.action = FaultAction::Delay(1);
            }
        }
        self
    }

    /// The replayable fixture string (`fp1;…`).
    pub fn encode(&self) -> String {
        let mut out = format!("fp1;seed={}", self.seed);
        for op in &self.ops {
            let _ = write!(out, ";{}@{}=", op.point, op.hit);
            match op.action {
                FaultAction::Panic => out.push_str("panic"),
                FaultAction::Delay(ms) => {
                    let _ = write!(out, "delay:{ms}");
                }
                FaultAction::Exhaust => out.push_str("exhaust"),
            }
        }
        out
    }

    /// Parse a fixture string produced by [`FaultPlan::encode`].
    pub fn parse(text: &str) -> Result<FaultPlan, PmcError> {
        let bad = |message: String| PmcError::Parse { message };
        let mut parts = text.trim().split(';');
        match parts.next() {
            Some("fp1") => {}
            other => {
                return Err(bad(format!(
                    "fault plan must start with 'fp1', got {other:?}"
                )))
            }
        }
        let seed_part = parts
            .next()
            .ok_or_else(|| bad("fault plan missing 'seed=N' field".into()))?;
        let seed = seed_part
            .strip_prefix("seed=")
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(|| bad(format!("bad seed field '{seed_part}'")))?;
        let mut ops = Vec::new();
        for op_text in parts {
            if op_text.is_empty() {
                continue;
            }
            let (lhs, action_text) = op_text
                .rsplit_once('=')
                .ok_or_else(|| bad(format!("op '{op_text}' missing '=<action>'")))?;
            let (point, hit_text) = lhs
                .rsplit_once('@')
                .ok_or_else(|| bad(format!("op '{op_text}' missing '@<hit>'")))?;
            if point.is_empty() {
                return Err(bad(format!("op '{op_text}' has an empty point name")));
            }
            let hit = hit_text
                .parse::<u32>()
                .ok()
                .filter(|&h| h >= 1)
                .ok_or_else(|| bad(format!("op '{op_text}' has bad hit count '{hit_text}'")))?;
            let action = if action_text == "panic" {
                FaultAction::Panic
            } else if action_text == "exhaust" {
                FaultAction::Exhaust
            } else if let Some(ms_text) = action_text.strip_prefix("delay:") {
                let ms = ms_text
                    .parse::<u64>()
                    .ok()
                    .filter(|&ms| ms <= FaultAction::MAX_DELAY_MS)
                    .ok_or_else(|| {
                        bad(format!(
                            "op '{op_text}' has bad delay '{ms_text}' (max {} ms)",
                            FaultAction::MAX_DELAY_MS
                        ))
                    })?;
                FaultAction::Delay(ms)
            } else {
                return Err(bad(format!("op '{op_text}' has unknown action '{action_text}'")));
            };
            ops.push(FaultOp { point: point.to_string(), hit, action });
        }
        Ok(FaultPlan { seed, ops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_parse_round_trip() {
        let plan = FaultPlan {
            seed: 42,
            ops: vec![
                FaultOp { point: "engine:graph_build".into(), hit: 1, action: FaultAction::Panic },
                FaultOp { point: "rayon:steal".into(), hit: 3, action: FaultAction::Delay(2) },
                FaultOp { point: "engine:tree_build".into(), hit: 2, action: FaultAction::Exhaust },
            ],
        };
        let text = plan.encode();
        assert_eq!(
            text,
            "fp1;seed=42;engine:graph_build@1=panic;rayon:steal@3=delay:2;engine:tree_build@2=exhaust"
        );
        assert_eq!(FaultPlan::parse(&text).expect("round trip parses"), plan);
    }

    #[test]
    fn generated_plans_round_trip_and_are_distinct() {
        let points = ["engine:graph_build", "engine:tree_build", "rayon:job_run"];
        let mut encodings = std::collections::HashSet::new();
        for seed in 0..200u64 {
            let plan = FaultPlan::generate(seed, &points);
            assert!(!plan.ops.is_empty() && plan.ops.len() <= 3, "seed {seed}");
            for op in &plan.ops {
                assert!(points.contains(&op.point.as_str()));
                assert!((1..=4).contains(&op.hit));
                if let FaultAction::Delay(ms) = op.action {
                    assert!(ms <= FaultAction::MAX_DELAY_MS);
                }
            }
            let text = plan.encode();
            assert_eq!(FaultPlan::parse(&text).expect("generated plan parses"), plan);
            encodings.insert(text);
        }
        assert!(encodings.len() > 150, "seeds must spread over distinct plans");
    }

    #[test]
    fn generate_is_deterministic() {
        let points = ["a:b", "c:d"];
        assert_eq!(FaultPlan::generate(7, &points), FaultPlan::generate(7, &points));
    }

    #[test]
    fn without_panics_rewrites_only_panics() {
        let plan = FaultPlan {
            seed: 0,
            ops: vec![
                FaultOp { point: "x".into(), hit: 1, action: FaultAction::Panic },
                FaultOp { point: "y".into(), hit: 1, action: FaultAction::Exhaust },
            ],
        }
        .without_panics();
        assert_eq!(plan.ops[0].action, FaultAction::Delay(1));
        assert_eq!(plan.ops[1].action, FaultAction::Exhaust);
    }

    #[test]
    fn malformed_plans_return_typed_errors() {
        for bad in [
            "fp0;seed=1",
            "fp1",
            "fp1;seed=x",
            "fp1;seed=1;no-hit=panic",
            "fp1;seed=1;p@0=panic",
            "fp1;seed=1;p@1=explode",
            "fp1;seed=1;p@1=delay:9999999",
            "fp1;seed=1;@1=panic",
        ] {
            assert!(
                matches!(FaultPlan::parse(bad), Err(PmcError::Parse { .. })),
                "'{bad}' must be rejected"
            );
        }
    }

    #[test]
    fn empty_op_list_is_legal() {
        let plan = FaultPlan::parse("fp1;seed=9").expect("bare plan");
        assert_eq!(plan.seed, 9);
        assert!(plan.ops.is_empty());
    }
}
