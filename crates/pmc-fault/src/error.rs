//! The workspace's shared typed-error vocabulary.
//!
//! Library crates return [`PmcError`] on fallible paths instead of
//! panicking; callers that cannot recover still get a message with the
//! failing phase or input attached. Crates with richer local error
//! types (e.g. `pmc_graph::io::ParseError`) provide `From` conversions
//! into this type so the robust entry points can surface one error
//! enum.

use std::fmt;

/// Typed errors for every fallible path the robustness plane touches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PmcError {
    /// A wall-clock deadline (or explicit cancellation) expired at the
    /// named phase boundary.
    DeadlineExpired { phase: &'static str },
    /// A logical work budget ran out at the named phase boundary.
    BudgetExhausted { phase: &'static str },
    /// A solve died with a panic that was *not* an injected fault — a
    /// genuine bug surfaced as a typed error instead of an abort.
    SolvePanicked { context: String },
    /// Malformed caller input (graphs, parameters, plans).
    InvalidInput { message: String },
    /// A parse failure lifted from a crate-local parser.
    Parse { message: String },
}

impl fmt::Display for PmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmcError::DeadlineExpired { phase } => {
                write!(f, "deadline expired at phase boundary '{phase}'")
            }
            PmcError::BudgetExhausted { phase } => {
                write!(f, "work budget exhausted at phase boundary '{phase}'")
            }
            PmcError::SolvePanicked { context } => {
                write!(f, "solve panicked ({context})")
            }
            PmcError::InvalidInput { message } => write!(f, "invalid input: {message}"),
            PmcError::Parse { message } => write!(f, "parse error: {message}"),
        }
    }
}

impl std::error::Error for PmcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_phase() {
        let e = PmcError::DeadlineExpired { phase: "phase2:skeleton" };
        assert!(e.to_string().contains("phase2:skeleton"));
        let e = PmcError::BudgetExhausted { phase: "phase5:trees" };
        assert!(e.to_string().contains("budget"));
    }
}
