//! Cooperative cancellation: deadline and budget tokens, and the
//! quality flag a degraded solve carries.
//!
//! A [`Deadline`] is cheap to clone (an `Arc` around atomics) and is
//! threaded by reference through the solver engine and the batch
//! facades. Phase boundaries call [`Deadline::check`], which consumes
//! one unit of a logical budget (when one is set) and reports expiry as
//! a typed [`PmcError`]; inner parallel loops use the non-consuming
//! [`Deadline::expired`] probe. An expired solve does not block or
//! abort — it returns the best answer found so far with a
//! [`SolveQuality::Degraded`] flag naming the reason.
//!
//! Three expiry sources compose: a wall-clock instant
//! ([`Deadline::within`]), a logical tick budget ([`Deadline::ticks`],
//! deterministic and therefore the form the chaos suite replays), and
//! explicit cancellation ([`Deadline::cancel`], also the lever the
//! fault plane's `exhaust` action pulls).

use crate::error::PmcError;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a solve returned a degraded (but still valid and flagged)
/// answer instead of the exact one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradeReason {
    /// The wall-clock deadline passed (or the token was cancelled).
    DeadlineExpired { phase: &'static str },
    /// The logical work budget ran out.
    BudgetExhausted { phase: &'static str },
    /// An injected fault (the deterministic fault plane) fired at the
    /// named probe point.
    InjectedFault { point: String },
    /// A worker-side panic was absorbed and the fallback answer
    /// returned in its place.
    WorkerPanic,
}

/// Quality flag on solver results: exact, or degraded with the reason.
/// "Degraded" answers are always genuine cuts of the input graph (the
/// best candidate found before expiry, or the min-degree fallback), so
/// they over-estimate at worst — never silently wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveQuality {
    Exact,
    Degraded(DegradeReason),
}

impl SolveQuality {
    #[inline]
    pub fn is_exact(&self) -> bool {
        matches!(self, SolveQuality::Exact)
    }

    #[inline]
    pub fn is_degraded(&self) -> bool {
        !self.is_exact()
    }
}

struct DeadlineInner {
    /// Wall-clock expiry, if any.
    wall: Option<Instant>,
    /// Remaining logical ticks; `u64::MAX` sentinel means "no budget".
    ticks: AtomicU64,
    /// Set by [`Deadline::cancel`] (and the fault plane's `exhaust`).
    cancelled: AtomicBool,
}

const NO_BUDGET: u64 = u64::MAX;

/// A cloneable cancellation token combining an optional wall-clock
/// deadline, an optional logical tick budget, and manual cancellation.
#[derive(Clone)]
pub struct Deadline {
    inner: Arc<DeadlineInner>,
}

impl Deadline {
    fn build(wall: Option<Instant>, ticks: u64) -> Deadline {
        Deadline {
            inner: Arc::new(DeadlineInner {
                wall,
                ticks: AtomicU64::new(ticks),
                cancelled: AtomicBool::new(false),
            }),
        }
    }

    /// A token that never expires (the default for plain entry points).
    pub fn never() -> Deadline {
        Deadline::build(None, NO_BUDGET)
    }

    /// Expire `d` from now (wall clock).
    pub fn within(d: Duration) -> Deadline {
        Deadline::build(Instant::now().checked_add(d), NO_BUDGET)
    }

    /// A logical budget of `n` phase-boundary checks — deterministic,
    /// so chaos fixtures built on it replay bit-identically. `n = 0`
    /// is already expired.
    pub fn ticks(n: u64) -> Deadline {
        Deadline::build(None, n.min(NO_BUDGET - 1))
    }

    /// Cancel cooperatively: every subsequent `expired`/`check` fails.
    pub fn cancel(&self) {
        // Relaxed: a monotone one-way flag; readers only need to see it
        // eventually, and the solver re-checks at every phase boundary.
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Non-consuming expiry probe for inner loops (does not spend a
    /// tick).
    pub fn expired(&self) -> bool {
        // Relaxed: see `cancel`; the flag and counter are independent
        // monotone signals, no cross-variable ordering is required.
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if self.inner.ticks.load(Ordering::Relaxed) == 0 {
            return true;
        }
        matches!(self.inner.wall, Some(t) if Instant::now() >= t)
    }

    /// Phase-boundary check: consumes one tick of the logical budget
    /// (when one is set) and returns the typed reason on expiry.
    pub fn check(&self, phase: &'static str) -> Result<(), PmcError> {
        // Relaxed: monotone flags/counters, see `expired`.
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Err(PmcError::DeadlineExpired { phase });
        }
        if matches!(self.inner.wall, Some(t) if Instant::now() >= t) {
            return Err(PmcError::DeadlineExpired { phase });
        }
        let ticks = &self.inner.ticks;
        // Relaxed CAS loop: the tick counter is a pure admission
        // budget; no memory is published through it.
        let mut cur = ticks.load(Ordering::Relaxed);
        loop {
            if cur == NO_BUDGET {
                return Ok(());
            }
            if cur == 0 {
                return Err(PmcError::BudgetExhausted { phase });
            }
            // Relaxed on success and failure alike: pure admission
            // budget, no memory published through the counter.
            match ticks.compare_exchange_weak(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return Ok(()),
                Err(now) => cur = now,
            }
        }
    }

    /// The degradation reason this token's current state corresponds
    /// to, for flagging a partial answer produced after `expired()`
    /// turned true mid-phase.
    pub fn degrade_reason(&self, phase: &'static str) -> DegradeReason {
        // Relaxed: same monotone signals as `expired`.
        if self.inner.ticks.load(Ordering::Relaxed) == 0 {
            DegradeReason::BudgetExhausted { phase }
        } else {
            DegradeReason::DeadlineExpired { phase }
        }
    }

    /// Drain the token completely (budget to zero and cancelled): the
    /// fault plane's `exhaust` action.
    pub fn exhaust(&self) {
        // Relaxed: monotone one-way transition, see `cancel`.
        self.inner.ticks.store(0, Ordering::Relaxed);
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Deadline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Relaxed: diagnostic snapshot only.
        f.debug_struct("Deadline")
            .field("wall", &self.inner.wall)
            .field("ticks", &self.inner.ticks.load(Ordering::Relaxed))
            .field("cancelled", &self.inner.cancelled.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_never_expires() {
        let d = Deadline::never();
        assert!(!d.expired());
        for _ in 0..1000 {
            d.check("loop").expect("never-deadline must not expire");
        }
    }

    #[test]
    fn tick_budget_counts_down_and_reports_phase() {
        let d = Deadline::ticks(2);
        d.check("a").expect("tick 1");
        assert!(!d.expired());
        d.check("b").expect("tick 2");
        assert!(d.expired(), "budget drained");
        let err = d.check("c").expect_err("third check must fail");
        assert_eq!(err, PmcError::BudgetExhausted { phase: "c" });
        assert_eq!(d.degrade_reason("c"), DegradeReason::BudgetExhausted { phase: "c" });
    }

    #[test]
    fn zero_ticks_is_born_expired() {
        let d = Deadline::ticks(0);
        assert!(d.expired());
        assert!(d.check("start").is_err());
    }

    #[test]
    fn cancel_expires_all_clones() {
        let d = Deadline::ticks(100);
        let d2 = d.clone();
        d.cancel();
        assert!(d2.expired());
        assert_eq!(
            d2.check("p").expect_err("cancelled"),
            PmcError::DeadlineExpired { phase: "p" }
        );
    }

    #[test]
    fn wall_clock_deadline_expires() {
        let d = Deadline::within(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert!(d.expired());
        assert!(matches!(d.check("w"), Err(PmcError::DeadlineExpired { .. })));
    }

    #[test]
    fn exhaust_drains_budget_and_cancels() {
        let d = Deadline::ticks(50);
        d.exhaust();
        assert!(d.expired());
        assert_eq!(d.degrade_reason("x"), DegradeReason::BudgetExhausted { phase: "x" });
    }

    #[test]
    fn quality_predicates() {
        assert!(SolveQuality::Exact.is_exact());
        assert!(SolveQuality::Degraded(DegradeReason::WorkerPanic).is_degraded());
    }
}
