//! pmc-fault — deterministic fault-injection plane and cooperative
//! cancellation for the pmc workspace.
//!
//! This crate sits below every other workspace crate (it is
//! dependency-free) and provides three things:
//!
//! 1. **Probe points** ([`point`] / [`point_panicking`]): named
//!    call-sites sprinkled through the scheduler
//!    (`vendor/rayon/src/pool.rs`) and the solver engine
//!    (`pmc-mincut`). When no [`FaultScope`] is active they cost one
//!    relaxed atomic load and branch — nothing else.
//! 2. **Fault plans** ([`FaultPlan`]): seeded, record/replayable lists
//!    of (point, hit-count, action) ops. Activating a plan arms the
//!    probes; the `fp1;…` fixture string replays a failure
//!    bit-identically, mirroring the concurrency model checker's
//!    schedule strings.
//! 3. **Cancellation and degradation vocabulary** ([`Deadline`],
//!    [`SolveQuality`], [`DegradeReason`], [`PmcError`]): the types the
//!    engine uses to return *flagged, still-valid* answers instead of
//!    hanging or dying when time, budget, or luck runs out.
//!
//! # Probe capability split
//!
//! [`point`] honours only `delay` and `exhaust` actions; `panic` ops
//! at such a probe are ignored. [`point_panicking`] additionally
//! honours `panic` by raising a typed [`InjectedPanic`] payload via
//! `panic_any`. Probes are declared panicking **only** where an unwind
//! is provably absorbed (inside a job's `catch_unwind`, or inside the
//! robust entry point's guard) — this is what lets the chaos suite
//! throw arbitrary generated plans at the stack without ever being
//! able to orphan a latch or poison scheduler state.
//!
//! # Concurrency
//!
//! Fault activation is process-global (probes are free functions), so
//! [`FaultScope`] holds a global mutex for its whole lifetime:
//! fault-activating tests serialize against each other automatically
//! and cannot contaminate concurrently running fault-free tests beyond
//! the armed plan itself (which only they asked for).

mod deadline;
mod error;
mod plan;

pub use deadline::{Deadline, DegradeReason, SolveQuality};
pub use error::PmcError;
pub use plan::{FaultAction, FaultOp, FaultPlan};

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Panic payload raised by a `panic` fault op at a panic-capable probe.
/// The robust entry points downcast for this type to distinguish
/// injected chaos (degrade gracefully) from genuine bugs (surface as
/// [`PmcError::SolvePanicked`]).
#[derive(Debug, Clone)]
pub struct InjectedPanic {
    /// The probe point the op fired at.
    pub point: String,
}

impl InjectedPanic {
    /// Downcast a `catch_unwind` payload to an injected panic, if it
    /// is one.
    pub fn from_payload(payload: &(dyn std::any::Any + Send)) -> Option<&InjectedPanic> {
        payload.downcast_ref::<InjectedPanic>()
    }
}

impl std::fmt::Display for InjectedPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at probe '{}'", self.point)
    }
}

/// One armed op: the plan's op plus a live hit counter and fired flag.
struct ArmedOp {
    point: String,
    hit: u32,
    action: FaultAction,
    /// Executions of `point` seen so far (monotone).
    seen: AtomicU32,
    /// Each op fires at most once.
    fired: AtomicBool,
}

struct ActiveScope {
    ops: Vec<ArmedOp>,
    /// Deadline the `exhaust` action drains, when the caller registered
    /// one.
    deadline: Option<Deadline>,
}

/// `ACTIVE` is the fast-path gate: probes load it first and return
/// immediately when false, so disabled probes cost one relaxed load.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// The armed plan. Probes read it under this lock only after `ACTIVE`
/// says a scope exists.
fn scope_cell() -> &'static Mutex<Option<ActiveScope>> {
    static CELL: OnceLock<Mutex<Option<ActiveScope>>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(None))
}

/// Serializes fault-activating callers against each other for the whole
/// lifetime of a [`FaultScope`] (not just the arming instant).
fn serial_lock() -> &'static Mutex<()> {
    static CELL: OnceLock<Mutex<()>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(()))
}

/// RAII guard for an armed fault plan. Arms on construction, disarms on
/// drop, and holds the global serialization mutex in between so two
/// scopes can never overlap.
pub struct FaultScope {
    _serial: MutexGuard<'static, ()>,
}

impl FaultScope {
    /// Arm `plan` with no registered deadline (`exhaust` ops become
    /// no-ops).
    pub fn activate(plan: &FaultPlan) -> FaultScope {
        FaultScope::arm(plan, None)
    }

    /// Arm `plan` and register `deadline` as the token the `exhaust`
    /// action drains.
    pub fn activate_with_deadline(plan: &FaultPlan, deadline: &Deadline) -> FaultScope {
        FaultScope::arm(plan, Some(deadline.clone()))
    }

    fn arm(plan: &FaultPlan, deadline: Option<Deadline>) -> FaultScope {
        // A panicking fault-activating test may poison either mutex;
        // both protect state this function rebuilds from scratch, so
        // recover the guard.
        let serial = serial_lock().lock().unwrap_or_else(|e| e.into_inner());
        let ops = plan
            .ops
            .iter()
            .map(|op| ArmedOp {
                point: op.point.clone(),
                hit: op.hit,
                action: op.action,
                seen: AtomicU32::new(0),
                fired: AtomicBool::new(false),
            })
            .collect();
        *scope_cell().lock().unwrap_or_else(|e| e.into_inner()) =
            Some(ActiveScope { ops, deadline });
        // Release: publish the armed scope before probes see the gate.
        ACTIVE.store(true, Ordering::Release);
        FaultScope { _serial: serial }
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        // Release: order the disarm after any probe work in this scope.
        ACTIVE.store(false, Ordering::Release);
        *scope_cell().lock().unwrap_or_else(|e| e.into_inner()) = None;
        // `_serial` drops last, letting the next scope in.
    }
}

/// What a probe found it should do. Split out so the panic is raised
/// *after* the scope mutex is released.
enum Firing {
    Delay(Duration),
    Panic(String),
}

fn consult(name: &str, allow_panic: bool) -> Option<Firing> {
    // Acquire: pairs with the Release store in `arm`, so a true gate
    // implies the armed scope (behind its own mutex) is initialized.
    if !ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    let guard = scope_cell().lock().unwrap_or_else(|e| e.into_inner());
    let scope = guard.as_ref()?;
    for op in &scope.ops {
        if op.point != name {
            continue;
        }
        // Relaxed: the counter is only read/written under the scope
        // mutex here; atomics are used so `ArmedOp` stays Sync.
        let seen = op.seen.fetch_add(1, Ordering::Relaxed) + 1;
        if seen != op.hit || op.fired.swap(true, Ordering::Relaxed) {
            continue;
        }
        match op.action {
            FaultAction::Delay(ms) => return Some(Firing::Delay(Duration::from_millis(ms))),
            FaultAction::Exhaust => {
                if let Some(d) = &scope.deadline {
                    d.exhaust();
                }
                return None;
            }
            FaultAction::Panic => {
                if allow_panic {
                    return Some(Firing::Panic(name.to_string()));
                }
                // Panic op at a non-panic-capable probe: ignored by
                // design (see crate docs), but it still consumed its
                // firing so plans behave deterministically.
                return None;
            }
        }
    }
    None
}

fn execute(firing: Option<Firing>) {
    match firing {
        None => {}
        Some(Firing::Delay(d)) => std::thread::sleep(d),
        Some(Firing::Panic(point)) => std::panic::panic_any(InjectedPanic { point }),
    }
}

/// A named probe point that honours `delay` and `exhaust` ops. Safe to
/// place anywhere, including regions that must not unwind.
#[inline]
pub fn point(name: &str) {
    // Relaxed pre-check: the disabled fast path. `consult` re-checks
    // with Acquire before touching the scope.
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    execute(consult(name, false));
}

/// A named probe point that additionally honours `panic` ops by raising
/// an [`InjectedPanic`]. Place **only** where an unwind is provably
/// absorbed (inside a job's `catch_unwind` or a robust entry guard).
#[inline]
pub fn point_panicking(name: &str) {
    // Relaxed pre-check: see `point`.
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    execute(consult(name, true));
}

/// True when a fault scope is currently armed (diagnostics only).
pub fn faults_active() -> bool {
    // Relaxed: advisory snapshot.
    ACTIVE.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probes_are_inert() {
        point("nope");
        point_panicking("nope");
        assert!(!faults_active());
    }

    #[test]
    fn delay_fires_on_exact_hit_only_once() {
        let plan = FaultPlan::parse("fp1;seed=0;t:delay@2=delay:1").expect("plan");
        let _scope = FaultScope::activate(&plan);
        let t0 = std::time::Instant::now();
        point("t:delay"); // hit 1 — no-op
        let before_hit = t0.elapsed();
        point("t:delay"); // hit 2 — sleeps 1ms
        let after_hit = t0.elapsed();
        assert!(after_hit - before_hit >= Duration::from_millis(1));
        point("t:delay"); // hit 3 — already fired
    }

    #[test]
    fn panic_op_raises_typed_payload_at_panicking_probe() {
        let plan = FaultPlan::parse("fp1;seed=0;t:boom@1=panic").expect("plan");
        let _scope = FaultScope::activate(&plan);
        let err = std::panic::catch_unwind(|| point_panicking("t:boom"))
            .expect_err("must panic");
        let injected = InjectedPanic::from_payload(err.as_ref()).expect("typed payload");
        assert_eq!(injected.point, "t:boom");
    }

    #[test]
    fn panic_op_is_ignored_at_plain_probe() {
        let plan = FaultPlan::parse("fp1;seed=0;t:quiet@1=panic").expect("plan");
        let _scope = FaultScope::activate(&plan);
        point("t:quiet"); // must not panic
    }

    #[test]
    fn exhaust_drains_registered_deadline() {
        let plan = FaultPlan::parse("fp1;seed=0;t:budget@1=exhaust").expect("plan");
        let deadline = Deadline::never();
        let _scope = FaultScope::activate_with_deadline(&plan, &deadline);
        assert!(!deadline.expired());
        point("t:budget");
        assert!(deadline.expired(), "exhaust must drain the deadline");
    }

    #[test]
    fn exhaust_without_deadline_is_a_noop() {
        let plan = FaultPlan::parse("fp1;seed=0;t:budget@1=exhaust").expect("plan");
        let _scope = FaultScope::activate(&plan);
        point("t:budget");
    }

    #[test]
    fn scope_drop_disarms() {
        let plan = FaultPlan::parse("fp1;seed=0;t:gone@1=delay:1").expect("plan");
        {
            let _scope = FaultScope::activate(&plan);
            assert!(faults_active());
        }
        assert!(!faults_active());
        point("t:gone"); // disarmed — inert
    }

    #[test]
    fn scopes_serialize() {
        // Two scopes in sequence from different threads never overlap;
        // the second activation blocks until the first guard drops.
        let plan = FaultPlan::parse("fp1;seed=0;t:ser@1=delay:1").expect("plan");
        let scope1 = FaultScope::activate(&plan);
        let plan2 = plan.clone();
        let handle = std::thread::spawn(move || {
            let _scope2 = FaultScope::activate(&plan2);
            faults_active()
        });
        std::thread::sleep(Duration::from_millis(5));
        drop(scope1);
        assert!(handle.join().expect("second scope thread"), "second scope armed after first dropped");
    }
}
