//! Machine-readable benchmark records: `BENCH_<experiment>.json`.
//!
//! Every experiment binary emits one record per run so the perf
//! trajectory is recorded next to the human-readable tables (ROADMAP
//! "Benchmark trajectory"). The workspace's serde is a vendored no-op
//! shim, so the JSON here is written by hand — the schema is flat
//! enough (strings, integers, floats, parallel arrays) that a small
//! emitter is clearer than a serializer anyway.
//!
//! Schema (all records):
//!
//! ```json
//! {
//!   "experiment": "speedup",
//!   "workload": "nonsparse n=20000",
//!   "n": 20000, "m": 2828427,
//!   "threads": [1, 2, 4],
//!   "wall_ms": [812.0, 431.0, 240.0],
//!   "metered_queries": 123456,
//!   "speedup": 3.38,
//!   "extra": { "trees": 16.0 }
//! }
//! ```
//!
//! `threads[i]` and `wall_ms[i]` are parallel arrays; `speedup` is the
//! experiment's headline ratio (wall speedup vs the 1-thread baseline
//! for `speedup`, shared-context vs rebuild for `amortize`, default
//! variant vs naive for `ablation`). `extra` carries experiment-
//! specific numbers without schema churn.

use std::io;
use std::path::PathBuf;

/// One benchmark record, serialized to `BENCH_<experiment>.json`.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// File stem suffix and the record's `experiment` field.
    pub experiment: String,
    /// Human-readable workload name.
    pub workload: String,
    pub n: usize,
    pub m: usize,
    /// `(threads, wall ms)` samples; parallel arrays in the JSON.
    pub runs: Vec<(usize, f64)>,
    /// The experiment's metered query count (CutQuery work).
    pub metered_queries: u64,
    /// Headline speedup ratio of the experiment.
    pub speedup: f64,
    /// Experiment-specific numbers, serialized under `"extra"`.
    pub extra: Vec<(String, f64)>,
}

impl BenchRecord {
    /// Serialize to a JSON object (stable key order, one key per line).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"experiment\": {},\n", json_str(&self.experiment)));
        s.push_str(&format!("  \"workload\": {},\n", json_str(&self.workload)));
        s.push_str(&format!("  \"n\": {},\n", self.n));
        s.push_str(&format!("  \"m\": {},\n", self.m));
        let threads: Vec<String> = self.runs.iter().map(|&(p, _)| p.to_string()).collect();
        let walls: Vec<String> = self.runs.iter().map(|&(_, w)| json_f64(w)).collect();
        s.push_str(&format!("  \"threads\": [{}],\n", threads.join(", ")));
        s.push_str(&format!("  \"wall_ms\": [{}],\n", walls.join(", ")));
        s.push_str(&format!("  \"metered_queries\": {},\n", self.metered_queries));
        s.push_str(&format!("  \"speedup\": {},\n", json_f64(self.speedup)));
        let extra: Vec<String> = self
            .extra
            .iter()
            .map(|(k, v)| format!("{}: {}", json_str(k), json_f64(*v)))
            .collect();
        s.push_str(&format!("  \"extra\": {{{}}}\n", extra.join(", ")));
        s.push_str("}\n");
        s
    }

    /// Write `BENCH_<experiment>.json` into `$PMC_BENCH_DIR` (default:
    /// the current directory) and return the path.
    pub fn write(&self) -> io::Result<PathBuf> {
        let dir = std::env::var_os("PMC_BENCH_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."));
        let path = dir.join(format!("BENCH_{}.json", self.experiment));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Write, print the destination, and swallow (but report) IO errors
    /// — a bench run should never fail because the record could not be
    /// persisted.
    pub fn write_and_announce(&self) {
        match self.write() {
            Ok(path) => println!("recorded {}", path.display()),
            Err(e) => eprintln!("warning: could not write BENCH_{}.json: {e}", self.experiment),
        }
    }
}

/// JSON string literal with the mandatory escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite floats only; JSON has no NaN/Infinity, so clamp to null-free
/// sentinels rather than emit an invalid document.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> BenchRecord {
        BenchRecord {
            experiment: "speedup".into(),
            workload: "nonsparse n=100".into(),
            n: 100,
            m: 1000,
            runs: vec![(1, 81.25), (4, 20.5)],
            metered_queries: 4242,
            speedup: 3.96,
            extra: vec![("trees".into(), 16.0)],
        }
    }

    #[test]
    fn json_has_all_schema_fields() {
        let j = record().to_json();
        for needle in [
            "\"experiment\": \"speedup\"",
            "\"workload\": \"nonsparse n=100\"",
            "\"n\": 100",
            "\"m\": 1000",
            "\"threads\": [1, 4]",
            "\"wall_ms\": [81.250, 20.500]",
            "\"metered_queries\": 4242",
            "\"speedup\": 3.960",
            "\"extra\": {\"trees\": 16.000}",
        ] {
            assert!(j.contains(needle), "missing {needle} in:\n{j}");
        }
    }

    #[test]
    fn json_is_structurally_balanced() {
        // A light well-formedness check without a parser dependency:
        // balanced braces/brackets and an even quote count outside
        // escapes.
        let j = record().to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert_eq!(j.matches('"').count() % 2, 0);
    }

    #[test]
    fn escapes_and_non_finite_floats() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_f64(f64::INFINITY), "0.0");
        assert_eq!(json_f64(f64::NAN), "0.0");
    }

    #[test]
    fn write_respects_bench_dir() {
        let dir = std::env::temp_dir().join("pmc_bench_json_test");
        std::fs::create_dir_all(&dir).expect("create temp bench dir");
        // Env vars are process-global; this test is the only writer of
        // PMC_BENCH_DIR in the suite.
        std::env::set_var("PMC_BENCH_DIR", &dir);
        let path = record().write().expect("write BENCH json record");
        std::env::remove_var("PMC_BENCH_DIR");
        assert_eq!(path, dir.join("BENCH_speedup.json"));
        let body = std::fs::read_to_string(&path).expect("read back BENCH json record");
        assert!(body.contains("\"metered_queries\": 4242"));
        std::fs::remove_file(&path).expect("remove temp BENCH json record");
    }
}
