//! E-allocs — the memory-discipline gauge: allocations and peak bytes
//! per phase, and the fused-batch vs per-query wall clock.
//!
//! The binary installs the counting allocator
//! ([`pmc_bench::alloc_meter::CountingAlloc`]) for the whole process,
//! builds one workload + `TreeContext`, warms the batched query
//! kernels, then gauges the **steady-state** `cut_batch_into` /
//! `cov_batch_into` calls — which must perform zero heap allocations
//! once warm (DESIGN.md §13) — and times the same request batch through
//! the per-query path for comparison. Everything lands in
//! `BENCH_allocs.json`.
//!
//! `cargo run -p pmc-bench --release --bin allocs [n]` prints the
//! gauges; `--smoke` additionally *asserts* the steady-state gauges are
//! exactly zero — the CI gate behind the zero-allocation claim. Unlike
//! the speedup smokes this gate needs no minimum hardware parallelism
//! (the steady path is single-threaded by design), so it always arms.

use pmc_bench::alloc_meter::{self, AllocGauge, CountingAlloc};
use pmc_bench::{workloads, BenchRecord};
use pmc_mincut::engine::TreeContext;
use pmc_mincut::TwoRespectParams;
use pmc_parallel::meter::{CostKind, Meter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Requests per batch: large enough that the grouped path (sort + fused
/// range sweep) engages and the per-query comparison is measurable.
const BATCH: usize = 20_000;
/// Timing repetitions (min is reported — steadiest on a busy box).
const REPS: usize = 5;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let n: usize = args.iter().skip(1).find_map(|a| a.parse().ok()).unwrap_or(2_000);

    // Phase 1+2: workload + context construction (allocates freely).
    let ((graph, tree_edges), build_gauge) =
        alloc_meter::measure(|| workloads::graph_with_tree(n, 0.5, 23));
    let (ctx, ctx_gauge) = alloc_meter::measure(|| {
        TreeContext::from_edges(&graph, &tree_edges, 0, &TwoRespectParams::default(), &Meter::disabled())
    });

    // Request batch: hot pairs with duplicates, like a serving mix.
    let mut rng = StdRng::seed_from_u64(7);
    let hot: Vec<(u32, u32)> = (0..(n as u32 / 2).max(8))
        .map(|_| (rng.random_range(1..n as u32), rng.random_range(1..n as u32)))
        .collect();
    let pairs: Vec<(u32, u32)> =
        (0..BATCH).map(|_| hot[rng.random_range(0..hot.len())]).collect();
    let es: Vec<u32> = (0..BATCH).map(|_| rng.random_range(1..n as u32)).collect();
    let meter = Meter::disabled();

    // Phase 3: warm-up — first calls size every scratch buffer.
    let mut cut_out: Vec<u64> = Vec::new();
    let mut cov_out: Vec<u64> = Vec::new();
    let (_, warm_gauge) = alloc_meter::measure(|| {
        ctx.cut_batch_into(&pairs, &mut cut_out, &meter);
        ctx.cov_batch_into(&es, &mut cov_out);
    });

    // Phase 4: steady state — must be allocation free.
    let (_, steady_cut) =
        alloc_meter::measure(|| ctx.cut_batch_into(&pairs, &mut cut_out, &meter));
    let (_, steady_cov) = alloc_meter::measure(|| ctx.cov_batch_into(&es, &mut cov_out));

    // Wall clock: the same batch per-query vs batched (the batched path
    // dedups hot pairs and answers all rectangles in one fused sweep).
    let mut single: Vec<u64> = Vec::with_capacity(pairs.len());
    let mut per_query_ms = f64::MAX;
    for _ in 0..REPS {
        single.clear();
        let t0 = Instant::now();
        single.extend(pairs.iter().map(|&(e, f)| ctx.cut(e, f, &meter)));
        per_query_ms = per_query_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    let mut batched_ms = f64::MAX;
    for _ in 0..REPS {
        let t0 = Instant::now();
        ctx.cut_batch_into(&pairs, &mut cut_out, &meter);
        batched_ms = batched_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    assert_eq!(single, cut_out, "batched and per-query values must agree");

    // Distinct-query volume for the record (the dedup factor).
    let qmeter = Meter::enabled();
    ctx.cut_batch_into(&pairs, &mut cut_out, &qmeter);
    let distinct = qmeter.get(CostKind::CutQuery);

    let speedup = per_query_ms / batched_ms;
    println!("E-allocs: n={n}, m={}, batch={BATCH} ({distinct} distinct cut queries)", graph.m());
    print_gauge("build (graph+tree gen)", &build_gauge);
    print_gauge("build (TreeContext)", &ctx_gauge);
    print_gauge("warm-up batch", &warm_gauge);
    print_gauge("steady cut_batch_into", &steady_cut);
    print_gauge("steady cov_batch_into", &steady_cov);
    println!(
        "wall: per-query {per_query_ms:.2} ms, batched {batched_ms:.2} ms ({speedup:.2}x)"
    );

    BenchRecord {
        experiment: "allocs".into(),
        workload: format!("nonsparse n={n}"),
        n,
        m: graph.m(),
        runs: vec![(1, per_query_ms), (1, batched_ms)],
        metered_queries: distinct,
        speedup,
        extra: vec![
            ("batch".into(), BATCH as f64),
            ("build_allocs".into(), (build_gauge.allocs + ctx_gauge.allocs) as f64),
            ("warmup_allocs".into(), warm_gauge.allocs as f64),
            ("warmup_peak_bytes".into(), warm_gauge.peak_growth_bytes as f64),
            ("steady_cut_batch_allocs".into(), steady_cut.allocs as f64),
            ("steady_cut_batch_peak_bytes".into(), steady_cut.peak_growth_bytes as f64),
            ("steady_cov_batch_allocs".into(), steady_cov.allocs as f64),
            ("steady_cov_batch_peak_bytes".into(), steady_cov.peak_growth_bytes as f64),
            ("per_query_ms".into(), per_query_ms),
            ("batched_ms".into(), batched_ms),
        ],
    }
    .write_and_announce();

    if smoke {
        assert_eq!(
            (steady_cut.allocs, steady_cut.peak_growth_bytes),
            (0, 0),
            "steady-state cut_batch_into must be allocation free after warm-up"
        );
        assert_eq!(
            (steady_cov.allocs, steady_cov.peak_growth_bytes),
            (0, 0),
            "steady-state cov_batch_into must be allocation free after warm-up"
        );
        assert!(
            warm_gauge.allocs > 0,
            "warm-up gauge is implausibly zero — is the counting allocator installed?"
        );
        println!("PASS: steady-state batch queries perform 0 heap allocations");
    }
}

fn print_gauge(phase: &str, g: &AllocGauge) {
    println!("  {phase:<28} {:>10} allocs  {:>12} peak bytes", g.allocs, g.peak_growth_bytes);
}
