//! E-depth (structural) — the critical-path gauges recorded by the
//! meters during one exact run: packing iterations (`O(log² n)`),
//! hierarchy levels (`<= log W`), range-tree height (`O(1/ε)`), and the
//! deepest packed-tree height. These are the quantities the depth
//! theorems bound, reported directly rather than via Brent inversion
//! (useful on low-core hosts; see EXPERIMENTS.md).
//!
//! `cargo run -p pmc-bench --release --bin gauges [full]`

use pmc_bench::workloads;
use pmc_bench::Table;
use pmc_mincut::exact::exact_mincut_metered;
use pmc_mincut::ExactParams;
use pmc_parallel::Meter;

fn main() {
    let full = std::env::args().any(|a| a == "full");
    let sizes: &[usize] = if full { &[128, 256, 512, 1024, 2048] } else { &[128, 256, 512] };
    let mut t = Table::new([
        "n",
        "lg²n",
        "packing iters",
        "hierarchy levels",
        "range height",
        "tree height",
        "graph build",
        "tree build",
    ]);
    for &n in sizes {
        let w = workloads::non_sparse(n, 99);
        let meter = Meter::enabled();
        let r = exact_mincut_metered(&w.graph, &ExactParams::default(), &meter);
        assert!(r.cut.value > 0);
        let rep = meter.report();
        let get = |k: &str| rep.depth.get(k).copied().unwrap_or(0).to_string();
        let lg = (n as f64).log2();
        t.row([
            n.to_string(),
            format!("{:.0}", lg * lg),
            get("packing:iterations"),
            get("approx:hierarchy_levels"),
            get("cutquery:range_height"),
            get("two_respect:tree_height"),
            get("engine:graph_build"),
            get("engine:tree_build"),
        ]);
    }
    t.print("Structural depth gauges (each bounded by the claimed polylog)");
    println!(
        "\nReading guide: packing iterations track lg²n; hierarchy levels are bounded by\n\
         lg(total weight); range height is O(1/ε) (constant in n at fixed ε); tree height\n\
         is the per-tree critical path of the cut-finding stage (max over packed trees);\n\
         graph/tree build are the engine's construction critical paths (DESIGN.md §8),\n\
         attributed separately from query depth."
    );
}
