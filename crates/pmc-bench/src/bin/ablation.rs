//! E-ablate — design ablations: interest strategy (centroid vs
//! heavy-path, metered side by side), decomposition strategy, Monge
//! engine, LCA substrate, ε, interest filter on/off.
//! `cargo run -p pmc-bench --release --bin ablation [full|--smoke]`
//!
//! `--smoke` runs a reduced size for CI: every variant still has to
//! agree with the all-pairs oracle (asserted inside the runner), so the
//! strategy comparison cannot silently rot — and the substrate gauges
//! are gated (SMAWK strictly fewer metered entry evaluations than
//! divide-and-conquer; sparse-table LCA strictly fewer metered steps
//! than lifting on the same query stream).

use pmc_bench::experiments::run_ablation;
use pmc_bench::BenchRecord;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let full = args.iter().any(|a| a == "full");
    let n = if smoke {
        128
    } else if full {
        2048
    } else {
        512
    };
    let (t, summary) = run_ablation(n, 19);
    t.print("Ablations — one 2-respecting solve, all variants must agree on the value");
    BenchRecord {
        experiment: "ablation".into(),
        workload: format!("graph_with_tree n={n} d=0.5"),
        n: summary.n,
        m: summary.m,
        runs: vec![(rayon::current_num_threads(), summary.default_wall_ms)],
        metered_queries: summary.default_queries,
        speedup: summary.naive_wall_ms / summary.default_wall_ms,
        extra: vec![
            ("naive_wall_ms".into(), summary.naive_wall_ms),
            ("smawk_monge_entries".into(), summary.smawk_monge_entries as f64),
            ("dc_monge_entries".into(), summary.dc_monge_entries as f64),
            ("sparse_lca_steps".into(), summary.sparse_lca_steps as f64),
            ("lifting_lca_steps".into(), summary.lifting_lca_steps as f64),
        ],
    }
    .write_and_announce();
    println!("\nReading guide: the naive row shows the work the interest filter removes;\nthe centroid vs heavy-path rows meter Claim 4.13's O(log n) arm tracing against\nthe O(log² n) fallback ('interest qs'); D&C Monge trades a log factor of\nentries for parallel span; the lifting-LCA row shows the per-query step\ncount the sparse table collapses to one ('lca steps').");
    if smoke {
        assert!(
            summary.smawk_monge_entries < summary.dc_monge_entries,
            "SMAWK metered entry evaluations ({}) not strictly below \
             divide-and-conquer's ({}) at n = {n}",
            summary.smawk_monge_entries,
            summary.dc_monge_entries
        );
        assert!(
            summary.sparse_lca_steps < summary.lifting_lca_steps,
            "sparse-table LCA steps ({}) not strictly below lifting's ({}) at n = {n}",
            summary.sparse_lca_steps,
            summary.lifting_lca_steps
        );
        println!(
            "\n--smoke: all variants agreed with the all-pairs oracle at n = {n}; \
             SMAWK entries {} < D&C {}; sparse LCA steps {} < lifting {}.",
            summary.smawk_monge_entries,
            summary.dc_monge_entries,
            summary.sparse_lca_steps,
            summary.lifting_lca_steps
        );
    }
}
