//! E-ablate — design ablations: decomposition strategy, Monge engine,
//! ε, interest filter on/off.
//! `cargo run -p pmc-bench --release --bin ablation [full]`

use pmc_bench::experiments::run_ablation;

fn main() {
    let full = std::env::args().any(|a| a == "full");
    let n = if full { 2048 } else { 512 };
    let t = run_ablation(n, 19);
    t.print("Ablations — one 2-respecting solve, all variants must agree on the value");
    println!("\nReading guide: the naive row shows the work the interest filter removes;\nD&C Monge trades a log factor of entries for parallel span.");
}
