//! E-amortize — the two-level engine's Phase 5 profile: shared
//! graph-lifetime context + parallel tree-lifetime sub-builds against
//! the faithful pre-engine baseline (per-invocation coalesce /
//! connectivity / degree prelude, then sequential tree-structure
//! builds for every packed tree). Both modes solve the same packing
//! with the same parallel query stages and must agree on the cut
//! value.
//!
//! `cargo run -p pmc-bench --release --bin amortize [full]` prints the
//! table across sizes.
//!
//! `--smoke [n]` runs the CI gate instead: at the default size the
//! shared-context mode must be ≥ 1.2× faster than rebuild-per-tree.
//! Like `speedup --smoke`, the assertion only arms when the hardware
//! has ≥ 4 threads (the parallel sub-builds are half the win); on
//! smaller machines the probe still runs and checks value agreement.

use pmc_bench::experiments::{measure_amortize, metered_exact_queries, run_amortize, AmortizeProbe};
use pmc_bench::{workloads, BenchRecord};

/// Record the probe as `BENCH_amortize.json`: `threads` is the current
/// pool width for both modes (only construction differs), the headline
/// speedup is shared-context over rebuild-per-tree. `extra_tail`
/// appends caller context (the smoke's gate-enforcement flags).
fn record(n: usize, seed: u64, probe: &AmortizeProbe, extra_tail: Vec<(String, f64)>) {
    let g = workloads::non_sparse(n, seed).graph;
    let mut extra = vec![
        ("trees".into(), probe.trees as f64),
        ("rebuild_ms".into(), probe.rebuild_ms),
        ("shared_ms".into(), probe.shared_ms),
        ("cut_value".into(), probe.value as f64),
    ];
    extra.extend(extra_tail);
    BenchRecord {
        experiment: "amortize".into(),
        workload: format!("nonsparse n={n}"),
        n,
        m: probe.m,
        runs: vec![
            (rayon::current_num_threads(), probe.rebuild_ms),
            (rayon::current_num_threads(), probe.shared_ms),
        ],
        metered_queries: metered_exact_queries(&g),
        speedup: probe.speedup(),
        extra,
    }
    .write_and_announce();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke(&args);
        return;
    }
    let full = args.iter().any(|a| a == "full");
    let sizes: &[usize] = if full { &[1000, 2000, 4000, 8000] } else { &[1000, 2000, 4000] };
    let t = run_amortize(sizes, 23);
    t.print("E-amortize — Phase 5: shared two-level contexts vs rebuild-per-tree");
    // Record the largest size as the trajectory point.
    let n = *sizes.last().expect("size list is non-empty");
    record(n, 23, &measure_amortize(n, 23), Vec::new());
    println!(
        "\nReading guide: 'rebuild' replicates the pre-engine Phase 5 (one coalesce +\n\
         connectivity + degree pass per invocation, then LCA/cut-query/decomposition/\n\
         interest built back-to-back per packed tree); 'shared' builds one GraphContext\n\
         and forks each TreeContext's sub-builds under rayon::join."
    );
}

fn smoke(args: &[String]) {
    const SMOKE_THREADS: usize = 4;
    const MIN_SPEEDUP: f64 = 1.2;
    let n: usize = args
        .iter()
        .skip_while(|a| *a != "--smoke")
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4000);
    let hw = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    let gate_enforced = hw >= SMOKE_THREADS;
    let probe = measure_amortize(n, 23);
    // The recorded point says whether the speedup gate actually armed,
    // so a narrow runner's JSON is distinguishable from a real pass.
    record(
        n,
        23,
        &probe,
        vec![
            ("gate_enforced".into(), if gate_enforced { 1.0 } else { 0.0 }),
            ("hw_threads".into(), hw as f64),
            ("gate_min_speedup".into(), MIN_SPEEDUP),
        ],
    );
    let ratio = probe.speedup();
    println!(
        "E-amortize smoke: n={n}, trees={}, rebuild={:.0} ms, shared={:.0} ms, \
         shared speedup {ratio:.2}x (hardware threads: {hw})",
        probe.trees, probe.rebuild_ms, probe.shared_ms
    );
    if hw >= SMOKE_THREADS {
        assert!(
            ratio >= MIN_SPEEDUP,
            "shared-context speedup {ratio:.2}x is below the {MIN_SPEEDUP}x gate \
             (rebuild={:.0} ms, shared={:.0} ms, n={n})",
            probe.rebuild_ms,
            probe.shared_ms
        );
        println!("PASS: shared-context speedup >= {MIN_SPEEDUP}x");
    } else if std::env::var("PMC_BENCH_STRICT").is_ok_and(|v| v == "1") {
        // CI sets PMC_BENCH_STRICT=1: a runner too narrow to run the
        // gate is a job failure, not a silent green.
        eprintln!(
            "FAIL: {hw} hardware threads < {SMOKE_THREADS} required for the amortize \
             gate and PMC_BENCH_STRICT=1 — refusing to skip"
        );
        std::process::exit(2);
    } else {
        // Loud skip on stderr (not a bare pass): say exactly what was
        // and was not checked, mirroring the gate_enforced=0 flag the
        // JSON row carries.
        eprintln!(
            "SKIPPED: amortize speedup gate NOT enforced — {hw} hardware thread(s) < \
             {SMOKE_THREADS} required (the shared-context win needs parallel sub-builds). \
             Only cut-value agreement between modes was checked; \
             BENCH_amortize.json records gate_enforced=0."
        );
    }
}
