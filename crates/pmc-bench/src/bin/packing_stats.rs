//! E-4.18 — tree-packing statistics on planted-cut graphs.
//! `cargo run -p pmc-bench --release --bin packing_stats [full]`

use pmc_bench::experiments::run_packing_stats;

fn main() {
    let full = std::env::args().any(|a| a == "full");
    let sizes: &[usize] = if full { &[64, 128, 256, 512] } else { &[64, 128] };
    let t = run_packing_stats(sizes, 23);
    t.print("Theorem 4.18 — packing statistics (some tree must 2-respect the optimum)");
    println!("\nReading guide: '2-respecting trees' ≥ 1 realizes Karger's packing guarantee.");
}
