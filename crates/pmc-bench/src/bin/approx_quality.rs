//! E-3.1 — Theorem 3.1 approximation quality.
//! `cargo run -p pmc-bench --release --bin approx_quality [full]`

use pmc_bench::experiments::run_approx_quality;

fn main() {
    let full = std::env::args().any(|a| a == "full");
    let sizes: &[usize] = if full { &[24, 48, 96, 192] } else { &[24, 48] };
    let t = run_approx_quality(sizes, 7);
    t.print("Theorem 3.1 — approximation quality (λ̂/λ must stay within a constant band)");
    println!("\nReading guide: λ̂/λ in [1/3, 3] = the O(1)-approximation; refined/λ near 1±ε = the refinement.");
}
