//! T1 — regenerate Table 1 (work comparison) from measured operation
//! counts. `cargo run -p pmc-bench --release --bin table1 [full]`

use pmc_bench::experiments::run_table1;

fn main() {
    let full = std::env::args().any(|a| a == "full");
    let sizes: &[usize] =
        if full { &[128, 256, 512, 1024, 2048] } else { &[128, 256, 512] };
    let t = run_table1(sizes, 0x71);
    t.print("Table 1 — total work: this paper vs the no-filter baseline (non-sparse m ~ n^1.5)");
    println!(
        "\nReading guide: 'ours/(m·lg n)' flattening = the O(m log n) work claim;\n\
         'naive/(m·lg⁴n)' bounded = the baseline tracks the GG18-era m·polylog profile;\n\
         'naive/ours' growing with n = the paper's Ω(log³ n) separation (Table 1's shape)."
    );
}
