//! E-4.24/4.25/4.26 — the ε knob of the range structures and the dense
//! vs sparse crossover of Theorem 4.26.
//! `cargo run -p pmc-bench --release --bin epsilon_sweep [full]`

use pmc_bench::experiments::run_eps_sweep;

fn main() {
    let full = std::env::args().any(|a| a == "full");
    let n = if full { 4096 } else { 1024 };
    let t = run_eps_sweep(n, &[0.08, 0.15, 0.25, 0.5, 0.75, 1.0], 11);
    t.print("Theorem 4.26 — ε sweep: build work falls with ε, query work rises (n^ε fan-out)");
    println!("\nReading guide: dense graphs tolerate larger ε (build dominates); sparse prefer small ε.");
}
