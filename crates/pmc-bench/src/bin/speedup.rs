//! E-speedup — wall-clock scaling with threads (Brent's theorem).
//!
//! `cargo run -p pmc-bench --release --bin speedup [full]` prints the
//! scaling table against an explicit 1-thread baseline.
//!
//! `--smoke [n]` runs the CI gate instead: the non-sparse workload at
//! `n` (default 20 000) must show a measurable speedup at 4 threads
//! over the fixed 1-thread baseline, with identical cut values. The
//! assertion only arms when the hardware actually has ≥ 4 threads —
//! on smaller machines the probe still runs (checking value agreement)
//! but reports the ratio without failing.

use pmc_bench::experiments::{measure_speedup, run_speedup};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke(&args);
        return;
    }
    let full = args.iter().any(|a| a == "full");
    let n = if full { 2048 } else { 768 };
    let max = rayon::current_num_threads().max(2);
    let mut threads = vec![2usize];
    let mut p = 4;
    while p <= max {
        threads.push(p);
        p *= 2;
    }
    if *threads.last().unwrap() != max {
        threads.push(max);
    }
    let t = run_speedup(n, &threads, 17);
    t.print("Speedup — exact pipeline wall time vs threads (O(W/p + D))");
}

fn smoke(args: &[String]) {
    const SMOKE_THREADS: usize = 4;
    const MIN_SPEEDUP: f64 = 1.3;
    let n: usize = args
        .iter()
        .skip_while(|a| *a != "--smoke")
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);
    let hw = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    let (t1, tp) = measure_speedup(n, SMOKE_THREADS, 17);
    let ratio = t1 / tp;
    println!(
        "E-speedup smoke: n={n}, T1={t1:.0} ms, T{SMOKE_THREADS}={tp:.0} ms, \
         speedup {ratio:.2}x (hardware threads: {hw})"
    );
    if hw >= SMOKE_THREADS {
        assert!(
            ratio >= MIN_SPEEDUP,
            "speedup {ratio:.2}x at {SMOKE_THREADS} threads is below the \
             {MIN_SPEEDUP}x gate (T1={t1:.0} ms, Tp={tp:.0} ms, n={n})"
        );
        println!("PASS: speedup >= {MIN_SPEEDUP}x");
    } else {
        println!(
            "SKIPPED assertion: fewer than {SMOKE_THREADS} hardware threads; \
             value agreement across thread counts still checked"
        );
    }
}
