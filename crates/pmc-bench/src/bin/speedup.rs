//! E-speedup — wall-clock scaling with threads (Brent's theorem).
//! `cargo run -p pmc-bench --release --bin speedup [full]`

use pmc_bench::experiments::run_speedup;

fn main() {
    let full = std::env::args().any(|a| a == "full");
    let n = if full { 2048 } else { 768 };
    let max = rayon::current_num_threads().max(2);
    let mut threads = vec![1usize, 2];
    let mut p = 4;
    while p <= max {
        threads.push(p);
        p *= 2;
    }
    if *threads.last().unwrap() != max {
        threads.push(max);
    }
    let t = run_speedup(n, &threads, 17);
    t.print("Speedup — exact pipeline wall time vs threads (O(W/p + D))");
}
