//! E-speedup — wall-clock scaling with threads (Brent's theorem).
//!
//! `cargo run -p pmc-bench --release --bin speedup [full]` prints the
//! scaling table against an explicit 1-thread baseline and records the
//! curve to `BENCH_speedup.json`.
//!
//! `--smoke [n] [--workload uniform|fishbone|powerlaw|nearclique]`
//! runs a CI gate instead: the chosen workload at `n` (defaults:
//! 20 000 uniform, 6 000 fishbone, 8 000 powerlaw, 1 500 nearclique)
//! must show a measurable speedup at 4 threads over the fixed 1-thread
//! baseline, with identical cut values. The uniform floor is 1.4×
//! (raised from 1.3× when work stealing landed); the fishbone
//! skew-adversary floor is 1.3× — under the old static splitter this
//! workload strands whole combs on one thread and shows none. The
//! assertion only arms when the hardware actually has ≥ 4 threads — on
//! smaller machines the probe still runs (checking value agreement)
//! but reports the ratio without failing. Each smoke writes
//! `BENCH_speedup_smoke[_fishbone].json`.

use pmc_bench::experiments::{measure_speedup_workload, metered_exact_queries, run_speedup};
use pmc_bench::{workloads, BenchRecord};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke(&args);
        return;
    }
    let full = args.iter().any(|a| a == "full");
    let n = if full { 2048 } else { 768 };
    let max = rayon::current_num_threads().max(2);
    let mut threads = vec![2usize];
    let mut p = 4;
    while p <= max {
        threads.push(p);
        p *= 2;
    }
    if *threads.last().expect("thread list starts with 2") != max {
        threads.push(max);
    }
    let (t, curve) = run_speedup(n, &threads, 17);
    t.print("Speedup — exact pipeline wall time vs threads (O(W/p + D))");
    BenchRecord {
        experiment: "speedup".into(),
        workload: curve.workload.clone(),
        n: curve.n,
        m: curve.m,
        runs: curve.runs.clone(),
        metered_queries: curve.queries,
        speedup: curve.final_speedup(),
        extra: vec![("cut_value".into(), curve.value as f64)],
    }
    .write_and_announce();
}

/// `--workload <name>` argument (default `uniform`).
fn workload_arg(args: &[String]) -> &str {
    args.iter()
        .position(|a| a == "--workload")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("uniform")
}

fn smoke(args: &[String]) {
    const SMOKE_THREADS: usize = 4;
    let which = workload_arg(args).to_string();
    // The uniform floor rose to 1.4x once the deque scheduler landed;
    // fishbone gates at the old floor — any measurable speedup there is
    // new, the static splitter starved it entirely.
    let (min_speedup, default_n) = match which.as_str() {
        "fishbone" => (1.3, 6_000),
        // Dense regimes: smaller n, m is what grows (nearclique is
        // Θ(n²) edges — 1 500 vertices is already ~1M edges).
        "nearclique" => (1.4, 1_500),
        "powerlaw" => (1.4, 8_000),
        _ => (1.4, 20_000),
    };
    let n: usize = args
        .iter()
        .skip_while(|a| *a != "--smoke")
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(default_n);
    let hw = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    let w = workloads::by_name(&which, n, 17);
    let (t1, tp) = measure_speedup_workload(&w, SMOKE_THREADS);
    let ratio = t1 / tp;
    println!(
        "E-speedup smoke [{}]: n={}, T1={t1:.0} ms, T{SMOKE_THREADS}={tp:.0} ms, \
         speedup {ratio:.2}x (hardware threads: {hw})",
        w.name,
        w.graph.n()
    );
    let suffix = if which == "uniform" { String::new() } else { format!("_{which}") };
    BenchRecord {
        experiment: format!("speedup_smoke{suffix}"),
        workload: w.name.clone(),
        n: w.graph.n(),
        m: w.graph.m(),
        runs: vec![(1, t1), (SMOKE_THREADS, tp)],
        metered_queries: metered_exact_queries(&w.graph),
        speedup: ratio,
        extra: vec![("hardware_threads".into(), hw as f64)],
    }
    .write_and_announce();
    if hw >= SMOKE_THREADS {
        assert!(
            ratio >= min_speedup,
            "[{}] speedup {ratio:.2}x at {SMOKE_THREADS} threads is below the \
             {min_speedup}x gate (T1={t1:.0} ms, Tp={tp:.0} ms)",
            w.name
        );
        println!("PASS: speedup >= {min_speedup}x");
    } else if std::env::var("PMC_BENCH_STRICT").is_ok_and(|v| v == "1") {
        // CI sets PMC_BENCH_STRICT=1: a runner too narrow to run the
        // gate is a job failure, not a silent green.
        eprintln!(
            "FAIL: {hw} hardware threads < {SMOKE_THREADS} required for the speedup \
             gate and PMC_BENCH_STRICT=1 — refusing to skip"
        );
        std::process::exit(2);
    } else {
        println!(
            "SKIPPED assertion: fewer than {SMOKE_THREADS} hardware threads; \
             value agreement across thread counts still checked"
        );
    }
}
