//! E-4.2 — Theorem 4.2 work scaling of the 2-respecting solver.
//! `cargo run -p pmc-bench --release --bin two_respect_scaling [full]`

use pmc_bench::experiments::run_two_respect_scaling;

fn main() {
    let full = std::env::args().any(|a| a == "full");
    let sizes: &[usize] =
        if full { &[256, 512, 1024, 2048, 4096, 8192] } else { &[256, 512, 1024, 2048] };
    let t = run_two_respect_scaling(sizes, 0.5, 42);
    t.print("Theorem 4.2 — 2-respecting solver work vs m·lg m + n·lg³ n");
    println!("\nReading guide: the ratio column flattening confirms the O(m log m + n log³ n) bound.");
}
