//! E-depth — Brent-based depth estimate of the exact pipeline.
//! `cargo run -p pmc-bench --release --bin depth_scaling [full]`

use pmc_bench::experiments::run_depth_scaling;

fn main() {
    let full = std::env::args().any(|a| a == "full");
    let sizes: &[usize] = if full { &[128, 256, 512, 1024, 2048] } else { &[128, 256, 512] };
    let t = run_depth_scaling(sizes, 13);
    t.print("Depth — D̂ from T_p = W/p + D (Theorem 4.1 predicts D = O(log³ n))");
    println!("\nReading guide: D̂/lg³n flattening = polylogarithmic depth in practice.");
}
