//! Experiment harness for the reproduction.
//!
//! Each module is one experiment family from DESIGN.md's experiment
//! index (`T1`, `E-3.1`, `E-4.2`, ...), shared between the runnable
//! binaries (`cargo run -p pmc-bench --release --bin <name>`) and the
//! Criterion micro-benches. Results print as aligned text tables so
//! `EXPERIMENTS.md` can quote them directly.

pub mod alloc_meter;
pub mod bench_json;
pub mod experiments;
pub mod table;
pub mod workloads;

pub use bench_json::BenchRecord;
pub use table::Table;
