//! Counting-allocator metering: allocations and peak bytes per phase.
//!
//! The zero-allocation claim of the steady-state query path (DESIGN.md
//! §13) is *measured*, not asserted: binaries and the gate test install
//! [`CountingAlloc`] as their `#[global_allocator]` and bracket each
//! phase with [`measure`], which reports how many heap allocations the
//! phase performed and how far the live-byte high-water mark rose above
//! the phase's entry level. The `allocs` bin turns those gauges into
//! `BENCH_allocs.json` rows, and its `--smoke` mode (CI) asserts the
//! steady-state `cut_batch_into`/`cov_batch_into` gauges are exactly 0.
//!
//! The wrapper delegates every operation to [`System`] and adds three
//! relaxed atomic counters, so it is cheap enough to leave installed
//! for whole benchmark runs. Counters are process-global: gauges are
//! meaningful when the measured phase runs single-threaded (the bench
//! binaries pin a 1-thread pool for the gated phases) or when
//! concurrent allocation noise is acceptable.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Total successful heap allocations (including the alloc half of every
/// realloc) since process start.
static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Bytes currently live (allocated minus freed).
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
/// High-water mark of `LIVE_BYTES`, resettable via [`reset_peak`].
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

fn on_alloc(size: u64) {
    // Relaxed everywhere: the counters are statistics, not
    // synchronization — no other memory accesses are ordered by them,
    // and per-counter monotonicity is all the gauges need.
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    // CAS-max: lift the peak if this allocation raised the water line.
    // Relaxed is enough — the loop only needs atomicity of the single
    // counter, and a stale read just retries.
    let mut peak = PEAK_BYTES.load(Ordering::Relaxed);
    while live > peak {
        match PEAK_BYTES.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(now) => peak = now,
        }
    }
}

fn on_free(size: u64) {
    // Relaxed: statistics only, see `on_alloc`.
    LIVE_BYTES.fetch_sub(size, Ordering::Relaxed);
}

/// A `System`-delegating allocator that counts allocations and tracks
/// the live/peak byte water line. Install per binary:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: pmc_bench::alloc_meter::CountingAlloc = pmc_bench::alloc_meter::CountingAlloc;
/// ```
pub struct CountingAlloc;

// SAFETY: every method forwards verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the added counter updates touch no allocator
// state and never observe or fabricate pointers. `GlobalAlloc` is an
// unsafe trait by design — this impl is the one sanctioned place in the
// workspace that implements it.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards to `System` under the caller's contract.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwarded under the caller's contract.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    // SAFETY: forwards to `System` under the caller's contract.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwarded under the caller's contract.
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    // SAFETY: forwards to `System` under the caller's contract.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded under the caller's contract.
        unsafe { System.dealloc(ptr, layout) };
        on_free(layout.size() as u64);
    }

    // SAFETY: forwards to `System` under the caller's contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: forwarded under the caller's contract.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            // A successful realloc retires the old block and produces a
            // new one; count it as one allocation so "0 allocs" truly
            // means the steady state never touched the allocator.
            on_free(layout.size() as u64);
            on_alloc(new_size as u64);
        }
        p
    }
}

/// Point-in-time reading of the process-global counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    pub allocs: u64,
    pub live_bytes: u64,
    pub peak_bytes: u64,
}

/// Read the counters. All three are zero forever unless
/// [`CountingAlloc`] is installed as the `#[global_allocator]`.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        // Relaxed: statistics reads, see `on_alloc`.
        allocs: ALLOCS.load(Ordering::Relaxed),
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
    }
}

/// Drop the high-water mark back to the current live level, so the next
/// [`measure`] reports peak growth relative to its own entry point.
pub fn reset_peak() {
    // Relaxed: statistics only; racing allocations re-raise the mark
    // through the CAS-max in `on_alloc`.
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// What one measured phase did to the heap: how many allocations it
/// performed and how many bytes its high-water mark rose above the
/// live bytes at phase entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocGauge {
    pub allocs: u64,
    pub peak_growth_bytes: u64,
}

/// Run `f` and gauge its heap behavior. Meaningful when `f` is the only
/// allocating activity in the process for its duration.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, AllocGauge) {
    let before = snapshot();
    reset_peak();
    let r = f();
    let after = snapshot();
    (
        r,
        AllocGauge {
            allocs: after.allocs - before.allocs,
            peak_growth_bytes: after.peak_bytes.saturating_sub(before.live_bytes),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: these tests do not install the allocator (a test binary
    // can't, per-crate, without affecting every other test); they pin
    // the pure accounting logic instead. End-to-end counting is covered
    // by the root `zero_alloc_gate` integration test and the `allocs`
    // bin, each of which installs `CountingAlloc` for its whole binary.

    /// One sequential test (the counters are process-global; parallel
    /// sibling tests poking them would race the deltas).
    #[test]
    fn accounting_logic() {
        // Gauge arithmetic over manual events.
        let s0 = snapshot();
        on_alloc(1000);
        on_alloc(24);
        on_free(24);
        let s1 = snapshot();
        assert_eq!(s1.allocs - s0.allocs, 2);
        assert_eq!(s1.live_bytes - s0.live_bytes, 1000);
        assert!(s1.peak_bytes >= s1.live_bytes.max(s0.live_bytes));
        on_free(1000);

        // Peak is monotone until reset.
        on_alloc(4096);
        let high = snapshot().peak_bytes;
        on_free(4096);
        assert_eq!(snapshot().peak_bytes, high, "free must not lower the mark");
        reset_peak();
        assert!(snapshot().peak_bytes <= high);
        assert_eq!(snapshot().peak_bytes, snapshot().live_bytes);

        // Without the global installation, `f` can't move the counters;
        // the gauge must read exactly zero (no false positives).
        let (sum, gauge) = measure(|| (0u64..100).sum::<u64>());
        assert_eq!(sum, 4950);
        assert_eq!(gauge.allocs, 0);
        assert_eq!(gauge.peak_growth_bytes, 0);
    }
}
