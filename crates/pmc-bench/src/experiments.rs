//! Experiment runners (one per DESIGN.md experiment id).

use crate::table::{fmt_count, Table};
use crate::workloads;
use pmc_graph::{stoer_wagner_mincut, CutResult, Graph};
use pmc_mincut::exact::exact_mincut_metered;
use pmc_mincut::{
    approx_mincut, approx_mincut_eps, exact_mincut, greedy_tree_packing, naive_two_respecting,
    two_respecting_mincut, ApproxParams, ExactParams, GraphContext, InterestStrategy,
    PackingParams, TreeContext, TwoRespectParams,
};
use pmc_monge::RowMinimaAlgo;
use pmc_parallel::meter::{CostKind, Meter};
use pmc_tree::{LcaStrategy, PathStrategy, RootedTree};
use std::sync::Arc;
use std::time::Instant;

fn lg(n: usize) -> f64 {
    (n.max(2) as f64).log2()
}

/// T1 — Table 1: measured work of this paper's algorithm against the
/// measured "inspect everything" baseline (the work profile of the
/// pre-interest-filter era, standing in for GG18) and the analytic
/// curves of the three table rows.
pub fn run_table1(sizes: &[usize], seed: u64) -> Table {
    let mut t = Table::new([
        "n",
        "m",
        "trees",
        "ours ops",
        "ours/(m·lg n)",
        "naive ops (est)",
        "naive/(m·lg⁴n)",
        "naive/ours",
    ]);
    for &n in sizes {
        let w = workloads::non_sparse(n, seed);
        let g = w.graph;
        let meter = Meter::enabled();
        let res = exact_mincut_metered(&g, &ExactParams::default(), &meter);
        let ours = meter.report().total_work();

        // Naive per-tree cost, measured on one spanning tree and scaled
        // by the tree count (the naive solver is identical per tree).
        let (gg, tree_edges) = workloads::graph_with_tree(n, 0.5, seed ^ 0x77);
        let tree = RootedTree::from_edge_list(gg.n(), &tree_edges, 0);
        let meter2 = Meter::enabled();
        let nv = naive_two_respecting(&gg, &tree, 0.25, &meter2);
        assert!(nv.cut.value > 0);
        let naive_est = meter2.report().total_work() * res.stats.num_trees.max(1) as u64;

        let m = g.m() as f64;
        let mlgn = m * lg(n);
        let mlg4n = m * lg(n).powi(4);
        t.row([
            n.to_string(),
            g.m().to_string(),
            res.stats.num_trees.to_string(),
            fmt_count(ours),
            format!("{:.2}", ours as f64 / mlgn),
            fmt_count(naive_est),
            format!("{:.2}", naive_est as f64 / mlg4n),
            format!("{:.1}x", naive_est as f64 / ours as f64),
        ]);
    }
    t
}

/// E-4.2 — Theorem 4.2 scaling: work of one 2-respecting solve against
/// `m log m + n log^3 n`.
pub fn run_two_respect_scaling(sizes: &[usize], density: f64, seed: u64) -> Table {
    let mut t = Table::new([
        "n",
        "m",
        "cut queries",
        "total ops",
        "ops/(m·lg m + n·lg³n)",
        "wall ms",
    ]);
    for &n in sizes {
        let (g, tree_edges) = workloads::graph_with_tree(n, density, seed);
        let tree = RootedTree::from_edge_list(g.n(), &tree_edges, 0);
        let meter = Meter::enabled();
        let t0 = Instant::now();
        let out = two_respecting_mincut(&g, &tree, &TwoRespectParams::default(), &meter);
        let wall = t0.elapsed();
        assert!(out.cut.value > 0);
        let rep = meter.report();
        let m = g.m() as f64;
        let bound = m * (m.max(2.0)).log2() + n as f64 * lg(n).powi(3);
        t.row([
            n.to_string(),
            g.m().to_string(),
            fmt_count(rep.work_of(CostKind::CutQuery)),
            fmt_count(rep.total_work()),
            format!("{:.3}", rep.total_work() as f64 / bound),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
        ]);
    }
    t
}

/// E-3.1 — Theorem 3.1 quality: the constant-factor estimate and the
/// `(1±ε)` refinement against the true minimum cut.
pub fn run_approx_quality(sizes: &[usize], seed: u64) -> Table {
    let mut t = Table::new([
        "workload",
        "true λ",
        "approx λ̂",
        "λ̂/λ",
        "(1±¼) λ̂",
        "refined/λ",
        "matula(2.25)/λ",
    ]);
    for &n in sizes {
        for w in [workloads::heavy(n, seed), workloads::planted(n, 4, seed)] {
            let g = w.graph;
            let truth = if g.n() <= 700 {
                stoer_wagner_mincut(&g).value
            } else {
                exact_mincut(&g, &ExactParams::default()).cut.value
            };
            let params = ApproxParams::default();
            let a = approx_mincut(&g, &params, &Meter::disabled());
            let refined = approx_mincut_eps(&g, 0.25, &params, seed ^ 5, &Meter::disabled());
            let matula = pmc_graph::matula_approx(&g, 0.25);
            t.row([
                w.name.clone(),
                truth.to_string(),
                a.lambda.to_string(),
                format!("{:.3}", a.lambda as f64 / truth as f64),
                refined.to_string(),
                format!("{:.3}", refined as f64 / truth as f64),
                format!("{:.3}", matula as f64 / truth as f64),
            ]);
        }
    }
    t
}

/// E-4.24/25 + E-4.26 — the ε knob: range-structure work profile and
/// end-to-end effect on one 2-respecting solve, dense vs sparse.
pub fn run_eps_sweep(n: usize, eps_values: &[f64], seed: u64) -> Table {
    let mut t = Table::new([
        "regime",
        "eps",
        "build ops",
        "query ops",
        "total ops",
        "wall ms",
    ]);
    for (regime, density) in [("dense", 0.8), ("sparse", 0.15)] {
        let (g, tree_edges) = workloads::graph_with_tree(n, density, seed);
        let tree = std::sync::Arc::new(RootedTree::from_edge_list(g.n(), &tree_edges, 0));
        for &eps in eps_values {
            let params = TwoRespectParams { eps, ..TwoRespectParams::default() };
            let build_meter = Meter::enabled();
            // Separate build cost: a bare CutQuery build.
            let lca = pmc_tree::LcaTable::build(&tree);
            let _q = pmc_mincut::CutQuery::build(&g, &tree, &lca, eps, &build_meter);
            let build_ops = build_meter.report().work_of(CostKind::RangeNode);

            let meter = Meter::enabled();
            let t0 = Instant::now();
            let out = two_respecting_mincut(&g, &tree, &params, &meter);
            let wall = t0.elapsed();
            assert!(out.cut.value > 0);
            let rep = meter.report();
            let query_ops = rep.work_of(CostKind::RangeNode).saturating_sub(build_ops);
            t.row([
                regime.to_string(),
                format!("{eps:.2}"),
                fmt_count(build_ops),
                fmt_count(query_ops),
                fmt_count(rep.total_work()),
                format!("{:.1}", wall.as_secs_f64() * 1e3),
            ]);
        }
    }
    t
}

/// E-depth — Brent-based depth estimate: `T_p = W/p + D` measured at
/// `p = 1` and `p = max` gives `D ≈ (p·T_p − T_1)/(p − 1)`; the theorem
/// predicts `D = O(log^3 n)`, so `D̂ / lg³ n` should flatten.
pub fn run_depth_scaling(sizes: &[usize], seed: u64) -> Table {
    let mut t = Table::new(["n", "m", "T1 ms", "Tp ms", "p", "D̂ ms", "D̂/lg³n (µs)"]);
    let p = rayon::current_num_threads().max(2);
    for &n in sizes {
        let w = workloads::non_sparse(n, seed);
        let g = w.graph;
        let run = |threads: usize| -> f64 {
            let pool =
                rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool");
            pool.install(|| {
                let t0 = Instant::now();
                let r = exact_mincut(&g, &ExactParams::default());
                assert!(r.cut.value > 0);
                t0.elapsed().as_secs_f64() * 1e3
            })
        };
        // Warm up, then take the best of 2 to damp noise.
        let t1 = run(1).min(run(1));
        let tp = run(p).min(run(p));
        let d_hat = ((p as f64 * tp - t1) / (p as f64 - 1.0)).max(0.0);
        t.row([
            n.to_string(),
            g.m().to_string(),
            format!("{t1:.1}"),
            format!("{tp:.1}"),
            p.to_string(),
            format!("{d_hat:.1}"),
            format!("{:.1}", d_hat * 1e3 / lg(n).powi(3)),
        ]);
    }
    t
}

/// One timed run of the exact pipeline under a `p`-thread pool.
/// Returns `(wall ms, cut value)`.
fn timed_exact(g: &Graph, p: usize) -> (f64, u64) {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(p).build().expect("pool");
    pool.install(|| {
        let t0 = Instant::now();
        let r = exact_mincut(g, &ExactParams::default());
        assert!(r.cut.value > 0);
        (t0.elapsed().as_secs_f64() * 1e3, r.cut.value)
    })
}

/// Metered cut-query count of one exact solve (the "metered queries"
/// field of the recorded benchmark trajectory).
pub fn metered_exact_queries(g: &Graph) -> u64 {
    let meter = Meter::enabled();
    let r = exact_mincut_metered(g, &ExactParams::default(), &meter);
    assert!(r.cut.value > 0);
    meter.report().work_of(CostKind::CutQuery)
}

/// The measured E-speedup scaling curve (wall per thread count plus the
/// metered query count), the data behind both the printed table and the
/// `BENCH_speedup*.json` records.
#[derive(Debug, Clone)]
pub struct SpeedupCurve {
    pub workload: String,
    pub n: usize,
    pub m: usize,
    /// `(threads, wall ms)`; the first entry is the `p = 1` baseline.
    pub runs: Vec<(usize, f64)>,
    pub queries: u64,
    pub value: u64,
}

impl SpeedupCurve {
    /// Wall speedup of the last (widest) run over the 1-thread baseline.
    pub fn final_speedup(&self) -> f64 {
        // INVARIANT: `runs` always starts with the p=1 baseline entry.
        self.runs[0].1 / self.runs.last().expect("speedup curve has a baseline run").1
    }
}

/// Measure the scaling curve on one workload. The baseline is an
/// *explicit* `p = 1` run (best of two, to damp noise and warm
/// caches), independent of whatever the `threads` list starts with;
/// the cut value must agree across all thread counts.
pub fn measure_speedup_curve(w: &workloads::Workload, threads: &[usize]) -> SpeedupCurve {
    let g = &w.graph;
    let (wall_a, value) = timed_exact(g, 1);
    let (wall_b, value_b) = timed_exact(g, 1);
    assert_eq!(value, value_b, "exact_mincut value unstable at p=1");
    let mut runs = vec![(1usize, wall_a.min(wall_b))];
    for &p in threads {
        let (wall, v) = timed_exact(g, p);
        assert_eq!(v, value, "exact_mincut value changed at p={p}");
        runs.push((p, wall));
    }
    let queries = metered_exact_queries(g);
    SpeedupCurve { workload: w.name.clone(), n: g.n(), m: g.m(), runs, queries, value }
}

/// E-speedup — Brent scheduling: wall time of the exact pipeline as the
/// thread count grows, on the uniform non-sparse workload.
pub fn run_speedup(n: usize, threads: &[usize], seed: u64) -> (Table, SpeedupCurve) {
    let w = workloads::non_sparse(n, seed);
    let curve = measure_speedup_curve(&w, threads);
    let mut t = Table::new(["threads", "wall ms", "speedup vs p=1"]);
    let t1 = curve.runs[0].1;
    t.row(["1 (baseline)".to_string(), format!("{t1:.1}"), "1.00x".to_string()]);
    for &(p, wall) in &curve.runs[1..] {
        t.row([p.to_string(), format!("{wall:.1}"), format!("{:.2}x", t1 / wall)]);
    }
    (t, curve)
}

/// E-speedup smoke probe: best-of-three `T_1` and `T_p` on the given
/// workload (minimum over repeats damps shared-runner noise, which a
/// single sample would turn into a flaky CI gate), with the cut-value
/// agreement check. Returns `(t1 ms, tp ms)`.
pub fn measure_speedup_workload(w: &workloads::Workload, p: usize) -> (f64, f64) {
    const SAMPLES: usize = 3;
    let g = &w.graph;
    let best = |threads: usize| -> (f64, u64) {
        let mut wall = f64::INFINITY;
        let mut value = None;
        for _ in 0..SAMPLES {
            let (w_ms, v) = timed_exact(g, threads);
            assert_eq!(
                *value.get_or_insert(v),
                v,
                "exact_mincut value unstable at p={threads}"
            );
            wall = wall.min(w_ms);
        }
        // INVARIANT: SAMPLES >= 1, so the loop above set `value`.
        (wall, value.expect("at least one sample ran"))
    };
    let (t1, v1) = best(1);
    let (tp, vp) = best(p);
    assert_eq!(v1, vp, "exact_mincut value must not depend on the thread count");
    (t1, tp)
}

/// [`measure_speedup_workload`] on the uniform non-sparse workload.
pub fn measure_speedup(n: usize, p: usize, seed: u64) -> (f64, f64) {
    measure_speedup_workload(&workloads::non_sparse(n, seed), p)
}

/// One measured pass of the `E-amortize` probe.
#[derive(Debug, Clone)]
pub struct AmortizeProbe {
    /// Edges of the (coalesced) workload graph.
    pub m: usize,
    /// Distinct packed trees solved per pass.
    pub trees: usize,
    /// Wall time of the rebuild-per-tree baseline (best of samples).
    pub rebuild_ms: f64,
    /// Wall time of the shared-context engine path (best of samples).
    pub shared_ms: f64,
    /// The cut value (must agree between the two modes).
    pub value: u64,
}

impl AmortizeProbe {
    pub fn speedup(&self) -> f64 {
        self.rebuild_ms / self.shared_ms
    }
}

/// E-amortize — the two-level engine's Phase 5 profile on one fixed
/// tree packing:
///
/// * **rebuild-per-tree** (the pre-engine cost model, replicated
///   faithfully): one coalesce + connectivity check + degree scan per
///   solve invocation — what `exact_mincut` paid once around its Phase
///   5 loop — then, per packed tree, the tree-lifetime structures built
///   back-to-back on one thread (the old `two_respecting_mincut`
///   profile: LCA, then cut-query structure, then path decomposition,
///   then interest engine, sequentially).
/// * **shared-context**: one [`GraphContext`] for the whole loop, one
///   [`TreeContext`] per tree with its sub-builds forked under
///   `rayon::join`.
///
/// Both modes solve the same trees with the same (parallel) query
/// stages and must produce the same cut value; only construction
/// differs. Best-of-samples per mode damps shared-runner noise.
pub fn measure_amortize(n: usize, seed: u64) -> AmortizeProbe {
    const SAMPLES: usize = 3;
    let g = workloads::non_sparse(n, seed).graph;
    let m = Meter::disabled();
    let params = TwoRespectParams::default();
    // A bounded packing: the experiment measures per-tree context cost,
    // not packing cost, so a handful of distinct trees is enough.
    let packing = PackingParams {
        iterations_factor: 1.0,
        min_iterations: 8,
        max_iterations: 32,
        trees_factor: 1.0,
        min_trees: 8,
    };
    let (graph_m, trees) = {
        let ctx = GraphContext::build(&g, &m);
        (ctx.m(), greedy_tree_packing(ctx.graph(), &packing, &m))
    };

    let rebuild_pass = || -> (f64, u64) {
        let t0 = Instant::now();
        // The pre-engine per-invocation prelude: coalesce, one
        // connectivity pass, and (at the end) the min-degree scan —
        // shared across the invocation's trees, exactly as the old
        // Phase 5 loop shared `gc`.
        let gc = g.coalesced();
        assert!(gc.is_connected());
        let mut best = CutResult::infinite();
        for edges in &trees {
            let tree = Arc::new(RootedTree::from_edge_list(gc.n(), edges, 0));
            let tc = TreeContext::build_sequential(&gc, tree, &params, &m);
            best = best.min(tc.solve(&m).cut);
        }
        let (v, d) = gc.min_weighted_degree_vertex();
        best = best.min(CutResult { value: d, side: vec![v] });
        (t0.elapsed().as_secs_f64() * 1e3, best.value)
    };
    let shared_pass = || -> (f64, u64) {
        let t0 = Instant::now();
        let ctx = GraphContext::build(&g, &m);
        let mut best = CutResult::infinite();
        for edges in &trees {
            let tc = TreeContext::from_edges(ctx.graph(), edges, 0, &params, &m);
            best = best.min(tc.solve(&m).cut);
        }
        best = best.min(ctx.min_degree_cut());
        (t0.elapsed().as_secs_f64() * 1e3, best.value)
    };

    let best_of = |pass: &dyn Fn() -> (f64, u64)| -> (f64, u64) {
        let mut wall = f64::INFINITY;
        let mut value = None;
        for _ in 0..SAMPLES {
            let (w, v) = pass();
            assert_eq!(*value.get_or_insert(v), v, "cut value unstable across samples");
            wall = wall.min(w);
        }
        // INVARIANT: SAMPLES >= 1, so the loop above set `value`.
        (wall, value.expect("at least one sample ran"))
    };
    let (rebuild_ms, v_rebuild) = best_of(&rebuild_pass);
    let (shared_ms, v_shared) = best_of(&shared_pass);
    assert_eq!(v_rebuild, v_shared, "rebuild and shared modes must agree on the cut");
    AmortizeProbe { m: graph_m, trees: trees.len(), rebuild_ms, shared_ms, value: v_rebuild }
}

/// E-amortize table across sizes.
pub fn run_amortize(sizes: &[usize], seed: u64) -> Table {
    let mut t = Table::new(["n", "m", "trees", "rebuild ms", "shared ms", "shared speedup"]);
    for &n in sizes {
        let probe = measure_amortize(n, seed);
        t.row([
            n.to_string(),
            probe.m.to_string(),
            probe.trees.to_string(),
            format!("{:.1}", probe.rebuild_ms),
            format!("{:.1}", probe.shared_ms),
            format!("{:.2}x", probe.speedup()),
        ]);
    }
    t
}

/// Headline numbers of one E-ablate run: the default variant against
/// the naive all-pairs baseline (the pair the recorded trajectory
/// tracks), plus the substrate gauges the O(1)-query acceptance
/// criteria read (metered Monge entry evaluations per row-minima
/// engine, metered LCA steps per LCA substrate).
#[derive(Debug, Clone)]
pub struct AblationSummary {
    pub n: usize,
    pub m: usize,
    /// Wall and metered cut queries of the default variant.
    pub default_wall_ms: f64,
    pub default_queries: u64,
    /// Wall of the naive all-pairs baseline.
    pub naive_wall_ms: f64,
    /// Metered `MongeEntry` evaluations under SMAWK (the default) and
    /// under divide-and-conquer row minima — the pair the `--smoke`
    /// gate compares.
    pub smawk_monge_entries: u64,
    pub dc_monge_entries: u64,
    /// Metered `LcaStep` charges under the sparse-table substrate (one
    /// per query — the O(1) evidence) and under binary lifting
    /// (`levels()` per query, so it grows with depth).
    pub sparse_lca_steps: u64,
    pub lifting_lca_steps: u64,
}

/// E-ablate — design ablations on one fixed workload: interest-search
/// decomposition strategy (centroid vs heavy-path, metered side by
/// side), path decomposition, Monge engine (SMAWK vs divide-and-
/// conquer, `monge entries`), LCA substrate (sparse-table vs lifting,
/// `lca steps`), ε, and the no-filter baseline. The `interest qs`
/// column isolates the cut/coverage queries the arm tracing issues —
/// the quantity Claim 4.13 bounds.
pub fn run_ablation(n: usize, seed: u64) -> (Table, AblationSummary) {
    let (g, tree_edges) = workloads::graph_with_tree(n, 0.5, seed);
    let tree = RootedTree::from_edge_list(g.n(), &tree_edges, 0);
    let mut t = Table::new([
        "variant",
        "cut queries",
        "interest qs",
        "monge entries",
        "lca steps",
        "total ops",
        "wall ms",
    ]);
    let reference = naive_value(&g, &tree);
    // Per variant: (wall ms, cut queries, monge entries, lca steps).
    let mut run = |name: &str, params: TwoRespectParams| -> (f64, u64, u64, u64) {
        let meter = Meter::enabled();
        let t0 = Instant::now();
        let out = two_respecting_mincut(&g, &tree, &params, &meter);
        let wall = t0.elapsed();
        assert_eq!(out.cut.value, reference, "{name} disagrees with the oracle");
        let rep = meter.report();
        t.row([
            name.to_string(),
            fmt_count(rep.work_of(CostKind::CutQuery)),
            fmt_count(rep.work_of(CostKind::InterestQuery)),
            fmt_count(rep.work_of(CostKind::MongeEntry)),
            fmt_count(rep.work_of(CostKind::LcaStep)),
            fmt_count(rep.total_work()),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
        ]);
        (
            wall.as_secs_f64() * 1e3,
            rep.work_of(CostKind::CutQuery),
            rep.work_of(CostKind::MongeEntry),
            rep.work_of(CostKind::LcaStep),
        )
    };
    let (default_wall_ms, default_queries, smawk_monge_entries, sparse_lca_steps) =
        run("centroid + SMAWK + sparse LCA (default)", TwoRespectParams::default());
    run(
        "heavy-path interest + SMAWK",
        TwoRespectParams {
            interest_strategy: InterestStrategy::HeavyPath,
            ..TwoRespectParams::default()
        },
    );
    run(
        "bough + SMAWK",
        TwoRespectParams { strategy: PathStrategy::Bough, ..TwoRespectParams::default() },
    );
    let (_, _, dc_monge_entries, _) = run(
        "centroid + D&C monge",
        TwoRespectParams {
            monge_algo: RowMinimaAlgo::DivideConquer,
            ..TwoRespectParams::default()
        },
    );
    let (_, _, _, lifting_lca_steps) = run(
        "centroid + lifting LCA",
        TwoRespectParams { lca_strategy: LcaStrategy::Lifting, ..TwoRespectParams::default() },
    );
    run("eps = 0.10", TwoRespectParams { eps: 0.10, ..TwoRespectParams::default() });
    run("eps = 0.75", TwoRespectParams { eps: 0.75, ..TwoRespectParams::default() });
    // The no-structure baseline.
    let naive_wall_ms = {
        let meter = Meter::enabled();
        let t0 = Instant::now();
        let out = naive_two_respecting(&g, &tree, 0.25, &meter);
        let wall = t0.elapsed();
        assert_eq!(out.cut.value, reference);
        let rep = meter.report();
        t.row([
            "naive all-pairs (no filter)".to_string(),
            fmt_count(rep.work_of(CostKind::CutQuery)),
            fmt_count(rep.work_of(CostKind::InterestQuery)),
            fmt_count(rep.work_of(CostKind::MongeEntry)),
            fmt_count(rep.work_of(CostKind::LcaStep)),
            fmt_count(rep.total_work()),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
        ]);
        wall.as_secs_f64() * 1e3
    };
    let summary = AblationSummary {
        n: g.n(),
        m: g.m(),
        default_wall_ms,
        default_queries,
        naive_wall_ms,
        smawk_monge_entries,
        dc_monge_entries,
        sparse_lca_steps,
        lifting_lca_steps,
    };
    (t, summary)
}

fn naive_value(g: &Graph, tree: &RootedTree) -> u64 {
    naive_two_respecting(g, tree, 0.25, &Meter::disabled()).cut.value
}

/// E-4.18 — packing statistics on planted-cut workloads: tree counts and
/// whether the packing contains a tree that 2-respects the optimum.
pub fn run_packing_stats(sizes: &[usize], seed: u64) -> Table {
    let mut t = Table::new([
        "workload",
        "iterations",
        "distinct trees",
        "2-respecting trees",
        "min crossings",
    ]);
    for &n in sizes {
        let w = workloads::planted(n, 4, seed);
        let g = w.graph;
        let packing = PackingParams::default();
        let trees = greedy_tree_packing(&g.coalesced(), &packing, &Meter::disabled());
        // The planted optimum: first half vs second half.
        let half = g.n() / 2;
        let crossings: Vec<usize> = trees
            .iter()
            .map(|tr| {
                tr.iter()
                    .filter(|&&(u, v)| ((u as usize) < half) != ((v as usize) < half))
                    .count()
            })
            .collect();
        let two_respecting = crossings.iter().filter(|&&c| c <= 2).count();
        t.row([
            w.name.clone(),
            packing.iterations(g.n()).to_string(),
            trees.len().to_string(),
            two_respecting.to_string(),
            crossings.iter().min().unwrap_or(&0).to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_runs_small() {
        let t = run_table1(&[48, 64], 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn two_respect_scaling_runs() {
        let t = run_two_respect_scaling(&[64], 0.5, 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn approx_quality_runs() {
        let t = run_approx_quality(&[20], 3);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn eps_sweep_runs() {
        let t = run_eps_sweep(64, &[0.2, 0.8], 4);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn ablation_runs_and_agrees() {
        let (t, summary) = run_ablation(48, 5);
        assert_eq!(t.len(), 8);
        assert_eq!(summary.n, 48);
        assert!(summary.default_wall_ms > 0.0 && summary.naive_wall_ms > 0.0);
        assert!(summary.default_queries > 0);
        // Substrate gauges: SMAWK never pays more distinct entries than
        // divide-and-conquer (strictness is the --smoke gate's job at a
        // size where blocks are big enough), and the sparse table's
        // one-step queries cost strictly fewer LCA steps than lifting's
        // levels()-per-query on the same query stream.
        assert!(summary.smawk_monge_entries > 0);
        assert!(summary.smawk_monge_entries <= summary.dc_monge_entries);
        assert!(summary.sparse_lca_steps > 0);
        assert!(summary.sparse_lca_steps < summary.lifting_lca_steps);
    }

    #[test]
    fn speedup_curve_has_baseline_and_queries() {
        let w = workloads::non_sparse(64, 9);
        let curve = measure_speedup_curve(&w, &[2]);
        assert_eq!(curve.runs[0].0, 1, "first entry is the p=1 baseline");
        assert_eq!(curve.runs.len(), 2);
        assert!(curve.queries > 0);
        assert!(curve.final_speedup() > 0.0);
        assert_eq!(curve.n, 64);
    }

    #[test]
    fn packing_stats_runs() {
        let t = run_packing_stats(&[32], 6);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn amortize_probe_modes_agree() {
        // The value-agreement asserts live inside measure_amortize.
        let probe = measure_amortize(96, 7);
        assert!(probe.trees >= 1);
        assert!(probe.value > 0);
        assert!(probe.rebuild_ms > 0.0 && probe.shared_ms > 0.0);
    }
}
