//! Minimal aligned-text table printer for experiment output.

/// A column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with right-aligned numeric-looking cells.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = width[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = width[i] - c.chars().count();
                // Left-align the first column, right-align the rest.
                if i == 0 {
                    line.push_str(c);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(c);
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }

    /// Print to stdout with a title.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }
}

/// Format a count with thousands separators.
pub fn fmt_count(x: u64) -> String {
    let s = x.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "100"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("  1") || lines[2].ends_with(" 1"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(1), "1");
        assert_eq!(fmt_count(1234), "1_234");
        assert_eq!(fmt_count(1234567), "1_234_567");
    }
}
