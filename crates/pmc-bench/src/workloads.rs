//! Standard workloads of the experiment suite.
//!
//! The paper's regimes: *non-sparse* (`m = n^{1+Ω(1)}`, where the
//! algorithm is work-optimal), *sparse* (`m = O(n log n)`, where [AB21]
//! wins Table 1), and structured graphs with planted cuts for quality
//! experiments.

use pmc_graph::{generators, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A named, seeded workload.
pub struct Workload {
    pub name: String,
    pub graph: Graph,
}

/// Non-sparse random graph: `m ~ n^1.5`, unit-to-moderate weights.
pub fn non_sparse(n: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = generators::non_sparse(n, 0.5, 16, &mut rng);
    Workload { name: format!("nonsparse n={n}"), graph }
}

/// Sparse random graph: `m ~ 4 n`.
pub fn sparse(n: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = generators::gnm_connected(n, 3 * n, 16, &mut rng);
    Workload { name: format!("sparse n={n}"), graph }
}

/// Dense random graph: `m ~ n^1.8`.
pub fn dense(n: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = generators::non_sparse(n, 0.8, 16, &mut rng);
    Workload { name: format!("dense n={n}"), graph }
}

/// Planted-cut community graph (known minimum cut = `bridges`).
pub fn planted(n: usize, bridges: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = generators::planted_bisection(n, 6 * n, bridges, 8, 1, &mut rng);
    Workload { name: format!("planted n={n} b={bridges}"), graph }
}

/// Heavy-weight graph exercising the sampling hierarchy (min cut ≫ log n).
pub fn heavy(n: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = generators::heavy_cycle_with_chords(n, 2 * n, 4000, 120, &mut rng);
    Workload { name: format!("heavy n={n}"), graph }
}

/// Fishbone skew adversary (`generators::fishbone` with extra random
/// chords): the comb structure makes the solver's recursion trees
/// maximally lopsided, so a static left/right work splitter strands
/// whole subproblems on one thread — the workload the work-stealing
/// speedup smoke gates on. `levels` is chosen so `n = 3·2^levels − 2`
/// is the largest fishbone not exceeding the requested size; the
/// chords keep the graph non-sparse enough that the parallel query
/// stages dominate the wall clock.
pub fn fishbone(n: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let levels = (usize::BITS - 1 - n.max(10).div_ceil(3).leading_zeros()) as usize;
    let (bone, _, _) = generators::fishbone(levels.max(2), 64);
    let nn = bone.n();
    // Re-densify: the bare fishbone is a tree + one chord; add random
    // chords so the per-edge query work is non-trivial while the skewed
    // comb shape (and hence the skewed recursion) is preserved.
    let mut b = pmc_graph::GraphBuilder::new(nn);
    for e in bone.edges() {
        b.add_edge(e.u, e.v, e.w);
    }
    use rand::Rng;
    for _ in 0..4 * nn {
        let u = rng.random_range(0..nn as u32);
        let v = rng.random_range(0..nn as u32);
        if u != v {
            b.add_edge(u, v, rng.random_range(1..8));
        }
    }
    Workload { name: format!("fishbone n={nn}"), graph: b.build() }
}

/// Power-law community graph: heavy-tailed degrees inside each block,
/// light ring bridges between blocks (`generators::power_law_community`).
/// `k ~ sqrt(n)/2` attachment edges per vertex keep it in the paper's
/// non-sparse regime (`m ≈ k·n = Θ(n^1.5)`) while the hub/bridge
/// structure is as far from uniform G(n, m) as the suite gets.
pub fn power_law(n: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let k = ((n as f64).sqrt() / 2.0).ceil() as usize;
    let communities = (n / 64).clamp(2, 8);
    let graph = generators::power_law_community(n, communities, k.max(2), 16, &mut rng);
    Workload { name: format!("powerlaw n={n}"), graph }
}

/// Near-clique dense graph: the complete graph with ~15% of edges
/// dropped (`generators::near_clique`) — `m = Θ(n²)`, the extreme end
/// of the `m ≥ n^{1+ε}` regime where the work-optimality claim bites
/// hardest and the 2-D range-tree grids are fullest.
pub fn near_clique(n: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = generators::near_clique(n, 0.15, 16, &mut rng);
    Workload { name: format!("nearclique n={n}"), graph }
}

/// Resolve a smoke-workload name (`uniform`, `fishbone`, `powerlaw`,
/// or `nearclique`) at size `n`.
pub fn by_name(name: &str, n: usize, seed: u64) -> Workload {
    match name {
        "uniform" => non_sparse(n, seed),
        "fishbone" => fishbone(n, seed),
        "powerlaw" => power_law(n, seed),
        "nearclique" => near_clique(n, seed),
        other => panic!(
            "unknown workload {other:?} (expected: uniform, fishbone, powerlaw, nearclique)"
        ),
    }
}

/// A uniform random spanning tree workload for per-tree experiments:
/// returns `(graph, tree edge list)`.
pub fn graph_with_tree(n: usize, density: f64, seed: u64) -> (Graph, Vec<(u32, u32)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = generators::non_sparse(n, density, 16, &mut rng);
    let forest =
        pmc_parallel::spanning_forest::spanning_forest(&graph, &pmc_parallel::Meter::disabled());
    let edges = forest
        .iter()
        .map(|&i| {
            let e = graph.edge(i as usize);
            (e.u, e.v)
        })
        .collect();
    (graph, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_connected() {
        for w in [
            non_sparse(64, 1),
            sparse(64, 2),
            dense(32, 3),
            planted(40, 3, 4),
            heavy(24, 5),
            fishbone(100, 6),
            power_law(128, 7),
            near_clique(48, 8),
        ] {
            assert!(w.graph.is_connected(), "{}", w.name);
        }
    }

    #[test]
    fn power_law_is_non_sparse_with_hubs() {
        let w = power_law(256, 11);
        let g = &w.graph;
        assert_eq!(g.n(), 256);
        // k = 8 attachment edges per non-seed vertex: Θ(n^1.5) regime.
        assert!(g.m() >= 6 * g.n(), "m={} should be ≈ k·n", g.m());
        // Preferential attachment grows hubs: the max degree must tower
        // over the per-vertex attachment count.
        let mut deg = vec![0u64; g.n()];
        for e in g.edges() {
            deg[e.u as usize] += 1;
            deg[e.v as usize] += 1;
        }
        let max_deg = *deg.iter().max().unwrap();
        assert!(max_deg >= 40, "max degree {max_deg} should be a hub");
        assert_eq!(by_name("powerlaw", 256, 11).graph.m(), g.m());
    }

    #[test]
    fn near_clique_is_quadratically_dense() {
        let w = near_clique(64, 12);
        let g = &w.graph;
        let full = g.n() * (g.n() - 1) / 2;
        assert!(g.m() > full * 7 / 10, "m={} of {full}: near-complete", g.m());
        assert!(g.m() <= full);
        assert_eq!(by_name("nearclique", 64, 12).graph.m(), g.m());
    }

    #[test]
    fn fishbone_size_and_lookup() {
        let w = fishbone(1000, 1);
        // Largest 3·2^levels − 2 not exceeding ~n: levels=8 → 766.
        assert_eq!(w.graph.n(), 766);
        assert!(w.graph.m() > 2 * w.graph.n(), "chords keep it non-sparse");
        assert_eq!(by_name("fishbone", 1000, 1).graph.n(), 766);
        assert_eq!(by_name("uniform", 64, 2).graph.n(), 64);
    }

    #[test]
    #[should_panic]
    fn unknown_workload_name_panics() {
        by_name("nope", 10, 0);
    }

    #[test]
    fn tree_workload_spans() {
        let (g, t) = graph_with_tree(50, 0.4, 9);
        assert_eq!(t.len(), g.n() - 1);
    }

    #[test]
    fn regimes_have_expected_density() {
        let ns = non_sparse(256, 7);
        assert!(ns.graph.m() >= 4000, "n^1.5 = 4096");
        let sp = sparse(256, 8);
        assert!(sp.graph.m() < 1300);
    }
}
