//! Criterion ablations: decomposition strategy, Monge engine, ε, and
//! the interest filter — all on one fixed 2-respecting solve.

use criterion::{criterion_group, criterion_main, Criterion};
use pmc_bench::workloads::graph_with_tree;
use pmc_mincut::{naive_two_respecting, two_respecting_mincut, InterestStrategy, TwoRespectParams};
use pmc_monge::RowMinimaAlgo;
use pmc_parallel::Meter;
use pmc_tree::{PathStrategy, RootedTree};
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    let (g, edges) = graph_with_tree(512, 0.5, 777);
    let tree = RootedTree::from_edge_list(g.n(), &edges, 0);
    let m = Meter::disabled();

    let variants: Vec<(&str, TwoRespectParams)> = vec![
        ("default", TwoRespectParams::default()),
        (
            "heavy_path_interest",
            TwoRespectParams {
                interest_strategy: InterestStrategy::HeavyPath,
                ..TwoRespectParams::default()
            },
        ),
        (
            "bough",
            TwoRespectParams { strategy: PathStrategy::Bough, ..TwoRespectParams::default() },
        ),
        (
            "dc_monge",
            TwoRespectParams {
                monge_algo: RowMinimaAlgo::DivideConquer,
                ..TwoRespectParams::default()
            },
        ),
        ("eps_0.1", TwoRespectParams { eps: 0.1, ..TwoRespectParams::default() }),
        ("eps_0.75", TwoRespectParams { eps: 0.75, ..TwoRespectParams::default() }),
    ];
    for (name, params) in variants {
        group.bench_function(name, |b| {
            b.iter(|| black_box(two_respecting_mincut(&g, &tree, &params, &m)))
        });
    }
    group.bench_function("naive_no_filter", |b| {
        b.iter(|| black_box(naive_two_respecting(&g, &tree, 0.25, &m)))
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
