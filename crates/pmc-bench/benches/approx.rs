//! Criterion bench for Theorem 3.1: hierarchy construction and the full
//! approximation on heavy-weight graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmc_bench::workloads;
use pmc_mincut::{approx_mincut, ApproxParams};
use pmc_parallel::Meter;
use pmc_sparsify::hierarchy::{CertificateHierarchy, ExclusiveHierarchy, HierarchyParams};
use std::hint::black_box;

fn bench_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy_build");
    group.sample_size(10);
    for n in [32usize, 64] {
        let w = workloads::heavy(n, 99);
        let params = HierarchyParams::practical(5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let h = ExclusiveHierarchy::build(&w.graph, &params, &Meter::disabled());
                let cert =
                    CertificateHierarchy::build(&w.graph, &h, &params, &Meter::disabled());
                black_box(cert)
            })
        });
    }
    group.finish();
}

fn bench_approx(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx_mincut");
    group.sample_size(10);
    for n in [24usize, 48] {
        let w = workloads::heavy(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(approx_mincut(&w.graph, &ApproxParams::default(), &Meter::disabled()))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hierarchy, bench_approx);
criterion_main!(benches);
