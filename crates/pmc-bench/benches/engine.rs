//! Criterion bench for the two-level engine: per-tree context
//! construction time vs pure query time on a prebuilt context.
//!
//! `tree_context_build` is the cost `TreeContext::build` amortizes per
//! packed tree (LCA + cut-query structure + path decomposition +
//! interest engine, forked under `rayon::join`); `cut_batch` and
//! `solve_prebuilt` are query-only — no construction in the loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmc_bench::workloads::graph_with_tree;
use pmc_mincut::{GraphContext, TreeContext, TwoRespectParams};
use pmc_parallel::Meter;
use pmc_tree::RootedTree;
use std::hint::black_box;
use std::sync::Arc;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    let meter = Meter::disabled();
    let params = TwoRespectParams::default();
    for n in [256usize, 1024] {
        let (g, edges) = graph_with_tree(n, 0.5, 4242);
        let tree = Arc::new(RootedTree::from_edge_list(g.n(), &edges, 0));

        group.bench_with_input(BenchmarkId::new("graph_context_build", n), &n, |b, _| {
            b.iter(|| black_box(GraphContext::build(&g, &meter)))
        });
        group.bench_with_input(BenchmarkId::new("tree_context_build", n), &n, |b, _| {
            b.iter(|| black_box(TreeContext::build(&g, Arc::clone(&tree), &params, &meter)))
        });

        let ctx = TreeContext::build(&g, Arc::clone(&tree), &params, &meter);
        // A deterministic pair slice: every non-root edge against a
        // stride of partners.
        let root = ctx.tree().root();
        let pairs: Vec<(u32, u32)> = (0..n as u32)
            .filter(|&e| e != root)
            .flat_map(|e| {
                (0..n as u32)
                    .step_by(7)
                    .filter(move |&f| f != root && f != e)
                    .map(move |f| (e, f))
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("cut_batch", n), &n, |b, _| {
            b.iter(|| black_box(ctx.cut_batch(&pairs, &meter)))
        });
        group.bench_with_input(BenchmarkId::new("solve_prebuilt", n), &n, |b, _| {
            b.iter(|| black_box(ctx.solve(&meter)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
