//! Criterion bench for Lemmas 4.24/4.25: range-structure build and
//! query across the ε knob.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmc_parallel::Meter;
use pmc_range::{Point1, Point2, RangeTree2D, WeightTree1D};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn points2(m: usize, universe: u32, seed: u64) -> Vec<Point2> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| Point2 {
            x: rng.random_range(0..universe),
            y: rng.random_range(0..universe),
            w: rng.random_range(1..16),
        })
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("range2d_build");
    group.sample_size(10);
    let m = 100_000;
    let pts = points2(m, m as u32, 1);
    for eps in [0.1f64, 0.3, 0.6, 1.0] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &eps| {
            b.iter(|| black_box(RangeTree2D::build(pts.clone(), m, eps, &Meter::disabled())))
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("range2d_query");
    let m = 100_000;
    let pts = points2(m, m as u32, 2);
    let mut rng = StdRng::seed_from_u64(3);
    let rects: Vec<(u32, u32, u32, u32)> = (0..256)
        .map(|_| {
            let a = rng.random_range(0..m as u32);
            let b = rng.random_range(0..m as u32);
            let c_ = rng.random_range(0..m as u32);
            let d = rng.random_range(0..m as u32);
            (a.min(b), a.max(b), c_.min(d), c_.max(d))
        })
        .collect();
    for eps in [0.1f64, 0.3, 0.6, 1.0] {
        let tree = RangeTree2D::build(pts.clone(), m, eps, &Meter::disabled());
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for &(x1, x2, y1, y2) in &rects {
                    acc = acc.wrapping_add(tree.sum_rect(x1, x2, y1, y2, &Meter::disabled()));
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("range1d");
    let m = 100_000;
    let mut rng = StdRng::seed_from_u64(4);
    let pts: Vec<Point1> = (0..m)
        .map(|_| Point1 { x: rng.random_range(0..m as u32), w: rng.random_range(1..16) })
        .collect();
    for degree in [2usize, 16, 256] {
        let tree = WeightTree1D::with_degree(pts.clone(), degree, &Meter::disabled());
        group.bench_with_input(BenchmarkId::from_parameter(degree), &degree, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in (0..m as u32).step_by(1000) {
                    acc = acc.wrapping_add(tree.sum(i, i + 500, &Meter::disabled()));
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_query, bench_1d);
criterion_main!(benches);
