//! Criterion bench for Theorem 4.2: one 2-respecting solve per
//! iteration, across sizes and densities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmc_bench::workloads::graph_with_tree;
use pmc_mincut::{naive_two_respecting, two_respecting_mincut, TwoRespectParams};
use pmc_parallel::Meter;
use pmc_tree::RootedTree;
use std::hint::black_box;

fn bench_two_respect(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_respect");
    group.sample_size(10);
    for n in [256usize, 1024] {
        let (g, edges) = graph_with_tree(n, 0.5, 1234);
        let tree = RootedTree::from_edge_list(g.n(), &edges, 0);
        group.bench_with_input(BenchmarkId::new("filtered", n), &n, |b, _| {
            b.iter(|| {
                black_box(two_respecting_mincut(
                    &g,
                    &tree,
                    &TwoRespectParams::default(),
                    &Meter::disabled(),
                ))
            })
        });
        if n <= 256 {
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
                b.iter(|| {
                    black_box(naive_two_respecting(&g, &tree, 0.25, &Meter::disabled()))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_two_respect);
criterion_main!(benches);
