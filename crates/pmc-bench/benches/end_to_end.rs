//! Criterion bench for Theorem 4.1/4.26: the whole exact pipeline, in
//! the sparse and non-sparse regimes, against the sequential baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmc_bench::workloads;
use pmc_graph::{karger_stein_mincut, stoer_wagner_mincut};
use pmc_mincut::{exact_mincut, ExactParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_mincut");
    group.sample_size(10);
    for (name, w) in [
        ("nonsparse-256", workloads::non_sparse(256, 21)),
        ("sparse-1024", workloads::sparse(1024, 22)),
        ("planted-256", workloads::planted(256, 4, 23)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| black_box(exact_mincut(&w.graph, &ExactParams::default())))
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    let w = workloads::non_sparse(128, 24);
    group.bench_function("stoer_wagner-128", |b| {
        b.iter(|| black_box(stoer_wagner_mincut(&w.graph)))
    });
    group.bench_function("karger_stein-128", |b| {
        let mut rng = StdRng::seed_from_u64(25);
        b.iter(|| black_box(karger_stein_mincut(&w.graph, 3, &mut rng)))
    });
    group.bench_function("exact_pipeline-128", |b| {
        b.iter(|| black_box(exact_mincut(&w.graph, &ExactParams::default())))
    });
    group.finish();
}

criterion_group!(benches, bench_exact, bench_baselines);
criterion_main!(benches);
