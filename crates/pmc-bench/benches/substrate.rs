//! Criterion benches for the substrate layers: tree decompositions
//! (Lemma 4.4/4.12), LCA engines, connectivity/forest primitives and
//! the certificate constructions (Theorem 2.6 vs the sequential scan).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmc_bench::workloads;
use pmc_parallel::spanning_forest::spanning_forest;
use pmc_parallel::Meter;
use pmc_sparsify::{k_certificate, scan_certificate};
use pmc_tree::{
    CentroidDecomposition, EulerTour, LcaTable, PathDecomposition, PathStrategy, RootedTree,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_tree(n: u32, seed: u64) -> RootedTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let parent: Vec<u32> =
        (0..n).map(|v| if v == 0 { 0 } else { rng.random_range(0..v) }).collect();
    RootedTree::from_parents(0, &parent)
}

fn bench_decompositions(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_decomposition");
    let t = random_tree(100_000, 7);
    let m = Meter::disabled();
    group.bench_function("heavy_path", |b| {
        b.iter(|| black_box(PathDecomposition::build(&t, PathStrategy::HeavyPath, &m)))
    });
    group.bench_function("bough", |b| {
        b.iter(|| black_box(PathDecomposition::build(&t, PathStrategy::Bough, &m)))
    });
    group.bench_function("centroid", |b| {
        b.iter(|| black_box(CentroidDecomposition::build(&t, &m)))
    });
    group.finish();
}

fn bench_lca(c: &mut Criterion) {
    let mut group = c.benchmark_group("lca");
    let t = random_tree(100_000, 8);
    let lifting = LcaTable::build(&t);
    let euler = EulerTour::build(&t, &Meter::disabled());
    let mut rng = StdRng::seed_from_u64(9);
    let queries: Vec<(u32, u32)> = (0..4096)
        .map(|_| (rng.random_range(0..100_000), rng.random_range(0..100_000)))
        .collect();
    group.bench_function("binary_lifting", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(x, y) in &queries {
                acc = acc.wrapping_add(lifting.lca(x, y) as u64);
            }
            black_box(acc)
        })
    });
    group.bench_function("euler_rmq", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(x, y) in &queries {
                acc = acc.wrapping_add(euler.lca(x, y) as u64);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_certificates(c: &mut Criterion) {
    let mut group = c.benchmark_group("certificates");
    group.sample_size(10);
    let w = workloads::non_sparse(512, 10);
    let m = Meter::disabled();
    for k in [4u64, 16] {
        group.bench_with_input(BenchmarkId::new("forest", k), &k, |b, &k| {
            b.iter(|| black_box(k_certificate(&w.graph, k, &m)))
        });
        group.bench_with_input(BenchmarkId::new("scan", k), &k, |b, &k| {
            b.iter(|| black_box(scan_certificate(&w.graph, k, &m)))
        });
    }
    group.finish();
}

fn bench_forest(c: &mut Criterion) {
    let mut group = c.benchmark_group("spanning_forest");
    group.sample_size(10);
    for n in [1024usize, 8192] {
        let w = workloads::non_sparse(n, 11);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(spanning_forest(&w.graph, &Meter::disabled())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decompositions, bench_lca, bench_certificates, bench_forest);
criterion_main!(benches);
