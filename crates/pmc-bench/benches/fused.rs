//! Criterion bench for the fused batch kernels (DESIGN.md §13): the
//! single-sweep `sum_rects` against the per-rect peel loop, and the
//! sorted Euler-tour LCA batch against per-query sparse-table probes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmc_parallel::Meter;
use pmc_range::{Point2, RangeTree2D};
use pmc_tree::{RootedTree, SparseLca};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn points2(m: usize, universe: u32, seed: u64) -> Vec<Point2> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| Point2 {
            x: rng.random_range(0..universe),
            y: rng.random_range(0..universe),
            w: rng.random_range(1..16),
        })
        .collect()
}

fn rects(count: usize, universe: u32, seed: u64) -> Vec<(u32, u32, u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let a = rng.random_range(0..universe);
            let b = rng.random_range(0..universe);
            let c = rng.random_range(0..universe);
            let d = rng.random_range(0..universe);
            (a.min(b), a.max(b), c.min(d), c.max(d))
        })
        .collect()
}

fn bench_sum_rects(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_sum_rects");
    group.sample_size(10);
    let m = 100_000;
    let tree = RangeTree2D::build(points2(m, m as u32, 11), m, 0.3, &Meter::disabled());
    let meter = Meter::disabled();
    for count in [64usize, 512, 4096] {
        let rs = rects(count, m as u32, count as u64);
        group.bench_with_input(BenchmarkId::new("per_rect", count), &count, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for &(x1, x2, y1, y2) in &rs {
                    acc = acc.wrapping_add(tree.sum_rect(x1, x2, y1, y2, &meter));
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("fused", count), &count, |b, _| {
            b.iter(|| black_box(tree.sum_rects(&rs, &meter)))
        });
    }
    group.finish();
}

fn random_tree(n: usize, seed: u64) -> RootedTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let parent: Vec<u32> =
        (0..n as u32).map(|v| if v == 0 { 0 } else { rng.random_range(0..v) }).collect();
    RootedTree::from_parents(0, &parent)
}

fn bench_lca_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_lca_batch");
    group.sample_size(10);
    let n = 50_000;
    let tree = random_tree(n, 21);
    let lca = SparseLca::build(&tree, &Meter::disabled());
    let mut rng = StdRng::seed_from_u64(22);
    for count in [256usize, 4096, 32_768] {
        let pairs: Vec<(u32, u32)> = (0..count)
            .map(|_| (rng.random_range(0..n as u32), rng.random_range(0..n as u32)))
            .collect();
        group.bench_with_input(BenchmarkId::new("per_query", count), &count, |b, _| {
            b.iter(|| {
                let mut acc = 0u32;
                for &(u, v) in &pairs {
                    acc = acc.wrapping_add(lca.lca(u, v));
                }
                black_box(acc)
            })
        });
        let mut out = Vec::new();
        let mut order = Vec::new();
        let mut stack = Vec::new();
        group.bench_with_input(BenchmarkId::new("batched", count), &count, |b, _| {
            b.iter(|| {
                lca.lca_batch_into(&pairs, &mut out, &mut order, &mut stack);
                black_box(out.last().copied())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sum_rects, bench_lca_batch);
criterion_main!(benches);
