//! Instrumented drop-in replacements for the `std::sync` primitives.
//!
//! On a model thread (inside [`crate::run`]/[`crate::explore`]) every
//! operation routes through the execution's token scheduler: locks
//! block in *model time*, condvar waits park the model thread, atomics
//! insert a yield point before the real operation. Off a model thread
//! the types behave exactly like their `std` counterparts (poison is
//! swallowed via `into_inner`, matching how the workspace uses std
//! locks), so code compiled against them — e.g. `vendor/rayon` with its
//! `model` feature on — runs normally outside an exploration.
//!
//! Identity of a lock or condvar is its address, which is stable for
//! the workspace's usage (locks live in `Arc`s, statics, or a stack
//! frame that outlives every waiter).

use crate::exec;

/// A mutex whose blocking is visible to the model scheduler.
pub struct Mutex<T> {
    data: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`]: releases the raw lock first, then the logical
/// (model) ownership, so the next logically-granted thread always finds
/// the raw lock free.
pub struct MutexGuard<'a, T> {
    raw: Option<std::sync::MutexGuard<'a, T>>,
    lock: &'a Mutex<T>,
    /// `Some(thread index)` when the logical ownership must be released
    /// on drop (taken by `Condvar::wait`, which releases it itself).
    model: Option<usize>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { data: std::sync::Mutex::new(value) }
    }

    fn id(&self) -> usize {
        self as *const Self as *const () as usize
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        match exec::current() {
            Some((e, me)) => {
                e.mutex_lock(me, self.id());
                // Logical ownership granted: the raw lock is normally
                // free. During shutdown free-for-all it may be briefly
                // contended by another unwinding thread — block on it
                // for real then.
                let raw = match self.data.try_lock() {
                    Ok(g) => g,
                    Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
                    Err(std::sync::TryLockError::WouldBlock) => {
                        self.data.lock().unwrap_or_else(|p| p.into_inner())
                    }
                };
                MutexGuard { raw: Some(raw), lock: self, model: Some(me) }
            }
            None => MutexGuard {
                raw: Some(self.data.lock().unwrap_or_else(|p| p.into_inner())),
                lock: self,
                model: None,
            },
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Raw before logical: see the guard's doc comment.
        drop(self.raw.take());
        if let Some(me) = self.model.take() {
            if let Some((e, cur)) = exec::current() {
                debug_assert_eq!(me, cur);
                e.mutex_unlock(cur, self.lock.id());
                // Release is a choice point too: who wins the freed
                // lock is part of the schedule space.
                e.yield_point(cur);
            }
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.raw.as_ref().expect("guard accessed after release")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.raw.as_mut().expect("guard accessed after release")
    }
}

/// A condition variable whose waits park the model thread.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    fn id(&self) -> usize {
        self as *const Self as *const () as usize
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        match guard.model.take() {
            Some(me) => {
                let lock = guard.lock;
                let mid = lock.id();
                // Release the raw lock, then atomically (in model time)
                // release logical ownership and park on the condvar.
                drop(guard);
                if let Some((e, cur)) = exec::current() {
                    debug_assert_eq!(me, cur);
                    e.condvar_wait_block(cur, self.id(), mid);
                }
                // Notified (or shutting down): reacquire like everyone
                // else — re-contention is a scheduling choice.
                lock.lock()
            }
            None => {
                let lock = guard.lock;
                let raw = guard.raw.take().expect("guard accessed after release");
                let raw = self.inner.wait(raw).unwrap_or_else(|p| p.into_inner());
                MutexGuard { raw: Some(raw), lock, model: None }
            }
        }
    }

    pub fn notify_one(&self) {
        if let Some((e, me)) = exec::current() {
            e.condvar_notify(self.id(), false);
            e.yield_point(me);
        }
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        if let Some((e, me)) = exec::current() {
            e.condvar_notify(self.id(), true);
            e.yield_point(me);
        }
        self.inner.notify_all();
    }
}

/// Insert a scheduling choice point when on a model thread.
#[inline]
pub fn interleave() {
    if let Some((e, me)) = exec::current() {
        e.yield_point(me);
    }
}

pub mod atomic {
    //! Atomics with a yield point before every access. With exactly one
    //! model thread running at a time, sequential consistency is what
    //! the scheduler provides; the yield point is what exposes the
    //! interleavings a weaker ordering would have allowed around it.

    pub use std::sync::atomic::Ordering;

    macro_rules! model_atomic {
        ($name:ident, $std:ty, $int:ty) => {
            pub struct $name {
                inner: $std,
            }

            impl $name {
                pub const fn new(v: $int) -> Self {
                    Self { inner: <$std>::new(v) }
                }

                pub fn load(&self, order: Ordering) -> $int {
                    super::interleave();
                    self.inner.load(order)
                }

                pub fn store(&self, v: $int, order: Ordering) {
                    super::interleave();
                    self.inner.store(v, order)
                }

                pub fn fetch_add(&self, v: $int, order: Ordering) -> $int {
                    super::interleave();
                    self.inner.fetch_add(v, order)
                }

                pub fn fetch_sub(&self, v: $int, order: Ordering) -> $int {
                    super::interleave();
                    self.inner.fetch_sub(v, order)
                }

                pub fn fetch_max(&self, v: $int, order: Ordering) -> $int {
                    super::interleave();
                    self.inner.fetch_max(v, order)
                }

                pub fn compare_exchange_weak(
                    &self,
                    current: $int,
                    new: $int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$int, $int> {
                    super::interleave();
                    self.inner.compare_exchange_weak(current, new, success, failure)
                }
            }

            impl std::fmt::Debug for $name {
                // Formatting must not schedule, so this reads the raw
                // value without a yield point.
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    self.inner.fmt(f)
                }
            }
        };
    }

    model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        pub const fn new(v: bool) -> Self {
            Self { inner: std::sync::atomic::AtomicBool::new(v) }
        }

        pub fn load(&self, order: Ordering) -> bool {
            super::interleave();
            self.inner.load(order)
        }

        pub fn store(&self, v: bool, order: Ordering) {
            super::interleave();
            self.inner.store(v, order)
        }
    }

    impl std::fmt::Debug for AtomicBool {
        // No yield point: see the macro's Debug impl.
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.inner.fmt(f)
        }
    }
}

pub mod thread {
    //! Thread operations visible to the model scheduler.

    /// Spawn a detached thread. On a model thread the new thread is a
    /// *daemon*: it may still be alive (blocked or scanning) when the
    /// execution's non-daemon threads finish, at which point it is
    /// unwound. Off a model thread this is a plain detached std spawn.
    pub fn spawn_daemon<F>(name: &str, f: F) -> std::io::Result<()>
    where
        F: FnOnce() + Send + 'static,
    {
        match crate::exec::current() {
            Some((e, me)) => {
                e.spawn(true, name, Box::new(f));
                // The spawn itself is a choice point: the child may be
                // scheduled before the spawner's next operation.
                e.yield_point(me);
                Ok(())
            }
            None => std::thread::Builder::new().name(name.to_string()).spawn(f).map(|_| ()),
        }
    }

    /// The model thread index, when on one. Distinct concurrent
    /// participants have distinct indices — the model-world analogue of
    /// `std::thread::current().id()` for sequentiality assertions.
    pub fn model_index() -> Option<usize> {
        crate::exec::current().map(|(_, i)| i)
    }

    /// A pure scheduling yield (no memory effect).
    pub fn yield_now() {
        super::interleave();
    }
}
