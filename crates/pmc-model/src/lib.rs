//! `pmc-model` — a loom-style concurrency model checker.
//!
//! The checker runs a closure many times, each time under a different
//! thread interleaving, and reports the first *violation* it finds:
//! a panic (failed assertion) on any model thread, a deadlock (no
//! runnable thread while a non-daemon thread is alive — which is also
//! how a lost condvar wake-up manifests), or a tripped step budget
//! (livelock). Code under test uses the instrumented primitives in
//! [`sync`] — directly, or through `vendor/rayon`'s `sync` facade when
//! the shim is built with its `model` feature.
//!
//! Exactly one model thread runs at a time; every instrumented
//! operation is a scheduling choice point. An execution is therefore a
//! pure function of its choice sequence, and a failing run prints a
//! **replayable schedule string** (`v1:0.1.0...`) that reproduces the
//! interleaving deterministically via [`replay`].
//!
//! Two exploration strategies:
//!
//! * [`Strategy::Random`] — `iterations` seeded-random walks over the
//!   schedule space. Collision-counted: [`Report::distinct_schedules`]
//!   says how many *distinct* interleavings were actually covered.
//! * [`Strategy::Dfs`] — systematic depth-first search over the choice
//!   tree, bounded by [`Config::preemption_bound`] (schedules that
//!   switch away from a still-runnable thread more than `bound` times
//!   are pruned — most concurrency bugs need very few preemptions) and
//!   by `iterations` as a hard run cap.
//!
//! Seeded *mutations* ([`Config::mutations`]) are how the checker is
//! validated: code under test asks [`mutation_enabled`] whether a named
//! bug should be injected, and a fixture asserts the checker catches it
//! under a checked-in schedule. See `vendor/rayon/tests/model.rs`.

mod exec;
pub mod sync;

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

pub use sync::thread;

/// How to pick the next thread at each choice point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Seeded-random walks; `iterations` of them.
    Random,
    /// Preemption-bounded depth-first search of the choice tree.
    Dfs,
}

/// Exploration parameters. `Default` is a sensible CI budget: 1,500
/// random schedules from a fixed seed, 50k steps per schedule.
#[derive(Clone, Debug)]
pub struct Config {
    pub seed: u64,
    /// Upper bound on executions (random walks or DFS runs).
    pub iterations: usize,
    pub strategy: Strategy,
    /// Max context switches away from a runnable thread (DFS only).
    pub preemption_bound: usize,
    /// Scheduling steps per execution before declaring livelock.
    pub max_steps: usize,
    /// Named bug injections for checker validation; queried by the code
    /// under test via [`mutation_enabled`].
    pub mutations: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 0x5EED_CAFE,
            iterations: 1_500,
            strategy: Strategy::Random,
            preemption_bound: 2,
            max_steps: 50_000,
            mutations: Vec::new(),
        }
    }
}

impl Config {
    pub fn with_mutation(mut self, name: &str) -> Self {
        self.mutations.push(name.to_string());
        self
    }
}

/// A caught violation plus the schedule that reproduces it.
#[derive(Clone, Debug)]
pub struct Violation {
    pub message: String,
    /// Replayable schedule string (`v1:` + dot-separated choices).
    pub schedule: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}\nreplayable schedule: {}", self.message, self.schedule)
    }
}

/// What an exploration covered.
#[derive(Clone, Debug)]
pub struct Report {
    /// Executions actually run.
    pub executions: usize,
    /// Distinct complete schedules among them.
    pub distinct_schedules: usize,
    /// First violation found, if any (exploration stops there).
    pub violation: Option<Violation>,
}

/// Encode a choice trace as a replayable schedule string.
pub fn encode_schedule(trace: &[usize]) -> String {
    let body: Vec<String> = trace.iter().map(|c| c.to_string()).collect();
    format!("v1:{}", body.join("."))
}

/// Decode a schedule string produced by [`encode_schedule`].
pub fn decode_schedule(s: &str) -> Result<Vec<usize>, String> {
    let body = s.strip_prefix("v1:").ok_or_else(|| format!("bad schedule version: {s:?}"))?;
    if body.is_empty() {
        return Ok(Vec::new());
    }
    body.split('.')
        .map(|tok| tok.parse::<usize>().map_err(|e| format!("bad schedule token {tok:?}: {e}")))
        .collect()
}

/// True when the calling thread is a model thread of a live execution.
pub fn active() -> bool {
    exec::current().is_some()
}

/// Is the named seeded mutation enabled in the current execution?
/// Always `false` off a model thread, so mutation hooks compiled into
/// production code paths are inert outside the checker.
pub fn mutation_enabled(name: &str) -> bool {
    match exec::current() {
        Some((e, _)) => e.mutation_enabled(name),
        None => false,
    }
}

/// Record a violation *without* panicking — for invariant checks inside
/// code that must keep running (e.g. protocol conformance probes). The
/// scheduler reports it when the current thread next yields.
pub fn report_violation(message: &str) {
    if let Some((e, _)) = exec::current() {
        e.fail(message.to_string());
    }
}

/// Execution-scoped lazy global for model-aware facades: at most one
/// `T` per execution per `key` (callers pass their static's address).
/// `None` off a model thread — the caller should fall back to its
/// process-wide static.
pub fn global<T, F>(key: usize, mut init: F) -> Option<Arc<T>>
where
    T: Send + Sync + 'static,
    F: FnMut() -> T,
{
    let (e, _) = exec::current()?;
    let erased = e.global(key, &mut || Arc::new(init()) as Arc<dyn std::any::Any + Send + Sync>);
    Some(erased.downcast::<T>().expect("global key reused with a different type"))
}

/// Fixed logical hardware width inside the model (determinism: the
/// schedule space must not depend on the host machine).
pub const MODEL_HARDWARE_THREADS: usize = 2;

/// `Some(MODEL_HARDWARE_THREADS)` on a model thread, `None` otherwise.
pub fn hardware_threads_override() -> Option<usize> {
    if active() {
        Some(MODEL_HARDWARE_THREADS)
    } else {
        None
    }
}

struct RunOutcome {
    trace: Vec<usize>,
    branch: Vec<Vec<usize>>,
    failure: Option<String>,
}

fn run_one(f: &Arc<dyn Fn() + Send + Sync>, cfg: &Config, seed: u64, forced: &[usize]) -> RunOutcome {
    let execution =
        exec::Execution::new(seed, cfg.max_steps, forced.to_vec(), cfg.mutations.clone());
    let body = Arc::clone(f);
    execution.spawn(false, "main", Box::new(move || body()));
    let (trace, branch, failure) = execution.run_scheduler();
    RunOutcome { trace, branch, failure }
}

fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// Count preemptions in a prefix: steps that switched away from the
/// previously-running thread while it was still runnable.
fn preemptions(trace: &[usize], branch: &[Vec<usize>]) -> usize {
    (1..trace.len())
        .filter(|&k| trace[k] != trace[k - 1] && branch[k].contains(&trace[k - 1]))
        .count()
}

/// Explore schedules of `f` under `cfg`. Returns a [`Report`]; a found
/// violation stops the exploration and is carried in the report.
pub fn run<F>(cfg: &Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut distinct: HashSet<Vec<usize>> = HashSet::new();
    let mut executions = 0;

    match cfg.strategy {
        Strategy::Random => {
            for i in 0..cfg.iterations {
                let out = run_one(&f, cfg, mix(cfg.seed, i as u64), &[]);
                executions += 1;
                distinct.insert(out.trace.clone());
                if let Some(message) = out.failure {
                    return Report {
                        executions,
                        distinct_schedules: distinct.len(),
                        violation: Some(Violation {
                            message,
                            schedule: encode_schedule(&out.trace),
                        }),
                    };
                }
            }
        }
        Strategy::Dfs => {
            let mut frontier: VecDeque<Vec<usize>> = VecDeque::from([Vec::new()]);
            let mut seen_prefixes: HashSet<Vec<usize>> = HashSet::new();
            while let Some(prefix) = frontier.pop_front() {
                if executions >= cfg.iterations {
                    break;
                }
                // Beyond the prefix the walk is seeded-deterministic,
                // so identical prefixes give identical executions.
                let out = run_one(&f, cfg, cfg.seed, &prefix);
                executions += 1;
                distinct.insert(out.trace.clone());
                if let Some(message) = out.failure {
                    return Report {
                        executions,
                        distinct_schedules: distinct.len(),
                        violation: Some(Violation {
                            message,
                            schedule: encode_schedule(&out.trace),
                        }),
                    };
                }
                // Branch: at every step past the prefix, each untried
                // runnable alternative seeds a deeper prefix, pruned by
                // the preemption bound.
                for k in prefix.len()..out.trace.len() {
                    for &alt in &out.branch[k] {
                        if alt == out.trace[k] {
                            continue;
                        }
                        let mut child: Vec<usize> = out.trace[..k].to_vec();
                        child.push(alt);
                        if preemptions(&child, &out.branch[..=k.min(out.branch.len() - 1)])
                            > cfg.preemption_bound
                        {
                            continue;
                        }
                        if seen_prefixes.insert(child.clone()) {
                            frontier.push_back(child);
                        }
                    }
                }
            }
        }
    }

    Report { executions, distinct_schedules: distinct.len(), violation: None }
}

/// Explore and panic (with the replayable schedule) on any violation.
pub fn explore<F>(cfg: &Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let report = run(cfg, f);
    if let Some(v) = &report.violation {
        panic!("model checking failed after {} executions: {v}", report.executions);
    }
    report
}

/// Explore and panic unless a violation IS found — the harness for
/// validating the checker against seeded mutations. Returns the
/// violation (with its replayable schedule) for fixture pinning.
pub fn explore_expect_violation<F>(cfg: &Config, f: F) -> Violation
where
    F: Fn() + Send + Sync + 'static,
{
    let report = run(cfg, f);
    match report.violation {
        Some(v) => v,
        None => panic!(
            "expected a violation but {} executions ({} distinct schedules) all passed",
            report.executions, report.distinct_schedules
        ),
    }
}

/// Re-run `f` under a recorded schedule. Choices beyond the recorded
/// prefix (or diverging from it) fall back to the seeded-random walk,
/// so a schedule recorded from a violation deterministically reproduces
/// it as long as the code under test is unchanged.
pub fn replay<F>(schedule: &str, cfg: &Config, f: F) -> Option<Violation>
where
    F: Fn() + Send + Sync + 'static,
{
    let forced = decode_schedule(schedule).expect("malformed schedule string");
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let out = run_one(&f, cfg, cfg.seed, &forced);
    out.failure.map(|message| Violation { message, schedule: encode_schedule(&out.trace) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sync::atomic::{AtomicUsize, Ordering};
    use sync::{Condvar, Mutex};

    #[test]
    fn schedule_codec_round_trips() {
        for trace in [vec![], vec![0], vec![0, 1, 0, 2, 1]] {
            assert_eq!(
                decode_schedule(&encode_schedule(&trace)).expect("codec round-trip"),
                trace
            );
        }
        assert!(decode_schedule("v2:0.1").is_err());
        assert!(decode_schedule("v1:0.x").is_err());
    }

    #[test]
    fn sequential_body_explores_one_schedule() {
        let report = explore(&Config { iterations: 16, ..Config::default() }, || {
            let m = Mutex::new(0);
            *m.lock() += 1;
            assert_eq!(*m.lock(), 1);
        });
        assert_eq!(report.executions, 16);
        assert_eq!(report.distinct_schedules, 1, "no concurrency, no branching");
    }

    #[test]
    fn fallback_mode_behaves_like_std() {
        // Off a model thread the primitives are plain std.
        assert!(!active());
        let m = Mutex::new(5);
        assert_eq!(*m.lock(), 5);
        let a = AtomicUsize::new(1);
        assert_eq!(a.fetch_add(2, Ordering::SeqCst), 1);
        let cv = Condvar::new();
        cv.notify_all();
    }

    #[test]
    fn atomic_interleavings_are_explored() {
        use std::sync::Arc;
        // Two incrementing threads: the final count is always 2 (our
        // atomics are genuinely atomic) but schedules must differ.
        let report = explore(&Config { iterations: 64, ..Config::default() }, || {
            let a = Arc::new(AtomicUsize::new(0));
            let (a1, a2) = (Arc::clone(&a), Arc::clone(&a));
            thread::spawn_daemon("inc1", move || {
                a1.fetch_add(1, Ordering::SeqCst);
            })
            .expect("daemon spawn succeeds under the model");
            a2.fetch_add(1, Ordering::SeqCst);
            // NOTE: the daemon may or may not have run yet — both are
            // legal schedules; only atomicity is asserted elsewhere.
        });
        assert!(report.distinct_schedules > 1, "spawned thread must create interleavings");
    }

    #[test]
    fn deadlock_is_caught_with_replayable_schedule() {
        use std::sync::Arc;
        // Classic ABBA deadlock, reachable only under some schedules.
        let v = explore_expect_violation(&Config::default(), || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            thread::spawn_daemon("abba", move || {
                let _gb = b2.lock();
                let _ga = a2.lock();
            })
            .expect("daemon spawn succeeds under the model");
            let _ga = a.lock();
            let _gb = b.lock();
        });
        assert!(v.message.contains("deadlock"), "got: {}", v.message);
        // The recorded schedule reproduces the deadlock immediately.
        let replayed = replay(&v.schedule, &Config::default(), || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            thread::spawn_daemon("abba", move || {
                let _gb = b2.lock();
                let _ga = a2.lock();
            })
            .expect("daemon spawn succeeds under the model");
            let _ga = a.lock();
            let _gb = b.lock();
        });
        assert!(replayed.expect("replay must fail").message.contains("deadlock"));
    }

    #[test]
    fn assertion_failures_are_violations() {
        let v = explore_expect_violation(&Config { iterations: 8, ..Config::default() }, || {
            assert_eq!(1 + 1, 3, "seeded failure");
        });
        assert!(v.message.contains("seeded failure"), "got: {}", v.message);
    }

    #[test]
    fn mutations_are_scoped_to_the_execution() {
        assert!(!mutation_enabled("outside"));
        explore(&Config { iterations: 4, ..Config::default() }.with_mutation("m1"), || {
            assert!(mutation_enabled("m1"));
            assert!(!mutation_enabled("m2"));
        });
    }

    #[test]
    fn condvar_handoff_completes_under_all_schedules() {
        use std::sync::Arc;
        // Producer/consumer with a correct token protocol: must finish
        // under every explored schedule (no lost wake-up).
        let cfg = Config { iterations: 256, ..Config::default() };
        let report = explore(&cfg, || {
            let slot: Arc<(Mutex<Option<u32>>, Condvar)> =
                Arc::new((Mutex::new(None), Condvar::new()));
            let slot2 = Arc::clone(&slot);
            thread::spawn_daemon("producer", move || {
                let (m, cv) = &*slot2;
                *m.lock() = Some(7);
                cv.notify_one();
            })
            .expect("daemon spawn succeeds under the model");
            let (m, cv) = &*slot;
            let mut g = m.lock();
            while g.is_none() {
                g = cv.wait(g);
            }
            assert_eq!(*g, Some(7));
        });
        assert!(report.distinct_schedules > 4);
    }

    #[test]
    fn dfs_explores_systematically() {
        use std::sync::Arc;
        let cfg = Config { strategy: Strategy::Dfs, iterations: 200, ..Config::default() };
        let report = explore(&cfg, || {
            let a = Arc::new(AtomicUsize::new(0));
            let a1 = Arc::clone(&a);
            thread::spawn_daemon("w", move || {
                a1.fetch_add(1, Ordering::SeqCst);
            })
            .expect("daemon spawn succeeds under the model");
            a.fetch_add(1, Ordering::SeqCst);
        });
        assert!(report.distinct_schedules > 1);
    }

    #[test]
    fn global_is_execution_scoped() {
        use std::sync::Arc as StdArc;
        use std::sync::Mutex as StdMutex;
        static KEY: u8 = 0;
        assert!(global(&KEY as *const _ as usize, || 42u32).is_none(), "no execution outside");
        // Each execution must see a fresh instance: count inits.
        let inits = StdArc::new(StdMutex::new(0usize));
        let inits2 = StdArc::clone(&inits);
        let report = run(&Config { iterations: 5, ..Config::default() }, move || {
            let inits3 = StdArc::clone(&inits2);
            let g = global(&KEY as *const _ as usize, move || {
                *inits3.lock().expect("init counter lock") += 1;
                0u32
            })
            .expect("on a model thread");
            // Same key, same execution: cached, not re-inited.
            let g2 = global(&KEY as *const _ as usize, || 1u32).expect("on a model thread");
            assert_eq!(*g, *g2);
        });
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert_eq!(*inits.lock().expect("init counter lock"), 5, "one init per execution");
    }
}
