//! One model execution: a set of real OS threads serialized by a token
//! scheduler so that exactly one runs at a time.
//!
//! Every instrumented operation (mutex lock/unlock, condvar wait/notify,
//! atomic access, spawn) is a *yield point*: the running thread hands
//! the token back and the scheduler picks the next runnable thread —
//! by forced prefix (replay), then by strategy. Because threads only
//! ever run one-at-a-time and every scheduling decision is recorded,
//! an execution is a pure function of its choice sequence: the recorded
//! trace replays bit-for-bit.
//!
//! Termination has three shapes:
//!
//! * **Natural end** — every non-daemon thread finished. Daemon threads
//!   (pool workers) are unwound via a [`ShutdownToken`] panic raised at
//!   their next blocking/yield point and joined.
//! * **Violation** — a thread panicked, the scheduler found a deadlock
//!   (no runnable thread while a non-daemon is still alive), or the
//!   step budget tripped (livelock). The execution's threads are
//!   *leaked*: parked forever on the token condvar, never scheduled
//!   again. Unwinding them is impossible in general — their destructors
//!   block on application-level conditions that can no longer occur —
//!   and a handful of parked threads per caught violation is cheap in a
//!   test process.
//! * **Shutdown-unwind free-for-all** — during the natural-end unwind,
//!   instrumented primitives degrade to their raw `std` forms (real
//!   blocking locks, immediate condvar returns) so `Drop` impls running
//!   concurrently on several unwinding daemons stay safe without the
//!   scheduler.

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::panic_any;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Panic payload used to unwind daemon threads at natural end of an
/// execution. Never escapes `model_thread_main`.
pub(crate) struct ShutdownToken;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Status {
    Runnable,
    BlockedMutex(usize),
    BlockedCondvar(usize),
    Finished,
}

pub(crate) struct ThreadInfo {
    pub status: Status,
    pub daemon: bool,
    pub name: String,
}

/// Everything mutable about an execution, under one lock; the paired
/// condvar is the single rendezvous for token handoff.
pub(crate) struct ExecState {
    pub threads: Vec<ThreadInfo>,
    /// Token holder: the one thread allowed to run right now.
    pub active: Option<usize>,
    /// Chosen thread per scheduling step — the schedule.
    pub trace: Vec<usize>,
    /// Runnable set at each step (alternatives, for DFS branching).
    pub branch: Vec<Vec<usize>>,
    /// Natural-end teardown in progress.
    pub shutdown: bool,
    /// Violation teardown: threads stay parked forever.
    pub leaked: bool,
    pub failure: Option<String>,
    rng: u64,
    /// Logical mutex ownership (key: mutex address).
    mutex_owner: HashMap<usize, usize>,
    /// FIFO condvar wait queues (key: condvar address).
    cv_waiters: HashMap<usize, Vec<usize>>,
    /// Execution-scoped lazy globals (key: static's address).
    globals: HashMap<usize, Arc<dyn Any + Send + Sync>>,
    mutations: Vec<String>,
}

pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
    forced: Vec<usize>,
    max_steps: usize,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The execution this thread belongs to, if it is a model thread.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// `Some(guard)` when the token was granted; `None` when the execution
/// is tearing down while the caller is already unwinding (free-for-all
/// mode — proceed without the scheduler).
type Token<'a> = Option<MutexGuard<'a, ExecState>>;

impl Execution {
    pub(crate) fn new(
        seed: u64,
        max_steps: usize,
        forced: Vec<usize>,
        mutations: Vec<String>,
    ) -> Arc<Self> {
        Arc::new(Execution {
            state: Mutex::new(ExecState {
                threads: Vec::new(),
                active: None,
                trace: Vec::new(),
                branch: Vec::new(),
                shutdown: false,
                leaked: false,
                failure: None,
                rng: seed,
                mutex_owner: HashMap::new(),
                cv_waiters: HashMap::new(),
                globals: HashMap::new(),
                mutations,
            }),
            cv: Condvar::new(),
            forced,
            max_steps,
            handles: Mutex::new(Vec::new()),
        })
    }

    fn lock(&self) -> MutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait<'a>(&self, st: MutexGuard<'a, ExecState>) -> MutexGuard<'a, ExecState> {
        self.cv.wait(st).unwrap_or_else(|e| e.into_inner())
    }

    /// Park until this thread holds the token, the execution shuts
    /// down (panic [`ShutdownToken`], or return `None` when already
    /// unwinding), or — on violation teardown — forever.
    fn wait_for_token<'a>(&'a self, mut st: MutexGuard<'a, ExecState>, me: usize) -> Token<'a> {
        loop {
            if st.shutdown {
                if std::thread::panicking() {
                    return None;
                }
                drop(st);
                panic_any(ShutdownToken);
            }
            if !st.leaked && st.active == Some(me) {
                return Some(st);
            }
            st = self.wait(st);
        }
    }

    /// Hand the token back and wait to be scheduled again — the one
    /// interleaving point every instrumented operation funnels through.
    pub(crate) fn yield_point(&self, me: usize) {
        let mut st = self.lock();
        if st.shutdown {
            drop(st);
            if std::thread::panicking() {
                return;
            }
            panic_any(ShutdownToken);
        }
        st.active = None;
        self.cv.notify_all();
        let _token = self.wait_for_token(st, me);
    }

    /// Acquire logical ownership of mutex `id`, blocking (in model
    /// time) while another thread owns it. A yield point.
    pub(crate) fn mutex_lock(&self, me: usize, id: usize) {
        self.yield_point(me);
        let mut st = self.lock();
        loop {
            if st.shutdown || st.leaked {
                // Free-for-all: the raw std lock in the caller provides
                // mutual exclusion between concurrently unwinding
                // threads; logical bookkeeping no longer matters.
                return;
            }
            if let std::collections::hash_map::Entry::Vacant(e) = st.mutex_owner.entry(id) {
                e.insert(me);
                return;
            }
            st.threads[me].status = Status::BlockedMutex(id);
            st.active = None;
            self.cv.notify_all();
            match self.wait_for_token(st, me) {
                Some(g) => st = g,
                None => return,
            }
        }
    }

    /// Release logical ownership of mutex `id`, waking its waiters.
    pub(crate) fn mutex_unlock(&self, me: usize, id: usize) {
        let mut st = self.lock();
        if st.shutdown || st.leaked {
            st.mutex_owner.remove(&id);
            return;
        }
        debug_assert_eq!(st.mutex_owner.get(&id), Some(&me), "unlock by non-owner");
        st.mutex_owner.remove(&id);
        for t in st.threads.iter_mut() {
            if t.status == Status::BlockedMutex(id) {
                t.status = Status::Runnable;
            }
        }
    }

    /// Atomically release mutex `mid` and block on condvar `cid` until
    /// notified. The caller reacquires the mutex itself afterwards.
    pub(crate) fn condvar_wait_block(&self, me: usize, cid: usize, mid: usize) {
        let mut st = self.lock();
        if st.shutdown || st.leaked {
            return;
        }
        st.mutex_owner.remove(&mid);
        for t in st.threads.iter_mut() {
            if t.status == Status::BlockedMutex(mid) {
                t.status = Status::Runnable;
            }
        }
        st.threads[me].status = Status::BlockedCondvar(cid);
        st.cv_waiters.entry(cid).or_default().push(me);
        st.active = None;
        self.cv.notify_all();
        let _token = self.wait_for_token(st, me);
    }

    /// Wake the first (`all == false`) or every waiter of condvar
    /// `cid`. Notifications with no waiter are lost — real condvar
    /// semantics, which is exactly what lost-wakeup bugs exploit.
    pub(crate) fn condvar_notify(&self, cid: usize, all: bool) {
        let mut st = self.lock();
        if st.shutdown || st.leaked {
            return;
        }
        let waiters = st.cv_waiters.entry(cid).or_default();
        let n = if all { waiters.len() } else { waiters.len().min(1) };
        let woken: Vec<usize> = waiters.drain(..n).collect();
        for t in woken {
            st.threads[t].status = Status::Runnable;
        }
    }

    /// Register and start a model thread. The closure runs once the
    /// scheduler first grants it the token.
    pub(crate) fn spawn(self: &Arc<Self>, daemon: bool, name: &str, f: Box<dyn FnOnce() + Send>) {
        let idx = {
            let mut st = self.lock();
            st.threads.push(ThreadInfo {
                status: Status::Runnable,
                daemon,
                name: name.to_string(),
            });
            st.threads.len() - 1
        };
        let exec = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("pmc-model-{name}-{idx}"))
            .spawn(move || model_thread_main(exec, idx, f))
            .expect("spawning a model thread");
        self.handles.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
    }

    fn finish(&self, me: usize, err: Option<Box<dyn Any + Send>>) {
        let mut st = self.lock();
        st.threads[me].status = Status::Finished;
        if let Some(payload) = err {
            if !payload.is::<ShutdownToken>() && st.failure.is_none() {
                st.failure = Some(format!(
                    "thread {me} ({}) panicked: {}",
                    st.threads[me].name,
                    panic_message(payload.as_ref())
                ));
            }
        }
        if st.active == Some(me) {
            st.active = None;
        }
        self.cv.notify_all();
    }

    /// Execution-scoped lazy global: one instance per execution per
    /// `key` (callers pass the address of their static).
    pub(crate) fn global(
        self: &Arc<Self>,
        key: usize,
        init: &mut dyn FnMut() -> Arc<dyn Any + Send + Sync>,
    ) -> Arc<dyn Any + Send + Sync> {
        if let Some(g) = self.lock().globals.get(&key) {
            return Arc::clone(g);
        }
        // Init outside the state lock: it may itself hit yield points.
        let value = init();
        let mut st = self.lock();
        Arc::clone(st.globals.entry(key).or_insert(value))
    }

    pub(crate) fn mutation_enabled(&self, name: &str) -> bool {
        self.lock().mutations.iter().any(|m| m == name)
    }

    pub(crate) fn fail(&self, message: String) {
        let mut st = self.lock();
        if st.failure.is_none() {
            st.failure = Some(message);
        }
    }

    /// Drive the execution to completion on the calling (non-model)
    /// thread. Returns the recorded trace, per-step runnable sets, and
    /// the failure, if any.
    pub(crate) fn run_scheduler(self: &Arc<Self>) -> (Vec<usize>, Vec<Vec<usize>>, Option<String>) {
        loop {
            let mut st = self.lock();
            while st.active.is_some() {
                st = self.wait(st);
            }
            if st.failure.is_some() {
                break;
            }
            if st.threads.iter().all(|t| t.daemon || t.status == Status::Finished) {
                break;
            }
            let runnable: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::Runnable)
                .map(|(i, _)| i)
                .collect();
            if runnable.is_empty() {
                let dump: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .map(|(i, t)| format!("  thread {i} ({}): {:?}", t.name, t.status))
                    .collect();
                st.failure = Some(format!(
                    "deadlock: no runnable thread while a non-daemon thread is alive\n{}",
                    dump.join("\n")
                ));
                break;
            }
            if st.trace.len() >= self.max_steps {
                st.failure = Some(format!(
                    "step budget exceeded ({} scheduling steps): livelock or runaway loop",
                    self.max_steps
                ));
                break;
            }
            let k = st.trace.len();
            let chosen = match self.forced.get(k) {
                Some(&f) if runnable.contains(&f) => f,
                // Off the forced prefix (or the forced choice is no
                // longer runnable — divergence): deterministic-random.
                _ => {
                    let r = splitmix(&mut st.rng);
                    runnable[(r % runnable.len() as u64) as usize]
                }
            };
            st.branch.push(runnable);
            st.trace.push(chosen);
            st.active = Some(chosen);
            self.cv.notify_all();
        }

        let mut st = self.lock();
        let trace = st.trace.clone();
        let branch = st.branch.clone();
        let failure = st.failure.clone();
        if failure.is_some() {
            // Leak: park every surviving thread forever (see module
            // docs for why unwinding them is not possible in general).
            st.leaked = true;
            self.cv.notify_all();
            drop(st);
            self.handles.lock().unwrap_or_else(|e| e.into_inner()).clear();
        } else {
            st.shutdown = true;
            self.cv.notify_all();
            drop(st);
            let handles: Vec<_> =
                self.handles.lock().unwrap_or_else(|e| e.into_inner()).drain(..).collect();
            for h in handles {
                let _ = h.join();
            }
        }
        (trace, branch, failure)
    }
}

fn model_thread_main(exec: Arc<Execution>, idx: usize, f: Box<dyn FnOnce() + Send>) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), idx)));
    let entered = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let st = exec.lock();
        // Drop the granted token guard immediately: holding it across
        // `f` would block every other participant on the state lock.
        exec.wait_for_token(st, idx).is_some()
    }));
    match entered {
        Ok(true) => {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            exec.finish(idx, result.err());
        }
        Ok(false) => exec.finish(idx, None),
        Err(payload) => exec.finish(idx, Some(payload)),
    }
    CURRENT.with(|c| *c.borrow_mut() = None);
}
