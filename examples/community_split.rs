//! A downstream-user scenario: graph partitioning by repeated minimum
//! cuts. Splits a noisy two-community network at its sparsest point and
//! measures how well the planted structure is recovered, comparing the
//! parallel pipeline against Karger–Stein on quality and candidate
//! counts.
//!
//! ```sh
//! cargo run --release --example community_split
//! ```

use parallel_mincut::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn recovery_score(side: &[u32], n: usize, half: usize) -> f64 {
    // Fraction of vertices classified consistently with the planted
    // halves (up to side swap).
    let mut in_side = vec![false; n];
    for &v in side {
        in_side[v as usize] = true;
    }
    let agree = (0..n).filter(|&v| in_side[v] == (v < half)).count();
    let score = agree as f64 / n as f64;
    score.max(1.0 - score)
}

fn main() {
    let n = 120;
    let mut rng = StdRng::seed_from_u64(31);
    let g = generators::planted_bisection(n, 900, 4, 12, 1, &mut rng);
    println!("two planted communities of {} vertices, 4 unit bridges", n / 2);
    println!("n = {}, m = {}, total weight = {}\n", g.n(), g.m(), g.total_weight());

    // Parallel pipeline.
    let t0 = std::time::Instant::now();
    let exact = exact_mincut(&g, &ExactParams::default());
    let t_exact = t0.elapsed();
    let score = recovery_score(&exact.cut.side, g.n(), n / 2);
    println!("parallel pipeline : cut = {}, recovery = {:.1}%, {:?}", exact.cut.value, score * 100.0, t_exact);

    // Karger–Stein baseline.
    let t0 = std::time::Instant::now();
    let trials = pmc_graph::karger_stein::default_trials(g.n());
    let ks = karger_stein_mincut(&g, trials, &mut rng);
    let t_ks = t0.elapsed();
    let ks_score = recovery_score(&ks.side, g.n(), n / 2);
    println!("karger–stein      : cut = {}, recovery = {:.1}%, {:?} ({} trials)", ks.value, ks_score * 100.0, t_ks, trials);

    // Oracle.
    let t0 = std::time::Instant::now();
    let sw = stoer_wagner_mincut(&g);
    let t_sw = t0.elapsed();
    println!("stoer–wagner      : cut = {}, {:?}", sw.value, t_sw);

    assert_eq!(exact.cut.value, sw.value, "pipeline must be exact");
    assert_eq!(exact.cut.value, 4, "the four planted bridges");
    assert!(score > 0.99, "perfect community recovery expected");
    println!("\ncommunities recovered exactly; the cut is the planted bridge set.");

    // Split recursively once more to show library composition: cut each
    // side's induced subgraph.
    let mut in_side = vec![false; g.n()];
    for &v in &exact.cut.side {
        in_side[v as usize] = true;
    }
    for (label, keep) in [("A", true), ("B", false)] {
        let ids: Vec<u32> = (0..g.n() as u32).filter(|&v| in_side[v as usize] == keep).collect();
        let index_of: std::collections::HashMap<u32, u32> =
            ids.iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();
        let sub_edges: Vec<(u32, u32, u64)> = g
            .edges()
            .iter()
            .filter(|e| in_side[e.u as usize] == keep && in_side[e.v as usize] == keep)
            .map(|e| (index_of[&e.u], index_of[&e.v], e.w))
            .collect();
        let sub = Graph::from_edges(ids.len(), sub_edges);
        let cut = exact_mincut(&sub, &ExactParams::default());
        println!("community {label}: n = {}, internal min-cut = {}", sub.n(), cut.cut.value);
    }
}
