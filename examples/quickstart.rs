//! Quickstart: build a weighted graph, compute its minimum cut with the
//! parallel pipeline, and cross-check against the sequential oracle.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use parallel_mincut::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A graph with a planted minimum cut: two dense communities of 50
    // vertices joined by three light bridges.
    let mut rng = StdRng::seed_from_u64(7);
    let g = generators::planted_bisection(
        100,  // vertices
        600,  // random internal edges per side
        3,    // bridge edges
        20,   // max internal weight
        2,    // bridge weight
        &mut rng,
    );
    println!("graph: n = {}, m = {}, total weight = {}", g.n(), g.m(), g.total_weight());

    // The parallel pipeline (Theorem 4.1): approximate, sparsify, pack
    // trees, then find the best 2-respecting cut per tree.
    let result = exact_mincut(&g, &ExactParams::default());
    println!("parallel min-cut value : {}", result.cut.value);
    println!("cut side (|S| = {}): {:?} ...", result.cut.side.len(), &result.cut.side[..8.min(result.cut.side.len())]);
    println!(
        "pipeline stats: lambda~ = {}, skeleton p = {:.4}, skeleton m = {}, packed trees = {}",
        result.stats.lambda_estimate,
        result.stats.skeleton_p,
        result.stats.skeleton_edges,
        result.stats.num_trees
    );

    // Verify the reported side realizes the value and matches the oracle.
    let mut side = vec![false; g.n()];
    for &v in &result.cut.side {
        side[v as usize] = true;
    }
    assert_eq!(cut_of_partition(&g, &side), result.cut.value, "side must realize the value");
    let oracle = stoer_wagner_mincut(&g);
    assert_eq!(result.cut.value, oracle.value, "must match Stoer–Wagner");
    println!("verified against Stoer–Wagner: {}", oracle.value);

    // The planted bridges are the minimum cut.
    assert_eq!(result.cut.value, 6, "3 bridges x weight 2");
    println!("planted cut recovered.");
}
