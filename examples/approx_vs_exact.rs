//! Theorem 3.1 in action: the sampling-hierarchy approximation on
//! graphs whose minimum cut is far too heavy for certificate tricks
//! alone, followed by the `(1 ± ε)` refinement and the exact value.
//!
//! ```sh
//! cargo run --release --example approx_vs_exact
//! ```

use parallel_mincut::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);

    let workloads: Vec<(&str, Graph)> = vec![
        ("dumbbell bridge 6000", generators::dumbbell(10, 2000, 6000)),
        (
            "heavy cycle + chords",
            generators::heavy_cycle_with_chords(16, 30, 4000, 100, &mut rng),
        ),
        ("clique ring, heavy", generators::ring_of_cliques(4, 6, 800, 900)),
    ];

    println!(
        "{:<24} {:>10} {:>12} {:>12} {:>12} {:>8}",
        "workload", "true λ", "approx λ̂", "λ̂/λ", "(1±ε) λ̂", "layer"
    );
    for (name, g) in workloads {
        let true_lambda = stoer_wagner_mincut(&g).value;
        let meter = Meter::enabled();
        let params = ApproxParams::default();
        let a = approx_mincut(&g, &params, &meter);
        let refined = approx_mincut_eps(&g, 0.25, &params, 99, &meter);
        println!(
            "{:<24} {:>10} {:>12} {:>12.3} {:>12} {:>8}",
            name,
            true_lambda,
            a.lambda,
            a.lambda as f64 / true_lambda as f64,
            refined,
            a.layer
        );
        assert!(
            a.lambda as f64 >= true_lambda as f64 / 3.0
                && a.lambda as f64 <= true_lambda as f64 * 3.0,
            "{name}: approximation left the constant-factor band"
        );
    }

    println!("\nlayer min-cut profile of the last workload (value per hierarchy layer):");
    let g = generators::dumbbell(10, 2000, 6000);
    let a = approx_mincut(&g, &ApproxParams::default(), &Meter::disabled());
    for (i, v) in a.layer_values.iter().enumerate() {
        let marker = if i == a.layer { "  <- skeleton layer s" } else { "" };
        println!("  layer {i:>2}: min-cut {v}{marker}");
    }
    println!("\nestimate = value_s · 2^s = {} · 2^{} = {}", a.layer_values[a.layer], a.layer, a.lambda);
}
