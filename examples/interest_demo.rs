//! Figure 1 of the paper, reproduced as a runnable program.
//!
//! The figure illustrates the *interest* relation (Definition 4.7) on a
//! small unweighted graph with a rooted spanning tree: edge `e` is
//! cross-interested in `f`, `f` in `e`, and `e'` is down-interested in
//! `f`. This program builds the graph, prints the full interest matrix,
//! and highlights the relations from the caption.
//!
//! ```sh
//! cargo run --release --example interest_demo
//! ```

use parallel_mincut::prelude::*;
use pmc_mincut::{CutQuery, InterestSearch, InterestStrategy};
use pmc_tree::RootedTree;

fn main() {
    // The Figure-1 shape: solid tree edges, dashed non-tree edges that
    // concentrate weight between the subtree below e and the subtree
    // below f (unweighted in the figure; the dashed pair is modelled as
    // one edge of weight 2).
    //
    //            r=0
    //           /    \
    //          1      2
    //          |      |
    //    e ->  3      4  <- e'
    //                 |
    //                 5  <- f
    //    dashed: (3,5) weight 2
    let g = Graph::from_edges(
        6,
        [
            (0, 1, 1),
            (0, 2, 1),
            (1, 3, 1), // e  = tree edge with lower endpoint 3
            (2, 4, 1), // e' = tree edge with lower endpoint 4
            (4, 5, 1), // f  = tree edge with lower endpoint 5
            (3, 5, 2), // the dashed cross edges
        ],
    );
    let tree = std::sync::Arc::new(RootedTree::from_parents(0, &[0, 0, 0, 1, 2, 4]));
    let meter = Meter::disabled();
    let lca = LcaEngine::build(&tree, LcaStrategy::default(), &meter);
    let q = CutQuery::build(&g, &tree, &lca, 0.5, &meter);
    let search = InterestSearch::build(&q, &lca, InterestStrategy::default(), &meter);

    let name = |v: u32| match v {
        3 => "e ",
        4 => "e'",
        5 => "f ",
        v => ["t1", "t2"][(v - 1) as usize],
    };

    println!("tree edges (by lower endpoint), their cov = w(Te):");
    for v in 1..6u32 {
        println!("  edge {} (vertex {v}): cov = {}", name(v), q.cov(v));
    }

    println!("\ninterest matrix (row edge interested in column edge?):");
    print!("      ");
    for f in 1..6u32 {
        print!("{:>4}", name(f));
    }
    println!();
    for e in 1..6u32 {
        print!("  {:>4}", name(e));
        for f in 1..6u32 {
            let mark = if e == f {
                "  . "
            } else if search.interesting(e, f, &meter) {
                "  X "
            } else {
                "  - "
            };
            print!("{mark}");
        }
        println!();
    }

    // The caption's three relations.
    let (e, f, e_prime) = (3u32, 5u32, 4u32);
    assert!(search.interesting(e, f, &meter), "e must be cross-interested in f");
    assert!(search.interesting(f, e, &meter), "f must be cross-interested in e");
    assert!(search.interesting(e_prime, f, &meter), "e' must be down-interested in f");
    println!("\nFigure 1 caption verified:");
    println!("  e  cross-interested in f   : yes");
    println!("  f  cross-interested in e   : yes");
    println!("  e' down-interested in f    : yes");

    // And the machinery built on it: the minimum 2-respecting cut of the
    // tree is the pair (e, f) — cutting both isolates the dashed mass.
    let out = two_respecting_mincut(&g, &tree, &TwoRespectParams::default(), &meter);
    println!(
        "\nminimum 2-respecting cut: value {} via pair ({}, {})",
        out.cut.value,
        name(out.pair.0),
        name(out.pair.1)
    );
    let oracle = stoer_wagner_mincut(&g);
    assert_eq!(out.cut.value, oracle.value);
    println!("matches the true minimum cut ({}).", oracle.value);
}
