//! Umbrella crate for the *Work-Optimal Parallel Minimum Cuts for
//! Non-Sparse Graphs* (SPAA 2021) reproduction.
//!
//! Re-exports the workspace crates under one roof so the examples and
//! integration tests read like downstream user code:
//!
//! * [`graph`] — weighted graphs, generators, Stoer–Wagner and
//!   Karger–Stein baselines;
//! * [`parallel`] — work-span metering and parallel primitives;
//! * [`tree`] — rooted-tree machinery (Euler tours, LCA, path and
//!   centroid decompositions);
//! * [`range`] — the `n^ε`-ary range-sum structures of Lemmas 4.24/4.25;
//! * [`monge`] — SMAWK and divide-and-conquer Monge minimum searches;
//! * [`sparsify`] — skeletons, sampling hierarchies, certificates;
//! * [`mincut`] — the paper's algorithms: 2-respecting solver, tree
//!   packing, approximate and exact minimum cut;
//! * [`fault`] — robustness substrate: typed errors, deadlines and
//!   degradation flags, and the deterministic fault-injection plane.
//!
//! ```
//! use parallel_mincut::prelude::*;
//!
//! let g = pmc_graph::generators::ring_of_cliques(4, 5, 6, 2);
//! let result = exact_mincut(&g, &ExactParams::default());
//! assert_eq!(result.cut.value, 4); // two ring bridges of weight 2
//! ```

pub use pmc_fault as fault;
pub use pmc_graph as graph;
pub use pmc_mincut as mincut;
pub use pmc_monge as monge;
pub use pmc_parallel as parallel;
pub use pmc_range as range;
pub use pmc_sparsify as sparsify;
pub use pmc_tree as tree;

/// The names most programs need.
pub mod prelude {
    pub use pmc_graph::{
        cut_of_partition, generators, karger_stein_mincut, matula_approx,
        stoer_wagner_mincut, CutResult, Graph, GraphBuilder,
    };
    pub use pmc_mincut::{
        approx_mincut, approx_mincut_eps, approx_mincut_in, exact_mincut,
        exact_mincut_deadline, exact_mincut_in, exact_mincut_robust, mincut_small,
        mincut_small_in, naive_two_respecting, two_respecting_mincut,
        two_respecting_mincut_in, ApproxParams, ApproxResult, BatchOutcome, ExactParams,
        ExactResult, GraphContext, InterestStrategy, TreeContext, TwoRespectParams,
    };
    pub use pmc_fault::{Deadline, DegradeReason, FaultPlan, PmcError, SolveQuality};
    pub use pmc_monge::RowMinimaStrategy;
    pub use pmc_parallel::{
        with_scratch, CostKind, CostReport, Meter, Scratch, ScratchPool, SortScratch,
    };
    pub use pmc_tree::{LcaEngine, LcaStrategy};
}
