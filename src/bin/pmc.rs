//! `pmc` — command-line minimum cuts.
//!
//! ```text
//! pmc exact  <graph-file>            exact minimum cut (parallel pipeline)
//! pmc approx <graph-file> [eps]      O(1)- or (1±eps)-approximation
//! pmc oracle <graph-file>            Stoer–Wagner (sequential oracle)
//! pmc gen <kind> <n> <out-file>      write a generated workload
//! pmc stats <graph-file>             basic graph statistics
//! ```
//!
//! Graph files use the text format of `pmc_graph::io`:
//! `p <n> <m>` header then `e <u> <v> <w>` lines (0-based vertices).

use parallel_mincut::prelude::*;
use pmc_graph::io::{parse_graph, write_graph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  pmc exact  <graph-file>\n  pmc approx <graph-file> [eps]\n  \
         pmc oracle <graph-file>\n  pmc gen <kind> <n> <out-file>   \
         (kinds: nonsparse sparse planted heavy grid)\n  pmc stats <graph-file>"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Graph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_graph(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { return usage() };
    match (cmd.as_str(), args.get(1), args.get(2), args.get(3)) {
        ("exact", Some(path), _, _) => {
            let g = match load(path) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let meter = Meter::enabled();
            let t0 = std::time::Instant::now();
            let r = pmc_mincut::exact::exact_mincut_metered(&g, &ExactParams::default(), &meter);
            let dt = t0.elapsed();
            if r.cut.value == u64::MAX {
                println!("graph has fewer than 2 vertices: no cut");
                return ExitCode::SUCCESS;
            }
            println!("minimum cut: {}", r.cut.value);
            println!("side ({} vertices): {:?}", r.cut.side.len(), preview(&r.cut.side));
            println!(
                "pipeline: lambda~={} p={:.4} skeleton_m={} trees={} time={dt:?}",
                r.stats.lambda_estimate,
                r.stats.skeleton_p,
                r.stats.skeleton_edges,
                r.stats.num_trees
            );
            print!("{}", meter.report().render());
            ExitCode::SUCCESS
        }
        ("approx", Some(path), eps, _) => {
            let g = match load(path) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let params = ApproxParams::default();
            match eps.and_then(|s| s.parse::<f64>().ok()) {
                Some(eps) => {
                    let lam = approx_mincut_eps(&g, eps, &params, 1, &Meter::disabled());
                    println!("(1±{eps}) approximation: {lam}");
                }
                None => {
                    let a = approx_mincut(&g, &params, &Meter::disabled());
                    println!("O(1) approximation: {}", a.lambda);
                    println!("skeleton layer: {} (exact: {})", a.layer, a.below_window);
                }
            }
            ExitCode::SUCCESS
        }
        ("oracle", Some(path), _, _) => {
            let g = match load(path) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let t0 = std::time::Instant::now();
            let c = stoer_wagner_mincut(&g);
            println!("minimum cut (Stoer–Wagner): {} in {:?}", c.value, t0.elapsed());
            ExitCode::SUCCESS
        }
        ("gen", Some(kind), Some(n), Some(out)) => {
            let Ok(n) = n.parse::<usize>() else { return usage() };
            let mut rng = StdRng::seed_from_u64(0xC11);
            let g = match kind.as_str() {
                "nonsparse" => generators::non_sparse(n, 0.5, 16, &mut rng),
                "sparse" => generators::gnm_connected(n, 3 * n, 16, &mut rng),
                "planted" => generators::planted_bisection(n, 6 * n, 3, 8, 1, &mut rng),
                "heavy" => generators::heavy_cycle_with_chords(n, 2 * n, 4000, 120, &mut rng),
                "grid" => {
                    let side = (n as f64).sqrt().ceil() as usize;
                    generators::grid(side, side, 2)
                }
                _ => return usage(),
            };
            if let Err(e) = std::fs::write(out, write_graph(&g)) {
                eprintln!("error: {out}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {kind} graph: n={} m={} -> {out}", g.n(), g.m());
            ExitCode::SUCCESS
        }
        ("stats", Some(path), _, _) => {
            let g = match load(path) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("n = {}", g.n());
            println!("m = {}", g.m());
            println!("total weight   = {}", g.total_weight());
            println!("components     = {}", g.num_components());
            println!("min weighted degree = {}", g.min_weighted_degree());
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn preview(side: &[u32]) -> Vec<u32> {
    side.iter().copied().take(12).collect()
}
