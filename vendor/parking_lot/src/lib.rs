//! Vendored stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the poison-free locking API this workspace uses. Poisoned
//! std locks are recovered transparently (parking_lot has no poisoning),
//! so panics in one thread never cascade into lock-acquisition panics
//! elsewhere.

use std::sync::PoisonError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutex with `parking_lot`'s panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
