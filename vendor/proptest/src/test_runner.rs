//! Runner configuration.

/// Mirror of `proptest::test_runner::Config` (the fields this workspace
/// uses, with proptest's `..Default::default()` update syntax).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for source compatibility; the shim never rejects inputs
    /// so the bound is never hit.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_global_rejects: 1024 }
    }
}

/// Deterministic per-property seed: FNV-1a over the property name, so
/// every property gets an independent but stable case stream.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}
