//! Vendored stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace's property suite
//! uses: the `proptest!` macro, range/`Just`/`prop_oneof!`/collection
//! strategies, `ProptestConfig { cases, .. }`, and the `prop_assert*`
//! macros. Cases are generated from a fixed-seed [`rand::rngs::StdRng`]
//! stream, so failures are deterministic and reproducible; there is no
//! shrinking — the panic message reports the failing case index and the
//! sampled arguments' debug formatting is left to the property body.
//!
//! Swapping in the real proptest restores shrinking with no source
//! changes at the call sites.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of `proptest::prelude::prop`, the module alias the real
    /// crate exposes for `prop::collection::vec(...)` etc.
    pub mod prop {
        pub use crate::collection;
    }
}

/// The `proptest! { ... }` test-definition macro.
///
/// Supports the same shape the real macro accepts for this workspace's
/// suite: an optional `#![proptest_config(expr)]` inner attribute, then
/// `#[test] fn name(arg in strategy, ...) { body }` items (doc comments
/// and other outer attributes allowed).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                // Per-test deterministic stream: same seed each run.
                let mut __pt_rng = <::rand::rngs::StdRng as ::rand::SeedableRng>
                    ::seed_from_u64($crate::test_runner::seed_for(stringify!($name)));
                for __pt_case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut __pt_rng);
                    )+
                    let __pt_result: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = __pt_result {
                        panic!(
                            "proptest property `{}` failed at case {}/{}: {}",
                            stringify!($name), __pt_case + 1, config.cases, message,
                        );
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {} ({})", format!($($fmt)+), stringify!($cond)),
            );
        }
    };
}

/// `prop_assert_eq!(left, right)` with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(
                format!("assertion failed: `left == right`\n  left: {:?}\n right: {:?}", l, r),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `left == right` ({})\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r,
            ));
        }
    }};
}

/// `prop_assert_ne!(left, right)` with optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(
                format!("assertion failed: `left != right`\n  both: {:?}", l),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `left != right` ({})\n  both: {:?}",
                format!($($fmt)+), l,
            ));
        }
    }};
}

/// `prop_oneof![s1, s2, ...]` — uniform choice between strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}
