//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Lengths accepted by [`vec`]: a fixed size or a range of sizes.
pub trait SizeRange {
    fn sample_len(&self, rng: &mut StdRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl SizeRange for core::ops::Range<usize> {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        rng.random_range(self.clone())
    }
}

impl SizeRange for core::ops::RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        rng.random_range(self.clone())
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.len.sample_len(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// `prop::collection::vec(element, len)`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_length_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = vec(0u64..10, 2..5);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
