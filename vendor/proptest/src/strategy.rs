//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::Rng;

/// A source of random values of one type.
///
/// The real proptest `Strategy` produces shrinkable value *trees*; the
/// shim only samples, which is all the runner macro needs.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

/// Box a strategy, unifying on the value type (used by `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut StdRng) -> f32 {
        rng.random_range(self.start as f64..self.end as f64) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_just_sample_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let a = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&a));
            let b = (1u64..=4).sample(&mut rng);
            assert!((1..=4).contains(&b));
            assert_eq!(Just(42).sample(&mut rng), 42);
        }
    }

    #[test]
    fn oneof_hits_every_option() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = OneOf::new(vec![boxed(Just(1)), boxed(Just(2)), boxed(Just(3))]);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.sample(&mut rng)] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }
}
