//! Vendored stand-in for `criterion`.
//!
//! Provides the macro/type surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`) with a simple
//! median-of-samples wall-clock measurement instead of criterion's
//! statistical machinery. Bench sources compile unchanged against the
//! real crate when a registry is available.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, _criterion: self }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("criterion", &id.into_benchmark_id().0, 10, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Criterion insists on >= 10; the shim just records the value.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into_benchmark_id().0, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into_benchmark_id().0, self.sample_size, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one(group: &str, id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    b.samples.sort_unstable();
    let median = b.samples.get(b.samples.len() / 2).copied().unwrap_or_default();
    println!("bench {group}/{id}: median {median:?} over {} samples", b.samples.len());
}

/// Passed to the measurement closure; times calls to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // One warm-up, then `sample_size` timed runs.
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion accepted by `bench_function` / `bench_with_input`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// `black_box` re-export; benches import it from either here or
/// `std::hint`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert_eq!(runs, 4); // 1 warm-up + 3 samples
    }
}
