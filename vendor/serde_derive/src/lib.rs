//! Vendored no-op `Serialize`/`Deserialize` derives.
//!
//! Nothing in the workspace serializes through serde yet — the derives
//! only need to compile, so each expands to nothing. Swapping in the
//! real `serde`/`serde_derive` from a registry restores full codegen
//! with no source changes at the call sites.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
