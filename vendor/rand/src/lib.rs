//! Vendored stand-in for the `rand` crate (0.9-style API).
//!
//! The build environment has no access to a crates.io registry, so this
//! workspace ships a minimal, dependency-free implementation of exactly
//! the surface the `pmc-*` crates use:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded
//!   through SplitMix64 (not the real `StdRng`'s ChaCha12, but a
//!   high-quality deterministic stream with the same construction API);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::random`] / [`Rng::random_range`] (also exported as
//!   [`RngExt`] for call sites that import the extension-trait name).
//!
//! Swap this for the real crate by pointing the workspace dependency at
//! a registry; no call sites need to change.

pub mod rngs;

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::random`].
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types with uniform range sampling.
pub trait UniformInt: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_excl: Self) -> Self;
    fn successor(self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_excl: Self) -> Self {
                assert!(lo < hi_excl, "random_range: empty range");
                let span = (hi_excl as i128 - lo as i128) as u128;
                // Multiply-shift rejection-free mapping; the bias is
                // <= 2^-64 per draw, irrelevant for test workloads.
                let x = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + x) as $t
            }
            fn successor(self) -> Self {
                self.checked_add(1).expect("random_range: inclusive range overflows")
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi.successor())
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "random_range: empty range");
        let u: f64 = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Alias kept for call sites that import the extension-trait spelling.
pub use Rng as RngExt;
