//! Named generators.

use crate::{RngCore, SeedableRng};

/// Deterministic xoshiro256++ generator seeded via SplitMix64.
///
/// Stands in for `rand::rngs::StdRng`. The stream differs from the real
/// `StdRng` (ChaCha12), but every use in this workspace only relies on
/// determinism-per-seed, which this provides.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(3u32..=5);
            assert!((3..=5).contains(&y));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn full_width_types_sample() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut trues = 0;
        for _ in 0..1000 {
            if rng.random::<bool>() {
                trues += 1;
            }
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
        assert!((300..700).contains(&trues), "bool sampling badly biased: {trues}");
    }
}
