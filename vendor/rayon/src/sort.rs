//! Parallel merge sort backing `par_sort*`.
//!
//! Recursive halving down to [`SORT_SEQ_CUTOFF`], the two halves sorted
//! under [`crate::join`], then a sequential out-of-place merge per
//! level. Merging buffers the left run and writes the merged order
//! front-to-back into the slice; a drop guard copies the unconsumed
//! remainder of the buffer back into the hole if the comparator panics,
//! so every element lives in exactly one place on every path (the
//! panic-safety scheme of `slice::sort`).
//!
//! The merge always takes ties from the left run, which makes even the
//! "unstable" entry points behave deterministically: recursion depth
//! depends only on the length, so the result is identical no matter how
//! many threads participate.

use std::cmp::Ordering;
use std::ptr;

/// Below this length a leaf falls back to `slice::sort*`.
const SORT_SEQ_CUTOFF: usize = 4096;

pub(crate) fn par_sort_by<T, F>(v: &mut [T], stable: bool, cmp: &F)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    par_sort_impl(v, stable, cmp, SORT_SEQ_CUTOFF);
}

fn par_sort_impl<T, F>(v: &mut [T], stable: bool, cmp: &F, cutoff: usize)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    if v.len() <= cutoff.max(1) || crate::current_num_threads() <= 1 {
        if stable {
            v.sort_by(cmp);
        } else {
            v.sort_unstable_by(cmp);
        }
        return;
    }
    let mid = v.len() / 2;
    let (left, right) = v.split_at_mut(mid);
    crate::join(
        || par_sort_impl(left, stable, cmp, cutoff),
        || par_sort_impl(right, stable, cmp, cutoff),
    );
    merge(v, mid, cmp);
}

/// Merge the sorted runs `v[..mid]` and `v[mid..]` in place, taking
/// ties from the left run (stability).
// The out-of-place merge is this module's only unsafe; each block below
// carries its own SAFETY argument.
#[allow(unsafe_code)]
fn merge<T, F>(v: &mut [T], mid: usize, cmp: &F)
where
    F: Fn(&T, &T) -> Ordering,
{
    let len = v.len();
    if mid == 0 || mid == len {
        return;
    }
    // Already in order — the common case for nearly-sorted data.
    if cmp(&v[mid - 1], &v[mid]) != Ordering::Greater {
        return;
    }
    // Buffer the left run. Ownership of those elements logically moves
    // into the buffer region; `buf`'s length stays 0 the whole time, so
    // the Vec never drops them — the hole guard or the main loop moves
    // every one of them back into `v` exactly once.
    let mut buf: Vec<T> = Vec::with_capacity(mid);
    let vp = v.as_mut_ptr();
    // SAFETY: `buf` has capacity `mid`; the source and destination do
    // not overlap.
    unsafe {
        ptr::copy_nonoverlapping(vp, buf.as_mut_ptr(), mid);
    }
    let mut hole = MergeHole {
        start: buf.as_mut_ptr(),
        // SAFETY: one-past-the-end of the `mid`-capacity allocation.
        end: unsafe { buf.as_mut_ptr().add(mid) },
        dest: vp,
    };
    // SAFETY of the loop: `dest` advances once per iteration and always
    // trails `right` by exactly `end - start` slots (the unconsumed
    // buffered elements), so writes through `dest` only touch vacated
    // slots; `right` reads each right-run element once.
    unsafe {
        let mut right = vp.add(mid);
        let right_end = vp.add(len);
        while hole.start < hole.end && right < right_end {
            // Strictly-less from the right, otherwise (ties included)
            // from the buffered left run.
            if cmp(&*right, &*hole.start) == Ordering::Less {
                ptr::copy_nonoverlapping(right, hole.dest, 1);
                right = right.add(1);
            } else {
                ptr::copy_nonoverlapping(hole.start, hole.dest, 1);
                hole.start = hole.start.add(1);
            }
            hole.dest = hole.dest.add(1);
        }
    }
    // `hole`'s Drop moves any unconsumed buffered elements into the
    // remaining slots — the normal tail copy and the panic cleanup are
    // the same operation. `buf` (len 0) then frees only its capacity.
    drop(hole);
}

/// The gap of vacated slots in `v` paired with the unconsumed prefix of
/// the merge buffer; dropping it closes the gap.
struct MergeHole<T> {
    start: *mut T,
    end: *mut T,
    dest: *mut T,
}

impl<T> Drop for MergeHole<T> {
    #[allow(unsafe_code)]
    fn drop(&mut self) {
        // SAFETY: `[start, end)` holds elements whose only owner is the
        // buffer, and `dest` points at exactly that many vacated slots.
        unsafe {
            let rest = self.end.offset_from(self.start) as usize;
            ptr::copy_nonoverlapping(self.start, self.dest, rest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadPoolBuilder;

    fn with_pool<R>(threads: usize, op: impl FnOnce() -> R) -> R {
        ThreadPoolBuilder::new().num_threads(threads).build().unwrap().install(op)
    }

    /// Deterministic pseudo-random stream (SplitMix64).
    fn stream(seed: u64, n: usize) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            })
            .collect()
    }

    #[test]
    fn tiny_cutoff_matches_std_sort() {
        for seed in [1, 2, 3] {
            for n in [0, 1, 2, 3, 7, 64, 257, 1000] {
                let data: Vec<u64> = stream(seed, n).iter().map(|x| x % 97).collect();
                let mut expect = data.clone();
                expect.sort_unstable();
                let mut got = data;
                with_pool(4, || par_sort_impl(&mut got, false, &u64::cmp, 4));
                assert_eq!(got, expect, "seed={seed} n={n}");
            }
        }
    }

    #[test]
    fn stable_sort_keeps_tied_order() {
        // Keys collide heavily; payloads record input order.
        let data: Vec<(u64, usize)> =
            stream(9, 5000).iter().enumerate().map(|(i, x)| (x % 10, i)).collect();
        let mut expect = data.clone();
        expect.sort_by_key(|&(k, _)| k);
        let mut got = data;
        with_pool(4, || {
            par_sort_impl(&mut got, true, &|a: &(u64, usize), b: &(u64, usize)| a.0.cmp(&b.0), 64)
        });
        assert_eq!(got, expect);
    }

    #[test]
    fn identical_result_across_thread_counts() {
        let data = stream(4, 50_000);
        let mut reference = data.clone();
        reference.sort_unstable();
        for threads in [1, 2, 4, 8] {
            let mut got = data.clone();
            with_pool(threads, || par_sort_by(&mut got, false, &u64::cmp));
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn panicking_comparator_leaks_nothing() {
        // Drop-counting payloads: a panic mid-merge must still leave
        // every element owned exactly once.
        // lint: allow(facade) — plain counters, no scheduling involved.
        use std::sync::atomic::{AtomicUsize, Ordering as AtOrd};
        static DROPS: AtomicUsize = AtomicUsize::new(0);

        struct Counted(u64);
        impl Drop for Counted {
            fn drop(&mut self) {
                // Relaxed: independent event count, read after join.
                DROPS.fetch_add(1, AtOrd::Relaxed);
            }
        }

        let n = 300;
        let result = std::panic::catch_unwind(|| {
            let mut v: Vec<Counted> =
                stream(7, n).into_iter().map(Counted).collect();
            let calls = AtomicUsize::new(0);
            with_pool(4, || {
                par_sort_impl(
                    &mut v,
                    false,
                    &|a: &Counted, b: &Counted| {
                        // Relaxed: any single comparison may trip the
                        // panic; exact interleaving is irrelevant.
                        if calls.fetch_add(1, AtOrd::Relaxed) == 512 {
                            panic!("comparator boom");
                        }
                        a.0.cmp(&b.0)
                    },
                    16,
                );
            });
            v
        });
        assert!(result.is_err(), "the comparator must have panicked");
        // Relaxed: all sorting threads are quiesced by catch_unwind.
        assert_eq!(DROPS.load(AtOrd::Relaxed), n, "each element dropped exactly once");
    }
}
