//! Genuinely parallel iterator adapters with rayon's method surface.
//!
//! The design is a miniature of rayon's producer model. A [`ParSource`]
//! is a splittable stream of items: indexed entry points (slices,
//! `Vec`s, integer ranges, chunk views) split in half recursively and
//! the halves run under [`crate::join`]; below a split cutoff a leaf is
//! drained with an ordinary sequential iterator. Adapters (`map`,
//! `filter`, `enumerate`, `zip`, ...) are sources wrapping sources, so
//! a whole adapter chain splits as a unit. Non-indexed sources
//! ([`ParallelBridge`]) split by *pulling* doubling chunks off the
//! stream, so bridged pipelines run in parallel too — with
//! deterministic chunk boundaries and output order.
//!
//! Two properties the workspace's call sites rely on:
//!
//! * **Order preservation.** Splits are combined left-before-right, so
//!   `collect` produces exactly the sequential order, and reductions
//!   see items in a fixed left-to-right tree independent of how many
//!   worker threads participate. Any *associative* reduction (`sum`
//!   over integers, `min`, the `Best::min`-style folds in `pmc-mincut`)
//!   therefore yields results identical to a sequential run.
//! * **Real closure bounds.** Item closures are `Fn + Send + Sync`,
//!   matching the real rayon — shared-state mutation that compiled
//!   against the old sequential shim's `FnMut` bounds is rejected.
//!
//! The split cutoff aims for [`TASKS_PER_THREAD`] leaves per pool
//! thread, clamped by `with_min_len`/`with_max_len`.

use std::marker::PhantomData;
use std::ops::Range;

use crate::sync::Arc;

/// Target number of leaves per pool thread. More leaves give better
/// load balance; fewer give less join overhead. Eight is rayon's own
/// rule of thumb for static splitting.
const TASKS_PER_THREAD: usize = 8;

/// A splittable stream of items — the shim's producer abstraction.
pub trait ParSource: Sized + Send {
    type Item: Send;

    /// Number of items, when known; a pacing hint otherwise (`filter`
    /// reports its input length, `par_bridge` reports `usize::MAX`).
    /// Only drives split decisions, never correctness.
    fn len_hint(&self) -> usize;

    /// Split into a left and right part of roughly equal size, or hand
    /// the source back when it cannot split (too small, not indexed).
    fn try_split(self) -> Result<(Self, Self), Self>;

    /// Drain this (leaf) source sequentially, in order.
    fn seq(self) -> impl Iterator<Item = Self::Item>;
}

/// A source whose length is exact and which can split at any index —
/// what `enumerate` and `zip` require.
pub trait IndexedSource: ParSource {
    /// Exact number of items.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);
}

/// Recursive divide-and-conquer driver: split while above `threshold`,
/// run the two halves under [`crate::join`], combine left-then-right.
fn drive<S, R, F, C>(source: S, threshold: usize, consume: &F, combine: &C) -> R
where
    S: ParSource,
    R: Send,
    F: Fn(S) -> R + Sync,
    C: Fn(R, R) -> R + Sync,
{
    if source.len_hint() > threshold {
        match source.try_split() {
            Ok((left, right)) => {
                let (ra, rb) = crate::join(
                    || drive(left, threshold, consume, combine),
                    || drive(right, threshold, consume, combine),
                );
                return combine(ra, rb);
            }
            Err(source) => return consume(source),
        }
    }
    consume(source)
}

/// A parallel iterator: a splittable source plus split-granularity
/// bounds. Mirrors the adapter/consumer surface of rayon's
/// `ParallelIterator`/`IndexedParallelIterator` that the workspace
/// uses.
#[derive(Debug, Clone)]
pub struct ParIter<S> {
    source: S,
    min_len: usize,
    max_len: usize,
}

impl<S: ParSource> ParIter<S> {
    pub(crate) fn from_source(source: S) -> Self {
        ParIter { source, min_len: 1, max_len: usize::MAX }
    }

    /// Leaf size below which no further splits happen.
    fn threshold(&self) -> usize {
        let len = self.source.len_hint();
        let threads = crate::current_num_threads().max(1);
        let auto = len / (threads * TASKS_PER_THREAD);
        auto.max(self.min_len).max(1).min(self.max_len.max(1))
    }

    /// Run a consumer over the source, splitting in parallel.
    fn run<R, F, C>(self, consume: F, combine: C) -> R
    where
        R: Send,
        F: Fn(S) -> R + Sync,
        C: Fn(R, R) -> R + Sync,
    {
        let threshold = self.threshold();
        if crate::current_num_threads() <= 1 {
            return consume(self.source);
        }
        drive(self.source, threshold, &consume, &combine)
    }

    // ---- splitting knobs -------------------------------------------

    pub fn with_min_len(mut self, len: usize) -> Self {
        self.min_len = len.max(1);
        self
    }

    pub fn with_max_len(mut self, len: usize) -> Self {
        self.max_len = len.max(1);
        self
    }

    // ---- adapters ---------------------------------------------------

    pub fn map<F, R>(self, f: F) -> ParIter<Map<S, F, R>>
    where
        F: Fn(S::Item) -> R + Send + Sync,
        R: Send,
    {
        let f = Arc::new(f);
        self.adapt_with(move |base| Map { base, f, _out: PhantomData })
    }

    pub fn filter<P>(self, p: P) -> ParIter<Filter<S, P>>
    where
        P: Fn(&S::Item) -> bool + Send + Sync,
    {
        let p = Arc::new(p);
        self.adapt_with(move |base| Filter { base, p })
    }

    pub fn filter_map<F, R>(self, f: F) -> ParIter<FilterMap<S, F, R>>
    where
        F: Fn(S::Item) -> Option<R> + Send + Sync,
        R: Send,
    {
        let f = Arc::new(f);
        self.adapt_with(move |base| FilterMap { base, f, _out: PhantomData })
    }

    pub fn flat_map_iter<F, U>(self, f: F) -> ParIter<FlatMapIter<S, F, U>>
    where
        F: Fn(S::Item) -> U + Send + Sync,
        U: IntoIterator,
        U::Item: Send,
    {
        let f = Arc::new(f);
        self.adapt_with(move |base| FlatMapIter { base, f, _out: PhantomData })
    }

    /// rayon's `flat_map` takes a parallel-iterable; the shim flattens
    /// each sub-iterable sequentially inside its leaf, which coincides
    /// with `flat_map_iter`.
    pub fn flat_map<F, U>(self, f: F) -> ParIter<FlatMapIter<S, F, U>>
    where
        F: Fn(S::Item) -> U + Send + Sync,
        U: IntoIterator,
        U::Item: Send,
    {
        self.flat_map_iter(f)
    }

    pub fn enumerate(self) -> ParIter<Enumerate<S>>
    where
        S: IndexedSource,
    {
        self.adapt_with(|base| Enumerate { base, offset: 0 })
    }

    pub fn zip<J>(self, other: ParIter<J>) -> ParIter<Zip<S, J>>
    where
        S: IndexedSource,
        J: IndexedSource,
    {
        self.adapt_with(move |base| Zip { a: base, b: other.source })
    }

    pub fn chain<J>(self, other: ParIter<J>) -> ParIter<Chain<S, J>>
    where
        J: ParSource<Item = S::Item>,
    {
        self.adapt_with(move |base| Chain { a: Some(base), b: Some(other.source) })
    }

    pub fn cloned<'a, T>(self) -> ParIter<Cloned<S>>
    where
        S: ParSource<Item = &'a T>,
        T: Clone + Send + Sync + 'a,
    {
        self.adapt_with(|base| Cloned { base })
    }

    pub fn copied<'a, T>(self) -> ParIter<Copied<S>>
    where
        S: ParSource<Item = &'a T>,
        T: Copy + Send + Sync + 'a,
    {
        self.adapt_with(|base| Copied { base })
    }

    fn adapt_with<T: ParSource>(self, wrap: impl FnOnce(S) -> T) -> ParIter<T> {
        let ParIter { source, min_len, max_len } = self;
        ParIter { source: wrap(source), min_len, max_len }
    }

    // ---- consumers --------------------------------------------------

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(S::Item) + Send + Sync,
    {
        self.run(|s| s.seq().for_each(&f), |(), ()| ());
    }

    pub fn count(self) -> usize {
        self.run(|s| s.seq().count(), |a, b| a + b)
    }

    pub fn sum<T>(self) -> T
    where
        T: Send + std::iter::Sum<S::Item> + std::iter::Sum<T>,
    {
        self.run(|s| s.seq().sum::<T>(), |a, b| [a, b].into_iter().sum())
    }

    pub fn min(self) -> Option<S::Item>
    where
        S::Item: Ord,
    {
        // Sequential `min` keeps the *first* of equal minima; preferring
        // the left operand on ties reproduces that.
        self.run(
            |s| s.seq().min(),
            |a, b| merge_options(a, b, |x, y| if y < x { y } else { x }),
        )
    }

    pub fn max(self) -> Option<S::Item>
    where
        S::Item: Ord,
    {
        // Sequential `max` keeps the *last* of equal maxima.
        self.run(
            |s| s.seq().max(),
            |a, b| merge_options(a, b, |x, y| if y >= x { y } else { x }),
        )
    }

    pub fn min_by_key<K, F>(self, key: F) -> Option<S::Item>
    where
        K: Ord,
        F: Fn(&S::Item) -> K + Send + Sync,
    {
        self.run(
            |s| s.seq().min_by_key(|x| key(x)),
            |a, b| merge_options(a, b, |x, y| if key(&y) < key(&x) { y } else { x }),
        )
    }

    pub fn max_by_key<K, F>(self, key: F) -> Option<S::Item>
    where
        K: Ord,
        F: Fn(&S::Item) -> K + Send + Sync,
    {
        self.run(
            |s| s.seq().max_by_key(|x| key(x)),
            |a, b| merge_options(a, b, |x, y| if key(&y) >= key(&x) { y } else { x }),
        )
    }

    pub fn any<P>(self, p: P) -> bool
    where
        P: Fn(S::Item) -> bool + Send + Sync,
    {
        self.run(|s| s.seq().any(&p), |a, b| a || b)
    }

    pub fn all<P>(self, p: P) -> bool
    where
        P: Fn(S::Item) -> bool + Send + Sync,
    {
        self.run(|s| s.seq().all(&p), |a, b| a && b)
    }

    /// rayon's two-argument reduce: fold leaves from `identity()` with
    /// `op`, combine halves with `op`. Equal to the sequential fold for
    /// associative `op` with a true identity.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> S::Item
    where
        ID: Fn() -> S::Item + Send + Sync,
        OP: Fn(S::Item, S::Item) -> S::Item + Send + Sync,
    {
        self.run(|s| s.seq().fold(identity(), &op), &op)
    }

    pub fn reduce_with<OP>(self, op: OP) -> Option<S::Item>
    where
        OP: Fn(S::Item, S::Item) -> S::Item + Send + Sync,
    {
        self.run(
            |s| {
                let mut it = s.seq();
                let first = it.next()?;
                Some(it.fold(first, &op))
            },
            |a, b| merge_options(a, b, &op),
        )
    }

    /// Collect in source order (splits concatenate left-then-right).
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<S::Item>,
    {
        let parts = self.run(
            |s| s.seq().collect::<Vec<_>>(),
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        );
        parts.into_iter().collect()
    }
}

fn merge_options<T>(a: Option<T>, b: Option<T>, pick: impl Fn(T, T) -> T) -> Option<T> {
    match (a, b) {
        (Some(x), Some(y)) => Some(pick(x, y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Implement `ParSource::try_split` as an even `split_at` for indexed
/// sources.
macro_rules! indexed_try_split {
    () => {
        fn try_split(self) -> Result<(Self, Self), Self> {
            let n = IndexedSource::len(&self);
            if n >= 2 {
                Ok(self.split_at(n / 2))
            } else {
                Err(self)
            }
        }
    };
}

// ===================================================================
// Sources
// ===================================================================

/// Borrowed slice.
#[derive(Debug, Clone)]
pub struct SliceSource<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParSource for SliceSource<'a, T> {
    type Item = &'a T;

    fn len_hint(&self) -> usize {
        self.slice.len()
    }

    indexed_try_split!();

    fn seq(self) -> impl Iterator<Item = &'a T> {
        self.slice.iter()
    }
}

impl<T: Sync> IndexedSource for SliceSource<'_, T> {
    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(index);
        (SliceSource { slice: a }, SliceSource { slice: b })
    }
}

/// Mutably borrowed slice.
#[derive(Debug)]
pub struct SliceMutSource<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParSource for SliceMutSource<'a, T> {
    type Item = &'a mut T;

    fn len_hint(&self) -> usize {
        self.slice.len()
    }

    indexed_try_split!();

    fn seq(self) -> impl Iterator<Item = &'a mut T> {
        self.slice.iter_mut()
    }
}

impl<T: Send> IndexedSource for SliceMutSource<'_, T> {
    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(index);
        (SliceMutSource { slice: a }, SliceMutSource { slice: b })
    }
}

/// Borrowed chunk view (`par_chunks`). Indices are chunk indices.
#[derive(Debug, Clone)]
pub struct ChunksSource<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParSource for ChunksSource<'a, T> {
    type Item = &'a [T];

    fn len_hint(&self) -> usize {
        IndexedSource::len(self)
    }

    indexed_try_split!();

    fn seq(self) -> impl Iterator<Item = &'a [T]> {
        self.slice.chunks(self.size)
    }
}

impl<T: Sync> IndexedSource for ChunksSource<'_, T> {
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(index * self.size);
        (ChunksSource { slice: a, size: self.size }, ChunksSource { slice: b, size: self.size })
    }
}

/// Mutably borrowed chunk view (`par_chunks_mut`).
#[derive(Debug)]
pub struct ChunksMutSource<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParSource for ChunksMutSource<'a, T> {
    type Item = &'a mut [T];

    fn len_hint(&self) -> usize {
        IndexedSource::len(self)
    }

    indexed_try_split!();

    fn seq(self) -> impl Iterator<Item = &'a mut [T]> {
        self.slice.chunks_mut(self.size)
    }
}

impl<T: Send> IndexedSource for ChunksMutSource<'_, T> {
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(index * self.size);
        (
            ChunksMutSource { slice: a, size: self.size },
            ChunksMutSource { slice: b, size: self.size },
        )
    }
}

/// Owned vector. Splitting moves the tail into a fresh allocation
/// (`split_off`), an `O(half)` move per split — fine for the shim's
/// split depths.
#[derive(Debug, Clone)]
pub struct VecSource<T> {
    vec: Vec<T>,
}

impl<T: Send> ParSource for VecSource<T> {
    type Item = T;

    fn len_hint(&self) -> usize {
        self.vec.len()
    }

    indexed_try_split!();

    fn seq(self) -> impl Iterator<Item = T> {
        self.vec.into_iter()
    }
}

impl<T: Send> IndexedSource for VecSource<T> {
    fn len(&self) -> usize {
        self.vec.len()
    }

    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.vec.split_off(index);
        (self, VecSource { vec: tail })
    }
}

/// Integer range.
#[derive(Debug, Clone)]
pub struct RangeSource<T> {
    range: Range<T>,
}

macro_rules! range_source {
    ($($t:ty),*) => {$(
        impl ParSource for RangeSource<$t> {
            type Item = $t;

            fn len_hint(&self) -> usize {
                IndexedSource::len(self)
            }

            indexed_try_split!();

            fn seq(self) -> impl Iterator<Item = $t> {
                self.range
            }
        }

        impl IndexedSource for RangeSource<$t> {
            fn len(&self) -> usize {
                let span = (self.range.end as i128) - (self.range.start as i128);
                span.clamp(0, usize::MAX as i128) as usize
            }

            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self.range.start + index as $t;
                (
                    RangeSource { range: self.range.start..mid },
                    RangeSource { range: mid..self.range.end },
                )
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Iter = RangeSource<$t>;
            type Item = $t;

            fn into_par_iter(self) -> ParIter<RangeSource<$t>> {
                ParIter::from_source(RangeSource { range: self })
            }
        }
    )*};
}

range_source!(usize, u64, u32, u16, i64, i32);

/// First chunk a `par_bridge` split pulls; subsequent pulls double up
/// to [`BRIDGE_CHUNK_MAX`], so short streams stay cheap while long
/// ones amortise the per-chunk join overhead at bounded split depth.
const BRIDGE_CHUNK_START: usize = 64;
const BRIDGE_CHUNK_MAX: usize = 4096;

/// Arbitrary sequential iterator (`par_bridge`). The iterator itself
/// cannot split, but each `try_split` *pulls* the next chunk of items
/// out of it into a materialized left half and keeps the rest of the
/// stream as the right half — so the divide-and-conquer driver turns
/// the stream into a right-leaning spine of chunks that the deque
/// scheduler steals and runs concurrently. Pulls are serialized along
/// the spine (each happens-before the next split) and combines stay
/// left-before-right, so chunk boundaries and output order are
/// identical no matter how many threads steal.
#[derive(Debug, Clone)]
pub struct SeqSource<I: Iterator> {
    /// A materialized chunk (the left half after a split). Disjoint
    /// from `iter`: exactly one of the two is populated.
    chunk: Vec<I::Item>,
    /// The unpulled remainder of the stream.
    iter: Option<I>,
    /// Size of the next chunk to pull.
    next_chunk: usize,
}

impl<I> ParSource for SeqSource<I>
where
    I: Iterator + Send,
    I::Item: Send,
{
    type Item = I::Item;

    fn len_hint(&self) -> usize {
        // Unknown until the stream is drained; keep the driver
        // splitting. Materialized chunks report their exact length.
        if self.iter.is_some() {
            usize::MAX
        } else {
            self.chunk.len()
        }
    }

    fn try_split(self) -> Result<(Self, Self), Self> {
        let SeqSource { mut chunk, iter, next_chunk } = self;
        match iter {
            Some(mut iter) => {
                debug_assert!(chunk.is_empty(), "chunk and iter are disjoint");
                let mut pulled = Vec::with_capacity(next_chunk);
                pulled.extend(iter.by_ref().take(next_chunk));
                if pulled.is_empty() {
                    // Stream exhausted; nothing left to split.
                    return Err(SeqSource { chunk: pulled, iter: None, next_chunk });
                }
                Ok((
                    SeqSource { chunk: pulled, iter: None, next_chunk },
                    SeqSource {
                        chunk: Vec::new(),
                        iter: Some(iter),
                        next_chunk: (next_chunk * 2).min(BRIDGE_CHUNK_MAX),
                    },
                ))
            }
            None if chunk.len() >= 2 => {
                // A materialized chunk splits like a Vec, so tight
                // `with_max_len` bounds still apply inside chunks.
                let tail = chunk.split_off(chunk.len() / 2);
                Ok((
                    SeqSource { chunk, iter: None, next_chunk },
                    SeqSource { chunk: tail, iter: None, next_chunk },
                ))
            }
            None => Err(SeqSource { chunk, iter: None, next_chunk }),
        }
    }

    fn seq(self) -> impl Iterator<Item = I::Item> {
        self.chunk.into_iter().chain(self.iter.into_iter().flatten())
    }
}

// ===================================================================
// Adapters (sources wrapping sources)
// ===================================================================

/// Propagate `ParSource` (and optionally `IndexedSource`) through an
/// adapter that transforms items but not their count or order.
macro_rules! adapter_split {
    ($name:ident { $base:ident, $($extra:ident),* }) => {
        fn try_split(self) -> Result<(Self, Self), Self> {
            let $name { $base, $($extra),* } = self;
            match $base.try_split() {
                Ok((l, r)) => Ok((
                    $name { $base: l, $($extra: $extra.clone()),* },
                    $name { $base: r, $($extra),* },
                )),
                Err(b) => Err($name { $base: b, $($extra),* }),
            }
        }
    };
}

pub struct Map<S, F, R> {
    base: S,
    f: Arc<F>,
    _out: PhantomData<fn() -> R>,
}

impl<S, F, R> ParSource for Map<S, F, R>
where
    S: ParSource,
    F: Fn(S::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;

    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }

    adapter_split!(Map { base, f, _out });

    fn seq(self) -> impl Iterator<Item = R> {
        let f = self.f;
        self.base.seq().map(move |x| f(x))
    }
}

impl<S, F, R> IndexedSource for Map<S, F, R>
where
    S: IndexedSource,
    F: Fn(S::Item) -> R + Send + Sync,
    R: Send,
{
    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Map { base: l, f: self.f.clone(), _out: PhantomData },
            Map { base: r, f: self.f, _out: PhantomData },
        )
    }
}

pub struct Filter<S, P> {
    base: S,
    p: Arc<P>,
}

impl<S, P> ParSource for Filter<S, P>
where
    S: ParSource,
    P: Fn(&S::Item) -> bool + Send + Sync,
{
    type Item = S::Item;

    /// Upper bound: the unfiltered input length.
    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }

    adapter_split!(Filter { base, p });

    fn seq(self) -> impl Iterator<Item = S::Item> {
        let p = self.p;
        self.base.seq().filter(move |x| p(x))
    }
}

pub struct FilterMap<S, F, R> {
    base: S,
    f: Arc<F>,
    _out: PhantomData<fn() -> R>,
}

impl<S, F, R> ParSource for FilterMap<S, F, R>
where
    S: ParSource,
    F: Fn(S::Item) -> Option<R> + Send + Sync,
    R: Send,
{
    type Item = R;

    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }

    adapter_split!(FilterMap { base, f, _out });

    fn seq(self) -> impl Iterator<Item = R> {
        let f = self.f;
        self.base.seq().filter_map(move |x| f(x))
    }
}

pub struct FlatMapIter<S, F, U> {
    base: S,
    f: Arc<F>,
    _out: PhantomData<fn() -> U>,
}

impl<S, F, U> ParSource for FlatMapIter<S, F, U>
where
    S: ParSource,
    F: Fn(S::Item) -> U + Send + Sync,
    U: IntoIterator,
    U::Item: Send,
{
    type Item = U::Item;

    /// A pacing hint only — flattening can expand or shrink.
    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }

    adapter_split!(FlatMapIter { base, f, _out });

    fn seq(self) -> impl Iterator<Item = U::Item> {
        let f = self.f;
        self.base.seq().flat_map(move |x| f(x))
    }
}

pub struct Enumerate<S> {
    base: S,
    offset: usize,
}

impl<S: IndexedSource> ParSource for Enumerate<S> {
    type Item = (usize, S::Item);

    fn len_hint(&self) -> usize {
        self.base.len()
    }

    indexed_try_split!();

    fn seq(self) -> impl Iterator<Item = (usize, S::Item)> {
        let offset = self.offset;
        self.base.seq().enumerate().map(move |(i, x)| (i + offset, x))
    }
}

impl<S: IndexedSource> IndexedSource for Enumerate<S> {
    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Enumerate { base: l, offset: self.offset },
            Enumerate { base: r, offset: self.offset + index },
        )
    }
}

pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: IndexedSource, B: IndexedSource> ParSource for Zip<A, B> {
    type Item = (A::Item, B::Item);

    fn len_hint(&self) -> usize {
        IndexedSource::len(self)
    }

    indexed_try_split!();

    fn seq(self) -> impl Iterator<Item = (A::Item, B::Item)> {
        self.a.seq().zip(self.b.seq())
    }
}

impl<A: IndexedSource, B: IndexedSource> IndexedSource for Zip<A, B> {
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }
}

pub struct Chain<A, B> {
    a: Option<A>,
    b: Option<B>,
}

impl<A, B> ParSource for Chain<A, B>
where
    A: ParSource,
    B: ParSource<Item = A::Item>,
{
    type Item = A::Item;

    fn len_hint(&self) -> usize {
        let a = self.a.as_ref().map_or(0, ParSource::len_hint);
        let b = self.b.as_ref().map_or(0, ParSource::len_hint);
        a.saturating_add(b)
    }

    fn try_split(self) -> Result<(Self, Self), Self> {
        match (self.a, self.b) {
            (Some(a), Some(b)) => {
                Ok((Chain { a: Some(a), b: None }, Chain { a: None, b: Some(b) }))
            }
            (Some(a), None) => match a.try_split() {
                Ok((l, r)) => {
                    Ok((Chain { a: Some(l), b: None }, Chain { a: Some(r), b: None }))
                }
                Err(a) => Err(Chain { a: Some(a), b: None }),
            },
            (None, Some(b)) => match b.try_split() {
                Ok((l, r)) => {
                    Ok((Chain { a: None, b: Some(l) }, Chain { a: None, b: Some(r) }))
                }
                Err(b) => Err(Chain { a: None, b: Some(b) }),
            },
            (None, None) => Err(Chain { a: None, b: None }),
        }
    }

    fn seq(self) -> impl Iterator<Item = A::Item> {
        self.a
            .map(ParSource::seq)
            .into_iter()
            .flatten()
            .chain(self.b.map(ParSource::seq).into_iter().flatten())
    }
}

pub struct Cloned<S> {
    base: S,
}

impl<'a, T, S> ParSource for Cloned<S>
where
    S: ParSource<Item = &'a T>,
    T: Clone + Send + Sync + 'a,
{
    type Item = T;

    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }

    adapter_split!(Cloned { base, });

    fn seq(self) -> impl Iterator<Item = T> {
        self.base.seq().cloned()
    }
}

impl<'a, T, S> IndexedSource for Cloned<S>
where
    S: IndexedSource<Item = &'a T>,
    T: Clone + Send + Sync + 'a,
{
    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (Cloned { base: l }, Cloned { base: r })
    }
}

pub struct Copied<S> {
    base: S,
}

impl<'a, T, S> ParSource for Copied<S>
where
    S: ParSource<Item = &'a T>,
    T: Copy + Send + Sync + 'a,
{
    type Item = T;

    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }

    adapter_split!(Copied { base, });

    fn seq(self) -> impl Iterator<Item = T> {
        self.base.seq().copied()
    }
}

impl<'a, T, S> IndexedSource for Copied<S>
where
    S: IndexedSource<Item = &'a T>,
    T: Copy + Send + Sync + 'a,
{
    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (Copied { base: l }, Copied { base: r })
    }
}

// ===================================================================
// Entry points
// ===================================================================

/// `.into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator {
    type Iter: ParSource<Item = Self::Item>;
    type Item: Send;

    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecSource<T>;
    type Item = T;

    fn into_par_iter(self) -> ParIter<VecSource<T>> {
        ParIter::from_source(VecSource { vec: self })
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = SliceSource<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> ParIter<SliceSource<'a, T>> {
        ParIter::from_source(SliceSource { slice: self })
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = SliceSource<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> ParIter<SliceSource<'a, T>> {
        ParIter::from_source(SliceSource { slice: self })
    }
}

impl<'a, T: Sync, const N: usize> IntoParallelIterator for &'a [T; N] {
    type Iter = SliceSource<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> ParIter<SliceSource<'a, T>> {
        ParIter::from_source(SliceSource { slice: self })
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Iter = SliceMutSource<'a, T>;
    type Item = &'a mut T;

    fn into_par_iter(self) -> ParIter<SliceMutSource<'a, T>> {
        ParIter::from_source(SliceMutSource { slice: self })
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut Vec<T> {
    type Iter = SliceMutSource<'a, T>;
    type Item = &'a mut T;

    fn into_par_iter(self) -> ParIter<SliceMutSource<'a, T>> {
        ParIter::from_source(SliceMutSource { slice: self })
    }
}

/// `.par_iter()` on `&collection`.
pub trait IntoParallelRefIterator<'a> {
    type Iter: ParSource<Item = Self::Item>;
    type Item: Send;

    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoParallelIterator,
{
    type Iter = <&'a C as IntoParallelIterator>::Iter;
    type Item = <&'a C as IntoParallelIterator>::Item;

    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        self.into_par_iter()
    }
}

/// `.par_iter_mut()` on `&mut collection`.
pub trait IntoParallelRefMutIterator<'a> {
    type Iter: ParSource<Item = Self::Item>;
    type Item: Send;

    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoParallelIterator,
{
    type Iter = <&'a mut C as IntoParallelIterator>::Iter;
    type Item = <&'a mut C as IntoParallelIterator>::Item;

    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter> {
        self.into_par_iter()
    }
}

/// `.par_bridge()` on any sequential iterator. The stream is pulled
/// in doubling chunks that run in parallel under the work-stealing
/// deques; chunk boundaries and combine order are deterministic, so
/// order-sensitive consumers (`collect`) match the sequential result
/// exactly. Indexed entry points still split more evenly and are
/// preferred where available.
pub trait ParallelBridge: Iterator + Send + Sized
where
    Self::Item: Send,
{
    fn par_bridge(self) -> ParIter<SeqSource<Self>> {
        ParIter::from_source(SeqSource {
            chunk: Vec::new(),
            iter: Some(self),
            next_chunk: BRIDGE_CHUNK_START,
        })
    }
}

impl<I: Iterator + Send> ParallelBridge for I where I::Item: Send {}

/// Chunked views of slices.
pub trait ParallelSlice<T: Sync> {
    fn as_parallel_slice(&self) -> &[T];

    fn par_chunks(&self, size: usize) -> ParIter<ChunksSource<'_, T>> {
        assert!(size > 0, "chunk size must be positive");
        ParIter::from_source(ChunksSource { slice: self.as_parallel_slice(), size })
    }
}

impl<T: Sync, S: AsRef<[T]> + ?Sized> ParallelSlice<T> for S {
    fn as_parallel_slice(&self) -> &[T] {
        self.as_ref()
    }
}

/// Mutable chunked views and parallel sorts on slices.
pub trait ParallelSliceMut<T: Send> {
    fn as_parallel_slice_mut(&mut self) -> &mut [T];

    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMutSource<'_, T>> {
        assert!(size > 0, "chunk size must be positive");
        ParIter::from_source(ChunksMutSource { slice: self.as_parallel_slice_mut(), size })
    }

    /// Parallel stable sort (merge sort; ties keep their input order).
    fn par_sort(&mut self)
    where
        T: Ord,
    {
        crate::sort::par_sort_by(self.as_parallel_slice_mut(), true, &T::cmp);
    }

    fn par_sort_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
    {
        crate::sort::par_sort_by(self.as_parallel_slice_mut(), true, &cmp);
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        crate::sort::par_sort_by(self.as_parallel_slice_mut(), false, &T::cmp);
    }

    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
    {
        crate::sort::par_sort_by(self.as_parallel_slice_mut(), false, &cmp);
    }

    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        crate::sort::par_sort_by(self.as_parallel_slice_mut(), false, &|a: &T, b: &T| {
            key(a).cmp(&key(b))
        });
    }
}

impl<T: Send, S: AsMut<[T]> + ?Sized> ParallelSliceMut<T> for S {
    fn as_parallel_slice_mut(&mut self) -> &mut [T] {
        self.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadPoolBuilder;

    fn with_pool<R>(threads: usize, op: impl FnOnce() -> R) -> R {
        ThreadPoolBuilder::new().num_threads(threads).build().unwrap().install(op)
    }

    #[test]
    fn collect_preserves_order_across_thread_counts() {
        let data: Vec<u64> = (0..10_000).collect();
        let expect: Vec<u64> = data.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 4, 8] {
            let got: Vec<u64> =
                with_pool(threads, || data.par_iter().map(|&x| x * 3 + 1).collect());
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn filter_and_flat_map_match_sequential() {
        let data: Vec<u32> = (0..5_000).collect();
        let expect: Vec<u32> =
            data.iter().filter(|&&x| x % 3 == 0).flat_map(|&x| [x, x + 1]).collect();
        let got: Vec<u32> = with_pool(4, || {
            data.par_iter()
                .filter(|&&x| x % 3 == 0)
                .flat_map_iter(|&x| [x, x + 1])
                .collect()
        });
        assert_eq!(got, expect);
    }

    #[test]
    fn enumerate_and_zip_line_up() {
        let a: Vec<u32> = (100..1100).collect();
        let mut b: Vec<u64> = vec![0; 1000];
        with_pool(4, || {
            b.par_iter_mut().zip(a.par_iter()).for_each(|(slot, &x)| {
                *slot = u64::from(x) * 2;
            });
        });
        assert!(b.iter().enumerate().all(|(i, &v)| v == (100 + i as u64) * 2));
        let idx: Vec<(usize, u32)> =
            with_pool(4, || a.par_iter().copied().enumerate().map(|(i, x)| (i, x)).collect());
        assert!(idx.iter().all(|&(i, x)| x as usize == 100 + i));
    }

    #[test]
    fn reductions_match_sequential_semantics() {
        let data: Vec<u64> = (0..5_000).map(|i| (i * 2_654_435_761) % 1_000).collect();
        with_pool(4, || {
            assert_eq!(data.par_iter().copied().sum::<u64>(), data.iter().sum::<u64>());
            assert_eq!(data.par_iter().min(), data.iter().min());
            assert_eq!(data.par_iter().max(), data.iter().max());
            assert_eq!(data.par_iter().count(), data.len());
            assert_eq!(
                data.par_iter().copied().reduce(|| 0, u64::wrapping_add),
                data.iter().copied().fold(0, u64::wrapping_add)
            );
            // Tie-breaking parity with sequential min/max_by_key.
            assert_eq!(
                data.par_iter().enumerate().min_by_key(|&(_, &v)| v),
                data.iter().enumerate().min_by_key(|&(_, &v)| v)
            );
            assert_eq!(
                data.par_iter().enumerate().max_by_key(|&(_, &v)| v),
                data.iter().enumerate().max_by_key(|&(_, &v)| v)
            );
        });
    }

    #[test]
    fn forced_tiny_splits_stay_correct() {
        let data: Vec<u32> = (0..257).collect();
        let got: Vec<u32> = with_pool(4, || {
            data.par_iter().with_max_len(1).map(|&x| x + 1).collect()
        });
        let expect: Vec<u32> = data.iter().map(|&x| x + 1).collect();
        assert_eq!(got, expect);
        let total: u32 = with_pool(3, || {
            (0..100u32).into_par_iter().with_max_len(2).sum()
        });
        assert_eq!(total, 4950);
    }

    #[test]
    fn empty_sources_are_fine() {
        let empty: Vec<u32> = Vec::new();
        with_pool(4, || {
            let v: Vec<u32> = empty.par_iter().copied().collect();
            assert!(v.is_empty());
            assert_eq!(empty.par_iter().min(), None);
            assert_eq!((0..0u32).into_par_iter().count(), 0);
            assert_eq!(empty.par_iter().copied().reduce(|| 7, |a, b| a + b), 7);
        });
    }

    #[test]
    fn chain_and_bridge() {
        let a = vec![1u32, 2];
        let b = vec![3u32, 4, 5];
        let chained: Vec<u32> = with_pool(4, || {
            a.par_iter().copied().chain(b.par_iter().copied()).collect()
        });
        assert_eq!(chained, vec![1, 2, 3, 4, 5]);
        let bridged: u32 = (0..10u32).filter(|x| x % 2 == 0).par_bridge().sum();
        assert_eq!(bridged, 20);
    }

    /// The chunked bridge must preserve stream order exactly, for any
    /// thread count, including streams much longer than the chunk cap.
    #[test]
    fn par_bridge_preserves_order_across_thread_counts() {
        let expect: Vec<u64> = (0..50_000u64).map(|x| x * 7 + 1).collect();
        for threads in [1, 2, 4, 8] {
            let got: Vec<u64> = with_pool(threads, || {
                (0..50_000u64).map(|x| x * 7 + 1).par_bridge().collect()
            });
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    /// Bridged work is actually stolen: with slow items and a wide
    /// pool, more than one thread participates.
    #[test]
    fn par_bridge_runs_on_multiple_threads() {
        use crate::sync::Mutex;
        use std::collections::HashSet;
        let seen = Mutex::new(HashSet::new());
        let participated = (0..20).any(|_| {
            with_pool(4, || {
                (0..512u32).par_bridge().for_each(|_| {
                    // lint: allow(facade) — real thread identity, test-only.
                    std::thread::sleep(std::time::Duration::from_micros(50));
                    seen.lock().insert(std::thread::current().id()); // lint: allow(facade)
                });
            });
            seen.lock().len() > 1
        });
        assert!(participated, "bridged chunks were never stolen");
    }

    #[test]
    fn vec_split_preserves_order() {
        let data: Vec<u32> = (0..4_097).collect();
        let doubled: Vec<u32> =
            with_pool(8, || data.clone().into_par_iter().map(|x| x * 2).collect());
        assert!(doubled.iter().enumerate().all(|(i, &v)| v == i as u32 * 2));
    }
}
