//! Sequential parallel-iterator adapters with rayon's method surface.
//!
//! [`ParIter`] wraps any `std` iterator and mirrors the adapter names
//! rayon exposes (`map`, `filter`, `flat_map_iter`, rayon's two-argument
//! `reduce`, ...). Entry points (`par_iter`, `into_par_iter`,
//! `par_chunks`, `par_bridge`, ...) are blanket-implemented so call
//! sites compile identically against this shim and the real crate.

/// A "parallel" iterator: a thin wrapper over a sequential iterator.
#[derive(Debug, Clone)]
pub struct ParIter<I> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    pub fn new(inner: I) -> Self {
        ParIter { inner }
    }

    pub fn map<F, R>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> R,
    {
        ParIter::new(self.inner.map(f))
    }

    pub fn filter<P>(self, p: P) -> ParIter<std::iter::Filter<I, P>>
    where
        P: FnMut(&I::Item) -> bool,
    {
        ParIter::new(self.inner.filter(p))
    }

    pub fn filter_map<F, R>(self, f: F) -> ParIter<std::iter::FilterMap<I, F>>
    where
        F: FnMut(I::Item) -> Option<R>,
    {
        ParIter::new(self.inner.filter_map(f))
    }

    pub fn flat_map_iter<F, U>(self, f: F) -> ParIter<std::iter::FlatMap<I, U, F>>
    where
        F: FnMut(I::Item) -> U,
        U: IntoIterator,
    {
        ParIter::new(self.inner.flat_map(f))
    }

    /// rayon's `flat_map` takes a parallel-iterable; sequentially the
    /// two coincide.
    pub fn flat_map<F, U>(self, f: F) -> ParIter<std::iter::FlatMap<I, U, F>>
    where
        F: FnMut(I::Item) -> U,
        U: IntoIterator,
    {
        ParIter::new(self.inner.flat_map(f))
    }

    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter::new(self.inner.enumerate())
    }

    pub fn zip<J>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J>>
    where
        J: Iterator,
    {
        ParIter::new(self.inner.zip(other.inner))
    }

    pub fn chain<J>(self, other: ParIter<J>) -> ParIter<std::iter::Chain<I, J>>
    where
        J: Iterator<Item = I::Item>,
    {
        ParIter::new(self.inner.chain(other.inner))
    }

    pub fn cloned<'a, T>(self) -> ParIter<std::iter::Cloned<I>>
    where
        I: Iterator<Item = &'a T>,
        T: Clone + 'a,
    {
        ParIter::new(self.inner.cloned())
    }

    pub fn copied<'a, T>(self) -> ParIter<std::iter::Copied<I>>
    where
        I: Iterator<Item = &'a T>,
        T: Copy + 'a,
    {
        ParIter::new(self.inner.copied())
    }

    pub fn with_min_len(self, _len: usize) -> Self {
        self
    }

    pub fn with_max_len(self, _len: usize) -> Self {
        self
    }

    pub fn for_each<F>(self, f: F)
    where
        F: FnMut(I::Item),
    {
        self.inner.for_each(f)
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I::Item>,
    {
        self.inner.sum()
    }

    pub fn count(self) -> usize {
        self.inner.count()
    }

    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.inner.min()
    }

    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.inner.max()
    }

    pub fn min_by_key<K, F>(self, f: F) -> Option<I::Item>
    where
        K: Ord,
        F: FnMut(&I::Item) -> K,
    {
        self.inner.min_by_key(f)
    }

    pub fn max_by_key<K, F>(self, f: F) -> Option<I::Item>
    where
        K: Ord,
        F: FnMut(&I::Item) -> K,
    {
        self.inner.max_by_key(f)
    }

    pub fn any<P>(mut self, p: P) -> bool
    where
        P: FnMut(I::Item) -> bool,
    {
        self.inner.any(p)
    }

    pub fn all<P>(mut self, p: P) -> bool
    where
        P: FnMut(I::Item) -> bool,
    {
        self.inner.all(p)
    }

    /// rayon's two-argument reduce: fold from `identity()` with `op`.
    pub fn reduce<ID, OP>(mut self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        let first = match self.inner.next() {
            Some(x) => x,
            None => return identity(),
        };
        self.inner.fold(first, op)
    }

    pub fn reduce_with<OP>(mut self, op: OP) -> Option<I::Item>
    where
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        let first = self.inner.next()?;
        Some(self.inner.fold(first, op))
    }

    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I::Item>,
    {
        self.inner.collect()
    }
}

/// `.into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator: IntoIterator + Sized {
    fn into_par_iter(self) -> ParIter<Self::IntoIter> {
        ParIter::new(self.into_iter())
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

/// `.par_iter()` on `&collection`.
pub trait IntoParallelRefIterator<'a> {
    type RefIter: Iterator;
    fn par_iter(&'a self) -> ParIter<Self::RefIter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type RefIter = <&'a C as IntoIterator>::IntoIter;

    fn par_iter(&'a self) -> ParIter<Self::RefIter> {
        ParIter::new(self.into_iter())
    }
}

/// `.par_iter_mut()` on `&mut collection`.
pub trait IntoParallelRefMutIterator<'a> {
    type RefMutIter: Iterator;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::RefMutIter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoIterator,
{
    type RefMutIter = <&'a mut C as IntoIterator>::IntoIter;

    fn par_iter_mut(&'a mut self) -> ParIter<Self::RefMutIter> {
        ParIter::new(self.into_iter())
    }
}

/// `.par_bridge()` on any sequential iterator.
pub trait ParallelBridge: Iterator + Sized {
    fn par_bridge(self) -> ParIter<Self> {
        ParIter::new(self)
    }
}

impl<I: Iterator + Sized> ParallelBridge for I {}

/// Chunked views of slices.
pub trait ParallelSlice<T> {
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T, S: AsRef<[T]> + ?Sized> ParallelSlice<T> for S {
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter::new(self.as_ref().chunks(size))
    }
}

/// Mutable chunked views and parallel sorts on slices.
pub trait ParallelSliceMut<T> {
    fn as_parallel_slice_mut(&mut self) -> &mut [T];

    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter::new(self.as_parallel_slice_mut().chunks_mut(size))
    }

    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.as_parallel_slice_mut().sort();
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.as_parallel_slice_mut().sort_unstable();
    }

    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: FnMut(&T, &T) -> std::cmp::Ordering,
    {
        self.as_parallel_slice_mut().sort_unstable_by(cmp);
    }

    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: FnMut(&T) -> K,
    {
        self.as_parallel_slice_mut().sort_unstable_by_key(key);
    }
}

impl<T, S: AsMut<[T]> + ?Sized> ParallelSliceMut<T> for S {
    fn as_parallel_slice_mut(&mut self) -> &mut [T] {
        self.as_mut()
    }
}
