//! The shim's single gateway to concurrency primitives.
//!
//! Everything in `vendor/rayon` that synchronizes — mutexes, condvars,
//! atomics, thread spawning, lazily-initialized globals — goes through
//! this module instead of `std::sync`/`std::thread` directly (enforced
//! by `pmc-lint`'s facade-bypass rule). Normally the re-exports compile
//! to thin wrappers over `std`. Under the `model` feature they compile
//! to `pmc-model`'s instrumented types, so the whole scheduler can be
//! run inside the model checker's deterministic schedule explorer; off
//! a model thread those instrumented types fall back to `std` behavior,
//! which keeps a `--features model` build usable for ordinary tests.
//!
//! Two pieces beyond type aliases:
//!
//! * [`Lazy`] — the facade-aware replacement for `static X: OnceLock`.
//!   In a normal build it is a process-wide lazily-initialized static.
//!   Under the model it is **execution-scoped**: each explored schedule
//!   starts from a fresh scheduler state (fresh deque registry, sleep
//!   bookkeeping, worker budget), which is what makes executions
//!   independent and schedules replayable.
//! * [`mutation`] — seeded-bug hooks. `mutation("name")` is `false` in
//!   normal builds (the branch folds away) and consults the current
//!   model execution under the `model` feature, so checker-validation
//!   tests can inject protocol bugs without forking the scheduler code.

#[cfg(not(feature = "model"))]
mod facade {
    use std::sync::OnceLock;

    /// Mutex without poisoning: the scheduler treats a panicked
    /// critical section as survivable everywhere, so the facade bakes
    /// the workspace's `unwrap_or_else(into_inner)` idiom in.
    pub(crate) struct Mutex<T> {
        inner: std::sync::Mutex<T>,
    }

    pub(crate) type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

    impl<T> Mutex<T> {
        pub(crate) const fn new(value: T) -> Self {
            Mutex { inner: std::sync::Mutex::new(value) }
        }

        pub(crate) fn lock(&self) -> MutexGuard<'_, T> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    pub(crate) struct Condvar {
        inner: std::sync::Condvar,
    }

    impl Condvar {
        pub(crate) const fn new() -> Self {
            Condvar { inner: std::sync::Condvar::new() }
        }

        pub(crate) fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            self.inner.wait(guard).unwrap_or_else(|e| e.into_inner())
        }

        pub(crate) fn notify_one(&self) {
            self.inner.notify_one();
        }

        pub(crate) fn notify_all(&self) {
            self.inner.notify_all();
        }
    }

    pub(crate) mod atomic {
        pub(crate) use std::sync::atomic::{AtomicUsize, Ordering};
    }

    /// A lazily-initialized process-wide global; `get` hands out
    /// plain `&'static` references.
    pub(crate) struct Lazy<T: 'static> {
        cell: OnceLock<T>,
        init: fn() -> T,
    }

    /// What `Lazy::get` returns: a `&'static` here, an `Arc` under the
    /// model (globals there live only as long as their execution).
    pub(crate) type GlobalRef<T> = &'static T;

    impl<T> Lazy<T> {
        pub(crate) const fn new(init: fn() -> T) -> Self {
            Lazy { cell: OnceLock::new(), init }
        }

        pub(crate) fn get(&'static self) -> GlobalRef<T> {
            self.cell.get_or_init(self.init)
        }
    }

    /// Seeded-mutation hook: always off outside the model checker.
    #[inline(always)]
    pub(crate) fn mutation(_name: &str) -> bool {
        false
    }

    /// Record a protocol-invariant violation. Outside the model this is
    /// a debug assertion: release builds keep running, test builds trap.
    pub(crate) fn check(cond: bool, message: &str) {
        debug_assert!(cond, "{message}");
    }

    pub(crate) mod thread {
        /// `Ok`/`Err` of a joined closure — re-exported so scheduler
        /// code never names `std::thread` directly.
        pub(crate) type Result<T> = std::thread::Result<T>;

        pub(crate) fn hardware_threads() -> usize {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }

        /// The `RAYON_NUM_THREADS` override for the default pool width.
        pub(crate) fn env_threads() -> Option<usize> {
            std::env::var("RAYON_NUM_THREADS")
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
        }

        /// Spawn a detached daemon thread (pool workers never exit).
        pub(crate) fn spawn_daemon<F>(name: &str, f: F) -> std::io::Result<()>
        where
            F: FnOnce() + Send + 'static,
        {
            std::thread::Builder::new().name(name.to_string()).spawn(f).map(|_| ())
        }
    }
}

#[cfg(feature = "model")]
mod facade {
    use std::sync::{Arc, OnceLock};

    pub(crate) use pmc_model::sync::{Condvar, Mutex, MutexGuard};

    pub(crate) mod atomic {
        pub(crate) use pmc_model::sync::atomic::{AtomicUsize, Ordering};
    }

    /// Execution-scoped when a model execution is active (each explored
    /// schedule gets fresh scheduler globals), process-wide otherwise.
    pub(crate) struct Lazy<T: Send + Sync + 'static> {
        cell: OnceLock<Arc<T>>,
        init: fn() -> T,
    }

    pub(crate) type GlobalRef<T> = Arc<T>;

    impl<T: Send + Sync + 'static> Lazy<T> {
        pub(crate) const fn new(init: fn() -> T) -> Self {
            Lazy { cell: OnceLock::new(), init }
        }

        pub(crate) fn get(&'static self) -> GlobalRef<T> {
            let key = self as *const Self as *const () as usize;
            match pmc_model::global(key, self.init) {
                Some(v) => v,
                None => Arc::clone(self.cell.get_or_init(|| Arc::new((self.init)()))),
            }
        }
    }

    #[inline]
    pub(crate) fn mutation(name: &str) -> bool {
        pmc_model::mutation_enabled(name)
    }

    /// Protocol-invariant check: a violation is reported to the model
    /// checker (with the failing schedule) when one is active.
    pub(crate) fn check(cond: bool, message: &str) {
        if !cond {
            if pmc_model::active() {
                pmc_model::report_violation(message);
            } else {
                debug_assert!(cond, "{message}");
            }
        }
    }

    pub(crate) mod thread {
        pub(crate) type Result<T> = std::thread::Result<T>;

        /// Fixed inside the model — the schedule space must not depend
        /// on the host machine.
        pub(crate) fn hardware_threads() -> usize {
            pmc_model::hardware_threads_override()
                .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
        }

        /// Environment reads are nondeterministic inputs, so the model
        /// ignores `RAYON_NUM_THREADS`.
        pub(crate) fn env_threads() -> Option<usize> {
            if pmc_model::active() {
                return None;
            }
            std::env::var("RAYON_NUM_THREADS")
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
        }

        pub(crate) fn spawn_daemon<F>(name: &str, f: F) -> std::io::Result<()>
        where
            F: FnOnce() + Send + 'static,
        {
            pmc_model::thread::spawn_daemon(name, f)
        }
    }
}

pub(crate) use facade::atomic;
pub(crate) use facade::thread;
pub(crate) use facade::{check, mutation, Condvar, GlobalRef, Lazy, Mutex, MutexGuard};

/// Fault-injection probes (`pmc-fault`), routed through the facade like
/// every other cross-cutting concern so scheduler code has a single
/// gateway. Identical in normal and model builds: when no fault scope
/// is armed a probe is one relaxed atomic load, and the chaos suite
/// never arms plans under the model checker, so the schedule space is
/// unchanged. `point` honours delay/exhaust ops only; `point_panicking`
/// may additionally raise a typed `InjectedPanic` and is placed *only*
/// where an unwind is provably absorbed (a job's `catch_unwind`, or the
/// quarantine guard in `worker_loop`).
pub(crate) mod fault {
    pub(crate) use pmc_fault::{point, point_panicking};
}

// `Arc` needs no instrumentation (it is shared memory, not a schedule
// point), but routing it through the facade keeps the lint rule simple:
// *no* `std::sync` names appear elsewhere in the crate.
pub(crate) use std::sync::Arc;
