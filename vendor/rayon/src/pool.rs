//! The persistent worker pool behind [`crate::join`].
//!
//! Workers are plain OS threads parked on a private channel each. An
//! idle stack holds the send half of every parked worker's channel; a
//! worker is in the stack iff it is idle. `join` hands its second
//! closure to an idle worker (spawning a new one when none is parked —
//! the pool grows to the high-water mark of concurrent helper demand
//! and workers never exit) and runs the first closure inline.
//!
//! Jobs carry borrows of the calling stack frame, so their lifetime is
//! erased before crossing threads. That erasure is sound because the
//! calling frame *always* blocks on the job's completion [`Latch`]
//! before it can be left — on the normal path explicitly, and on the
//! unwinding path (the inline closure panicked) via [`WaitGuard`]'s
//! `Drop`. Helper panics are captured on the worker and re-raised on
//! the calling thread.

// The lifetime erasure in `Job::erase` is this crate's only use of
// unsafe; the workspace-level `unsafe_code` lint keeps it from
// spreading silently elsewhere.
#![allow(unsafe_code)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Condvar, Mutex, OnceLock};

use crate::{ContextGuard, HelperSlot};

/// A lifetime-erased `FnOnce` shipped to a worker thread.
pub(crate) struct Job {
    f: Box<dyn FnOnce() + Send + 'static>,
}

impl Job {
    /// Erase the borrow lifetime of `f`.
    ///
    /// # Safety
    ///
    /// The caller must not invalidate data the closure borrows until
    /// the closure has finished running. [`join_with_helper`] enforces
    /// this by waiting on the [`Latch`] the job signals before its
    /// frame can be left on either the normal or the unwinding path.
    unsafe fn erase<'a>(f: Box<dyn FnOnce() + Send + 'a>) -> Job {
        Job {
            f: std::mem::transmute::<
                Box<dyn FnOnce() + Send + 'a>,
                Box<dyn FnOnce() + Send + 'static>,
            >(f),
        }
    }

    fn run(self) {
        (self.f)()
    }
}

/// Send halves of the channels of all currently parked workers.
fn idle_workers() -> &'static Mutex<Vec<Sender<Job>>> {
    static IDLE: OnceLock<Mutex<Vec<Sender<Job>>>> = OnceLock::new();
    IDLE.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock_idle() -> std::sync::MutexGuard<'static, Vec<Sender<Job>>> {
    idle_workers().lock().unwrap_or_else(|e| e.into_inner())
}

/// Workers ever spawned (they never exit). A finished worker sets its
/// job's latch *before* re-parking on the idle stack, so a caller's
/// next join can momentarily see an empty stack while a worker is
/// re-parking; without a cap that race would leak one permanent thread
/// per occurrence. Past the cap, dispatch degrades to inline execution
/// instead.
static WORKERS_SPAWNED: AtomicUsize = AtomicUsize::new(0);

fn worker_cap() -> usize {
    crate::hardware_threads().max(crate::max_pool_width()).saturating_mul(2)
}

/// Park a fresh worker thread and return the sender of its channel.
/// Returns `None` past the worker cap or when the OS refuses to spawn
/// a thread.
fn spawn_worker() -> Option<Sender<Job>> {
    if WORKERS_SPAWNED.fetch_add(1, Ordering::Relaxed) >= worker_cap() {
        WORKERS_SPAWNED.fetch_sub(1, Ordering::Relaxed);
        return None;
    }
    let (tx, rx) = channel::<Job>();
    let tx_self = tx.clone();
    let spawned = std::thread::Builder::new()
        .name("rayon-shim-worker".into())
        .spawn(move || {
            while let Ok(job) = rx.recv() {
                job.run();
                lock_idle().push(tx_self.clone());
            }
        })
        .ok()
        .map(|_| tx);
    if spawned.is_none() {
        WORKERS_SPAWNED.fetch_sub(1, Ordering::Relaxed);
    }
    spawned
}

/// Hand `job` to an idle worker, spawning one if necessary. On failure
/// (thread spawn refused) the job is handed back for inline execution.
fn dispatch(mut job: Job) -> Result<(), Job> {
    loop {
        let idle = lock_idle().pop();
        match idle {
            Some(tx) => match tx.send(job) {
                Ok(()) => return Ok(()),
                // The worker died (can only happen if its thread was
                // torn down externally); retry with another.
                Err(send_err) => job = send_err.0,
            },
            None => {
                return match spawn_worker() {
                    Some(tx) => tx.send(job).map_err(|e| e.0),
                    None => Err(job),
                }
            }
        }
    }
}

/// One-shot completion latch carrying the helper's result or its panic
/// payload.
struct Latch<T> {
    state: Mutex<Option<std::thread::Result<T>>>,
    cv: Condvar,
}

impl<T> Latch<T> {
    fn new() -> Self {
        Latch { state: Mutex::new(None), cv: Condvar::new() }
    }

    fn set(&self, result: std::thread::Result<T>) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *st = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> std::thread::Result<T> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = st.take() {
                return result;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Blocks on the latch when dropped during an unwind of the inline
/// closure, so the helper can never outlive the borrows of its job.
struct WaitGuard<'a, T> {
    latch: &'a Latch<T>,
    armed: bool,
}

impl<T> WaitGuard<'_, T> {
    fn wait(mut self) -> T {
        self.armed = false;
        match self.latch.wait() {
            Ok(value) => value,
            Err(payload) => resume_unwind(payload),
        }
    }
}

impl<T> Drop for WaitGuard<'_, T> {
    fn drop(&mut self) {
        if self.armed {
            // The inline closure is unwinding; the helper's own panic
            // (if any) is necessarily swallowed.
            let _ = self.latch.wait();
        }
    }
}

/// Run `a` inline and `b` on a helper worker, under the pool context
/// carried by `slot`. The slot's budget is released as soon as `b`
/// finishes, before the caller is woken.
pub(crate) fn join_with_helper<A, B, RA, RB>(slot: HelperSlot, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let latch: Latch<RB> = Latch::new();
    let job = {
        let latch = &latch;
        let boxed: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            let ctx = slot.context();
            let result = catch_unwind(AssertUnwindSafe(|| {
                // Helpers inherit the *installed* pool, not the
                // hardware default: nested joins see the same thread
                // count and charge the same helper budget.
                let _ctx = ContextGuard::install(ctx);
                b()
            }));
            drop(slot);
            latch.set(result);
        });
        // SAFETY: `WaitGuard` below waits on `latch` before this frame
        // can be left on either the normal or the unwinding path, so
        // every borrow inside the job outlives its execution.
        unsafe { Job::erase(boxed) }
    };
    match dispatch(job) {
        Ok(()) => {
            let guard = WaitGuard { latch: &latch, armed: true };
            let ra = a();
            let rb = guard.wait();
            (ra, rb)
        }
        Err(job) => {
            // No worker available under the cap: degrade to
            // sequential. The job still runs (releasing the slot and
            // setting the latch), just on this thread.
            job.run();
            let ra = a();
            let rb = match latch.wait() {
                Ok(value) => value,
                Err(payload) => resume_unwind(payload),
            };
            (ra, rb)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tight loop of sequential joins races each worker's re-park
    /// against the next dispatch; the cap must keep the pool from
    /// accumulating a thread per race.
    #[test]
    fn worker_count_stays_bounded_under_join_churn() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            for i in 0..2_000u32 {
                let (a, b) = crate::join(move || i, move || i + 1);
                assert_eq!(b - a, 1);
            }
        });
        let spawned = WORKERS_SPAWNED.load(Ordering::Relaxed);
        assert!(
            spawned <= worker_cap(),
            "{spawned} workers spawned, cap {}",
            worker_cap()
        );
    }
}
