//! The work-stealing scheduler behind [`crate::join`].
//!
//! Every thread that participates in a join — persistent pool workers
//! and caller threads alike — owns a registered deque of pending
//! [`Job`]s. `join` pushes its second closure onto the *local* deque
//! (bottom), runs the first closure inline, and then pops the job back
//! off the bottom if no thief claimed it meanwhile — the Chase–Lev
//! discipline: owners push and pop at the bottom, thieves steal from
//! the top, so the oldest (largest) subtrees migrate first and skewed
//! divide-and-conquer splits rebalance instead of starving.
//!
//! Steal granularity is asymmetric. An idle *worker* steals half of
//! the victim's queue in one lock acquisition (amortising the steal
//! cost and seeding its own deque for further thieves) and re-parks on
//! a condvar when a full scan finds nothing. A *waiting joiner* steals
//! exactly one job at a time: it may stop scanning the moment its own
//! latch trips, so it must never hoard jobs it would then strand.
//! That asymmetry is what makes blocking on the latch deadlock-free:
//! every queued job either sits in the deque of its origin frame
//! (which pops-or-runs it before blocking) or of a worker (which
//! drains its own deque before parking).
//!
//! Jobs carry borrows of the calling stack frame, so their lifetime is
//! erased before crossing threads. That erasure is sound because the
//! calling frame *always* blocks on the job's completion [`Latch`]
//! before it can be left — on the normal path explicitly, and on the
//! unwinding path (the inline closure panicked) via [`WaitGuard`]'s
//! `Drop`, which also helps instead of merely blocking so the pinned
//! job cannot be orphaned mid-unwind. Helper panics are captured where
//! the job runs and re-raised on the joining thread.
//!
//! Every synchronization primitive here comes from [`crate::sync`], so
//! the whole protocol can be compiled against `pmc-model`'s
//! instrumented types (feature `model`) and exhaustively interleaved by
//! the schedule explorer — see `vendor/rayon/tests/model.rs`. The
//! `sync::mutation` calls are seeded-bug hooks for validating that the
//! checker catches protocol violations; they are constant `false` in
//! normal builds and the branches fold away.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::{self, Arc, Condvar, GlobalRef, Lazy, Mutex};
use crate::{ContextGuard, HelperSlot};

/// A lifetime-erased `FnOnce` parked in a deque until some thread
/// (a worker, a thief, or the pushing frame itself) runs it.
pub(crate) struct Job {
    /// Identity of the join frame that pushed the job: the address of
    /// its stack [`Latch`]. Distinct live latches have distinct
    /// addresses, so a frame can recognise its own job at the bottom
    /// of its deque.
    tag: usize,
    f: Box<dyn FnOnce() + Send + 'static>,
}

impl Job {
    /// Erase the borrow lifetime of `f`.
    ///
    /// # Safety
    ///
    /// The caller must not invalidate data the closure borrows until
    /// the closure has finished running. [`join_with_helper`] enforces
    /// this by waiting on the [`Latch`] the job signals before its
    /// frame can be left on either the normal or the unwinding path.
    // This lifetime erasure is the crate's only unsafe code; the
    // per-item allow (the workspace denies `unsafe_code` by default)
    // keeps it from spreading silently elsewhere.
    #[allow(unsafe_code)]
    unsafe fn erase<'a>(tag: usize, f: Box<dyn FnOnce() + Send + 'a>) -> Job {
        Job {
            tag,
            f: std::mem::transmute::<
                Box<dyn FnOnce() + Send + 'a>,
                Box<dyn FnOnce() + Send + 'static>,
            >(f),
        }
    }

    fn run(self) {
        (self.f)()
    }
}

/// One participant's deque. Owners push and pop at the back (bottom);
/// thieves drain from the front (top). A mutex-protected `VecDeque`
/// rather than a lock-free array: the shim trades the CAS protocol of
/// the real Chase–Lev deque for obviously-correct locking while
/// keeping its ends-and-granularity semantics.
pub(crate) struct WorkerDeque {
    jobs: Mutex<VecDeque<Job>>,
}

impl WorkerDeque {
    fn new() -> Arc<Self> {
        Arc::new(WorkerDeque { jobs: Mutex::new(VecDeque::new()) })
    }

    fn lock(&self) -> sync::MutexGuard<'_, VecDeque<Job>> {
        self.jobs.lock()
    }
}

fn new_registry() -> Mutex<Vec<Arc<WorkerDeque>>> {
    Mutex::new(Vec::new())
}

/// All deques ever registered (grow-only; a thread that exits leaves
/// an empty deque behind — joiner deques are provably drained, see the
/// module docs). Thieves snapshot this list and probe round-robin.
/// Execution-scoped under the model checker: each explored schedule
/// starts with a fresh registry.
static REGISTRY: Lazy<Mutex<Vec<Arc<WorkerDeque>>>> = Lazy::new(new_registry);

fn registry() -> GlobalRef<Mutex<Vec<Arc<WorkerDeque>>>> {
    REGISTRY.get()
}

fn registry_snapshot() -> Vec<Arc<WorkerDeque>> {
    registry().lock().clone()
}

thread_local! {
    static LOCAL_DEQUE: RefCell<Option<Arc<WorkerDeque>>> = const { RefCell::new(None) };
}

/// The current thread's deque, registering one on first use.
fn local_deque() -> Arc<WorkerDeque> {
    LOCAL_DEQUE.with(|slot| {
        let mut slot = slot.borrow_mut();
        if let Some(dq) = slot.as_ref() {
            return Arc::clone(dq);
        }
        let dq = WorkerDeque::new();
        registry().lock().push(Arc::clone(&dq));
        *slot = Some(Arc::clone(&dq));
        dq
    })
}

/// Sleep bookkeeping for parked workers: `sleepers` are parked on the
/// condvar, `signals` are wake-ups issued but not yet consumed (a
/// token scheme so notifications are never lost to the check/park
/// race).
struct Sleep {
    state: Mutex<SleepState>,
    cv: Condvar,
}

#[derive(Default)]
struct SleepState {
    sleepers: usize,
    signals: usize,
}

fn new_sleep() -> Sleep {
    Sleep { state: Mutex::new(SleepState::default()), cv: Condvar::new() }
}

static SLEEP: Lazy<Sleep> = Lazy::new(new_sleep);

fn sleep() -> GlobalRef<Sleep> {
    SLEEP.get()
}

/// Wake up to `n` parked workers that have not been signalled yet.
fn signal_sleepers(n: usize) {
    if n == 0 {
        return;
    }
    let s = sleep();
    let mut st = s.state.lock();
    let wakeable = st.sleepers.saturating_sub(st.signals).min(n);
    if wakeable > 0 {
        st.signals += wakeable;
        for _ in 0..wakeable {
            s.cv.notify_one();
        }
    }
}

fn new_spawn_count() -> AtomicUsize {
    AtomicUsize::new(0)
}

/// Workers ever spawned (they never exit). The cap keeps the
/// signal/park race from leaking a permanent thread per occurrence:
/// past it, a pushed job simply waits in its deque until a busy worker
/// or the pushing frame itself gets to it.
static WORKERS_SPAWNED: Lazy<AtomicUsize> = Lazy::new(new_spawn_count);

/// Workers quarantined after a scheduler-level panic unwound their
/// loop (each one was replaced by a respawn, capacity permitting).
static WORKERS_QUARANTINED: Lazy<AtomicUsize> = Lazy::new(new_spawn_count);

#[cfg(test)]
pub(crate) fn workers_spawned() -> usize {
    // Relaxed: a monotone telemetry read; no ordering with other state.
    WORKERS_SPAWNED.get().load(Ordering::Relaxed)
}

/// Health counters for [`crate::pool_diagnostics`].
pub(crate) fn diagnostics() -> crate::PoolDiagnostics {
    // Relaxed: telemetry snapshot; no ordering with other state.
    crate::PoolDiagnostics {
        workers_live: WORKERS_SPAWNED.get().load(Ordering::Relaxed),
        workers_quarantined: WORKERS_QUARANTINED.get().load(Ordering::Relaxed),
    }
}

pub(crate) fn worker_cap() -> usize {
    crate::hardware_threads().max(crate::max_pool_width()).saturating_mul(2)
}

fn try_spawn_worker() {
    let spawned_count = WORKERS_SPAWNED.get();
    // Relaxed: the counter is a pure admission cap — no memory is
    // published or consumed through it, over-counting is corrected on
    // the failure paths below, and exactness of the interleaving is
    // irrelevant to safety.
    if spawned_count.fetch_add(1, Ordering::Relaxed) >= worker_cap() {
        spawned_count.fetch_sub(1, Ordering::Relaxed);
        return;
    }
    let spawned = sync::thread::spawn_daemon("rayon-shim-worker", worker_loop).is_ok();
    if !spawned {
        // Relaxed: undoing the admission count above.
        spawned_count.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Push a job from the current thread and make sure somebody will get
/// to it: wake a parked worker if one exists, otherwise grow the pool
/// (under the cap). Returns without blocking either way — if neither
/// is possible the pushing frame runs the job itself while waiting.
fn push_job(job: Job) {
    // Delay-capable probe: lets chaos plans stretch the window between
    // the push and the wake-up/steal it advertises.
    sync::fault::point("rayon:push");
    let dq = local_deque();
    dq.lock().push_back(job);
    if sync::mutation("drop_wake_signal") {
        // Seeded bug: advertise nothing. No parked worker wakes and no
        // worker is spawned, so the job can only ever be reclaimed by
        // its own frame — the steal coverage the model tests assert on
        // disappears.
        return;
    }
    let s = sleep();
    let must_spawn = {
        let mut st = s.state.lock();
        if st.sleepers > st.signals {
            st.signals += 1;
            s.cv.notify_one();
            false
        } else {
            true
        }
    };
    if must_spawn {
        try_spawn_worker();
    }
}

/// Pop the current thread's own job back off the bottom of its deque,
/// if no thief claimed it. Only the bottom entry can be ours: pushes
/// and pops are LIFO within a thread, so everything pushed above `tag`
/// has already been popped or stolen by the time its frame waits.
fn pop_local_by_tag(tag: usize) -> Option<Job> {
    let dq = local_deque();
    let mut jobs = dq.lock();
    if jobs.back().is_some_and(|job| job.tag == tag) {
        jobs.pop_back()
    } else {
        None
    }
}

/// Find one runnable job: the bottom of the local deque first (depth
/// first — it is the hottest work), then a steal from the top of the
/// fullest other deque. Workers (`steal_half`) transfer half of the
/// victim's queue and requeue the surplus locally; joiners take one.
fn find_work(steal_half: bool) -> Option<Job> {
    let mine = local_deque();
    if let Some(job) = mine.lock().pop_back() {
        return Some(job);
    }
    // Delay-capable probe: lets chaos plans reorder thieves against
    // pushes and each other before the victim scan.
    sync::fault::point("rayon:steal");
    // Pick the victim with the longest queue — the best rebalance per
    // lock acquisition under skew.
    let all = registry_snapshot();
    let mut victim: Option<(usize, &Arc<WorkerDeque>)> = None;
    for dq in &all {
        if Arc::ptr_eq(dq, &mine) {
            continue;
        }
        let len = dq.lock().len();
        if len > 0 && victim.is_none_or(|(best, _)| len > best) {
            victim = Some((len, dq));
        }
    }
    let (_, dq) = victim?;
    let mut batch = {
        let mut jobs = dq.lock();
        let take = if steal_half { jobs.len().div_ceil(2) } else { 1.min(jobs.len()) };
        // Steal-granularity invariant, checkable under the model: a
        // worker takes ceil(len/2), a joiner at most one.
        sync::check(
            take <= jobs.len() && (steal_half || take <= 1),
            "steal protocol: joiners must steal at most one job",
        );
        let oldest = jobs.front().map(|job| job.tag);
        let batch: VecDeque<Job> = if sync::mutation("steal_from_bottom") {
            // Seeded bug: drain the *newest* jobs — the ones their own
            // frames are about to reclaim — instead of the oldest.
            let start = jobs.len() - take;
            jobs.drain(start..).collect()
        } else {
            jobs.drain(..take).collect()
        };
        sync::check(
            batch.is_empty() || batch.front().map(|job| job.tag) == oldest,
            "steal protocol: thieves must take from the top (oldest job first)",
        );
        batch
    };
    let first = batch.pop_front()?;
    if sync::mutation("drop_stolen_job") {
        // Seeded bug: lose the stolen job. Its latch never trips and
        // the joiner blocks forever — the lost-job deadlock the model
        // checker must catch.
        drop(first);
        drop(batch);
        return None;
    }
    if !batch.is_empty() {
        let surplus = batch.len();
        mine.lock().append(&mut batch);
        // The requeued surplus is stealable in turn; advertise it.
        signal_sleepers(surplus);
    }
    Some(first)
}

fn worker_loop() {
    // Register this worker's deque up front so joiners can steal from
    // it even before its first job.
    let _ = local_deque();
    // Job panics never unwind into this frame — every job traps its
    // panic internally and routes it to the joiner's latch — so an
    // unwind out of the scan/run/park loop means scheduler-level
    // trouble: an injected `rayon:worker_tick` fault, or a genuine
    // bug. Either way the thread is quarantined and replaced instead
    // of silently shrinking the pool.
    if catch_unwind(AssertUnwindSafe(worker_body)).is_err() {
        quarantine_worker();
    }
}

/// A worker died mid-loop: account for it and grow a replacement so
/// pool capacity survives repeated failures. Jobs left in the dead
/// worker's deque are not lost — the registry keeps the deque alive
/// and visible to every thief.
fn quarantine_worker() {
    // Relaxed on both counters: telemetry plus the same pure admission
    // cap as `try_spawn_worker`; no memory is published through them.
    WORKERS_QUARANTINED.get().fetch_add(1, Ordering::Relaxed);
    WORKERS_SPAWNED.get().fetch_sub(1, Ordering::Relaxed);
    try_spawn_worker();
}

fn worker_body() {
    loop {
        // Panic-capable probe: the only place a fault plan can kill a
        // worker. Sits at the top of the tick, where no lock is held
        // and no job is in hand, so the unwind `worker_loop` absorbs
        // cannot strand scheduler state.
        sync::fault::point_panicking("rayon:worker_tick");
        if let Some(job) = find_work(true) {
            job.run();
            continue;
        }
        let s = sleep();
        let mut st = s.state.lock();
        if st.signals > 0 {
            // A push raced our scan; consume the token and rescan.
            st.signals -= 1;
            continue;
        }
        st.sleepers += 1;
        loop {
            st = s.cv.wait(st);
            if st.signals > 0 {
                st.signals -= 1;
                st.sleepers -= 1;
                break;
            }
        }
    }
}

/// One-shot completion latch carrying the helper's result or its panic
/// payload.
struct Latch<T> {
    state: Mutex<Option<sync::thread::Result<T>>>,
    cv: Condvar,
}

impl<T> Latch<T> {
    fn new() -> Self {
        Latch { state: Mutex::new(None), cv: Condvar::new() }
    }

    fn set(&self, result: sync::thread::Result<T>) {
        let mut st = self.state.lock();
        *st = Some(result);
        if sync::mutation("drop_latch_notify") {
            // Seeded bug: the result is stored but the waiter is never
            // woken — the lost-wakeup deadlock the model checker must
            // catch whenever the job was genuinely stolen.
            return;
        }
        self.cv.notify_all();
    }

    fn try_take(&self) -> Option<sync::thread::Result<T>> {
        self.state.lock().take()
    }

    fn wait(&self) -> sync::thread::Result<T> {
        let mut st = self.state.lock();
        loop {
            if let Some(result) = st.take() {
                return result;
            }
            st = self.cv.wait(st);
        }
    }
}

/// Wait for the job identified by `tag` to complete, lending this
/// thread to the scheduler meanwhile: reclaim the job from the local
/// deque if it was never stolen (the common un-contended case — it
/// runs inline with no handoff at all), otherwise run other pending
/// jobs one steal at a time until the latch trips. Blocking outright
/// is only reached when a full scan found nothing runnable, at which
/// point the awaited job is in some worker's hands (see module docs).
fn wait_with_help<T>(latch: &Latch<T>, tag: usize) -> sync::thread::Result<T> {
    if let Some(job) = pop_local_by_tag(tag) {
        job.run();
        // `run` set the latch; fall through to collect it.
    }
    loop {
        if let Some(result) = latch.try_take() {
            return result;
        }
        match find_work(false) {
            Some(job) => job.run(),
            None => return latch.wait(),
        }
    }
}

/// Helps (and ultimately blocks) on the latch when dropped during an
/// unwind of the inline closure, so the pinned job can never outlive
/// the borrows of its frame.
struct WaitGuard<'a, T> {
    latch: &'a Latch<T>,
    tag: usize,
    armed: bool,
}

impl<T> WaitGuard<'_, T> {
    fn wait(mut self) -> T {
        self.armed = false;
        match wait_with_help(self.latch, self.tag) {
            Ok(value) => value,
            Err(payload) => resume_unwind(payload),
        }
    }
}

impl<T> Drop for WaitGuard<'_, T> {
    fn drop(&mut self) {
        if self.armed {
            // The inline closure is unwinding; the pinned job's own
            // panic (if any) is necessarily swallowed. Jobs trap their
            // panics internally, so helping here cannot double-panic.
            let _ = wait_with_help(self.latch, self.tag);
        }
    }
}

/// Run `a` inline and `b` under the scheduler, in the pool context
/// carried by `slot`. The slot's budget is released as soon as `b`
/// finishes, before the caller is woken.
pub(crate) fn join_with_helper<A, B, RA, RB>(slot: HelperSlot, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let latch: Latch<RB> = Latch::new();
    let tag = &latch as *const Latch<RB> as usize;
    let job = {
        let latch = &latch;
        let boxed: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            let ctx = slot.context();
            let result = catch_unwind(AssertUnwindSafe(|| {
                // Panic-capable probe *inside* the job's own
                // catch_unwind: an injected panic here takes the exact
                // path a panicking user closure takes — captured,
                // routed to the joiner's latch, re-raised there.
                sync::fault::point_panicking("rayon:job_run");
                // The job inherits the *installed* pool, wherever it
                // ends up running: nested joins see the same thread
                // count and charge the same helper budget.
                let _ctx = ContextGuard::install(ctx);
                b()
            }));
            drop(slot);
            latch.set(result);
        });
        // SAFETY: `WaitGuard` below waits on `latch` before this frame
        // can be left on either the normal or the unwinding path, so
        // every borrow inside the job outlives its execution.
        #[allow(unsafe_code)]
        unsafe {
            Job::erase(tag, boxed)
        }
    };
    push_job(job);
    let guard = WaitGuard { latch: &latch, tag, armed: true };
    let ra = a();
    let rb = guard.wait();
    (ra, rb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicBool; // lint: allow(facade) — raw flag for a spin, test-only.
    use std::time::Duration;

    /// A tight loop of sequential joins races each worker's re-park
    /// against the next push; the cap must keep the pool from
    /// accumulating a thread per race.
    #[test]
    fn worker_count_stays_bounded_under_join_churn() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            for i in 0..2_000u32 {
                let (a, b) = crate::join(move || i, move || i + 1);
                assert_eq!(b - a, 1);
            }
        });
        let spawned = workers_spawned();
        assert!(
            spawned <= worker_cap(),
            "{spawned} workers spawned, cap {}",
            worker_cap()
        );
    }

    /// A pinned job whose frame is busy long enough for a thief must be
    /// stolen, not run by the pushing thread.
    #[test]
    fn blocked_joiner_gets_its_job_stolen() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        // lint: allow(facade) — real thread identity, test-only.
        let me = std::thread::current().id();
        let mut observed_steal = false;
        for _ in 0..20 {
            let stolen_on = pool.install(|| {
                crate::join(
                    || std::thread::sleep(Duration::from_millis(20)), // lint: allow(facade)
                    std::thread::current, // lint: allow(facade)
                )
                .1
            });
            if stolen_on.id() != me {
                observed_steal = true;
                break;
            }
        }
        assert!(observed_steal, "no worker ever stole the pinned job");
    }

    /// Under deliberate skew — one branch of every join is heavy — the
    /// stolen light branches must land on more than one thread.
    #[test]
    fn skewed_join_tree_observes_multiple_threads() {
        // lint: allow(facade) — collecting real thread ids, test-only.
        fn tree(depth: usize, seen: &Mutex<HashSet<std::thread::ThreadId>>) {
            seen.lock().insert(std::thread::current().id()); // lint: allow(facade)
            if depth == 0 {
                std::thread::sleep(Duration::from_millis(2)); // lint: allow(facade)
                return;
            }
            // Skew: the inline branch recurses, the pinned branch is a
            // single leaf. Static splitting would starve every helper.
            crate::join(|| tree(depth - 1, seen), || tree(0, seen));
        }
        let pool = crate::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let seen = Mutex::new(HashSet::new());
        pool.install(|| tree(64, &seen));
        assert!(
            seen.lock().len() > 1,
            "steals under skew must involve more than one thread"
        );
    }

    /// The panic of a genuinely *stolen* job must land on the joiner —
    /// the thread that called `join` — not on the worker that ran the
    /// job, and the pool must stay usable afterwards. Exercised at both
    /// pool widths the workspace forces in CI.
    fn stolen_job_panic_reaches_joiner(num_threads: usize) {
        let pool = crate::ThreadPoolBuilder::new().num_threads(num_threads).build().unwrap();
        let started = AtomicBool::new(false);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                crate::join(
                    || {
                        // Hold the joiner in its inline branch until the
                        // thief has picked the job up, so the job cannot
                        // be reclaimed and run inline.
                        // lint: allow(facade) — raw spin keeps the frame
                        // busy without a schedule point, test-only.
                        while !started.load(std::sync::atomic::Ordering::Acquire) {
                            std::hint::spin_loop();
                        }
                    },
                    || {
                        started.store(true, std::sync::atomic::Ordering::Release); // lint: allow(facade)
                        panic!("stolen job boom");
                    },
                )
            })
        }));
        assert!(
            result.is_err(),
            "the stolen job's panic must reach the joiner ({num_threads} threads)"
        );
        let payload = result.unwrap_err();
        let message = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(message, "stolen job boom", "the joiner must see the helper's payload");
        // The pool is still usable: the panic neither killed a worker's
        // loop nor leaked the helper budget.
        let (x, y) = pool.install(|| crate::join(|| 1, || 2));
        assert_eq!((x, y), (1, 2));
    }

    #[test]
    fn panic_in_stolen_job_propagates_to_joiner_two_threads() {
        stolen_job_panic_reaches_joiner(2);
    }

    #[test]
    fn panic_in_stolen_job_propagates_to_joiner_four_threads() {
        stolen_job_panic_reaches_joiner(4);
    }
}
