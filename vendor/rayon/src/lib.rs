//! Vendored stand-in for `rayon`.
//!
//! The build environment has no registry access, so this crate provides
//! the subset of rayon's API the workspace uses with honest but simpler
//! semantics:
//!
//! * [`join`] runs its two closures on real OS threads (via
//!   `std::thread::scope`) while a global budget of live helper threads
//!   is available, and degrades to sequential execution past the budget
//!   — so divide-and-conquer call trees still get genuine parallelism
//!   without unbounded thread spawning;
//! * the parallel-iterator traits in [`prelude`] are sequential
//!   adapters with rayon's method signatures (`par_iter`, `map`,
//!   `reduce(identity, op)`, `flat_map_iter`, ...), which keeps every
//!   call site source-compatible with the real crate;
//! * [`ThreadPoolBuilder`] builds a pool object whose `install` scopes
//!   the value reported by [`current_num_threads`].
//!
//! Swapping in the real rayon is a one-line change in the workspace
//! manifest and makes the same call sites actually data-parallel.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod iter;

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelBridge, ParallelSlice, ParallelSliceMut,
    };
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

thread_local! {
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads the "current pool" would use.
pub fn current_num_threads() -> usize {
    POOL_THREADS.with(|t| t.get()).unwrap_or_else(hardware_threads)
}

/// Live helper threads spawned by [`join`], across the process.
static LIVE_HELPERS: AtomicUsize = AtomicUsize::new(0);

/// An atomically claimed helper-thread slot, released on drop so a
/// panicking join closure cannot leak budget.
struct HelperSlot;

impl Drop for HelperSlot {
    fn drop(&mut self) {
        LIVE_HELPERS.fetch_sub(1, Ordering::Relaxed);
    }
}

fn try_claim_helper_slot(budget: usize) -> Option<HelperSlot> {
    let mut live = LIVE_HELPERS.load(Ordering::Relaxed);
    loop {
        if live >= budget {
            return None;
        }
        match LIVE_HELPERS.compare_exchange_weak(
            live,
            live + 1,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return Some(HelperSlot),
            Err(now) => live = now,
        }
    }
}

/// Run `a` and `b`, in parallel when the helper-thread budget allows.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let budget = current_num_threads().saturating_sub(1);
    if let Some(_slot) = try_claim_helper_slot(budget) {
        std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            (ra, hb.join().expect("rayon shim: join closure panicked"))
        })
    } else {
        let ra = a();
        let rb = b();
        (ra, rb)
    }
}

/// Error type for [`ThreadPoolBuilder::build`] (construction never
/// actually fails in the shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads.unwrap_or_else(hardware_threads) })
    }
}

/// A "pool" that scopes [`current_num_threads`] for code run under
/// [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        POOL_THREADS.with(|t| {
            let prev = t.replace(Some(self.num_threads));
            let out = op();
            t.set(prev);
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_nests() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo < 100 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        assert_eq!(sum(0, 10_000), 10_000 * 9_999 / 2);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn par_iter_chains_work() {
        let v = vec![1u64, 2, 3, 4, 5];
        let s: u64 = v.par_iter().map(|&x| x * 2).sum();
        assert_eq!(s, 30);
        let odds: Vec<u64> = v.clone().into_par_iter().filter(|x| x % 2 == 1).collect();
        assert_eq!(odds, vec![1, 3, 5]);
        let m = (0..10u64).into_par_iter().reduce(|| 0, |a, b| a.max(b));
        assert_eq!(m, 9);
    }

    #[test]
    fn par_slice_ops_work() {
        let mut v = vec![5u64, 3, 1, 4, 2];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
        let sums: Vec<u64> = v.par_chunks(2).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 7, 5]);
        v.par_chunks_mut(2).for_each(|c| c.reverse());
        assert_eq!(v, vec![2, 1, 4, 3, 5]);
    }
}
