//! Vendored stand-in for `rayon`.
//!
//! The build environment has no registry access, so this crate provides
//! the subset of rayon's API the workspace uses with genuinely parallel
//! semantics:
//!
//! * [`join`] runs its two closures concurrently while the installed
//!   pool's helper budget allows — the second closure is pushed onto a
//!   per-thread work-stealing deque (see `pool.rs`; idle workers steal
//!   from the top, the pushing frame reclaims from the bottom) — and
//!   degrades to sequential execution past the budget, so
//!   divide-and-conquer call trees parallelise and rebalance under
//!   skew without unbounded thread spawning;
//! * the parallel-iterator traits in [`prelude`] split indexed sources
//!   (slices, `Vec`s, ranges, chunk views) by divide-and-conquer over
//!   [`join`] and fall back to sequential execution below a split
//!   cutoff; non-indexed sources (`par_bridge`) split off doubling
//!   chunks that the deques steal; closure bounds are rayon's real
//!   `Fn + Send + Sync`, and every combining step is
//!   order-preserving, so `collect`/`reduce` results are identical to
//!   the sequential ones whenever the operation is associative (see
//!   [`mod@iter`]);
//! * `par_sort*` run a parallel merge sort (`sort.rs`);
//! * [`ThreadPoolBuilder`] builds a pool whose `install` scopes both
//!   the value reported by [`current_num_threads`] *and* the helper
//!   budget [`join`] draws from. The context travels into helper
//!   threads, so nested joins under `num_threads(1)` stay sequential
//!   and two pools never distort each other's budgets.
//!
//! The default (uninstalled) pool uses the hardware thread count, or
//! `RAYON_NUM_THREADS` when set — the same environment knob the real
//! rayon honours. Swapping in the real rayon remains a one-line change
//! in the workspace manifest: the call-site surface and closure bounds
//! match the real crate.

use std::cell::RefCell;

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::{Arc, Lazy};

pub mod iter;
mod pool;
mod sort;
pub(crate) mod sync;

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelBridge, ParallelSlice, ParallelSliceMut,
    };
}

pub(crate) fn hardware_threads() -> usize {
    sync::thread::hardware_threads()
}

/// The identity of a pool: its thread count plus the budget of live
/// helper threads charged against it. Shared (`Arc`) between the pool
/// object, the threads running under `install`, and every helper
/// spawned from them.
#[derive(Debug)]
pub(crate) struct PoolContext {
    num_threads: usize,
    live_helpers: AtomicUsize,
}

fn new_max_pool_width() -> AtomicUsize {
    AtomicUsize::new(1)
}

/// Widest pool ever built — an input to the worker cap in `pool.rs`.
/// Execution-scoped under the model checker, like every scheduler
/// global (see `sync::Lazy`).
static MAX_POOL_WIDTH: Lazy<AtomicUsize> = Lazy::new(new_max_pool_width);

pub(crate) fn max_pool_width() -> usize {
    // Relaxed: a monotone maximum read only as a heuristic input to the
    // worker cap; no other memory is ordered through it.
    MAX_POOL_WIDTH.get().load(Ordering::Relaxed)
}

impl PoolContext {
    fn new(num_threads: usize) -> Arc<Self> {
        let num_threads = num_threads.max(1);
        // Relaxed: monotone maximum, see `max_pool_width`.
        MAX_POOL_WIDTH.get().fetch_max(num_threads, Ordering::Relaxed);
        Arc::new(PoolContext { num_threads, live_helpers: AtomicUsize::new(0) })
    }

    /// Claim a helper slot against *this pool's* budget of
    /// `num_threads - 1` live helpers.
    fn try_claim(self: &Arc<Self>) -> Option<HelperSlot> {
        if sync::mutation("ignore_budget") {
            // Seeded bug: hand out a slot regardless of the budget.
            // `num_threads(1)` is no longer sequential, which the model
            // sequentiality test must observe. (Relaxed: admission
            // counter, see below.)
            self.live_helpers.fetch_add(1, Ordering::Relaxed);
            return Some(HelperSlot { ctx: Arc::clone(self) });
        }
        let budget = self.num_threads.saturating_sub(1);
        // Relaxed throughout: the counter is a pure admission budget.
        // No data is published through it — job handoff synchronises
        // via the deque and latch mutexes — so the only property needed
        // is the atomicity of each individual update.
        let mut live = self.live_helpers.load(Ordering::Relaxed);
        loop {
            if live >= budget {
                return None;
            }
            match self.live_helpers.compare_exchange_weak(
                live,
                live + 1,
                // Relaxed on success and failure alike: see above.
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(HelperSlot { ctx: Arc::clone(self) }),
                Err(now) => live = now,
            }
        }
    }
}

/// An atomically claimed helper-thread slot, released on drop so a
/// panicking join closure cannot leak budget. Scoped to the pool it
/// was claimed from.
pub(crate) struct HelperSlot {
    ctx: Arc<PoolContext>,
}

impl HelperSlot {
    pub(crate) fn context(&self) -> Arc<PoolContext> {
        Arc::clone(&self.ctx)
    }
}

impl Drop for HelperSlot {
    fn drop(&mut self) {
        // Relaxed: budget release; see `try_claim` for why no ordering
        // is required on this counter.
        self.ctx.live_helpers.fetch_sub(1, Ordering::Relaxed);
    }
}

thread_local! {
    static CURRENT_POOL: RefCell<Option<Arc<PoolContext>>> = const { RefCell::new(None) };
}

fn new_default_context() -> Arc<PoolContext> {
    let threads = sync::thread::env_threads().unwrap_or_else(hardware_threads);
    PoolContext::new(threads)
}

/// The process-wide default pool: hardware threads, overridable with
/// `RAYON_NUM_THREADS` (read once; ignored under the model checker,
/// where environment reads would be a nondeterministic input).
static DEFAULT_CONTEXT: Lazy<Arc<PoolContext>> = Lazy::new(new_default_context);

// The two Lazy facades disagree on `get()`: std returns `&Arc`, the
// model checker hands back an owned guard — `&*` normalizes both.
#[allow(clippy::borrow_deref_ref)]
fn default_context() -> Arc<PoolContext> {
    Arc::clone(&*DEFAULT_CONTEXT.get())
}

/// The pool the current thread runs under: the innermost `install`, or
/// (on a helper) the pool of the join that spawned it, or the default.
pub(crate) fn current_context() -> Arc<PoolContext> {
    CURRENT_POOL
        .with(|c| c.borrow().clone())
        .unwrap_or_else(default_context)
}

/// Installs a pool context on the current thread for a scope; restores
/// the previous one on drop (also on unwind).
pub(crate) struct ContextGuard {
    prev: Option<Arc<PoolContext>>,
}

impl ContextGuard {
    pub(crate) fn install(ctx: Arc<PoolContext>) -> Self {
        ContextGuard { prev: CURRENT_POOL.with(|c| c.replace(Some(ctx))) }
    }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT_POOL.with(|c| *c.borrow_mut() = prev);
    }
}

/// Number of threads the current pool would use.
pub fn current_num_threads() -> usize {
    current_context().num_threads
}

/// Snapshot of scheduler health counters — the observable side of the
/// pool-survivability guarantee (a worker whose loop panics is
/// quarantined and replaced, see `pool.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolDiagnostics {
    /// Worker threads currently alive (spawned minus quarantined).
    pub workers_live: usize,
    /// Workers quarantined after a scheduler-level panic; each was
    /// replaced by a respawn, capacity permitting.
    pub workers_quarantined: usize,
}

/// Read the scheduler's health counters.
pub fn pool_diagnostics() -> PoolDiagnostics {
    pool::diagnostics()
}

/// Run `a` and `b`, in parallel when the current pool's helper-thread
/// budget allows. `b` is pushed onto this thread's deque where an idle
/// worker can steal it (inheriting the pool context); if nobody does,
/// the caller reclaims and runs it inline after `a`. Past the budget
/// both closures run sequentially on the calling thread.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let ctx = current_context();
    match ctx.try_claim() {
        Some(slot) => pool::join_with_helper(slot, a, b),
        None => {
            let ra = a();
            let rb = b();
            (ra, rb)
        }
    }
}

/// Error type for [`ThreadPoolBuilder::build`] (construction never
/// actually fails in the shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let ctx = match self.num_threads {
            Some(n) => PoolContext::new(n),
            // An unconstrained builder still gets its *own* context
            // (own helper budget) at the default width.
            None => PoolContext::new(default_context().num_threads),
        };
        Ok(ThreadPool { ctx })
    }
}

/// A pool that scopes [`current_num_threads`] *and* the [`join`]
/// helper budget for code run under [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    ctx: Arc<PoolContext>,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.ctx.num_threads
    }

    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let _guard = ContextGuard::install(Arc::clone(&self.ctx));
        op()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use crate::sync::Mutex;
    use std::collections::HashSet;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_nests() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo < 100 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        assert_eq!(sum(0, 10_000), 10_000 * 9_999 / 2);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn join_uses_worker_threads_under_wide_pool() {
        // With deque scheduling a fast second closure is legitimately
        // reclaimed and run inline, so pin the caller in its inline
        // branch long enough for a thief; retry to absorb scheduling
        // noise.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        // lint: allow(facade) — real thread identity, test-only.
        let me = std::thread::current().id();
        let stolen = (0..20).any(|_| {
            let (_, id_b) = pool.install(|| {
                join(
                    || std::thread::sleep(std::time::Duration::from_millis(20)), // lint: allow(facade)
                    std::thread::current, // lint: allow(facade)
                )
            });
            id_b.id() != me
        });
        assert!(stolen, "helper work must be able to run on a worker thread");
    }

    /// Regression for the POOL_THREADS scoping bug: the installed
    /// thread count used to live in a plain thread-local, so helpers
    /// spawned by `join` read the hardware count and nested joins under
    /// `num_threads(1)` still went parallel.
    #[test]
    fn nested_joins_under_one_thread_stay_on_one_thread() {
        // lint: allow(facade) — collecting real thread ids, test-only.
        fn tree(depth: usize, seen: &Mutex<HashSet<std::thread::ThreadId>>) {
            seen.lock().insert(std::thread::current().id()); // lint: allow(facade)
            if depth > 0 {
                join(|| tree(depth - 1, seen), || tree(depth - 1, seen));
            }
        }
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let seen = Mutex::new(HashSet::new());
        pool.install(|| tree(6, &seen));
        assert_eq!(seen.lock().len(), 1, "num_threads(1) must stay sequential");
    }

    /// Helpers inherit the installed context: the thread count a helper
    /// observes is the pool's, not the hardware default.
    #[test]
    fn helpers_inherit_installed_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let (inline, helper) =
            pool.install(|| join(current_num_threads, current_num_threads));
        assert_eq!(inline, 3);
        assert_eq!(helper, 3);
    }

    /// Regression for the helper-budget accounting bug: budgets used to
    /// be charged against a process-global counter, so two pools
    /// distorted each other. Claims against one context must not
    /// consume another's budget.
    #[test]
    fn helper_budget_is_scoped_to_the_pool() {
        let a = PoolContext::new(2); // budget: 1 helper
        let b = PoolContext::new(2);
        let a1 = a.try_claim();
        assert!(a1.is_some());
        assert!(a.try_claim().is_none(), "pool A's budget is exhausted");
        let b1 = b.try_claim();
        assert!(b1.is_some(), "pool B's budget must be unaffected by pool A");
        drop(a1);
        assert!(a.try_claim().is_some(), "slot release restores the budget");
        drop(b1);
    }

    #[test]
    fn join_propagates_helper_panics() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let result = std::panic::catch_unwind(|| {
            pool.install(|| join(|| 1, || -> i32 { panic!("helper boom") }))
        });
        assert!(result.is_err());
        // The pool is still usable afterwards (budget was released).
        let (x, y) = pool.install(|| join(|| 1, || 2));
        assert_eq!((x, y), (1, 2));
    }

    #[test]
    fn par_iter_chains_work() {
        let v = vec![1u64, 2, 3, 4, 5];
        let s: u64 = v.par_iter().map(|&x| x * 2).sum();
        assert_eq!(s, 30);
        let odds: Vec<u64> = v.clone().into_par_iter().filter(|x| x % 2 == 1).collect();
        assert_eq!(odds, vec![1, 3, 5]);
        let m = (0..10u64).into_par_iter().reduce(|| 0, |a, b| a.max(b));
        assert_eq!(m, 9);
    }

    #[test]
    fn par_slice_ops_work() {
        let mut v = vec![5u64, 3, 1, 4, 2];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
        let sums: Vec<u64> = v.par_chunks(2).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 7, 5]);
        v.par_chunks_mut(2).for_each(|c| c.reverse());
        assert_eq!(v, vec![2, 1, 4, 3, 5]);
    }
}
