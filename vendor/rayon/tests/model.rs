//! Model-checked deque-protocol tests for the work-stealing scheduler.
//!
//! Run with `cargo test -p rayon --features model`. With the `model`
//! feature on, every primitive in `rayon::sync` compiles to
//! `pmc-model`'s instrumented types, so the whole join/steal/park
//! protocol executes under the deterministic schedule explorer: each
//! test body runs hundreds to thousands of times, each under a
//! different thread interleaving, and any deadlock, lost job, panic, or
//! tripped protocol check is reported with a replayable schedule
//! string.
//!
//! The second half validates the checker itself: each seeded mutation
//! (`sync::mutation(...)` hooks in the scheduler) must be caught within
//! the CI exploration budget, and a schedule that catches it is pinned
//! as a replay fixture so checker regressions are loud.
#![cfg(feature = "model")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use pmc_model::{explore, explore_expect_violation, replay, Config, Strategy};

/// The basic protocol round: one join on a two-wide pool. Exercises
/// push, spawn-or-signal, steal vs. reclaim, latch set/wait.
fn one_join_two_wide() {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    let (a, b) = pool.install(|| rayon::join(|| 1, || 2));
    assert_eq!((a, b), (1, 2));
}

/// Nested joins on a three-wide pool: up to two helper jobs pending at
/// once, so deques can be two deep and both steal granularities (worker
/// steal-half, joiner steal-one) occur.
fn nested_joins_three_wide() {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
    pool.install(|| {
        rayon::join(
            || {
                let (x, y) = rayon::join(|| 2, || 3);
                assert_eq!(x + y, 5);
            },
            || (),
        )
    });
}

/// Two joins in sequence: the second push races the worker's re-park,
/// exercising the sleep-token (signals/sleepers) scheme.
fn sequential_joins_two_wide() {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    pool.install(|| {
        let (a, b) = rayon::join(|| 1, || 2);
        let (c, d) = rayon::join(|| a + b, || a - b);
        assert_eq!((c, d), (3, -1));
    });
}

/// Like `one_join_two_wide` but with a deliberately slow helper: the
/// extra yield points widen the window in which the joiner can reach
/// its blocking latch wait while a stolen job is still mid-run — the
/// interleavings the latch set/notify handshake exists for.
fn one_join_slow_helper() {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    let (a, b) = pool.install(|| {
        rayon::join(
            || 1,
            || {
                for _ in 0..6 {
                    pmc_model::thread::yield_now();
                }
                2
            },
        )
    });
    assert_eq!((a, b), (1, 2));
}

#[test]
fn join_completes_under_all_schedules() {
    // Acceptance bar: >= 1,000 distinct schedules explored for the core
    // protocol test within the CI budget.
    let cfg = Config { iterations: 1_500, ..Config::default() };
    let report = explore(&cfg, one_join_two_wide);
    assert!(
        report.distinct_schedules >= 1_000,
        "only {} distinct schedules out of {} executions",
        report.distinct_schedules,
        report.executions
    );
}

#[test]
fn nested_joins_complete_and_protocol_checks_hold() {
    // The steal-granularity conformance probes (`sync::check` in
    // `find_work`) are live in every one of these executions; a probe
    // firing is a violation.
    let cfg = Config { iterations: 600, ..Config::default() };
    let report = explore(&cfg, nested_joins_three_wide);
    assert!(report.distinct_schedules >= 500, "got {}", report.distinct_schedules);
}

#[test]
fn latch_wait_makes_progress_with_a_slow_stolen_job() {
    // The schedules where the joiner blocks while the stolen job is
    // still running are exactly where a lost latch wake-up would hang;
    // with the handshake intact they must all complete.
    let cfg = Config { iterations: 600, ..Config::default() };
    explore(&cfg, one_join_slow_helper);
}

#[test]
fn sleep_token_scheme_survives_join_churn() {
    let cfg = Config { iterations: 600, ..Config::default() };
    explore(&cfg, sequential_joins_two_wide);
}

#[test]
fn dfs_with_preemption_bound_covers_the_core_protocol() {
    // Systematic (non-random) coverage of the same protocol, pruned to
    // few-preemption schedules — the shapes most bugs need.
    let cfg = Config {
        strategy: Strategy::Dfs,
        iterations: 400,
        preemption_bound: 2,
        ..Config::default()
    };
    let report = explore(&cfg, one_join_two_wide);
    assert!(report.distinct_schedules > 100, "got {}", report.distinct_schedules);
}

#[test]
fn num_threads_one_is_strictly_sequential() {
    fn body() {
        let me = pmc_model::thread::model_index().expect("on a model thread");
        let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            rayon::join(
                || {
                    assert_eq!(
                        pmc_model::thread::model_index(),
                        Some(me),
                        "num_threads(1): inline closure left the calling thread"
                    );
                },
                || {
                    assert_eq!(
                        pmc_model::thread::model_index(),
                        Some(me),
                        "num_threads(1): helper closure left the calling thread"
                    );
                },
            )
        });
    }
    let cfg = Config { iterations: 400, ..Config::default() };
    explore(&cfg, body);
}

/// Steal coverage: there must EXIST a schedule in which the helper
/// closure runs on a worker thread (model index != the joiner's 0).
/// This is the positive control for the `drop_wake_signal` mutation
/// below, which must drive the same observation count to zero.
fn count_steals(counter: &'static AtomicUsize, mutations: &[&str]) -> usize {
    counter.store(0, Ordering::SeqCst);
    let mut cfg = Config { iterations: 400, ..Config::default() };
    for m in mutations {
        cfg = cfg.with_mutation(m);
    }
    let report = pmc_model::run(&cfg, move || {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            rayon::join(
                || (),
                || {
                    if pmc_model::thread::model_index() != Some(0) {
                        counter.fetch_add(1, Ordering::SeqCst);
                    }
                },
            )
        });
    });
    assert!(report.violation.is_none(), "unexpected violation: {:?}", report.violation);
    counter.load(Ordering::SeqCst)
}

#[test]
fn some_schedule_steals_onto_a_worker() {
    static STOLEN: AtomicUsize = AtomicUsize::new(0);
    let stolen = count_steals(&STOLEN, &[]);
    assert!(stolen > 0, "no explored schedule ever ran the helper on a worker");
}

#[test]
fn panic_in_stolen_job_propagates_to_joiner_under_model() {
    // Model-world version of the stolen-panic regression test: under
    // *every* explored interleaving — including those where the job is
    // genuinely stolen — the panic surfaces on the joiner and the pool
    // stays usable.
    fn body() {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| rayon::join(|| (), || -> u32 { panic!("model boom") }))
        }));
        let payload = result.expect_err("the helper panic must reach the joiner");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"model boom"));
        // Budget was released on the panic path: the pool still works.
        let (x, y) = pool.install(|| rayon::join(|| 1, || 2));
        assert_eq!((x, y), (1, 2));
    }
    let cfg = Config { iterations: 400, ..Config::default() };
    explore(&cfg, body);
}

// ---------------------------------------------------------------------
// Checker validation: seeded mutations.
//
// Each `mutation_*` test flips one named bug on (see the
// `sync::mutation(...)` hooks in `src/pool.rs` / `src/lib.rs`) and
// requires the explorer to catch it within the CI budget. The pinned
// `FIXTURE_*` schedule strings were recorded from caught violations;
// the paired `fixture_*` tests replay them directly, so the catch does
// not silently regress into "the explorer just stopped finding it".
// ---------------------------------------------------------------------

const FIXTURE_DROP_LATCH_NOTIFY: &str = "v1:0.0.0.0.0.0.0.0.0.0.0.0.1.1.0.1.1.1.1.1.1.1.1.1.0.1.0.0.0.0.0.1.0.0.1.0.0.0.1.1.1.1.1.1.1.1.1.1.1.1.1";
const FIXTURE_DROP_STOLEN_JOB: &str =
    "v1:0.0.0.0.0.0.0.0.0.0.0.0.0.1.1.1.1.1.1.1.1.1.1.0.1.1.1.0.0.0.0.0.0.0.0.0.0";
const FIXTURE_STEAL_FROM_BOTTOM: &str = "v1:0.0.0.0.0.0.0.0.0.0.0.0.1.0.0.0.1.0.1.0.1.1.1.1.1.1.0.1";
const FIXTURE_IGNORE_BUDGET: &str =
    "v1:0.0.0.0.0.0.0.0.0.0.0.1.1.1.1.1.1.0.1.1.1.1.0.1.0.1.1.0.1.1.0.1.1.1.0";

#[test]
fn mutation_drop_latch_notify_is_caught() {
    // The stolen job's result is stored but the waiter never woken: a
    // lost-wakeup deadlock whenever the job was genuinely stolen.
    let cfg = Config::default().with_mutation("drop_latch_notify");
    let v = explore_expect_violation(&cfg, one_join_slow_helper);
    assert!(v.message.contains("deadlock"), "got: {v}");
    println!("drop_latch_notify schedule: {}", v.schedule);
}

#[test]
fn fixture_drop_latch_notify_replays() {
    let cfg = Config::default().with_mutation("drop_latch_notify");
    let v = replay(FIXTURE_DROP_LATCH_NOTIFY, &cfg, one_join_slow_helper)
        .expect("pinned schedule must still catch the mutation");
    assert!(v.message.contains("deadlock"), "got: {v}");
}

#[test]
fn mutation_drop_stolen_job_is_caught() {
    // A thief dequeues the job and loses it: the latch can never trip.
    let cfg = Config::default().with_mutation("drop_stolen_job");
    let v = explore_expect_violation(&cfg, one_join_two_wide);
    assert!(v.message.contains("deadlock"), "got: {v}");
    println!("drop_stolen_job schedule: {}", v.schedule);
}

#[test]
fn fixture_drop_stolen_job_replays() {
    let cfg = Config::default().with_mutation("drop_stolen_job");
    let v = replay(FIXTURE_DROP_STOLEN_JOB, &cfg, one_join_two_wide)
        .expect("pinned schedule must still catch the mutation");
    assert!(v.message.contains("deadlock"), "got: {v}");
}

#[test]
fn mutation_steal_from_bottom_is_caught() {
    // Thieves drain the newest jobs instead of the oldest; the
    // conformance probe in `find_work` trips as soon as a steal sees a
    // two-deep deque.
    let cfg = Config::default().with_mutation("steal_from_bottom");
    let v = explore_expect_violation(&cfg, nested_joins_three_wide);
    assert!(v.message.contains("steal protocol"), "got: {v}");
    println!("steal_from_bottom schedule: {}", v.schedule);
}

#[test]
fn fixture_steal_from_bottom_replays() {
    let cfg = Config::default().with_mutation("steal_from_bottom");
    let v = replay(FIXTURE_STEAL_FROM_BOTTOM, &cfg, nested_joins_three_wide)
        .expect("pinned schedule must still catch the mutation");
    assert!(v.message.contains("steal protocol"), "got: {v}");
}

fn sequentiality_body() {
    let me = pmc_model::thread::model_index().expect("on a model thread");
    let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    pool.install(|| {
        rayon::join(
            || (),
            || {
                assert_eq!(
                    pmc_model::thread::model_index(),
                    Some(me),
                    "num_threads(1) must stay sequential"
                );
            },
        )
    });
}

#[test]
fn mutation_ignore_budget_is_caught() {
    // Budget accounting disabled: a num_threads(1) pool hands out a
    // helper slot anyway, and some schedule runs the helper on a worker
    // thread — the sequentiality assertion fires.
    let cfg = Config::default().with_mutation("ignore_budget");
    let v = explore_expect_violation(&cfg, sequentiality_body);
    assert!(v.message.contains("sequential"), "got: {v}");
    println!("ignore_budget schedule: {}", v.schedule);
}

#[test]
fn fixture_ignore_budget_replays() {
    let cfg = Config::default().with_mutation("ignore_budget");
    let v = replay(FIXTURE_IGNORE_BUDGET, &cfg, sequentiality_body)
        .expect("pinned schedule must still catch the mutation");
    assert!(v.message.contains("sequential"), "got: {v}");
}

#[test]
fn mutation_drop_wake_signal_is_caught_by_steal_coverage() {
    // Dropping the wake/spawn advertisement is a liveness-of-parallelism
    // bug, not a single-schedule safety violation: joins still complete
    // (the pushing frame reclaims its own job), but no helper can ever
    // run on a worker. It is caught by the *exists-a-steal* coverage
    // property: the identical exploration that observes steals in
    // `some_schedule_steals_onto_a_worker` must observe exactly zero
    // here. The replay seed is the fixed `Config` seed both tests share.
    static STOLEN: AtomicUsize = AtomicUsize::new(0);
    let stolen = count_steals(&STOLEN, &["drop_wake_signal"]);
    assert_eq!(
        stolen, 0,
        "with the wake signal dropped, a helper still ran on a worker — \
         the mutation is not wired through push_job"
    );
}
