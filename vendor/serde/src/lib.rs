//! Vendored stand-in for `serde`.
//!
//! Exposes the `Serialize`/`Deserialize` names (trait + derive macro,
//! like the real crate) so `#[derive(Serialize, Deserialize)]` and
//! `use serde::{Serialize, Deserialize}` compile. The derives are
//! no-ops — nothing in the workspace serializes yet. Swapping in the
//! real crate is a one-line change in the workspace manifest.

pub use serde_derive::{Deserialize, Serialize};

/// Marker form of serde's `Serialize` trait.
pub trait Serialize {}

/// Marker form of serde's `Deserialize` trait (lifetime elided — the
/// shim never borrows from an input buffer).
pub trait Deserialize {}
